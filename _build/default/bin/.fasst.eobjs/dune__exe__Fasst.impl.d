bin/fasst.ml: Arg Cmd Cmdliner Format List Printf Ss_algos Ss_core Ss_expt Ss_graph Ss_prelude Ss_sim Ss_sync Ss_verify String Term
