bin/fasst.mli:
