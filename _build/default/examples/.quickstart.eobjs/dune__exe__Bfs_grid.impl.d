examples/bfs_grid.ml: Array Printf Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim
