examples/bfs_grid.mli:
