examples/coloring_ring.mli:
