examples/local_model.ml: Array Format Fun Int Printf Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim
