examples/local_model.mli:
