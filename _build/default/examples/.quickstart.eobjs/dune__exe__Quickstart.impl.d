examples/quickstart.ml: Array List Printf Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync String
