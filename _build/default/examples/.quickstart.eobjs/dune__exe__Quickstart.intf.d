examples/quickstart.mli:
