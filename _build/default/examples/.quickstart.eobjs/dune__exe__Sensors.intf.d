examples/sensors.mli:
