examples/token_ring.ml: Array List Printf Ss_baselines Ss_graph Ss_prelude Ss_sim String
