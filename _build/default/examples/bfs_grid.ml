(* Self-stabilizing BFS spanning tree on a mesh (paper §5.2).

   A 5x7 grid models a switch fabric rooted at its top-left corner.
   The synchronous BFS construction terminates in ecc(root) rounds;
   the transformer makes it tolerate arbitrary corruption of the
   routing state.  We corrupt everything, converge under a sequential
   unfair daemon, print the distance field and parent directions, and
   emit the tree in DOT for visual inspection.

   Run with: dune exec examples/bfs_grid.exe *)

module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module Bfs = Ss_algos.Bfs_tree

let rows = 5
let cols = 7
let root = 0

let () =
  let rng = Ss_prelude.Rng.create 7 in
  let graph = G.Builders.grid ~rows ~cols in
  let inputs = Bfs.inputs graph ~root in
  let params = Core.Transformer.params Bfs.algo in

  let start =
    Core.Transformer.corrupt rng ~max_height:15 params
      (Core.Transformer.clean_config params graph ~inputs)
  in
  (* central-min is deterministic and unfair: it starves high-id nodes
     whenever it can — the transformer does not care. *)
  let stats = Core.Transformer.run params Sim.Daemon.central_min start in
  Printf.printf "%dx%d grid, root %d: converged in %d moves / %d rounds\n\n"
    rows cols root stats.Sim.Engine.moves stats.Sim.Engine.rounds;

  let final = Core.Transformer.outputs stats.Sim.Engine.final in
  let dist = G.Properties.bfs_distances graph root in

  (* Parent direction arrows, row by row. *)
  let arrow p =
    if p = root then " * "
    else
      match Bfs.parent_node graph p final.(p) with
      | None -> " ? "
      | Some q ->
          if q = p - 1 then " <-"
          else if q = p + 1 then " ->"
          else if q < p then " ^ "
          else " v "
  in
  print_endline "parent directions (* = root):";
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      print_string (arrow ((r * cols) + c))
    done;
    print_newline ()
  done;
  print_newline ();
  print_endline "hop distances:";
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Printf.printf "%3d" dist.((r * cols) + c)
    done;
    print_newline ()
  done;
  print_newline ();

  Printf.printf "BFS specification holds: %b\n"
    (Bfs.spec_holds graph ~root ~final);

  (* DOT export: tree edges solid, mesh edges dashed. *)
  let parent p = Bfs.parent_node graph p final.(p) in
  let dot = G.Dot.of_tree graph ~parent ~name:"bfs_grid" in
  let oc = open_out "bfs_grid.dot" in
  output_string oc dot;
  close_out oc;
  print_endline "tree written to bfs_grid.dot (render with: dot -Tpng)"
