(* Self-stabilizing Cole–Vishkin 3-coloring of an oriented ring
   (paper §5.3).

   A token ring of 48 stations needs a 3-coloring for TDMA slot
   assignment.  The synchronous Cole–Vishkin algorithm colors it in
   Θ(log* n) rounds; fed to the transformer in GREEDY mode with
   B = T = schedule_length, the self-stabilizing version converges in
   O(B) = O(log* n) rounds — sublinear in the ring's diameter, the
   regime where greedy mode shines.

   Run with: dune exec examples/coloring_ring.exe *)

module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module Cv = Ss_algos.Cole_vishkin
module P = Ss_core.Predicates

let n = 48
let width = 12 (* 12-bit station identifiers *)

let () =
  let rng = Ss_prelude.Rng.create 99 in
  let graph = G.Builders.cycle n in
  let ids = Cv.random_ring_ids rng ~n ~width in
  let inputs = Cv.inputs ~ids ~width graph in

  let t = Cv.schedule_length width in
  Printf.printf
    "ring of %d stations, %d-bit ids: synchronous schedule T = %d rounds \
     (log* of the id space, plus shift-down)\n"
    n width t;

  (* Greedy mode with B = T: simulate exactly T rounds, eagerly. *)
  let params = Core.Transformer.params ~mode:P.Greedy ~bound:(P.Finite t) Cv.algo in
  let start =
    Core.Transformer.corrupt rng ~max_height:t params
      (Core.Transformer.clean_config params graph ~inputs)
  in
  let stats =
    Core.Transformer.run params (Sim.Daemon.distributed_random rng ~p:0.6) start
  in
  Printf.printf
    "converged in %d rounds (ring diameter is %d — note rounds << D) and %d \
     moves\n"
    stats.Sim.Engine.rounds
    (G.Properties.diameter graph)
    stats.Sim.Engine.moves;

  let final = Core.Transformer.outputs stats.Sim.Engine.final in
  print_string "colors: ";
  Array.iter (fun s -> print_string (string_of_int s.Cv.color)) final;
  print_newline ();
  Printf.printf "proper 3-coloring: %b\n" (Cv.spec_holds graph ~final);

  (* Show the slot assignment quality: class sizes. *)
  let count c =
    Array.fold_left (fun acc s -> if s.Cv.color = c then acc + 1 else acc) 0 final
  in
  Printf.printf "slot classes: 0 -> %d stations, 1 -> %d, 2 -> %d\n" (count 0)
    (count 1) (count 2)
