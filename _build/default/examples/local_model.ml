(* "The LOCAL model becomes a tool to provide upper bounds" (§8).

   Implication (1) of the paper (§1.3): every problem solvable in the
   LOCAL model admits a fully-polynomial fully asynchronous silent
   self-stabilizing solution — because a radius-r LOCAL algorithm is
   just a function of each node's radius-r view, and view collection
   is a terminating synchronous algorithm the transformer can harden.

   This example runs the generic pipeline on a small data-center-ish
   topology: collect radius-r views, then answer three different LOCAL
   queries from the SAME converged state — no per-problem protocol
   design, no per-problem proof:

     1. the minimum identifier within distance r (local leader),
     2. the number of walks of length <= r around each node (a local
        density estimate),
     3. whether the node's id is a local minimum among its r-ball.

   Run with: dune exec examples/local_model.exe *)

module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module Lv = Ss_algos.Local_views
module Util = Ss_prelude.Util

let () =
  let rng = Ss_prelude.Rng.create 4242 in
  let graph = G.Builders.grid ~rows:3 ~cols:5 in
  let ids = Ss_algos.Leader_election.random_ids rng graph in
  let radius = 3 in

  let views =
    Lv.algo ~equal:Int.equal
      ~input_bits:(fun v -> 1 + Util.bit_width (abs v))
      ~random_input:(fun rng -> Ss_prelude.Rng.int rng 512)
      ~pp:Format.pp_print_int
  in
  let inputs p = { Lv.self_input = ids p; radius } in
  let params = Core.Transformer.params views in

  Printf.printf "3x5 grid, radius-%d view collection (T = %d rounds)\n" radius
    radius;

  (* Corrupt every node's collected views, then self-stabilize. *)
  let start =
    Core.Transformer.corrupt rng ~max_height:(radius + 3) params
      (Core.Transformer.clean_config params graph ~inputs)
  in
  let stats =
    Core.Transformer.run params (Sim.Daemon.distributed_random rng ~p:0.5) start
  in
  Printf.printf "converged in %d moves / %d rounds\n\n" stats.Sim.Engine.moves
    stats.Sim.Engine.rounds;

  let final = Core.Transformer.outputs stats.Sim.Engine.final in
  Printf.printf "%-6s %-6s %-12s %-12s %-10s\n" "node" "id" "min-in-ball"
    "ball-walks" "local-min?";
  G.Graph.iter_nodes graph (fun p ->
      let view = final.(p) in
      let local_leader = Lv.min_in_ball view Fun.id in
      let walks = Lv.tree_size view in
      Printf.printf "%-6d %-6d %-12d %-12d %-10b\n" p (ids p) local_leader walks
        (local_leader = ids p));

  (* Sanity: the collected views are exactly the graph unfolding. *)
  let all_exact =
    G.Graph.fold_nodes graph ~init:true ~f:(fun acc p ->
        acc
        && Lv.equal_tree Int.equal final.(p)
             (Lv.expected_view graph ~inputs:ids ~radius p))
  in
  Printf.printf "\nviews match the direct graph unfolding: %b\n" all_exact;
  print_endline
    "one converged state, three LOCAL queries answered — and the next fault\n\
     burst would be absorbed the same way."
