(* Quickstart: make a synchronous algorithm self-stabilizing in five
   lines.

   We take the classic synchronous leader election (flood the minimum
   identifier, §5.1 of the paper), feed it to the transformer in lazy
   mode, smash the configuration with transient faults, and let an
   unfair asynchronous daemon run the network: the system converges to
   a legitimate configuration electing the right leader, silently.

   Run with: dune exec examples/quickstart.exe *)

module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module Leader = Ss_algos.Leader_election

let () =
  let rng = Ss_prelude.Rng.create 2024 in

  (* 1. A network: a ring of 10 nodes with random unique identifiers. *)
  let graph = G.Builders.cycle 10 in
  let inputs = Leader.random_ids rng graph in
  Printf.printf "network: ring of %d nodes, ids:" (G.Graph.n graph);
  G.Graph.iter_nodes graph (fun p -> Printf.printf " %d" (inputs p));
  print_newline ();

  (* 2. The transformer: lazy mode, no bound needed (B = +inf). *)
  let params = Core.Transformer.params Leader.algo in

  (* 3. Transient faults: every node's simulation state is scrambled. *)
  let start =
    Core.Transformer.corrupt rng ~max_height:12 params
      (Core.Transformer.clean_config params graph ~inputs)
  in
  Printf.printf "faults injected: heights %s, %d node(s) in error status\n"
    (String.concat ","
       (Array.to_list
          (Array.map string_of_int (Core.Checker.heights start))))
    (Core.Checker.error_count start);

  (* 4. A fully asynchronous adversary: random nonempty subsets. *)
  let daemon = Sim.Daemon.distributed_random rng ~p:0.4 in
  let stats = Core.Transformer.run params daemon start in

  (* 5. The verdict. *)
  Printf.printf "converged in %d moves / %d rounds (%d steps)\n"
    stats.Sim.Engine.moves stats.Sim.Engine.rounds stats.Sim.Engine.steps;
  List.iter
    (fun (rule, count) -> Printf.printf "  rule %s fired %d times\n" rule count)
    stats.Sim.Engine.moves_per_rule;
  let outputs = Core.Transformer.outputs stats.Sim.Engine.final in
  let elected = outputs.(0) in
  Printf.printf "every node designates leader %d: %b\n" elected
    (Leader.spec_holds graph ~inputs ~final:outputs);
  let history = Ss_sync.Sync_runner.run Leader.algo graph ~inputs in
  match Core.Checker.legitimate_terminal params history stats.Sim.Engine.final with
  | Ok () -> print_endline "terminal configuration is legitimate and silent."
  | Error e -> Printf.printf "UNEXPECTED: %s\n" e
