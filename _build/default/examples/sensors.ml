(* A sensor field that keeps healing itself.

   Scenario: 40 sensors with random connectivity elect a coordinator
   (the minimum id) and build a BFS tree towards it for data
   collection — the composed Leader_bfs synchronous algorithm, made
   self-stabilizing by the transformer.  We then simulate life in the
   field: three successive bursts of memory corruption (cosmic rays,
   reboots, whatever), each followed by asynchronous re-convergence.
   After every burst we report recovery time, total work, and the §6
   message bill under both encodings.

   Run with: dune exec examples/sensors.exe *)

module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module Lbfs = Ss_algos.Leader_bfs
module Leader = Ss_algos.Leader_election
module Energy = Ss_energy.Energy
module P = Ss_core.Predicates

let () =
  let rng = Ss_prelude.Rng.create 31337 in
  let n = 40 in
  let graph = G.Builders.random_connected rng ~n ~extra_edges:(n / 2) in
  let ids = Leader.random_ids rng graph in
  let inputs = Lbfs.inputs ~ids graph in
  Printf.printf "sensor field: %d nodes, %d links, diameter %d\n" n
    (G.Graph.m graph)
    (G.Properties.diameter graph);

  let params = Core.Transformer.params ~bound:(P.Finite 24) Lbfs.algo in
  let history = Ss_sync.Sync_runner.run Lbfs.algo graph ~inputs in
  Printf.printf "synchronous leader+BFS terminates in T = %d rounds\n\n"
    history.Ss_sync.Sync_runner.t;

  let config = ref (Core.Transformer.clean_config params graph ~inputs) in
  for burst = 1 to 3 do
    (* Fault burst: 60% of the sensors are hit. *)
    config := Core.Transformer.corrupt rng ~p:0.6 ~max_height:20 params !config;
    Printf.printf "burst %d: %d sensors in error status, max cliff %d\n" burst
      (Core.Checker.error_count !config)
      (Core.Checker.max_cliff !config);

    let daemon = Sim.Daemon.distributed_random rng ~p:0.35 in
    let stats, cost = Energy.measure params daemon !config in
    config := stats.Sim.Engine.final;

    let outputs = Core.Transformer.outputs !config in
    let ok = Lbfs.spec_holds graph ~inputs ~final:outputs in
    Printf.printf
      "  re-converged: %d moves, %d rounds; coordinator %d, tree valid: %b\n"
      stats.Sim.Engine.moves stats.Sim.Engine.rounds outputs.(0).Lbfs.ldr ok;
    Printf.printf
      "  message bill: %d msgs; %d bits full-state vs %d bits delta (%.1fx \
       saved)\n"
      cost.Energy.messages cost.Energy.bits_full_state cost.Energy.bits_delta
      (float_of_int cost.Energy.bits_full_state
      /. float_of_int (max 1 cost.Energy.bits_delta));
    (match
       Core.Checker.legitimate_terminal params history !config
     with
    | Ok () -> print_endline "  state is legitimate and silent again."
    | Error e -> Printf.printf "  UNEXPECTED: %s\n" e);
    print_newline ()
  done;
  print_endline
    "the field survived three fault bursts with zero operator intervention."
