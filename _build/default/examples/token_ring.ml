(* Dijkstra's 1974 token ring — where self-stabilization began — next
   to what the 2024 transformer buys you.

   Both recover from arbitrary corruption, but they sit at opposite
   ends of the design space the paper maps out: Dijkstra's ring is a
   hand-crafted, problem-specific, NON-silent algorithm (the token
   keeps moving forever, costing moves — i.e. energy — even after
   stabilization), whereas the transformer mass-produces SILENT
   solutions: after convergence nobody moves, and the §6 heartbeat is
   the only residual traffic.

   Run with: dune exec examples/token_ring.exe *)

module G = Ss_graph
module Sim = Ss_sim
module Dijkstra = Ss_baselines.Dijkstra_ring

let n = 9

let () =
  let rng = Ss_prelude.Rng.create 1974 in
  let g = G.Builders.cycle n in
  let inputs = Dijkstra.inputs ~n () in

  (* Arbitrary initial counters. *)
  let start =
    Sim.Config.make g ~inputs ~states:(fun _ -> Ss_prelude.Rng.int rng (n + 1))
  in
  Printf.printf "ring of %d machines, K = %d, initial counters:" n (n + 1);
  Array.iter (Printf.printf " %d") start.Sim.Config.states;
  print_newline ();
  Printf.printf "initial privileges: %s\n"
    (String.concat ", "
       (List.map string_of_int (Dijkstra.privileged start)));

  (match
     Dijkstra.run_to_legitimacy (Sim.Daemon.central_random rng) start
   with
  | Some (steps, moves, legit) ->
      Printf.printf
        "stabilized to a single privilege after %d steps (%d moves)\n" steps
        moves;
      Printf.printf "counters now:";
      Array.iter (Printf.printf " %d") legit.Sim.Config.states;
      print_newline ();
      (* Watch the token make one full lap. *)
      print_string "token lap: ";
      let c = ref legit in
      for _ = 1 to n do
        let p = List.hd (Dijkstra.privileged !c) in
        Printf.printf "%d " p;
        let c', _ = Sim.Engine.step Dijkstra.algo !c [ p ] in
        c := c'
      done;
      print_newline ();
      Printf.printf "closure holds over 200 more steps: %b\n"
        (Dijkstra.closure_holds (Sim.Daemon.central_random rng) legit)
  | None -> print_endline "UNEXPECTED: did not stabilize");

  print_newline ();
  print_endline
    "contrast: the transformer's outputs are SILENT — after convergence no";
  print_endline
    "rule is enabled ever again (see examples/quickstart.exe), which is what";
  print_endline
    "makes them composable and cheap to run.  Dijkstra's ring keeps moving";
  print_endline "forever: mutual exclusion is inherently a non-silent task."
