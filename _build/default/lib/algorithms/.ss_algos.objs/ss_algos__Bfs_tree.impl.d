lib/algorithms/bfs_tree.ml: Array Format Ss_graph Ss_prelude Ss_sync
