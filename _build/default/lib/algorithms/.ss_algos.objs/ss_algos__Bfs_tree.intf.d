lib/algorithms/bfs_tree.mli: Format Ss_graph Ss_sync
