lib/algorithms/cole_vishkin.ml: Array Format Hashtbl Ss_graph Ss_prelude Ss_sync
