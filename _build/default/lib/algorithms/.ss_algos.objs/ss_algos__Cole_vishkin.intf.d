lib/algorithms/cole_vishkin.mli: Format Ss_graph Ss_prelude Ss_sync
