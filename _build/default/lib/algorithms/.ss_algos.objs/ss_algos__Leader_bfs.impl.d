lib/algorithms/leader_bfs.ml: Array Format Printf Ss_graph Ss_prelude Ss_sync
