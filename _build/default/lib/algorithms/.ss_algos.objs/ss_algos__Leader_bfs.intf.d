lib/algorithms/leader_bfs.mli: Format Ss_graph Ss_sync
