lib/algorithms/leader_election.ml: Array Format Int Ss_graph Ss_prelude Ss_sync
