lib/algorithms/leader_election.mli: Ss_graph Ss_prelude Ss_sync
