lib/algorithms/local_views.ml: Array Format List Ss_graph Ss_prelude Ss_sync
