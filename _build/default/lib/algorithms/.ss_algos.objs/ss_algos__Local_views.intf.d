lib/algorithms/local_views.mli: Format Ss_graph Ss_prelude Ss_sync
