lib/algorithms/min_flood.ml: Array Format Int Ss_graph Ss_prelude Ss_sync
