lib/algorithms/min_flood.mli: Ss_graph Ss_sync
