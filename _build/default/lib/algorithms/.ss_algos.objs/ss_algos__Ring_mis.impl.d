lib/algorithms/ring_mis.ml: Array Cole_vishkin Format Ss_graph Ss_prelude Ss_sync
