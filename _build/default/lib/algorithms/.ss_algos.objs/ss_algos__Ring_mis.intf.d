lib/algorithms/ring_mis.mli: Cole_vishkin Format Ss_graph Ss_sync
