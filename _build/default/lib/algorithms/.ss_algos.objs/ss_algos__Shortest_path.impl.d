lib/algorithms/shortest_path.ml: Array Format Hashtbl List Printf Ss_graph Ss_prelude Ss_sync
