lib/algorithms/shortest_path.mli: Format Ss_graph Ss_prelude Ss_sync
