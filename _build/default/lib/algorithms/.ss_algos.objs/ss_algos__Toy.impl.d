lib/algorithms/toy.ml: Array Format Int Ss_prelude Ss_sync
