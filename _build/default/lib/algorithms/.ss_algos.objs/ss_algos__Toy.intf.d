lib/algorithms/toy.mli: Ss_sync
