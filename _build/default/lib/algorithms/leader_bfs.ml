module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Properties = Ss_graph.Properties
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

type state = { ldr : int; dist : int; parent : int option }
type input = { id : int; degree : int }

let equal_state a b = a.ldr = b.ldr && a.dist = b.dist && a.parent = b.parent

let pp_state ppf s =
  Format.fprintf ppf "(ldr=%d, d=%d%s)" s.ldr s.dist
    (match s.parent with None -> "" | Some k -> Printf.sprintf ", ↑%d" k)

let better a b =
  a.ldr < b.ldr || (a.ldr = b.ldr && a.dist < b.dist)
(* Parent ports are tie-broken by scanning ports in increasing order. *)

let step input _self neighbors =
  let base = { ldr = input.id; dist = 0; parent = None } in
  let best = ref base in
  Array.iteri
    (fun k nbr ->
      let cand = { ldr = nbr.ldr; dist = nbr.dist + 1; parent = Some k } in
      if better cand !best then best := cand)
    neighbors;
  !best

let algo =
  {
    Sync_algo.sync_name = "leader-bfs";
    equal = equal_state;
    init = (fun input -> { ldr = input.id; dist = 0; parent = None });
    step;
    random_state =
      (fun rng input ->
        {
          ldr = Rng.int rng 65536;
          dist = Rng.int rng 64;
          parent =
            (if input.degree = 0 || Rng.bool rng then None
             else Some (Rng.int rng input.degree));
        });
    state_bits =
      (fun s ->
        1 + Util.bit_width s.ldr + 1 + Util.bit_width s.dist
        + (match s.parent with None -> 1 | Some k -> 2 + Util.bit_width k));
    pp_state;
  }

let inputs ~ids g p = { id = ids p; degree = Graph.degree g p }

let spec_holds g ~inputs ~final =
  let n = Graph.n g in
  let leader_id = ref max_int in
  let leader_node = ref (-1) in
  for p = 0 to n - 1 do
    let { id; _ } = inputs p in
    if id < !leader_id then begin
      leader_id := id;
      leader_node := p
    end
  done;
  let dist = Properties.bfs_distances g !leader_node in
  let ok p =
    let s = final.(p) in
    s.ldr = !leader_id && s.dist = dist.(p)
    &&
    if p = !leader_node then s.parent = None
    else
      match s.parent with
      | None -> false
      | Some k ->
          let nbrs = Graph.neighbors g p in
          k >= 0 && k < Array.length nbrs && dist.(nbrs.(k)) = dist.(p) - 1
  in
  let rec go p = p >= n || (ok p && go (p + 1)) in
  go 0
