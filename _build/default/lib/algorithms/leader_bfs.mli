(** Composed task: leader election + BFS tree rooted at the leader.

    Nodes have unique identifiers and port labels.  Each node holds
    the triple (leader id, hop distance to that leader, parent port);
    at each round it takes the lexicographic minimum of its own base
    candidate [(id, 0, None)] and [(q.ldr, q.dist+1, Some port)] over
    its neighbors, breaking ties by the smallest port.  The fixpoint —
    every node agreeing on the minimum id, holding its exact distance
    to it and a BFS parent — is reached within [O(D)] rounds.

    This composition illustrates the paper's remark that silent
    algorithms compose well and answers both §1.2 open questions at
    once through a single transformer application. *)

type state = { ldr : int; dist : int; parent : int option }
type input = { id : int; degree : int }

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm. *)

val inputs : ids:(int -> int) -> Ss_graph.Graph.t -> int -> input
(** Build inputs from an identifier assignment. *)

val spec_holds :
  Ss_graph.Graph.t -> inputs:(int -> input) -> final:state array -> bool
(** Everyone designates the minimum id; distances are exact hop
    distances to the leader; parents point one step closer (the leader
    itself has [dist = 0], [parent = None]). *)

val pp_state : Format.formatter -> state -> unit
