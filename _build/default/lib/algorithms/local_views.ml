module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng

type 'i tree = { label : 'i; children : 'i tree list }
type 'i input = { self_input : 'i; radius : int }

let leaf label = { label; children = [] }

let rec depth_of t =
  List.fold_left (fun acc c -> max acc (1 + depth_of c)) 0 t.children

let rec equal_tree eq a b =
  eq a.label b.label
  && List.length a.children = List.length b.children
  && List.for_all2 (equal_tree eq) a.children b.children

let rec tree_size t = 1 + List.fold_left (fun acc c -> acc + tree_size c) 0 t.children

let rec random_tree rng random_input fuel =
  let width = if fuel <= 0 then 0 else Rng.int rng 3 in
  {
    label = random_input rng;
    children = List.init width (fun _ -> random_tree rng random_input (fuel - 1));
  }

let algo ~equal ~input_bits ~random_input ~pp =
  let rec pp_tree ppf t =
    Format.fprintf ppf "%a(%a)" pp t.label
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         pp_tree)
      t.children
  in
  let rec bits t =
    input_bits t.label + 2
    + List.fold_left (fun acc c -> acc + bits c) 0 t.children
  in
  {
    Sync_algo.sync_name = "local-views";
    equal = equal_tree equal;
    init = (fun input -> leaf input.self_input);
    step =
      (fun input self neighbors ->
        if depth_of self >= input.radius then self
        else
          { label = input.self_input; children = Array.to_list neighbors });
    random_state = (fun rng _ -> random_tree rng random_input 2);
    state_bits = bits;
    pp_state = pp_tree;
  }

let expected_view g ~inputs ~radius node =
  let rec unfold v d =
    if d = 0 then leaf (inputs v)
    else
      {
        label = inputs v;
        children =
          Array.to_list
            (Array.map (fun q -> unfold q (d - 1)) (Graph.neighbors g v));
      }
  in
  unfold node radius

let rec fold_ball f acc t =
  List.fold_left (fold_ball f) (f acc t.label) t.children

let min_in_ball t key = fold_ball (fun acc label -> min acc (key label)) max_int t
