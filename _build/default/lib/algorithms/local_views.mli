(** Generic LOCAL-model simulation: radius-[r] view collection.

    The paper's first implication (§1.3) is that {e every} problem
    solvable in the LOCAL model admits a fully-polynomial FASSS: a
    LOCAL algorithm with radius [r] is exactly a function of each
    node's radius-[r] {e view} — the tree of inputs unfolded from the
    node along all walks of length [<= r] — so it suffices to make
    view collection self-stabilizing and post-process locally.  This
    module implements the collection as a terminating synchronous
    algorithm: after round [i <= r] every node holds its depth-[i]
    view tree; after [T = r] rounds it stops.

    A view tree records, at its root, the node's own input and, as
    ordered children, the previous-round trees of its neighbors in
    port order.  Any LOCAL algorithm is then a pure function of the
    collected tree — leader election within radius [r], minima /
    counting over the ball, local topology inference, etc.  The state
    grows as [O(Δ^r)] — the LOCAL model's classic cost, which the
    transformer further multiplies by [B] (Table 1's space row prices
    exactly this trade-off). *)

type 'i tree = { label : 'i; children : 'i tree list }
(** A rooted ordered tree of inputs.  The algorithm's state. *)

type 'i input = { self_input : 'i; radius : int }

val leaf : 'i -> 'i tree
(** Depth-0 view. *)

val depth_of : 'i tree -> int
(** Height of the tree ([0] for a leaf). *)

val equal_tree : ('i -> 'i -> bool) -> 'i tree -> 'i tree -> bool
(** Structural equality. *)

val tree_size : 'i tree -> int
(** Number of tree nodes. *)

val algo :
  equal:('i -> 'i -> bool) ->
  input_bits:('i -> int) ->
  random_input:(Ss_prelude.Rng.t -> 'i) ->
  pp:(Format.formatter -> 'i -> unit) ->
  ('i tree, 'i input) Ss_sync.Sync_algo.t
(** The collection algorithm for input type ['i].  All nodes must
    share the same [radius]. *)

val expected_view :
  Ss_graph.Graph.t -> inputs:(int -> 'i) -> radius:int -> int -> 'i tree
(** The ground-truth depth-[radius] view of a node, unfolded directly
    from the graph — what the algorithm must converge to. *)

val fold_ball : ('a -> 'i -> 'a) -> 'a -> 'i tree -> 'a
(** Fold over all labels of a view tree (with walk multiplicity). *)

val min_in_ball : 'i tree -> ('i -> int) -> int
(** Smallest [key label] over the view — e.g. leader election within
    radius [r] when inputs are identifiers. *)
