module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

type state = { color : int; round : int; in_mis : bool }
type input = Cole_vishkin.input

let schedule_length w = Cole_vishkin.schedule_length w + 3

let equal_state a b =
  a.color = b.color && a.round = b.round && a.in_mis = b.in_mis

let pp_state ppf s =
  Format.fprintf ppf "(c=%d, r=%d%s)" s.color s.round
    (if s.in_mis then ", MIS" else "")

let step (input : input) self neighbors =
  let cv_len = Cole_vishkin.schedule_length input.Cole_vishkin.width in
  let k = cv_len + 3 in
  if self.round >= k || Array.length neighbors <> 2 then self
  else begin
    let r = self.round in
    let nb_cw = neighbors.(0) and nb_ccw = neighbors.(1) in
    let reductions = Cole_vishkin.reduction_iters input.Cole_vishkin.width in
    let color, in_mis =
      if r < reductions then
        (Cole_vishkin.reduce ~own:self.color ~pred:nb_ccw.color, self.in_mis)
      else if r < cv_len then begin
        (* Shift-down rounds eliminating colors 5, 4, 3. *)
        let target = 5 - (r - reductions) in
        if self.color = target then begin
          let free c = c <> nb_cw.color && c <> nb_ccw.color in
          ((if free 0 then 0 else if free 1 then 1 else 2), self.in_mis)
        end
        else (self.color, self.in_mis)
      end
      else begin
        (* Election rounds: color class r - cv_len joins if undominated. *)
        let target = r - cv_len in
        if self.color = target && (not nb_cw.in_mis) && not nb_ccw.in_mis then
          (self.color, true)
        else (self.color, self.in_mis)
      end
    in
    { color; round = r + 1; in_mis }
  end

let algo =
  {
    Sync_algo.sync_name = "ring-mis";
    equal = equal_state;
    init =
      (fun (input : input) ->
        { color = input.Cole_vishkin.id; round = 0; in_mis = false });
    step;
    random_state =
      (fun rng (input : input) ->
        {
          color = Rng.int rng (1 lsl min input.Cole_vishkin.width 16);
          round = Rng.int rng (schedule_length input.Cole_vishkin.width + 2);
          in_mis = Rng.bool rng;
        });
    state_bits =
      (fun s -> Util.bit_width s.color + Util.bit_width s.round + 1);
    pp_state;
  }

let inputs ~ids ~width g p =
  let cv = Cole_vishkin.inputs ~ids ~width g p in
  (* The CV schedule field is reused as-is; our own schedule adds the
     three election rounds on top via [schedule_length]. *)
  cv

let spec_holds g ~final =
  let independent p =
    (not final.(p).in_mis)
    || Array.for_all (fun q -> not final.(q).in_mis) (Graph.neighbors g p)
  in
  let dominated p =
    final.(p).in_mis
    || Array.exists (fun q -> final.(q).in_mis) (Graph.neighbors g p)
  in
  let rec go p =
    p >= Graph.n g || (independent p && dominated p && go (p + 1))
  in
  go 0
