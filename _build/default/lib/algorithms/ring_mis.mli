(** Maximal independent set on oriented rings, composed on top of
    Cole–Vishkin (an extension exercise: the transformer applies to
    any terminating synchronous composition, §8's "simplify the design
    of energy-efficient FASSSes").

    The schedule prepends the {!Cole_vishkin} coloring (reductions +
    shift-down, [K] rounds) and appends three {e election} rounds: for
    [c = 0, 1, 2] in order, every node of color [c] with no neighbor
    already elected joins the set.  Color classes are independent, so
    the set stays independent; every node is eventually either elected
    or dominated, so it is maximal.  [T = K + 3 = Θ(log* n)].

    Through the transformer in greedy mode with [B = T] this yields a
    silent self-stabilizing MIS on oriented rings in [O(log* n)]
    rounds and [O(n² log* n)] moves — beyond the paper's §5 list, with
    the same machinery. *)

type state = { color : int; round : int; in_mis : bool }
type input = Cole_vishkin.input

val schedule_length : int -> int
(** [Cole_vishkin.schedule_length w + 3]. *)

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm (oriented-ring convention of
    {!Ss_graph.Builders.cycle}). *)

val inputs :
  ids:(int -> int) -> width:int -> Ss_graph.Graph.t -> int -> input
(** Build inputs; all ids distinct and [< 2^width]. *)

val spec_holds : Ss_graph.Graph.t -> final:state array -> bool
(** The flagged nodes form a maximal independent set. *)

val pp_state : Format.formatter -> state -> unit
