module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

type state = { dist : int; parent : int option }
type input = { is_root : bool; weights : int array }

let infinity = max_int / 4

let equal_state a b = a.dist = b.dist && a.parent = b.parent

let pp_state ppf s =
  if s.dist >= infinity then Format.pp_print_string ppf "∞"
  else
    Format.fprintf ppf "%d%s" s.dist
      (match s.parent with None -> "" | Some k -> Printf.sprintf "↑%d" k)

let step input self neighbors =
  if input.is_root then { dist = 0; parent = None }
  else begin
    let best = ref { dist = infinity; parent = None } in
    Array.iteri
      (fun k nbr ->
        if nbr.dist < infinity then begin
          let d = nbr.dist + input.weights.(k) in
          if d < !best.dist then best := { dist = d; parent = Some k }
        end)
      neighbors;
    ignore self;
    !best
  end

let algo =
  {
    Sync_algo.sync_name = "shortest-path";
    equal = equal_state;
    init =
      (fun input ->
        if input.is_root then { dist = 0; parent = None }
        else { dist = infinity; parent = None });
    step;
    random_state =
      (fun rng input ->
        let deg = Array.length input.weights in
        {
          dist = (if Rng.bool rng then infinity else Rng.int rng 256);
          parent =
            (if deg = 0 || Rng.bool rng then None else Some (Rng.int rng deg));
        });
    state_bits =
      (fun s ->
        let d = if s.dist >= infinity then 1 else 1 + Util.bit_width s.dist in
        let p = match s.parent with None -> 1 | Some k -> 2 + Util.bit_width k in
        d + p);
    pp_state;
  }

let inputs g ~weight ~root p =
  {
    is_root = p = root;
    weights = Array.map (fun q -> weight p q) (Graph.neighbors g p);
  }

let random_weights rng g ~max_weight =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (u, v) -> Hashtbl.add tbl (u, v) (1 + Rng.int rng max_weight))
    (Graph.edges g);
  fun u v ->
    let key = (min u v, max u v) in
    match Hashtbl.find_opt tbl key with
    | Some w -> w
    | None -> invalid_arg "random_weights: not an edge"

let reference_distances g ~weight ~root =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let visited = Array.make n false in
  dist.(root) <- 0;
  (* Dijkstra with linear extraction: fine at experiment sizes. *)
  let rec extract () =
    let best = ref (-1) in
    for p = 0 to n - 1 do
      if (not visited.(p)) && dist.(p) < infinity
         && (!best = -1 || dist.(p) < dist.(!best))
      then best := p
    done;
    if !best >= 0 then begin
      let u = !best in
      visited.(u) <- true;
      Array.iter
        (fun v ->
          let d = dist.(u) + weight u v in
          if d < dist.(v) then dist.(v) <- d)
        (Graph.neighbors g u);
      extract ()
    end
  in
  extract ();
  dist

let spec_holds g ~weight ~root ~final =
  let dist = reference_distances g ~weight ~root in
  let ok p =
    if p = root then final.(p).dist = 0 && final.(p).parent = None
    else if final.(p).dist <> dist.(p) then false
    else
      match final.(p).parent with
      | None -> false
      | Some k ->
          let nbrs = Graph.neighbors g p in
          k >= 0
          && k < Array.length nbrs
          && dist.(nbrs.(k)) + weight p nbrs.(k) = dist.(p)
  in
  let rec go p = p >= Graph.n g || (ok p && go (p + 1)) in
  go 0
