(** Weighted shortest-path spanning tree (Bellman–Ford style).

    The network is rooted and port-labelled; every edge carries a
    positive integer weight known to both endpoints.  Each round a
    non-root node recomputes its tentative distance as the minimum of
    [neighbor distance + edge weight] over its ports (and the root
    pins distance [0]), recording the argmin port as its parent.  The
    fixpoint — exact weighted distances and a shortest-path tree — is
    reached after at most [n - 1] rounds.  This is the
    "Bellman-Ford-based spanning tree construction" family the paper
    cites as round-efficient but exponential in moves when made
    self-stabilizing directly; through the transformer it becomes
    fully polynomial. *)

type state = { dist : int; parent : int option }
(** [dist = infinity] encodes unreachability during convergence. *)

type input = { is_root : bool; weights : int array  (** Per-port weights. *) }

val infinity : int
(** The distance encoding of [+∞]. *)

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm. *)

val inputs :
  Ss_graph.Graph.t -> weight:(int -> int -> int) -> root:int -> int -> input
(** [inputs g ~weight ~root] builds per-node inputs; [weight u v] must
    be symmetric and positive. *)

val random_weights :
  Ss_prelude.Rng.t -> Ss_graph.Graph.t -> max_weight:int -> int -> int -> int
(** A symmetric random weight function with weights in
    [1 .. max_weight]. *)

val reference_distances :
  Ss_graph.Graph.t -> weight:(int -> int -> int) -> root:int -> int array
(** Dijkstra-computed exact distances, used by the checker and tests. *)

val spec_holds :
  Ss_graph.Graph.t ->
  weight:(int -> int -> int) ->
  root:int ->
  final:state array ->
  bool
(** Distances are exact and every non-root parent edge lies on a
    shortest path. *)

val pp_state : Format.formatter -> state -> unit
