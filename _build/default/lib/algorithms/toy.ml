module Sync_algo = Ss_sync.Sync_algo
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

let bits s = 1 + Util.bit_width (abs s)

let constant =
  {
    Sync_algo.sync_name = "constant";
    equal = Int.equal;
    init = (fun v -> v);
    step = (fun _ self _ -> self);
    random_state = (fun rng _ -> Rng.int rng 256);
    state_bits = bits;
    pp_state = Format.pp_print_int;
  }

let clock =
  {
    Sync_algo.sync_name = "clock";
    equal = Int.equal;
    init = (fun _k -> 0);
    step = (fun k self _ -> if self < k then self + 1 else self);
    random_state = (fun rng k -> Rng.int rng (max 1 (2 * k)));
    state_bits = bits;
    pp_state = Format.pp_print_int;
  }

let max_flood =
  {
    Sync_algo.sync_name = "max-flood";
    equal = Int.equal;
    init = (fun v -> v);
    step = (fun _ self neighbors -> Array.fold_left max self neighbors);
    random_state = (fun rng _ -> Rng.int_in rng (-1024) 1024);
    state_bits = bits;
    pp_state = Format.pp_print_int;
  }
