(** Toy synchronous algorithms with precisely controlled execution
    times, used by the test suite and by the Table 1 greedy-mode
    sweeps (where an exactly known [T] isolates the dependence on
    [B]). *)

val constant : (int, int) Ss_sync.Sync_algo.t
(** A silent-from-the-start algorithm: state = input, never changes.
    [T = 0]. *)

val clock : (int, int) Ss_sync.Sync_algo.t
(** Each node counts [0, 1, …, K] and then stops; the input is [K].
    No communication: [T = max K].  All nodes must share the same
    [K]. *)

val max_flood : (int, int) Ss_sync.Sync_algo.t
(** Dual of {!Min_flood.algo}: maximum over the closed neighborhood.
    [T <= D]. *)
