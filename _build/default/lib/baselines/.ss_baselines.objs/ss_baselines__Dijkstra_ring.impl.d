lib/baselines/dijkstra_ring.ml: Array Format Int List Ss_sim
