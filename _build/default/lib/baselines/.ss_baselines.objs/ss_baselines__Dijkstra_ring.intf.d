lib/baselines/dijkstra_ring.mli: Ss_sim
