lib/baselines/naive_bfs.ml: Array Format Int List Ss_graph Ss_sim
