lib/baselines/naive_bfs.mli: Ss_graph Ss_sim
