(** Dijkstra's seminal K-state token ring (the paper's reference [27]
    — the origin of self-stabilization), as an atomic-state algorithm.

    A unidirectional ring of [n] machines, machine 0 distinguished.
    Each machine holds a counter in [0..K-1] and reads its
    predecessor:

    - machine 0 is {e privileged} when its value equals its
      predecessor's; firing increments its value mod [K];
    - any other machine is privileged when its value differs from its
      predecessor's; firing copies the predecessor's value.

    For [K >= n] the system self-stabilizes, from any configuration
    and under any daemon, to configurations with exactly one
    privilege, which then circulates forever (mutual exclusion).  The
    algorithm is {e not} silent — it is the classic example of what
    the transformer's silent output is not, and serves as a
    hand-crafted baseline in the comparison experiments. *)

type state = int
(** Counter value in [0..K-1]. *)

type input = { index : int; n : int; k : int }
(** Position on the ring, ring size, counter modulus. *)

val algo : (state, input) Ss_sim.Algorithm.t
(** The atomic-state algorithm.  Nodes must be arranged on
    {!Ss_graph.Builders.cycle} (port 1 = predecessor). *)

val inputs : n:int -> ?k:int -> unit -> int -> input
(** Inputs for an [n]-ring; [k] defaults to [n + 1].
    @raise Invalid_argument if [k < n]. *)

val privileged : (state, input) Ss_sim.Config.t -> int list
(** Machines currently holding a privilege (= enabled nodes). *)

val legitimate : (state, input) Ss_sim.Config.t -> bool
(** Exactly one privilege. *)

val run_to_legitimacy :
  ?max_steps:int ->
  Ss_sim.Daemon.t ->
  (state, input) Ss_sim.Config.t ->
  (int * int * (state, input) Ss_sim.Config.t) option
(** Drive the system until the first legitimate configuration; returns
    [(steps, moves, config)] or [None] if the budget runs out.  (The
    algorithm never terminates, so {!Ss_sim.Engine.run} alone would
    not stop.) *)

val closure_holds :
  ?steps:int ->
  Ss_sim.Daemon.t ->
  (state, input) Ss_sim.Config.t ->
  bool
(** From a legitimate configuration, every configuration along
    [steps] further steps (default 200) remains legitimate — the
    closure half of self-stabilization. *)
