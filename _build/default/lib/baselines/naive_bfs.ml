module Algorithm = Ss_sim.Algorithm
module Graph = Ss_graph.Graph
module Properties = Ss_graph.Properties

type state = int
type input = { is_root : bool; dmax : int }

let target (v : (state, input) Algorithm.view) =
  if v.Algorithm.input.is_root then 0
  else begin
    let best =
      Array.fold_left (fun acc d -> min acc d) max_int v.Algorithm.neighbors
    in
    let candidate = if best = max_int then v.Algorithm.input.dmax else best + 1 in
    min candidate v.Algorithm.input.dmax
  end

let algo : (state, input) Algorithm.t =
  {
    Algorithm.algo_name = "naive-bfs";
    equal = Int.equal;
    rules =
      [
        {
          Algorithm.rule_name = "ADJUST";
          guard = (fun v -> v.Algorithm.self <> target v);
          action = target;
        };
      ];
    pp_state = Format.pp_print_int;
  }

let inputs g ~root ?dmax () =
  let dmax = match dmax with Some d -> d | None -> Graph.n g in
  fun p -> { is_root = p = root; dmax }

let spec_holds g ~root ~final =
  let dist = Properties.bfs_distances g root in
  let rec go p = p >= Graph.n g || (final.(p) = dist.(p) && go (p + 1)) in
  go 0

let adversarial_run ?(max_steps = 10_000_000) config =
  let module Config = Ss_sim.Config in
  let module Engine = Ss_sim.Engine in
  let rec go config steps moves =
    if steps >= max_steps then (moves, false)
    else begin
      match Config.enabled_nodes algo config with
      | [] -> (moves, true)
      | enabled ->
          (* Pick the enabled node with the smallest resulting value. *)
          (* Smallest new value, ties broken towards the highest id
             (the nodes farthest from typical roots), maximizing the
             number of later re-increments. *)
          let best =
            List.fold_left
              (fun acc p ->
                let value = target (Config.view config p) in
                match acc with
                | Some (_, v) when v < value -> acc
                | Some (q, v) when v = value && q > p -> acc
                | _ -> Some (p, value))
              None enabled
          in
          let p = match best with Some (p, _) -> p | None -> assert false in
          let config', moved = Engine.step algo config [ p ] in
          go config' (steps + 1) (moves + List.length moved)
    end
  in
  go config 0 0
