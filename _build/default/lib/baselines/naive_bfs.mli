(** The hand-crafted "min + 1" self-stabilizing BFS distance algorithm
    — the round-fast / move-heavy family the paper contrasts against
    (§1.2, §5.2; Dolev's BFS and the Huang–Chen construction are of
    this shape, and [26] proves exponential move complexity for
    them).

    Every non-root node keeps a distance estimate and greedily sets it
    to [1 + min] of its neighbors' estimates whenever they disagree;
    the root pins [0].  Estimates are clamped to a bound [dmax]
    (bounded memory, as in the atomic-state variants studied by [26]).
    It stabilizes to exact BFS distances in [O(n)] rounds, but under
    sequential daemons a node may recompute its distance many times as
    underestimates crawl up — the pathology the transformer's freezing
    avoids.  The comparison experiment measures moves of this baseline
    against the transformed BFS on the same instances. *)

type state = int
(** Distance estimate in [0..dmax]. *)

type input = { is_root : bool; dmax : int }

val algo : (state, input) Ss_sim.Algorithm.t
(** The atomic-state algorithm ("min+1" rule, root pinned). *)

val inputs : Ss_graph.Graph.t -> root:int -> ?dmax:int -> unit -> int -> input
(** [dmax] defaults to [n]. *)

val spec_holds : Ss_graph.Graph.t -> root:int -> final:state array -> bool
(** Estimates equal exact hop distances. *)

val adversarial_run :
  ?max_steps:int ->
  (state, input) Ss_sim.Config.t ->
  int * bool
(** A sequential adversary tailored to this algorithm: always activate
    the enabled node whose {e new} estimate would be smallest (ties by
    id), so underestimates crawl upward by minimal increments — the
    §1.2 pathology.  Returns [(moves, terminated)].  On a rooted path
    from an all-zero start this forces [Θ(n²)] moves where the
    transformed BFS spends [O(n·T)]. *)
