lib/core/ablation.ml: Array Format Int List Predicates Ss_graph Ss_prelude Ss_sim Ss_sync Trans_state Transformer
