lib/core/ablation.mli: Ss_sim Trans_state Transformer
