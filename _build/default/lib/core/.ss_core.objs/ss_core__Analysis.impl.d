lib/core/analysis.ml: Array Checker List Predicates Ss_graph Ss_sim Trans_state Transformer
