lib/core/analysis.mli: Ss_sim Trans_state Transformer
