lib/core/checker.ml: Array List Predicates Ss_graph Ss_prelude Ss_sim Ss_sync Trans_state Transformer
