lib/core/checker.mli: Ss_sim Ss_sync Trans_state Transformer
