lib/core/predicates.ml: Array Ss_sim Ss_sync Trans_state
