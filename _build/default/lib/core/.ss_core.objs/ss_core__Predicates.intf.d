lib/core/predicates.mli: Ss_sim Ss_sync Trans_state
