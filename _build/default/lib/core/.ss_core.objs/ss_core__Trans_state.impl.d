lib/core/trans_state.ml: Array Format Printf Ss_prelude
