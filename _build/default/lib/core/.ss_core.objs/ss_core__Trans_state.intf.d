lib/core/trans_state.mli: Format
