lib/core/transformer.ml: Array Predicates Printf Ss_prelude Ss_sim Ss_sync Trans_state
