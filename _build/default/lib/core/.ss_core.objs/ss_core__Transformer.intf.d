lib/core/transformer.mli: Predicates Ss_graph Ss_prelude Ss_sim Ss_sync Trans_state
