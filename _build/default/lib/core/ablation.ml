module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module St = Trans_state
module P = Predicates

let rename algo suffix =
  { algo with Algorithm.algo_name = algo.Algorithm.algo_name ^ suffix }

let without_rp params =
  let algo = Transformer.algorithm params in
  rename
    {
      algo with
      Algorithm.rules =
        List.filter
          (fun r -> r.Algorithm.rule_name <> Transformer.rp)
          algo.Algorithm.rules;
    }
    "/no-RP"

let eager_clear_rule =
  {
    Algorithm.rule_name = Transformer.rc;
    guard =
      (fun v ->
        let self = v.Algorithm.self in
        let h = St.height self in
        St.in_error self
        && Array.for_all
             (fun q -> St.height q <= h || not (St.in_error q))
             v.Algorithm.neighbors);
    action = (fun v -> St.with_status v.Algorithm.self St.C);
  }

let with_eager_clear params =
  let algo = Transformer.algorithm params in
  rename
    {
      algo with
      Algorithm.rules =
        List.map
          (fun r ->
            if r.Algorithm.rule_name = Transformer.rc then eager_clear_rule
            else r)
          algo.Algorithm.rules;
    }
    "/eager-RC"

(* A local copy of the min-flood input algorithm (ss_core does not
   depend on ss_algos); semantics identical to Ss_algos.Min_flood. *)
let min_flood : (int, int) Ss_sync.Sync_algo.t =
  {
    Ss_sync.Sync_algo.sync_name = "min-flood";
    equal = Int.equal;
    init = (fun v -> v);
    step = (fun _ self neighbors -> Array.fold_left min self neighbors);
    random_state = (fun rng _ -> Ss_prelude.Rng.int rng 256);
    state_bits = (fun s -> 1 + Ss_prelude.Util.bit_width (abs s));
    pp_state = Format.pp_print_int;
  }

let deadlock_witness () =
  let params = Transformer.params min_flood in
  let g = Ss_graph.Builders.path 2 in
  let inputs p = [| 5; 9 |].(p) in
  let config =
    Config.make g ~inputs ~states:(fun p ->
        if p = 0 then
          (* Correct node, correct cells, but three levels above its
             emptied error neighbor. *)
          St.make ~init:5 ~status:St.C ~cells:[| 5; 5; 5 |]
        else St.make ~init:9 ~status:St.E ~cells:[||])
  in
  (params, config)
