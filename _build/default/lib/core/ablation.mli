(** Ablated variants of the transformer, for the design-choice
    experiments.

    The paper motivates each ingredient of the rule set informally
    (§1.2, §3.2): error broadcasts must {e freeze} the involved nodes,
    the error DAGs must be {e compressible} ([RP] re-truncating to
    ever-lower indices), and the lazy test keeps the simulation from
    running past termination.  The ablations make those motivations
    measurable:

    - {!without_rp} removes the error-propagation rule entirely.  The
      result is {e not} self-stabilizing: configurations exist (see
      {!deadlock_witness}) in which an error root with an empty list
      faces a tall correct neighbor across a cliff — nobody is
      enabled, and the system is stuck in an illegitimate terminal
      configuration.  The §4.1 progress argument ("every configuration
      with a root has an enabled node") breaks exactly at its [RP]
      case.
    - {!with_eager_clear} weakens [RC] by dropping the
      [|q.h - p.h| <= 1] window: a node may leave the error DAG while
      neighbors are still several levels away.  This undermines the
      freeze/feedback discipline; the experiments measure what it
      costs (extra moves / resets), and the tests check whether
      correctness survives on the tested workloads. *)

val without_rp :
  ('s, 'i) Transformer.params -> ('s Trans_state.t, 'i) Ss_sim.Algorithm.t
(** The transformer with rules [RR], [RC], [RU] only. *)

val with_eager_clear :
  ('s, 'i) Transformer.params -> ('s Trans_state.t, 'i) Ss_sim.Algorithm.t
(** The transformer with [RC]'s height window removed (guard becomes
    [p.s = E ∧ ∀q, q.h <= p.h ∨ q.s = C]). *)

val deadlock_witness :
  unit ->
  (int, int) Transformer.params
  * (int Trans_state.t, int) Ss_sim.Config.t
(** A two-node min-flood configuration — an error root with an empty
    list next to a correct node of height 3 — on which {!without_rp}
    is immediately terminal yet illegitimate, while the full
    transformer recovers.  Used by tests and the ablation table. *)
