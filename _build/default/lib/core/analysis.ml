module Config = Ss_sim.Config
module Graph = Ss_graph.Graph
module Trace = Ss_sim.Trace
module St = Trans_state

let cliffs config =
  let h = Checker.heights config in
  List.filter
    (fun (u, v) -> abs (h.(u) - h.(v)) >= 2)
    (Graph.edges config.Config.graph)

let is_error_root params config p =
  St.in_error (Config.state config p)
  && Predicates.is_root params (Config.view config p)

let has_d_path params config start =
  let g = config.Config.graph in
  let h = Checker.heights config in
  (* Depth-first over strictly decreasing-height steps; heights
     strictly decrease along the path so no visited set is needed. *)
  let rec go p =
    is_error_root params config p
    || Array.exists (fun q -> h.(q) < h.(p) && go q) (Graph.neighbors g p)
  in
  go start

let error_nodes_start_d_paths params config =
  let rec check p =
    p >= Config.n config
    || (((not (St.in_error (Config.state config p)))
        || has_d_path params config p)
       && check (p + 1))
  in
  check 0

let rootless_implies_cliff_free params config =
  Checker.has_root params config || cliffs config = []

type segmentation = {
  boundaries : int list;
  segments : int;
  rootless_suffix_from : int option;
}

let segment params records =
  let boundaries = ref [] in
  let rootless_from = ref None in
  let prev_roots = ref None in
  List.iter
    (fun (ev, config) ->
      (* A segment ends at this step if some node that was a root in
         the previous configuration executed RC in this step. *)
      (match !prev_roots with
      | Some roots ->
          if
            List.exists
              (fun (p, rule) -> rule = Transformer.rc && List.mem p roots)
              ev.Trace.ev_moved
          then boundaries := ev.Trace.ev_step :: !boundaries
      | None -> ());
      if !rootless_from = None && not (Checker.has_root params config) then
        rootless_from := Some ev.Trace.ev_step;
      prev_roots := Some (Checker.roots params config))
    records;
  {
    boundaries = List.rev !boundaries;
    segments = List.length !boundaries;
    rootless_suffix_from = !rootless_from;
  }
