(** Executable counterparts of the §4 proof structure.

    The complexity proofs rest on a handful of structural notions:

    - {e segments}: the steps of an execution are partitioned so that
      each step in which at least one root applies [RC] (and thus
      stops being a root) ends a segment; since roots are never
      created there are at most [n] such segments followed by one
      rootless {e simulation phase};
    - {e D-paths}: a decreasing-height path ending at a root in
      error; every node in error starts one — this is how the freeze
      argument tracks who may not simulate;
    - {e cliffs}: edges whose endpoint heights differ by [>= 2];
      rootless configurations are cliff-free (the crux of the
      [O(min(D,B))] recovery bound).

    This module computes all three on configurations and traces, so
    the proof's intermediate claims become testable invariants rather
    than prose. *)

val cliffs :
  ('s Trans_state.t, 'i) Ss_sim.Config.t -> (int * int) list
(** Edges [(p, q)] with [|h(p) - h(q)| >= 2]. *)

val has_d_path :
  ('s, 'i) Transformer.params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  int ->
  bool
(** [has_d_path params config p]: does a strictly height-decreasing
    path from [p] end at a root with status [E]?  (Trivially true when
    [p] itself is such a root.) *)

val error_nodes_start_d_paths :
  ('s, 'i) Transformer.params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  bool
(** §4.2's key invariant: every node in error is the first node of a
    D-path — i.e. either a root in error, or connected downhill to
    one. *)

val rootless_implies_cliff_free :
  ('s, 'i) Transformer.params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  bool
(** The §4.3 crux, as a per-configuration check: if the configuration
    has no root then it has no cliff.  (Vacuously true when a root
    remains.) *)

type segmentation = {
  boundaries : int list;
      (** Steps (1-based) at which some root applied [RC] — the last
          steps of the segments, in order. *)
  segments : int;  (** Number of root-closing segments. *)
  rootless_suffix_from : int option;
      (** First step index from which no root remains ([Some 0] when
          the start was already rootless). *)
}

val segment :
  ('s, 'i) Transformer.params ->
  (Ss_sim.Trace.event * ('s Trans_state.t, 'i) Ss_sim.Config.t) list ->
  segmentation
(** Segment a recorded execution (from {!Ss_sim.Trace.with_configs},
    which includes the initial configuration as step 0). *)
