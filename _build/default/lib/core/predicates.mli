(** The transformer's guard predicates (paper §3.1).

    All predicates are evaluated over a node's {!Ss_sim.Algorithm.view}
    whose states are {!Trans_state.t}; they only inspect the node's
    own state and the {e set} of neighbor states, as required by the
    weak model (§2.2). *)

type mode = Lazy | Greedy
(** Lazy simulates a new round only when necessary; greedy simulates
    all [B] rounds (§3.1). *)

type bound = Finite of int | Infinite
(** The upper bound [B] on the synchronous execution time [T];
    [Infinite] encodes [B = +∞]. *)

type ('s, 'i) params = {
  sync : ('s, 'i) Ss_sync.Sync_algo.t;  (** The simulated algorithm. *)
  mode : mode;
  bound : bound;
}

type ('s, 'i) view = ('s Trans_state.t, 'i) Ss_sim.Algorithm.view
(** What a transformer node observes. *)

val below_bound : bound -> int -> bool
(** [below_bound b h] is [h < B] ([true] when [B = +∞]). *)

val bound_to_int : bound -> int
(** [Finite b -> b], [Infinite -> max_int] (for caps in experiments). *)

val algo_hat : ('s, 'i) params -> ('s, 'i) view -> int -> 's
(** [algo_hat params v i] is the paper's [algô(p, i)]: the simulated
    algorithm applied by the node when every node of its closed
    neighborhood is in the state of its cell [i].  All heights in the
    closed neighborhood must be [>= i] — guaranteed by the guards that
    call it.
    @raise Invalid_argument when a dependency is missing. *)

val min_neighbor_height : ('s, 'i) view -> int
(** Smallest neighbor height ([max_int] when there are no neighbors). *)

val algo_err : ('s, 'i) params -> ('s, 'i) view -> bool
(** [algoErr(p)]: some cell [1 <= i <= h] has all its dependencies
    present ([∀q, q.h >= i-1]) yet differs from [algô(p, i-1)]. *)

val dep_err : ('s, 'i) params -> ('s, 'i) view -> bool
(** [depErr(p)]: the node is in error without an error neighbor of
    smaller height, or is correct while some neighbor towers [>= h+2]
    above it. *)

val is_root : ('s, 'i) params -> ('s, 'i) view -> bool
(** [root(p) = algoErr(p) ∨ depErr(p)] — the detector of "major
    errors" that launches an error broadcast. *)

val err_prop_index : ('s, 'i) params -> ('s, 'i) view -> int option
(** The smallest [i] with [errProp(p, i) = ∃q, q.s = E ∧ q.h < i < p.h]
    (the highest-priority enabled [RP(i)] rule), if any. *)

val can_clear_e : ('s, 'i) params -> ('s, 'i) view -> bool
(** [canClearE(p)]: in error, all neighbor heights within one of the
    node's, and no higher neighbor still in error — the node may leave
    the error DAG. *)

val updatable : ('s, 'i) params -> ('s, 'i) view -> bool
(** [updatable(p)]: correct status, list not full, neighbor heights in
    [\[h, h+1\]], and — in lazy mode — a reason to go on: either the
    simulation has not terminated at height [h] or some neighbor is
    already ahead. *)
