type status = C | E
type 's t = { init : 's; status : status; cells : 's array }

let make ~init ~status ~cells = { init; status; cells }
let clean init = { init; status = C; cells = [||] }
let height st = Array.length st.cells

let cell st i =
  if i = 0 then st.init
  else if i >= 1 && i <= height st then st.cells.(i - 1)
  else invalid_arg (Printf.sprintf "Trans_state.cell: index %d, height %d" i (height st))

let top st = cell st (height st)

let truncate st i =
  if i < 0 || i > height st then invalid_arg "Trans_state.truncate";
  { st with cells = Array.sub st.cells 0 i }

let extend st s = { st with cells = Array.append st.cells [| s |] }
let with_status st status = { st with status }
let in_error st = st.status = E

let equal eq a b =
  a.status = b.status && eq a.init b.init
  && Ss_prelude.Util.array_equal eq a.cells b.cells

let pp_status ppf = function
  | C -> Format.pp_print_string ppf "C"
  | E -> Format.pp_print_string ppf "E"

let pp pp_state ppf st =
  Format.fprintf ppf "{%a h=%d [%a]}" pp_status st.status (height st)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_state)
    (Array.to_list st.cells)
