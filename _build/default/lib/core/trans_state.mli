(** The transformer's node state (paper §3.1).

    A node state consists of:
    - [init]: the node's initial state in the simulated algorithm —
      read-only (never written by a rule, never corrupted by faults);
    - [status]: [C] (correct) or [E] (in error);
    - [cells]: the simulation list [L], cell [i] (1-based) ultimately
      holding [st_p^i], the state of the node at round [i] of the
      synchronous execution.

    By convention [L(0) = init]; the {e height} [h] of a node is the
    length of its list. *)

type status = C | E

type 's t = { init : 's; status : status; cells : 's array }

val make : init:'s -> status:status -> cells:'s array -> 's t
(** Plain constructor. *)

val clean : 's -> 's t
(** [clean init] is the controlled initial state: status [C], empty
    list. *)

val height : 's t -> int
(** [height st] is [h], the length of the list. *)

val cell : 's t -> int -> 's
(** [cell st i] is [L(i)] for [0 <= i <= height st]; [cell st 0] is
    [init].
    @raise Invalid_argument when [i] is out of range. *)

val top : 's t -> 's
(** [top st = cell st (height st)] — the newest simulated state. *)

val truncate : 's t -> int -> 's t
(** [truncate st i] cuts the list down to height [i <= height st]. *)

val extend : 's t -> 's -> 's t
(** [extend st s] appends [s], increasing the height by one. *)

val with_status : 's t -> status -> 's t
(** Replace the status. *)

val in_error : 's t -> bool
(** [status = E]. *)

val equal : ('s -> 's -> bool) -> 's t -> 's t -> bool
(** Structural equality given a state equality. *)

val pp :
  (Format.formatter -> 's -> unit) -> Format.formatter -> 's t -> unit
(** Renders status, height and list contents. *)

val pp_status : Format.formatter -> status -> unit
