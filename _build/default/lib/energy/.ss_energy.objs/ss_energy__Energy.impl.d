lib/energy/energy.ml: Array Int64 List Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync
