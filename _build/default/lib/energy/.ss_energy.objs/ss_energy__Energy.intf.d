lib/energy/energy.mli: Ss_core Ss_sim Ss_sync
