lib/expt/ablation_expt.ml: List Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync Ss_verify
