lib/expt/ablation_expt.mli: Ss_prelude
