lib/expt/baselines_expt.ml: List Measure Ss_algos Ss_baselines Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync Ss_verify
