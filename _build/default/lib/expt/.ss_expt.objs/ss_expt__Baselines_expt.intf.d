lib/expt/baselines_expt.mli: Ss_prelude
