lib/expt/blowup_expt.ml: Array List Printf Ss_algos Ss_core Ss_graph Ss_prelude Ss_rollback Ss_sim Ss_verify
