lib/expt/blowup_expt.mli: Ss_prelude Ss_sim
