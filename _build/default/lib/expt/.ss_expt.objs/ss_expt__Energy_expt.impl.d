lib/expt/energy_expt.ml: List Printf Ss_algos Ss_core Ss_energy Ss_graph Ss_prelude Ss_sim Ss_sync Ss_verify
