lib/expt/energy_expt.mli: Ss_prelude
