lib/expt/instances.ml: List Measure Ss_algos Ss_core Ss_graph Ss_prelude Ss_sync Ss_verify Workloads
