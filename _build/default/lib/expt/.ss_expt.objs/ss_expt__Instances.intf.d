lib/expt/instances.mli: Ss_prelude
