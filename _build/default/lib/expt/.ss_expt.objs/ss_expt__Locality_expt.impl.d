lib/expt/locality_expt.ml: Format Int List Measure Ss_algos Ss_core Ss_graph Ss_prelude Ss_sync Ss_verify
