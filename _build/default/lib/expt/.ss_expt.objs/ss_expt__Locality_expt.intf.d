lib/expt/locality_expt.mli: Ss_prelude
