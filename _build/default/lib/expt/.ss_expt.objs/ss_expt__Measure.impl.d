lib/expt/measure.ml: List Ss_prelude Ss_verify
