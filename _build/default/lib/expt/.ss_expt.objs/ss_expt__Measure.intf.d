lib/expt/measure.mli: Ss_sim Ss_verify
