lib/expt/msgnet_expt.ml: List Ss_algos Ss_core Ss_graph Ss_msgnet Ss_prelude Ss_sync
