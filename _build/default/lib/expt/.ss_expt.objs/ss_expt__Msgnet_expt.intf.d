lib/expt/msgnet_expt.mli: Ss_prelude
