lib/expt/table1.ml: List Measure Printf Ss_algos Ss_core Ss_graph Ss_prelude Ss_sync Ss_verify Workloads
