lib/expt/table1.mli: Ss_prelude
