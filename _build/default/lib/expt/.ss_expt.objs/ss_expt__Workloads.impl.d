lib/expt/workloads.ml: List Ss_graph Ss_prelude
