lib/expt/workloads.mli: Ss_graph Ss_prelude
