(** Ablation experiments on the transformer's rule set (DESIGN.md
    design-choice index).

    For each variant — the full transformer, {!Ss_core.Ablation.without_rp}
    and {!Ss_core.Ablation.with_eager_clear} — the table reports, over
    many random corruptions and the daemon portfolio: how many runs
    terminated, how many terminal configurations were legitimate, and
    the worst-case moves and rounds.  The no-RP column demonstrates
    that error propagation is needed for {e correctness} (stuck
    illegitimate terminal configurations), not merely for speed; the
    eager-RC column prices the freeze discipline. *)

val rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** The ablation comparison on leader election over a topology mix. *)
