(** Hand-crafted FASS baselines versus the transformer.

    The paper's motivating contrast (§1.2): algorithms that are fast
    in rounds tend to pay exponentially in moves, and the move-optimal
    ones pay [Ω(n)] rounds.  This table measures the hand-crafted
    "min+1" BFS baseline against the transformed BFS construction on
    the same instances — both from adversarial starts (all estimates
    zero: every node believes it neighbors the root) and under the
    adversary portfolio — plus Dijkstra's token ring as a
    non-silent reference point. *)

val bfs_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** naive min+1 BFS vs transformed BFS: worst moves and rounds. *)

val dijkstra_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Dijkstra's token ring: convergence steps/moves to the first
    legitimate configuration over ring sizes. *)
