(** Reproduction of §7 / Figure 1: rollback's exponential moves versus
    the transformer's polynomial moves on the very same instance.

    For each [k] we run (a) the rollback compiler under the validated
    adversarial schedule [Γ_k] from Figure 1's initial configuration,
    and (b) the paper's transformer (greedy, same bound [B]) started
    from the same list contents, measured worst-case over the daemon
    portfolio.  The rollback column doubles with [k]; the transformer
    column stays polynomial — the paper's headline separation. *)

val rows : ?max_k:int -> ?seeds:int list -> unit -> Ss_prelude.Table.t
(** The comparison table for [k = 1 .. max_k] (default 9). *)

val transformer_on_fig1 :
  k:int -> daemon:Ss_sim.Daemon.t -> int * bool
(** Moves and termination flag of the transformer started from
    Figure 1's list contents on [G_k] (greedy, [B = bound_for k]).
    Exposed for tests. *)
