(** Reproduction of the §6 message/energy accounting.

    Compares, over real executions of the transformed leader election,
    the total traffic under the naive full-state encoding
    ([O(B·S)] bits per message) against §6's delta encoding
    ([O(S + log B)] bits per message), plus the proof-heartbeat
    overhead.  The per-message compression ratio should track
    [B·S / (S + log B)]. *)

val rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Sweep ring sizes and bounds; one row per configuration with
    moves, messages, full-state bits, delta bits, the measured ratio
    and the predicted ratio. *)
