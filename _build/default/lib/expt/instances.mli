(** Reproduction of the §5 instances: leader election, BFS spanning
    tree, and Cole–Vishkin ring 3-coloring.

    Each experiment checks the paper's two claims per instance: the
    complexity shape (rounds tracking [O(D)] — or [O(log* n)] for the
    coloring — and moves staying well inside the polynomial envelope)
    and the problem specification itself, verified on the terminal
    configuration of every run. *)

val leader_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** §5.1: lazy-mode leader election; rounds vs [D], moves vs [n³],
    memory vs [B log n], and the elected-leader specification. *)

val bfs_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** §5.2: lazy-mode BFS spanning tree on rooted networks; rounds vs
    [D], moves vs [n³], and the BFS-tree specification. *)

val cv_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** §5.3: greedy-mode Cole–Vishkin on oriented rings with
    [B = Θ(log* n)]; rounds vs [B] (independent of [n]), moves vs
    [n²B], and the proper-3-coloring specification. *)

val shortest_path_rows :
  ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** The shortest-path construction mentioned in §1 (Bellman–Ford
    input): correctness and complexity of the transformed version. *)
