(** The space/locality trade-off behind Table 1's space row.

    The transformer multiplies the input algorithm's space [S] by the
    bound [B].  For the generic LOCAL simulation ({!Ss_algos.Local_views})
    [S] itself is [Θ(Δ^r)] — so this experiment shows, on one concrete
    family, both halves of the paper's §1.3 discussion: any LOCAL
    problem becomes fully-polynomial in time, and the memory bill is
    the product of the view size and the simulation depth.  The rows
    sweep the radius on a fixed topology and report measured [S]
    (max view bits), the transformed space footprint, and the [B·S]
    bound, with legitimacy checked under the portfolio. *)

val rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
