module Stabilization = Ss_verify.Stabilization
module Rng = Ss_prelude.Rng

type agg = {
  runs : int;
  max_moves : int;
  max_rounds : int;
  max_recovery_moves : int;
  max_recovery_rounds : int;
  max_space_bits : int;
  all_legitimate : bool;
  all_spec : bool;
}

let empty =
  {
    runs = 0;
    max_moves = 0;
    max_rounds = 0;
    max_recovery_moves = 0;
    max_recovery_rounds = 0;
    max_space_bits = 0;
    all_legitimate = true;
    all_spec = true;
  }

let absorb ~spec agg (r : _ Stabilization.report) =
  {
    runs = agg.runs + 1;
    max_moves = max agg.max_moves r.Stabilization.moves;
    max_rounds = max agg.max_rounds r.Stabilization.rounds;
    max_recovery_moves = max agg.max_recovery_moves r.Stabilization.recovery_moves;
    max_recovery_rounds =
      max agg.max_recovery_rounds r.Stabilization.recovery_rounds;
    max_space_bits = max agg.max_space_bits r.Stabilization.space_bits;
    all_legitimate = agg.all_legitimate && r.Stabilization.legitimate;
    all_spec = agg.all_spec && spec r.Stabilization.outputs;
  }

let worst_case ?track_recovery ?max_steps ?(corruption_p = 1.0)
    ?(spec = fun _ -> true) ~seeds ~max_height sc =
  List.fold_left
    (fun agg seed ->
      let rng = Rng.create seed in
      List.fold_left
        (fun agg (_name, daemon) ->
          let start =
            Stabilization.corrupted_start (Rng.split rng) ~p:corruption_p
              ~max_height sc
          in
          let report =
            Stabilization.run ?track_recovery ?max_steps sc ~daemon ~start
          in
          absorb ~spec agg report)
        agg
        (Stabilization.daemon_portfolio rng))
    empty seeds

let clean_run ?max_steps sc ~daemon =
  Stabilization.run ?max_steps sc ~daemon ~start:(Stabilization.clean_start sc)
