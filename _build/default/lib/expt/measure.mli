(** Worst-case-over-adversaries measurement of a scenario.

    The paper's complexities are worst cases over all daemons and all
    initial configurations.  We approximate them by taking the maximum
    over the {!Ss_verify.Stabilization.daemon_portfolio} and over
    several random corruptions; the upper-bound {e shapes} must hold
    for every member of the portfolio, and the scripted §7 adversary
    (handled separately in {!Blowup_expt}) achieves the lower bound. *)

type agg = {
  runs : int;
  max_moves : int;
  max_rounds : int;
  max_recovery_moves : int;
  max_recovery_rounds : int;
  max_space_bits : int;
  all_legitimate : bool;  (** Every run reached a legitimate terminal
      configuration. *)
  all_spec : bool;  (** Every run's outputs satisfied [spec]. *)
}

val worst_case :
  ?track_recovery:bool ->
  ?max_steps:int ->
  ?corruption_p:float ->
  ?spec:('s array -> bool) ->
  seeds:int list ->
  max_height:int ->
  ('s, 'i) Ss_verify.Stabilization.scenario ->
  agg
(** For each seed, corrupt the clean start (each node hit with
    probability [corruption_p], default 1) and run under every
    portfolio daemon; aggregate the maxima.  [spec] (default: always
    true) is checked on each run's final outputs. *)

val clean_run :
  ?max_steps:int ->
  ('s, 'i) Ss_verify.Stabilization.scenario ->
  daemon:Ss_sim.Daemon.t ->
  's Ss_verify.Stabilization.report
(** Single run from the controlled initial configuration. *)
