(** End-to-end §6 experiment: the transformer over real (simulated)
    message passing.

    Unlike {!Energy_expt}, which accounts costs over an atomic-state
    trace, this table runs the actual protocol of {!Ss_msgnet.Msgnet}:
    mirrors, FIFO channels, heartbeat proofs, repair round-trips.  For
    each network size and encoding it reports the work (rule
    executions, deliveries), the traffic split (update / proof /
    repair bits) and whether verified quiescence with a legitimate
    outcome was reached. *)

val rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Leader election over rings and random graphs, both encodings. *)
