(** Reproduction of Table 1: the transformer's complexity envelope.

    The paper's Table 1 states worst-case bounds; we measure actual
    worst cases over the daemon portfolio and random corruptions and
    print them next to the bound formulas evaluated on the instance,
    so the {e shape} claims can be checked row by row:

    - lazy: moves within [O(min(n³+nT, n²B))], rounds within [O(D+T)];
    - greedy: rounds within [O(B)] and growing linearly with [B];
    - error recovery: rounds within [O(min(D,B))], moves within
      [O(min(n³, n²B))];
    - space: at most [O(B·S)] bits per node.

    Every run is also checked to end in a legitimate terminal
    configuration (the correctness side of the theorem). *)

val lazy_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Lazy-mode sweep of leader election over the standard workloads. *)

val greedy_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Greedy-mode sweep with controlled [T] (the clock algorithm) and
    growing [B], plus greedy leader election. *)

val recovery_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Error-recovery sweep: recovery rounds against [min(D, B)]
    including the counterintuitive [B < D] regime. *)

val space_rows : ?seeds:int list -> Ss_prelude.Rng.t -> Ss_prelude.Table.t
(** Space sweep: measured per-node bits against [B·S]. *)
