module G = Ss_graph

type t = {
  family : string;
  graph : G.Graph.t;
  n : int;
  diameter : int;
}

let make family graph =
  {
    family;
    graph;
    n = G.Graph.n graph;
    diameter = G.Properties.diameter graph;
  }

let standard rng =
  List.concat
    [
      List.map (fun n -> make "path" (G.Builders.path n)) [ 8; 16; 32 ];
      List.map (fun n -> make "cycle" (G.Builders.cycle n)) [ 8; 16; 32 ];
      List.map
        (fun (r, c) -> make "grid" (G.Builders.grid ~rows:r ~cols:c))
        [ (3, 3); (4, 4); (6, 6) ];
      List.map (fun n -> make "tree" (G.Builders.binary_tree n)) [ 15; 31; 63 ];
      List.map (fun n -> make "star" (G.Builders.star n)) [ 8; 32 ];
      List.map
        (fun n ->
          make "random"
            (G.Builders.random_connected
               (Ss_prelude.Rng.split rng)
               ~n ~extra_edges:(n / 2)))
        [ 16; 32 ];
    ]

let diameter_sweep () =
  List.map (fun n -> make "path" (G.Builders.path n)) [ 4; 8; 16; 32; 64 ]

let rings sizes = List.map (fun n -> make "ring" (G.Builders.cycle n)) sizes
