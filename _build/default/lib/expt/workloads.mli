(** Topology sweeps shared by the experiments.

    Each workload is a named family of graphs of growing size, chosen
    to cover the diameter regimes the paper's bounds distinguish:
    [D = Θ(n)] (paths, cycles), [D = Θ(√n)] (grids),
    [D = Θ(log n)] (balanced trees), [D = O(1)] (stars), and random
    connected graphs. *)

type t = {
  family : string;
  graph : Ss_graph.Graph.t;
  n : int;
  diameter : int;
}

val make : string -> Ss_graph.Graph.t -> t
(** Wrap a graph with its measured diameter. *)

val standard : Ss_prelude.Rng.t -> t list
(** The default sweep: paths, cycles, grids, binary trees, stars and
    random connected graphs at several sizes (n between 8 and 64). *)

val diameter_sweep : unit -> t list
(** Fixed-shape family with growing diameter (paths of 4–64 nodes),
    for the [O(D)]-round experiments. *)

val rings : int list -> t list
(** Rings of the given sizes (for Cole–Vishkin). *)
