lib/graph/builders.ml: Array Graph Hashtbl List Ss_prelude
