lib/graph/builders.mli: Graph Ss_prelude
