lib/graph/gk.ml: Array Format Graph List Properties
