lib/graph/gk.mli: Format Graph
