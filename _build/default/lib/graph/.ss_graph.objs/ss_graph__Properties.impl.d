lib/graph/properties.ml: Array Graph Queue
