lib/graph/properties.mli: Graph
