module Rng = Ss_prelude.Rng

let single () = Graph.of_edges ~n:1 []

let path n =
  if n < 1 then invalid_arg "Builders.path";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle";
  (* Explicit adjacency so that port 0 is clockwise and port 1 is
     counterclockwise at every node. *)
  let adj = Array.init n (fun i -> [| (i + 1) mod n; (i + n - 1) mod n |]) in
  Graph.of_adjacency adj

let complete n =
  if n < 1 then invalid_arg "Builders.complete";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let star n =
  if n < 2 then invalid_arg "Builders.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Builders.torus";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let hypercube d =
  if d < 0 then invalid_arg "Builders.hypercube";
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let binary_tree n =
  if n < 1 then invalid_arg "Builders.binary_tree";
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := ((i - 1) / 2, i) :: !edges
  done;
  Graph.of_edges ~n !edges

let lollipop ~clique ~tail =
  if clique < 1 || tail < 0 then invalid_arg "Builders.lollipop";
  let n = clique + tail in
  let edges = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then 0 else clique + i - 1 in
    edges := (prev, clique + i) :: !edges
  done;
  Graph.of_edges ~n !edges

let wheel n =
  if n < 4 then invalid_arg "Builders.wheel";
  let rim = n - 1 in
  let edges = ref [] in
  for i = 1 to rim do
    edges := (0, i) :: !edges;
    let next = if i = rim then 1 else i + 1 in
    edges := (i, next) :: !edges
  done;
  Graph.of_edges ~n !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Builders.complete_bipartite";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Builders.caterpillar";
  let n = spine * (legs + 1) in
  let edges = ref [] in
  for s = 0 to spine - 1 do
    if s + 1 < spine then edges := (s, s + 1) :: !edges;
    for l = 0 to legs - 1 do
      edges := (s, spine + (s * legs) + l) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let random_tree rng n =
  if n < 1 then invalid_arg "Builders.random_tree";
  let edges = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  Graph.of_edges ~n edges

let random_connected rng ~n ~extra_edges =
  if n < 1 then invalid_arg "Builders.random_connected";
  let tree_edges = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  let present = Hashtbl.create 64 in
  List.iter (fun (u, v) -> Hashtbl.add present (min u v, max u v) ()) tree_edges;
  let max_edges = n * (n - 1) / 2 in
  let budget = min extra_edges (max_edges - (n - 1)) in
  let extra = ref [] in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < budget && !attempts < 100 * (budget + 1) do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem present key) then begin
        Hashtbl.add present key ();
        extra := key :: !extra;
        incr added
      end
    end
  done;
  Graph.of_edges ~n (tree_edges @ !extra)
