let default_label v = string_of_int v

let of_graph ?(name = "g") ?(label = default_label) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Graph.iter_nodes g (fun v ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v)));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_tree ?(name = "t") ?(label = default_label) g ~parent =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Graph.iter_nodes g (fun v ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v)));
  let is_tree_edge u v =
    (match parent u with Some p when p = v -> true | _ -> false)
    || match parent v with Some p when p = u -> true | _ -> false
  in
  List.iter
    (fun (u, v) ->
      let style = if is_tree_edge u v then "solid" else "dashed" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [style=%s];\n" u v style))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
