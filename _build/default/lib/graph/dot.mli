(** Graphviz export, for inspecting topologies and computed trees. *)

val of_graph :
  ?name:string -> ?label:(int -> string) -> Graph.t -> string
(** [of_graph g] renders [g] in DOT syntax.  [label] overrides the
    per-node label (default: the node id). *)

val of_tree :
  ?name:string ->
  ?label:(int -> string) ->
  Graph.t ->
  parent:(int -> int option) ->
  string
(** [of_tree g ~parent] renders [g] with tree edges (given by the
    parent map) drawn solid and non-tree edges dashed. *)
