type role = B | A | C | D | E

let role_index = function B -> 0 | A -> 1 | C -> 2 | D -> 3 | E -> 4
let role_of_index = function
  | 0 -> B
  | 1 -> A
  | 2 -> C
  | 3 -> D
  | 4 -> E
  | _ -> assert false

let node ~k role i =
  if i < 1 || i > k then invalid_arg "Gk.node: block out of range";
  (5 * (i - 1)) + role_index role

let block_of v = (v / 5) + 1
let role_of v = role_of_index (v mod 5)

let make k =
  if k < 1 then invalid_arg "Gk.make";
  let nd = node ~k in
  let edges = ref [] in
  for i = 1 to k do
    edges :=
      (nd B i, nd A i) :: (nd A i, nd C i) :: (nd C i, nd D i)
      :: (nd D i, nd E i) :: !edges;
    if i >= 2 then
      edges := (nd B i, nd C (i - 1)) :: (nd E i, nd C (i - 1)) :: !edges
  done;
  Graph.of_edges ~n:(5 * k) !edges

let bottom_path ~k i =
  let nd = node ~k in
  let rec go j acc =
    if j < 1 then List.rev acc
    else go (j - 1) (nd E j :: nd D j :: nd C j :: acc)
  in
  go i []

let fig1_index ~k v =
  let g = make k in
  let d = Properties.bfs_distances g (node ~k C k) in
  match role_of v with A -> d.(v) | B | C | D | E -> d.(v) + 1

let max_fig1_index ~k =
  let g = make k in
  let best = ref 0 in
  Graph.iter_nodes g (fun v -> best := max !best (fig1_index ~k v));
  !best

let role_name = function B -> "b" | A -> "a" | C -> "c" | D -> "d" | E -> "e"

let pp_node ~k:_ ppf v =
  Format.fprintf ppf "%s%d" (role_name (role_of v)) (block_of v)
