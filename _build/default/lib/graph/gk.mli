(** The graph family [G_k] of Section 7 (Figure 1).

    [G_1] is the path [b1 – a1 – c1 – d1 – e1]; [G_k] adds a fresh path
    [bk – ak – ck – dk – ek] to [G_{k-1}] together with the edges
    [bk–c(k-1)] and [ek–c(k-1)].  The {e bottom path} of [G_i] is the
    simple path from [c_i] to [e_1] through the [c], [d], [e] nodes.

    On this family the paper exhibits an adversarial schedule under
    which the rollback compiler performs exponentially many moves (see
    {!Ss_rollback.Blowup}).  [n = 5k]. *)

type role = B | A | C | D | E
(** The five rôles of each block, in Figure 1's notation. *)

val make : int -> Graph.t
(** [make k] builds [G_k] for [k >= 1].
    @raise Invalid_argument if [k < 1]. *)

val node : k:int -> role -> int -> int
(** [node ~k role i] is the node id of the rôle in block [i]
    ([1 <= i <= k]).  Block ids are stable across [k]: the id only
    depends on [role] and [i].
    @raise Invalid_argument if [i] is out of range. *)

val block_of : int -> int
(** [block_of v] is the block index [i] of node [v]. *)

val role_of : int -> role
(** [role_of v] is the rôle of node [v]. *)

val bottom_path : k:int -> int -> int list
(** [bottom_path ~k i] lists the nodes of the bottom path of [G_i]
    (within [G_k]): [c_i, d_i, e_i, c_(i-1), …, c_1, d_1, e_1]. *)

val fig1_index : k:int -> int -> int
(** [fig1_index ~k v] is the index of node [v] in the initial
    configuration of Figure 1: [d(v, c_k)] for [a]-nodes and
    [d(v, c_k) + 1] for every other node, where [d] is hop distance in
    [G_k].  (A node of index [i] has list cells [1] strictly below
    position [i] and [0] from there on.) *)

val max_fig1_index : k:int -> int
(** Largest {!fig1_index} over the nodes of [G_k]; the rollback bound
    [B] must be at least this for Figure 1's configuration to fit. *)

val role_name : role -> string
(** ["a"], ["b"], … *)

val pp_node : k:int -> Format.formatter -> int -> unit
(** Renders a node as e.g. ["a3"]. *)
