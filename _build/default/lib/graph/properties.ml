let bfs_distances g src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let p = Queue.pop q in
    Array.iter
      (fun r ->
        if dist.(r) = max_int then begin
          dist.(r) <- dist.(p) + 1;
          Queue.push r q
        end)
      (Graph.neighbors g p)
  done;
  dist

let distance g p q = (bfs_distances g p).(q)

let eccentricity g p =
  let dist = bfs_distances g p in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Properties.eccentricity: disconnected"
      else max acc d)
    0 dist

let diameter g =
  Graph.fold_nodes g ~init:0 ~f:(fun acc p -> max acc (eccentricity g p))

let radius g =
  Graph.fold_nodes g ~init:max_int ~f:(fun acc p -> min acc (eccentricity g p))

let is_connected g =
  let dist = bfs_distances g 0 in
  Array.for_all (fun d -> d <> max_int) dist

let is_tree g = is_connected g && Graph.m g = Graph.n g - 1

let all_pairs_distances g = Array.init (Graph.n g) (fun p -> bfs_distances g p)
