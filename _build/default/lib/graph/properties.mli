(** Structural graph properties: distances, diameter, connectivity.

    These are the reference quantities the experiments plot against
    (the paper's bounds are in terms of the diameter [D] and [n]). *)

val bfs_distances : Graph.t -> int -> int array
(** [bfs_distances g src] maps every node to its hop distance from
    [src]; unreachable nodes get [max_int]. *)

val distance : Graph.t -> int -> int -> int
(** [distance g p q] is the hop distance; [max_int] when disconnected. *)

val eccentricity : Graph.t -> int -> int
(** [eccentricity g p] is the maximum finite distance from [p].
    @raise Invalid_argument if [g] is disconnected. *)

val diameter : Graph.t -> int
(** Maximum eccentricity.
    @raise Invalid_argument if [g] is disconnected. *)

val radius : Graph.t -> int
(** Minimum eccentricity.
    @raise Invalid_argument if [g] is disconnected. *)

val is_connected : Graph.t -> bool
(** Whether every node is reachable from node [0]. *)

val is_tree : Graph.t -> bool
(** Connected with [m = n - 1]. *)

val all_pairs_distances : Graph.t -> int array array
(** [all_pairs_distances g] is the full distance matrix (one BFS per
    node). *)
