lib/msgnet/msgnet.ml: Array Format Hashtbl Int64 Queue Ss_core Ss_energy Ss_graph Ss_prelude Ss_sim Ss_sync
