lib/msgnet/msgnet.mli: Ss_core Ss_prelude Ss_sim
