module Graph = Ss_graph.Graph
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Sync_algo = Ss_sync.Sync_algo
module St = Ss_core.Trans_state
module Transformer = Ss_core.Transformer
module Energy = Ss_energy.Energy
module Rng = Ss_prelude.Rng

type encoding = Full_state | Delta

type 's delta = D_rr | D_rp of int | D_rc | D_ru of 's

type 's message =
  | Update_full of 's St.t
  | Update_delta of 's delta
  | Proof of int64 * int64  (* hash, nonce *)
  | Request
  | Full_copy of 's St.t

type stats = {
  deliveries : int;
  rule_executions : int;
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;
  quiescent : bool;
}

let total_bits s =
  s.update_bits + s.proof_bits + s.full_copy_bits + (s.request_messages * 2)

type 's counters = {
  mutable deliveries : int;
  mutable rule_executions : int;
  mutable update_messages : int;
  mutable update_bits : int;
  mutable proof_messages : int;
  mutable proof_bits_total : int;
  mutable request_messages : int;
  mutable full_copy_messages : int;
  mutable full_copy_bits : int;
  mutable proof_waves : int;
  mutable requests_in_wave : int;
}

let fresh_counters () =
  {
    deliveries = 0;
    rule_executions = 0;
    update_messages = 0;
    update_bits = 0;
    proof_messages = 0;
    proof_bits_total = 0;
    request_messages = 0;
    full_copy_messages = 0;
    full_copy_bits = 0;
    proof_waves = 0;
    requests_in_wave = 0;
  }

let delta_of_move rule_name new_state =
  if rule_name = Transformer.rr then D_rr
  else if rule_name = Transformer.rp then D_rp (St.height new_state)
  else if rule_name = Transformer.rc then D_rc
  else D_ru (St.top new_state)

let apply_delta mirror = function
  | D_rr -> { mirror with St.status = St.E; cells = [||] }
  | D_rp i ->
      (* A corrupted mirror may be shorter than the sender's list; a
         total best-effort truncation keeps the protocol running until
         a proof exchange repairs the copy. *)
      St.with_status (St.truncate mirror (min i (St.height mirror))) St.E
  | D_rc -> St.with_status mirror St.C
  | D_ru s -> St.extend mirror s

let delta_message_bits params new_state = function
  | D_rr | D_rc -> 2
  | D_rp _ -> 2 + Energy.height_bits params.Transformer.bound
  | D_ru _ ->
      2 + params.Transformer.sync.Sync_algo.state_bits (St.top new_state)

let run ?(encoding = Delta) ?(max_events = 2_000_000) ?(proof_bits = 128)
    ?(heartbeat_every = 400) ~rng ?(corrupt_mirrors = true) params config =
  let g = config.Config.graph in
  let n = Config.n config in
  let sync = params.Transformer.sync in
  let algo = Transformer.algorithm params in
  let states = Array.copy config.Config.states in
  let serialize st = Format.asprintf "%a" (St.pp sync.Sync_algo.pp_state) st in

  (* Mirrors: mirrors.(v).(k) is v's belief about its port-k neighbor. *)
  let mirrors =
    Array.init n (fun v ->
        Array.map
          (fun u ->
            if corrupt_mirrors then
              Transformer.corrupt_state rng
                ~max_height:(St.height states.(u) + 4)
                params (Config.input config u) states.(u)
            else states.(u))
          (Graph.neighbors g v))
  in

  (* Directed FIFO channels. *)
  let channels = Hashtbl.create (4 * Graph.m g) in
  Graph.iter_nodes g (fun u ->
      Array.iter
        (fun v -> Hashtbl.replace channels (u, v) (Queue.create ()))
        (Graph.neighbors g u));
  let send u v msg = Queue.push msg (Hashtbl.find channels (u, v)) in
  let nonempty_channels () =
    Hashtbl.fold
      (fun key q acc -> if Queue.is_empty q then acc else key :: acc)
      channels []
  in

  let c = fresh_counters () in

  let broadcast_move v new_state rule_name =
    Array.iter
      (fun u ->
        c.update_messages <- c.update_messages + 1;
        (match encoding with
        | Full_state ->
            c.update_bits <-
              c.update_bits + Energy.full_state_bits sync new_state;
            send v u (Update_full new_state)
        | Delta ->
            let d = delta_of_move rule_name new_state in
            c.update_bits <- c.update_bits + delta_message_bits params new_state d;
            send v u (Update_delta d)))
      (Graph.neighbors g v)
  in

  (* Local step: act on own state + mirrors until no rule is enabled
     (bounded for safety against pathological mirror contents). *)
  let act v =
    let budget = ref (Ss_core.Predicates.bound_to_int params.Transformer.bound) in
    if !budget > 1_000_000 then budget := St.height states.(v) + n + 8;
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      let view =
        {
          Algorithm.input = Config.input config v;
          self = states.(v);
          neighbors = mirrors.(v);
        }
      in
      match Algorithm.enabled_rule algo view with
      | None -> continue := false
      | Some rule ->
          let new_state = rule.Algorithm.action view in
          states.(v) <- new_state;
          c.rule_executions <- c.rule_executions + 1;
          broadcast_move v new_state rule.Algorithm.rule_name
    done
  in

  let deliver u v =
    let q = Hashtbl.find channels (u, v) in
    let msg = Queue.pop q in
    c.deliveries <- c.deliveries + 1;
    let port = Graph.port_of g v u in
    match msg with
    | Update_full s ->
        mirrors.(v).(port) <- s;
        act v
    | Update_delta d ->
        mirrors.(v).(port) <- apply_delta mirrors.(v).(port) d;
        act v
    | Proof (h, nonce) ->
        if Energy.state_proof ~nonce (serialize mirrors.(v).(port)) <> h then begin
          c.request_messages <- c.request_messages + 1;
          c.requests_in_wave <- c.requests_in_wave + 1;
          send v u Request
        end
    | Request ->
        c.full_copy_messages <- c.full_copy_messages + 1;
        c.full_copy_bits <-
          c.full_copy_bits + Energy.full_state_bits sync states.(v);
        send v u (Full_copy states.(v))
    | Full_copy s ->
        mirrors.(v).(port) <- s;
        act v
  in

  let enabled_on_mirrors () =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      let view =
        {
          Algorithm.input = Config.input config v;
          self = states.(v);
          neighbors = mirrors.(v);
        }
      in
      if Algorithm.is_enabled algo view then acc := v :: !acc
    done;
    !acc
  in

  let nonce = ref 0L in
  let proof_wave () =
    nonce := Int64.add !nonce 1L;
    c.proof_waves <- c.proof_waves + 1;
    c.requests_in_wave <- 0;
    Graph.iter_nodes g (fun v ->
        let h = Energy.state_proof ~nonce:!nonce (serialize states.(v)) in
        Array.iter
          (fun u ->
            c.proof_messages <- c.proof_messages + 1;
            c.proof_bits_total <- c.proof_bits_total + proof_bits;
            send v u (Proof (h, !nonce)))
          (Graph.neighbors g v))
  in

  let rec loop events =
    if events >= max_events then false
    else begin
      (* Periodic heartbeat: without it, delta updates applied to a
         corrupted mirror would keep it wrong forever and the system
         could churn indefinitely (§6's proofs are timer-driven, not
         quiescence-driven). *)
      if events > 0 && events mod heartbeat_every = 0 then proof_wave ();
      match nonempty_channels () with
      | _ :: _ as links ->
          let u, v = Rng.pick_list rng links in
          deliver u v;
          loop (events + 1)
      | [] -> (
          match enabled_on_mirrors () with
          | _ :: _ as nodes ->
              act (Rng.pick_list rng nodes);
              loop (events + 1)
          | [] ->
              (* Local quiescence.  If the last completed wave verified
                 every mirror (no request), the states are terminal for
                 the atomic-state transformer; otherwise heartbeat. *)
              if c.proof_waves > 0 && c.requests_in_wave = 0 then true
              else begin
                proof_wave ();
                loop (events + 1)
              end)
    end
  in
  let quiescent = loop 0 in
  let stats =
    {
      deliveries = c.deliveries;
      rule_executions = c.rule_executions;
      update_messages = c.update_messages;
      update_bits = c.update_bits;
      proof_messages = c.proof_messages;
      proof_bits = c.proof_bits_total;
      request_messages = c.request_messages;
      full_copy_messages = c.full_copy_messages;
      full_copy_bits = c.full_copy_bits;
      proof_waves = c.proof_waves;
      quiescent;
    }
  in
  (Config.with_states config states, stats)
