(** A message-passing realization of the transformer — §6 made
    executable.

    The atomic-state model assumes a node reads its neighbors' states
    directly.  §6 sketches how to implement this over asynchronous
    message passing: every node keeps a {e mirror} (last known copy)
    of each neighbor's state; a node that moves sends each neighbor an
    update — either its whole state ([O(B·S)] bits) or a {e delta}
    ([O(S + log B)] bits: the rule label plus its payload); and nodes
    periodically exchange {e proofs} (a salted hash plus its nonce) so
    that mirrors corrupted by transient faults are detected and
    repaired via an explicit full-copy request.

    This module is an event-driven simulator of that protocol:

    - per-directed-link FIFO channels with adversarial (random)
      delivery interleaving;
    - guard evaluation over the node's own state and its mirrors —
      which may be stale or even corrupted; wrong moves taken on stale
      information are later corrected by the transformer's own error
      mechanism, which is exactly why self-stabilization makes the
      implementation simple;
    - quiescence detection: when no message is in flight and no node
      is enabled on its mirrors, a proof wave runs; the execution ends
      when a wave triggers no repair (all mirrors verified accurate),
      at which point the true states form a terminal configuration of
      the atomic-state transformer.

    Faults can hit both the node states and the mirrors
    independently. *)

type encoding =
  | Full_state  (** Every update carries the whole state. *)
  | Delta  (** Updates carry rule label + payload (§6). *)

type stats = {
  deliveries : int;  (** Total messages delivered. *)
  rule_executions : int;  (** Moves taken by nodes (on possibly stale views). *)
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;  (** Quiescence-triggered heartbeat waves. *)
  quiescent : bool;  (** Reached verified quiescence within the budget. *)
}

val total_bits : stats -> int
(** All traffic: updates + proofs + requests + full copies. *)

val run :
  ?encoding:encoding ->
  ?max_events:int ->
  ?proof_bits:int ->
  ?heartbeat_every:int ->
  rng:Ss_prelude.Rng.t ->
  ?corrupt_mirrors:bool ->
  ('s, 'i) Ss_core.Transformer.params ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t * stats
(** [run ~rng params config] executes the protocol from the given
    (possibly corrupted) true states.  With [corrupt_mirrors] (default
    [true]) the initial mirrors are independently scrambled, modelling
    faults that also hit the cached copies.  A proof wave fires every
    [heartbeat_every] events (default 400) — the timer-driven §6
    heartbeat; without it, delta updates applied to a corrupted mirror
    would never be repaired and the system could churn forever — and
    additionally whenever the system looks locally quiescent.
    Defaults: [encoding = Delta], [max_events = 2_000_000],
    [proof_bits = 128] (hash + nonce).  Returns the final true states
    and the traffic/work accounting. *)
