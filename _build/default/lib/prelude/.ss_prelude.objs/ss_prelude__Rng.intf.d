lib/prelude/rng.mli:
