lib/prelude/table.ml: Array Format List String
