lib/prelude/util.ml: Array Char Int64 List String
