lib/prelude/util.mli:
