type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }
let add_row t cells = t.rows <- cells :: t.rows
let add_int_row t label xs = add_row t (label :: List.map string_of_int xs)

let widths t =
  let all = t.headers :: List.rev t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) row
  in
  List.iter feed all;
  w

let pad s n = s ^ String.make (max 0 (n - String.length s)) ' '

let render ppf t =
  let w = widths t in
  let line row =
    let cells =
      List.mapi (fun i c -> pad c w.(i)) row
      @ List.init
          (Array.length w - List.length row)
          (fun j -> pad "" w.(List.length row + j))
    in
    String.concat "  " cells
  in
  Format.fprintf ppf "%s@." (line t.headers);
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  Format.fprintf ppf "%s@." rule;
  List.iter (fun r -> Format.fprintf ppf "%s@." (line r)) (List.rev t.rows)

let print t =
  render Format.std_formatter t;
  Format.pp_print_newline Format.std_formatter ()
