(** Plain-text table rendering for experiment reports.

    The benchmark harness prints one table per paper artefact; this
    module renders aligned, boxed ASCII tables on any formatter. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a data row.  Rows shorter than the header
    are padded with empty cells; longer rows extend the table width. *)

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label xs] appends [label] followed by the decimal
    renderings of [xs]. *)

val render : Format.formatter -> t -> unit
(** Pretty-print the table with aligned columns and a separator line
    under the header. *)

val print : t -> unit
(** [print t] renders [t] on [Format.std_formatter] followed by a
    newline flush. *)
