let ceil_log2 n =
  if n < 1 then invalid_arg "Util.ceil_log2";
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let bit_width n =
  if n < 0 then invalid_arg "Util.bit_width";
  let rec go k p = if n < p then k else go (k + 1) (p * 2) in
  go 1 2

let log_star n =
  let rec go k m = if m <= 1 then k else go (k + 1) (ceil_log2 m) in
  go 0 n

let sum = List.fold_left ( + ) 0

let max_of = function
  | [] -> invalid_arg "Util.max_of: empty list"
  | x :: rest -> List.fold_left max x rest

let min_of = function
  | [] -> invalid_arg "Util.min_of: empty list"
  | x :: rest -> List.fold_left min x rest

let range n = List.init n (fun i -> i)

let array_for_all2 f a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (f a.(i) b.(i) && go (i + 1)) in
  go 0

let array_equal eq a b = array_for_all2 eq a b

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h
