(** Small numeric and list helpers shared across the repository. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the least [k] with [2^k >= n], for [n >= 1].
    [ceil_log2 1 = 0].
    @raise Invalid_argument if [n < 1]. *)

val bit_width : int -> int
(** [bit_width n] is the number of bits needed to write [n] in binary:
    [1] for [0] and [1], [2] for [2] and [3], etc.
    @raise Invalid_argument if [n < 0]. *)

val log_star : int -> int
(** [log_star n] is the iterated-logarithm of [n] (base 2): the number
    of times [ceil_log2] must be applied to reach a value [<= 1].
    [log_star 1 = 0], [log_star 2 = 1], [log_star 4 = 2],
    [log_star 16 = 3], [log_star 65536 = 4]. *)

val sum : int list -> int
(** Sum of an integer list. *)

val max_of : int list -> int
(** Maximum of a non-empty integer list.
    @raise Invalid_argument on the empty list. *)

val min_of : int list -> int
(** Minimum of a non-empty integer list.
    @raise Invalid_argument on the empty list. *)

val range : int -> int list
(** [range n] is [[0; 1; ...; n-1]]. *)

val array_for_all2 : ('a -> 'b -> bool) -> 'a array -> 'b array -> bool
(** Pointwise conjunction over two arrays of equal length; [false] when
    lengths differ. *)

val array_equal : ('a -> 'a -> bool) -> 'a array -> 'a array -> bool
(** Structural array equality with a custom element equality. *)

val fnv1a64 : string -> int64
(** [fnv1a64 s] is the 64-bit FNV-1a hash of [s].  Used by the §6
    energy model to stand in for the "hash of the state salted with a
    nonce". *)
