lib/rollback/blowup.ml: Array List Rollback Ss_algos Ss_graph Ss_sim
