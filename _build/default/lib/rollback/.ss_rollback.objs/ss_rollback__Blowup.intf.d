lib/rollback/blowup.mli: Rollback Ss_sim
