lib/rollback/rollback.ml: Array Format Printf Ss_prelude Ss_sim Ss_sync
