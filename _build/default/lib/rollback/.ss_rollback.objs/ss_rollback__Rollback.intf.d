lib/rollback/rollback.mli: Ss_graph Ss_prelude Ss_sim Ss_sync
