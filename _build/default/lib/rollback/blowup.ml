module Gk = Ss_graph.Gk
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Min_flood = Ss_algos.Min_flood

let bound_for k = (3 * k) + 2

let initial_config ~k =
  let g = Gk.make k in
  let bound = bound_for k in
  let index = Array.init (Ss_graph.Graph.n g) (fun v -> Gk.fig1_index ~k v) in
  Rollback.config_of_cells g
    ~inputs:(fun _ -> 1)
    ~init:(fun _ -> 1)
    ~cells:(fun p i -> if i < index.(p) then 1 else 0)
    ~bound

let rec gamma_parts k =
  if k = 1 then [ Gk.node ~k:1 Gk.A 1 ]
  else begin
    let i = k - 1 in
    let prev = gamma_parts i in
    let bottom = Gk.bottom_path ~k:i i in
    let a_nodes = List.init i (fun j -> Gk.node ~k:i Gk.A (j + 1)) in
    prev
    @ [ Gk.node ~k Gk.B k ]
    @ bottom @ a_nodes
    @ [ Gk.node ~k Gk.A k; Gk.node ~k Gk.B k ]
    @ bottom @ prev
  end

let gamma k =
  if k < 1 then invalid_arg "Blowup.gamma";
  gamma_parts k

let gamma_length k =
  let rec go i acc = if i >= k then acc else go (i + 1) ((2 * acc) + (7 * i) + 3) in
  go 1 1

type result = {
  k : int;
  n : int;
  schedule_moves : int;
  total_moves : int;
  total_rounds : int;
  stabilized : bool;
}

let run ~k ?(max_steps = 50_000_000) () =
  let config = initial_config ~k in
  let algo = Rollback.algorithm Min_flood.algo ~bound:(bound_for k) in
  let schedule = List.map (fun p -> [ p ]) (gamma k) in
  let schedule_moves = List.length schedule in
  let daemon = Daemon.scripted ~fallback:Daemon.synchronous schedule in
  let stats = Engine.run ~max_steps algo daemon config in
  let all_ones =
    Array.for_all
      (fun st -> Array.for_all (fun c -> c = 1) st.Rollback.cells)
      stats.Engine.final.Config.states
  in
  {
    k;
    n = 5 * k;
    schedule_moves;
    total_moves = stats.Engine.moves;
    total_rounds = stats.Engine.rounds;
    stabilized = stats.Engine.terminated && all_ones;
  }
