(** The §7 exponential-move witness for the rollback compiler.

    The input algorithm is {!Ss_algos.Min_flood} with every input set
    to 1; the topology is {!Ss_graph.Gk} and the initial configuration
    is Figure 1's: node [p] holds the list [ī(p)] (ones strictly below
    position [i(p)], zeroes after), where [i(p) = d(p, c_k)] for
    [a]-nodes and [d(p, c_k) + 1] otherwise.

    The recursive schedule [Γ_k] activates one node per step:
    [Γ_1 = a1] and

    [Γ_{i+1} = Γ_i · b_{i+1} · bottom(G_i) · a_1 … a_i ·
               a_{i+1} · b_{i+1} · bottom(G_i) · Γ_i]

    Its net effect is to raise every [a]-node's index by one, and
    [|Γ_{i+1}| > 2 |Γ_i|], so the rollback compiler executes
    exponentially many moves before stabilizing.  Every activation is
    validated by the engine: the schedule is a real execution, not an
    estimate. *)

val bound_for : int -> int
(** A sufficient rollback list length [B] for [G_k]'s Figure 1
    configuration ([3k + 2]). *)

val initial_config :
  k:int -> (int Rollback.state, int) Ss_sim.Config.t
(** Figure 1's initial configuration on [G_k] (with [B = bound_for k]). *)

val gamma : int -> int list
(** [gamma k] is the schedule [Γ_k] as single-node activations. *)

val gamma_length : int -> int
(** Closed recursion [|Γ_1| = 1], [|Γ_{i+1}| = 2|Γ_i| + 7i + 3] —
    checked against [List.length (gamma k)] in the tests. *)

type result = {
  k : int;
  n : int;  (** [5k]. *)
  schedule_moves : int;  (** Moves during [Γ_k] (= its length). *)
  total_moves : int;  (** Moves until the rollback stabilizes. *)
  total_rounds : int;
  stabilized : bool;  (** Reached the all-ones legitimate lists. *)
}

val run : k:int -> ?max_steps:int -> unit -> result
(** Execute [Γ_k] (validated activation by activation), then finish
    the execution under the synchronous daemon and check the terminal
    lists are correct.
    @raise Ss_sim.Engine.Invalid_selection if the schedule is not a
    legal execution (this would falsify the reproduction). *)
