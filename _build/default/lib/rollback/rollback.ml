module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module Util = Ss_prelude.Util
module Rng = Ss_prelude.Rng

type 's state = { init : 's; cells : 's array }

let height st = Array.length st.cells

let cell st i =
  if i = 0 then st.init
  else if i >= 1 && i <= height st then st.cells.(i - 1)
  else invalid_arg "Rollback.cell"

let equal eq a b = eq a.init b.init && Util.array_equal eq a.cells b.cells
let fix = "FIX"

let recompute sync (v : ('s state, 'i) Algorithm.view) =
  let self = v.Algorithm.self in
  let b = height self in
  let cells =
    Array.init b (fun idx ->
        let i = idx + 1 in
        sync.Sync_algo.step v.Algorithm.input
          (cell self (i - 1))
          (Array.map (fun nb -> cell nb (i - 1)) v.Algorithm.neighbors))
  in
  { self with cells }

let algorithm sync ~bound =
  if bound < 1 then invalid_arg "Rollback.algorithm: bound must be >= 1";
  let eq = equal sync.Sync_algo.equal in
  {
    Algorithm.algo_name =
      Printf.sprintf "rollback(%s,B=%d)" sync.Sync_algo.sync_name bound;
    equal = eq;
    rules =
      [
        {
          Algorithm.rule_name = fix;
          guard = (fun v -> not (eq v.Algorithm.self (recompute sync v)));
          action = (fun v -> recompute sync v);
        };
      ];
    pp_state =
      (fun ppf st ->
        Format.fprintf ppf "[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
             sync.Sync_algo.pp_state)
          (Array.to_list st.cells));
  }

let clean_config sync ~bound g ~inputs =
  Config.make g ~inputs ~states:(fun p ->
      let init = sync.Sync_algo.init (inputs p) in
      { init; cells = Array.make bound init })

let config_of_cells g ~inputs ~init ~cells ~bound =
  Config.make g ~inputs ~states:(fun p ->
      { init = init p; cells = Array.init bound (fun idx -> cells p (idx + 1)) })

let corrupt rng ?(p = 1.0) sync config =
  let states =
    Array.mapi
      (fun node st ->
        if Rng.chance rng p then
          {
            st with
            cells =
              Array.map
                (fun c ->
                  if Rng.bool rng then
                    sync.Sync_algo.random_state rng (Config.input config node)
                  else c)
                st.cells;
          }
        else st)
      config.Config.states
  in
  Config.with_states config states

let simulates_history sync history config =
  let eq = sync.Sync_algo.equal in
  let ok p =
    let st = Config.state config p in
    eq st.init (Sync_runner.state_at history ~round:0 ~node:p)
    &&
    let rec go i =
      i > height st
      || (eq (cell st i) (Sync_runner.state_at history ~round:i ~node:p)
         && go (i + 1))
    in
    go 1
  in
  let rec go p = p >= Config.n config || (ok p && go (p + 1)) in
  go 0
