lib/sim/algorithm.ml: Format List
