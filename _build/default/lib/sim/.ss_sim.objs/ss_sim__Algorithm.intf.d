lib/sim/algorithm.mli: Format
