lib/sim/config.ml: Algorithm Array Format Ss_graph Ss_prelude
