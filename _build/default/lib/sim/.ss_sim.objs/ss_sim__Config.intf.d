lib/sim/config.mli: Algorithm Format Ss_graph
