lib/sim/daemon.ml: List Printf Ss_prelude
