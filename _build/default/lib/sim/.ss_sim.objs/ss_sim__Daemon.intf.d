lib/sim/daemon.mli: Ss_prelude
