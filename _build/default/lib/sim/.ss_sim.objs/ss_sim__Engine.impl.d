lib/sim/engine.ml: Algorithm Array Config Daemon Hashtbl List Option Printf Rounds
