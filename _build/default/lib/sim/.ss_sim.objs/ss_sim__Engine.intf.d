lib/sim/engine.mli: Algorithm Config Daemon
