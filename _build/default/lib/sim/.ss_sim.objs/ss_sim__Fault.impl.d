lib/sim/fault.ml: Array Config List Ss_prelude
