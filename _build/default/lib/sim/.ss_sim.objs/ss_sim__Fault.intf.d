lib/sim/fault.mli: Config Ss_prelude
