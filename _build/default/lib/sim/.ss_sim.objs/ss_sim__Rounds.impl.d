lib/sim/rounds.ml: Int List Set
