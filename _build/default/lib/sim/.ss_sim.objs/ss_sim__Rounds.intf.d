lib/sim/rounds.mli:
