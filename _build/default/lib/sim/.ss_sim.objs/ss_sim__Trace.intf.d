lib/sim/trace.mli: Config Engine Format
