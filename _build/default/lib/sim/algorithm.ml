type ('s, 'i) view = { input : 'i; self : 's; neighbors : 's array }

type ('s, 'i) rule = {
  rule_name : string;
  guard : ('s, 'i) view -> bool;
  action : ('s, 'i) view -> 's;
}

type ('s, 'i) t = {
  algo_name : string;
  equal : 's -> 's -> bool;
  rules : ('s, 'i) rule list;
  pp_state : Format.formatter -> 's -> unit;
}

let enabled_rule algo view = List.find_opt (fun r -> r.guard view) algo.rules
let is_enabled algo view = List.exists (fun r -> r.guard view) algo.rules
let rule_names algo = List.map (fun r -> r.rule_name) algo.rules

let map_input f algo =
  let adapt_view v = { v with input = f v.input } in
  {
    algo with
    rules =
      List.map
        (fun r ->
          {
            r with
            guard = (fun v -> r.guard (adapt_view v));
            action = (fun v -> r.action (adapt_view v));
          })
        algo.rules;
  }
