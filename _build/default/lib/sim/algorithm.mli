(** Distributed algorithms in the atomic-state model (paper §2.2).

    An algorithm is a finite list of prioritized guarded rules
    [label : guard -> action].  A node evaluates guards over its
    {!view}: its read-only input, its own state, and the states of its
    neighbors presented in port order.  Algorithms written for the
    weak model of §2.2 must use the neighbor array as a multiset
    (never index it by port); algorithms for stronger models (§3.3)
    may read ids from inputs and index by port.

    When several rules of a node are enabled simultaneously the node
    executes the first enabled rule in the list (highest priority),
    matching the priority convention of §3.1. *)

type ('s, 'i) view = {
  input : 'i;  (** The node's read-only input (ids, ports, flags…). *)
  self : 's;  (** The node's current state. *)
  neighbors : 's array;  (** Neighbor states, in port order. *)
}

type ('s, 'i) rule = {
  rule_name : string;  (** Label, e.g. ["RR"]; used in traces/metrics. *)
  guard : ('s, 'i) view -> bool;  (** Enabling predicate. *)
  action : ('s, 'i) view -> 's;  (** New state when executed. *)
}

type ('s, 'i) t = {
  algo_name : string;
  equal : 's -> 's -> bool;  (** State equality (for silence checks). *)
  rules : ('s, 'i) rule list;  (** In decreasing priority. *)
  pp_state : Format.formatter -> 's -> unit;
}

val enabled_rule : ('s, 'i) t -> ('s, 'i) view -> ('s, 'i) rule option
(** Highest-priority enabled rule of the node, if any. *)

val is_enabled : ('s, 'i) t -> ('s, 'i) view -> bool
(** Whether at least one rule is enabled. *)

val rule_names : ('s, 'i) t -> string list
(** Rule labels in priority order. *)

val map_input : ('j -> 'i) -> ('s, 'i) t -> ('s, 'j) t
(** [map_input f algo] adapts [algo] to a richer input type. *)
