(** System configurations: a topology, per-node read-only inputs, and
    per-node states (paper §2.2). *)

type ('s, 'i) t = {
  graph : Ss_graph.Graph.t;
  inputs : 'i array;  (** Read-only; never touched by steps or faults. *)
  states : 's array;  (** One state per node. *)
}

val make : Ss_graph.Graph.t -> inputs:(int -> 'i) -> states:(int -> 's) -> ('s, 'i) t
(** [make g ~inputs ~states] builds a configuration by tabulating the
    two functions over the nodes of [g]. *)

val n : ('s, 'i) t -> int
(** Number of nodes. *)

val state : ('s, 'i) t -> int -> 's
(** [state c p] is [p]'s current state. *)

val input : ('s, 'i) t -> int -> 'i
(** [input c p] is [p]'s read-only input. *)

val view : ('s, 'i) t -> int -> ('s, 'i) Algorithm.view
(** [view c p] is what node [p] observes: its input, its state, and
    its neighbors' states in port order. *)

val with_states : ('s, 'i) t -> 's array -> ('s, 'i) t
(** Functional update of the state vector (the array is used as-is). *)

val set_state : ('s, 'i) t -> int -> 's -> ('s, 'i) t
(** Functional single-node state update. *)

val map_states : ('s -> 's) -> ('s, 'i) t -> ('s, 'i) t
(** Apply a function to every state. *)

val equal : ('s -> 's -> bool) -> ('s, 'i) t -> ('s, 'i) t -> bool
(** Pointwise state equality (inputs and graph assumed shared). *)

val enabled_nodes : ('s, 'i) Algorithm.t -> ('s, 'i) t -> int list
(** Nodes with at least one enabled rule, in increasing order. *)

val is_terminal : ('s, 'i) Algorithm.t -> ('s, 'i) t -> bool
(** No node is enabled (the configuration is terminal / silent). *)

val pp :
  (Format.formatter -> 's -> unit) -> Format.formatter -> ('s, 'i) t -> unit
(** Render all node states, one per line. *)
