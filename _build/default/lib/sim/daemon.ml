module Rng = Ss_prelude.Rng

type t = {
  daemon_name : string;
  select : step:int -> enabled:int list -> int list;
}

let of_fun daemon_name select = { daemon_name; select }
let synchronous = of_fun "synchronous" (fun ~step:_ ~enabled -> enabled)

let central_random rng =
  of_fun "central-random" (fun ~step:_ ~enabled -> [ Rng.pick_list rng enabled ])

let central_min =
  of_fun "central-min" (fun ~step:_ ~enabled ->
      match enabled with [] -> [] | p :: _ -> [ p ])

let central_max =
  of_fun "central-max" (fun ~step:_ ~enabled ->
      match List.rev enabled with [] -> [] | p :: _ -> [ p ])

let distributed_random rng ~p =
  of_fun
    (Printf.sprintf "distributed-random(p=%.2f)" p)
    (fun ~step:_ ~enabled -> Rng.nonempty_subset rng ~p enabled)

let round_robin () =
  let cursor = ref (-1) in
  of_fun "round-robin" (fun ~step:_ ~enabled ->
      let after = List.filter (fun q -> q > !cursor) enabled in
      let chosen = match after with q :: _ -> q | [] -> List.hd enabled in
      cursor := chosen;
      [ chosen ])

let scripted ?(fallback = synchronous) moves =
  let remaining = ref moves in
  of_fun "scripted" (fun ~step ~enabled ->
      match !remaining with
      | [] -> fallback.select ~step ~enabled
      | sel :: rest ->
          remaining := rest;
          sel)
