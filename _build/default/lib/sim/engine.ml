exception Invalid_selection of string

type ('s, 'i) stats = {
  final : ('s, 'i) Config.t;
  steps : int;
  moves : int;
  rounds : int;
  terminated : bool;
  moves_per_node : int array;
  moves_per_rule : (string * int) list;
}

type ('s, 'i) observer =
  step:int -> rounds:int -> moved:(int * string) list -> ('s, 'i) Config.t -> unit

let validate_selection config enabled selected =
  if selected = [] then raise (Invalid_selection "daemon selected no node");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if p < 0 || p >= Config.n config then
        raise (Invalid_selection (Printf.sprintf "node %d out of range" p));
      if Hashtbl.mem seen p then
        raise (Invalid_selection (Printf.sprintf "node %d selected twice" p));
      Hashtbl.add seen p ();
      if not (List.mem p enabled) then
        raise
          (Invalid_selection (Printf.sprintf "node %d selected but not enabled" p)))
    selected

let step algo config selected =
  let enabled = Config.enabled_nodes algo config in
  validate_selection config enabled selected;
  (* All moves read the pre-step configuration: compute every new state
     before writing any. *)
  let moves =
    List.map
      (fun p ->
        let view = Config.view config p in
        match Algorithm.enabled_rule algo view with
        | Some rule -> (p, rule.Algorithm.rule_name, rule.Algorithm.action view)
        | None -> assert false (* validated above *))
      selected
  in
  let states = Array.copy config.Config.states in
  List.iter (fun (p, _, s) -> states.(p) <- s) moves;
  (Config.with_states config states, List.map (fun (p, r, _) -> (p, r)) moves)

let no_observer ~step:_ ~rounds:_ ~moved:_ _ = ()

let run ?(max_steps = 10_000_000) ?(max_moves = max_int)
    ?(observer = no_observer) algo daemon config =
  let n = Config.n config in
  let moves_per_node = Array.make n 0 in
  let rule_counts = Hashtbl.create 8 in
  let bump_rule r =
    Hashtbl.replace rule_counts r (1 + Option.value ~default:0 (Hashtbl.find_opt rule_counts r))
  in
  let rec loop config steps moves tracker =
    let enabled = Config.enabled_nodes algo config in
    if enabled = [] then (config, steps, moves, true)
    else if steps >= max_steps || moves >= max_moves then
      (config, steps, moves, false)
    else begin
      let selected = daemon.Daemon.select ~step:steps ~enabled in
      let config', moved = step algo config selected in
      List.iter
        (fun (p, r) ->
          moves_per_node.(p) <- moves_per_node.(p) + 1;
          bump_rule r)
        moved;
      let enabled_after = Config.enabled_nodes algo config' in
      Rounds.note_step tracker ~moved:(List.map fst moved) ~enabled_after;
      observer ~step:(steps + 1) ~rounds:(Rounds.completed tracker) ~moved
        config';
      loop config' (steps + 1) (moves + List.length moved) tracker
    end
  in
  let tracker = Rounds.create ~enabled:(Config.enabled_nodes algo config) in
  observer ~step:0 ~rounds:0 ~moved:[] config;
  let final, steps, moves, terminated = loop config 0 0 tracker in
  let moves_per_rule =
    List.map
      (fun r -> (r, Option.value ~default:0 (Hashtbl.find_opt rule_counts r)))
      (Algorithm.rule_names algo)
  in
  {
    final;
    steps;
    moves;
    rounds = Rounds.completed tracker;
    terminated;
    moves_per_node;
    moves_per_rule;
  }

let run_synchronous ?max_steps algo config =
  run ?max_steps algo Daemon.synchronous config
