module Rng = Ss_prelude.Rng

type 's mutator = Rng.t -> 's -> 's

let corrupt rng ?(p = 1.0) mutator config =
  let states =
    Array.map
      (fun s -> if Rng.chance rng p then mutator rng s else s)
      config.Config.states
  in
  Config.with_states config states

let corrupt_nodes rng mutator nodes config =
  let states = Array.copy config.Config.states in
  List.iter (fun p -> states.(p) <- mutator rng states.(p)) nodes;
  Config.with_states config states
