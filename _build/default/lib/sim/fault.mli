(** Transient-fault injection.

    Self-stabilization promises recovery from an {e arbitrary} initial
    configuration; we model "after the last transient fault" by
    mutating node states of a configuration.  How a state is corrupted
    is algorithm-specific, so the mutator is a parameter (the
    transformer layer provides one that scrambles statuses, truncates,
    extends and garbles simulation lists while preserving the
    read-only [init] part). *)

type 's mutator = Ss_prelude.Rng.t -> 's -> 's
(** A state corruption: given the current state, produce an arbitrary
    replacement.  It must not touch read-only data (node inputs are
    out of reach by construction). *)

val corrupt :
  Ss_prelude.Rng.t ->
  ?p:float ->
  's mutator ->
  ('s, 'i) Config.t ->
  ('s, 'i) Config.t
(** [corrupt rng ~p mutator config] applies [mutator] to each node's
    state independently with probability [p] (default [1.0], i.e. a
    fully arbitrary configuration). *)

val corrupt_nodes :
  Ss_prelude.Rng.t -> 's mutator -> int list -> ('s, 'i) Config.t -> ('s, 'i) Config.t
(** Corrupt exactly the listed nodes. *)
