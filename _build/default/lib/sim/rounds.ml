module Int_set = Set.Make (Int)

type t = { mutable pending : Int_set.t; mutable completed : int }

let create ~enabled = { pending = Int_set.of_list enabled; completed = 0 }

let note_step t ~moved ~enabled_after =
  if not (Int_set.is_empty t.pending) then begin
    let enabled_set = Int_set.of_list enabled_after in
    let discharged p = List.mem p moved || not (Int_set.mem p enabled_set) in
    t.pending <- Int_set.filter (fun p -> not (discharged p)) t.pending;
    if Int_set.is_empty t.pending then begin
      t.completed <- t.completed + 1;
      t.pending <- enabled_set
    end
  end

let completed t = t.completed
let pending t = Int_set.elements t.pending
