type event = {
  ev_step : int;
  ev_rounds : int;
  ev_moved : (int * string) list;
}

let make () =
  let acc = ref [] in
  let observer ~step ~rounds ~moved _config =
    if step > 0 then
      acc := { ev_step = step; ev_rounds = rounds; ev_moved = moved } :: !acc
  in
  (observer, fun () -> List.rev !acc)

let with_configs () =
  let acc = ref [] in
  let observer ~step ~rounds ~moved config =
    acc :=
      ({ ev_step = step; ev_rounds = rounds; ev_moved = moved }, config) :: !acc
  in
  (observer, fun () -> List.rev !acc)

let moves_of events =
  List.fold_left (fun n e -> n + List.length e.ev_moved) 0 events

let to_csv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "step,rounds,node,rule\n";
  List.iter
    (fun e ->
      List.iter
        (fun (node, rule) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%d,%s\n" e.ev_step e.ev_rounds node rule))
        e.ev_moved)
    events;
  Buffer.contents buf

let to_schedule events =
  List.filter_map
    (fun e ->
      match e.ev_moved with [] -> None | moved -> Some (List.map fst moved))
    events

let pp_event ppf e =
  Format.fprintf ppf "step %d (%d rounds):" e.ev_step e.ev_rounds;
  List.iter (fun (node, rule) -> Format.fprintf ppf " %d:%s" node rule) e.ev_moved

