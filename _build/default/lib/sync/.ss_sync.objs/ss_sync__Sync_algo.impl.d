lib/sync/sync_algo.ml: Format Ss_prelude
