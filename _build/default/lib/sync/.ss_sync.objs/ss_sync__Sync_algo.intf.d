lib/sync/sync_algo.mli: Format Ss_prelude
