lib/sync/sync_runner.ml: Array List Printf Ss_graph Ss_prelude Sync_algo
