lib/sync/sync_runner.mli: Ss_graph Sync_algo
