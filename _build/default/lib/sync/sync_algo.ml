type ('s, 'i) t = {
  sync_name : string;
  equal : 's -> 's -> bool;
  init : 'i -> 's;
  step : 'i -> 's -> 's array -> 's;
  random_state : Ss_prelude.Rng.t -> 'i -> 's;
  state_bits : 's -> int;
  pp_state : Format.formatter -> 's -> unit;
}

let apply algo input self neighbors = algo.step input self neighbors
