module Graph = Ss_graph.Graph

type ('s, 'i) history = {
  graph : Graph.t;
  inputs : 'i array;
  states_by_round : 's array array;
  t : int;
}

exception Did_not_terminate of string

let sync_step algo inputs g states =
  Array.mapi
    (fun p self ->
      let neighbors = Array.map (fun q -> states.(q)) (Graph.neighbors g p) in
      algo.Sync_algo.step inputs.(p) self neighbors)
    states

let run ?max_rounds algo g ~inputs =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 64
  in
  let inputs = Array.init n inputs in
  let row0 = Array.init n (fun p -> algo.Sync_algo.init inputs.(p)) in
  let rec go rows current round =
    if round > max_rounds then
      raise
        (Did_not_terminate
           (Printf.sprintf "%s did not reach a fixpoint within %d rounds"
              algo.Sync_algo.sync_name max_rounds));
    let next = sync_step algo inputs g current in
    if Ss_prelude.Util.array_equal algo.Sync_algo.equal current next then
      (List.rev rows, round)
    else go (next :: rows) next (round + 1)
  in
  let rows, t = go [ row0 ] row0 0 in
  { graph = g; inputs; states_by_round = Array.of_list rows; t }

let state_at h ~round ~node =
  let r = min round h.t in
  h.states_by_round.(r).(node)

let final h = h.states_by_round.(h.t)
let execution_time h = h.t

let max_state_bits algo h =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc s -> max acc (algo.Sync_algo.state_bits s)) acc row)
    0 h.states_by_round
