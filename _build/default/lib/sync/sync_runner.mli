(** Reference executor for synchronous algorithms.

    Runs an algorithm from its controlled initial configuration under
    the synchronous daemon and records the whole history
    [st_p^0, st_p^1, …, st_p^T] — the ground truth the transformer's
    lists must converge to (paper §3: ultimately
    [p.L\[i\] = st_p^i]). *)

type ('s, 'i) history = {
  graph : Ss_graph.Graph.t;
  inputs : 'i array;
  states_by_round : 's array array;
      (** [states_by_round.(i).(p)] is [st_p^i]; row [0] is the initial
          configuration, row [t] the fixpoint. *)
  t : int;  (** Execution time [T]: first round index with no change. *)
}

exception Did_not_terminate of string
(** Raised when no fixpoint is reached within the round budget. *)

val run :
  ?max_rounds:int ->
  ('s, 'i) Sync_algo.t ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s, 'i) history
(** [run algo g ~inputs] executes until the global fixpoint (default
    budget: [4 * n + 64] rounds — ample for all the algorithms here,
    whose [T] is at most [n]).
    @raise Did_not_terminate when the budget is exhausted. *)

val state_at : ('s, 'i) history -> round:int -> node:int -> 's
(** [state_at h ~round ~node] is [st_node^round], with rounds beyond
    [T] clamped to the fixpoint (the paper's "the last rounds do
    nothing"). *)

val final : ('s, 'i) history -> 's array
(** The fixpoint row. *)

val execution_time : ('s, 'i) history -> int
(** [T]. *)

val max_state_bits : ('s, 'i) Sync_algo.t -> ('s, 'i) history -> int
(** Largest [state_bits] over all rounds and nodes — the measured [S]. *)
