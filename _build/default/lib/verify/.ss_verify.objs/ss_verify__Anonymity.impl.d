lib/verify/anonymity.ml: Array Ss_prelude Ss_sim Ss_sync
