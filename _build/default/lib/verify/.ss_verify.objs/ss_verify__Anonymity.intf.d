lib/verify/anonymity.mli: Ss_prelude Ss_sim Ss_sync
