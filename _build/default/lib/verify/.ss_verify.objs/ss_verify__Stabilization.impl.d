lib/verify/stabilization.ml: List Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync
