lib/verify/stabilization.mli: Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync
