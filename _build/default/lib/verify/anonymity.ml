module Algorithm = Ss_sim.Algorithm
module Sync_algo = Ss_sync.Sync_algo
module Rng = Ss_prelude.Rng

let random_neighbors rng gen_state max_degree =
  Array.init (Rng.int rng (max_degree + 1)) (fun _ -> gen_state rng)

let shuffled rng a =
  let b = Array.copy a in
  Rng.shuffle rng b;
  b

let sync_step_port_invariant ~rng ~trials algo ~gen_input ~gen_state ~max_degree =
  let rec go t =
    t >= trials
    ||
    let input = gen_input rng in
    let self = gen_state rng in
    let nbrs = random_neighbors rng gen_state max_degree in
    let a = algo.Sync_algo.step input self nbrs in
    let b = algo.Sync_algo.step input self (shuffled rng nbrs) in
    algo.Sync_algo.equal a b && go (t + 1)
  in
  go 0

let sync_step_multiset_invariant ~rng ~trials algo ~gen_input ~gen_state
    ~max_degree =
  let rec go t =
    t >= trials
    ||
    let input = gen_input rng in
    let self = gen_state rng in
    let nbrs = random_neighbors rng gen_state max_degree in
    if Array.length nbrs = 0 then go (t + 1)
    else begin
      let dup = nbrs.(Rng.int rng (Array.length nbrs)) in
      let a = algo.Sync_algo.step input self nbrs in
      let b = algo.Sync_algo.step input self (Array.append nbrs [| dup |]) in
      algo.Sync_algo.equal a b && go (t + 1)
    end
  in
  go 0

let rules_port_invariant ~rng ~trials algo ~gen_input ~gen_state ~max_degree =
  let outcome view =
    match Algorithm.enabled_rule algo view with
    | None -> None
    | Some rule -> Some (rule.Algorithm.rule_name, rule.Algorithm.action view)
  in
  let same a b =
    match (a, b) with
    | None, None -> true
    | Some (ra, sa), Some (rb, sb) -> ra = rb && algo.Algorithm.equal sa sb
    | None, Some _ | Some _, None -> false
  in
  let rec go t =
    t >= trials
    ||
    let input = gen_input rng in
    let self = gen_state rng in
    let nbrs = random_neighbors rng gen_state max_degree in
    let va = { Algorithm.input; self; neighbors = nbrs } in
    let vb = { Algorithm.input; self; neighbors = shuffled rng nbrs } in
    same (outcome va) (outcome vb) && go (t + 1)
  in
  go 0
