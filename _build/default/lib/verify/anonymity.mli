(** Model-compatibility checks (paper §2.2 / §3.3).

    The transformer's weakest host model hands a node only the {e set}
    of its neighbors' states — it cannot tell neighbors apart, count
    duplicates, or use port numbers.  Algorithms claiming to run in
    that model (min-flood, and the transformer's own rules) must
    therefore be invariant under any permutation of the neighbor
    array, and under duplication of equal states.  Stronger models
    (ports for BFS, identifiers for leader election) legitimately
    break these invariances.

    These checkers turn the model hierarchy into executable tests. *)

val sync_step_port_invariant :
  rng:Ss_prelude.Rng.t ->
  trials:int ->
  ('s, 'i) Ss_sync.Sync_algo.t ->
  gen_input:(Ss_prelude.Rng.t -> 'i) ->
  gen_state:(Ss_prelude.Rng.t -> 's) ->
  max_degree:int ->
  bool
(** Randomized check that a synchronous algorithm's step function is
    invariant under permutations of its neighbor array: for random
    inputs, states and neighbor multisets, [step i s nbrs] equals
    [step i s (shuffle nbrs)].  Returns [false] on the first violation. *)

val sync_step_multiset_invariant :
  rng:Ss_prelude.Rng.t ->
  trials:int ->
  ('s, 'i) Ss_sync.Sync_algo.t ->
  gen_input:(Ss_prelude.Rng.t -> 'i) ->
  gen_state:(Ss_prelude.Rng.t -> 's) ->
  max_degree:int ->
  bool
(** Stronger check for the set-based semantics: duplicating an
    existing neighbor state must not change the step's result (the
    weak model §2.2 cannot even count how many neighbors share a
    state). *)

val rules_port_invariant :
  rng:Ss_prelude.Rng.t ->
  trials:int ->
  ('s, 'i) Ss_sim.Algorithm.t ->
  gen_input:(Ss_prelude.Rng.t -> 'i) ->
  gen_state:(Ss_prelude.Rng.t -> 's) ->
  max_degree:int ->
  bool
(** Randomized check that an atomic-state algorithm's guard
    evaluation and selected rule/action are invariant under neighbor
    permutations — the transformer instantiated on a weak-model input
    algorithm must pass this. *)
