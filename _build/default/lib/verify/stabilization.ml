module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Sync_runner = Ss_sync.Sync_runner
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module Rng = Ss_prelude.Rng

type ('s, 'i) scenario = {
  params : ('s, 'i) Transformer.params;
  graph : Ss_graph.Graph.t;
  inputs : int -> 'i;
}

type 's report = {
  moves : int;
  steps : int;
  rounds : int;
  terminated : bool;
  recovery_moves : int;
  recovery_rounds : int;
  space_bits : int;
  moves_per_rule : (string * int) list;
  legitimate : bool;
  outputs : 's array;
}

let history sc = Sync_runner.run sc.params.Transformer.sync sc.graph ~inputs:sc.inputs
let clean_start sc = Transformer.clean_config sc.params sc.graph ~inputs:sc.inputs

let corrupted_start rng ?p ~max_height sc =
  Transformer.corrupt rng ?p ~max_height sc.params (clean_start sc)

let run ?(track_recovery = true) ?max_steps sc ~daemon ~start =
  (* Recovery phase end: the first configuration without a root.  Roots
     cannot be created (paper §4), so once none remains the recovery
     phase is over for good. *)
  let recovery_moves = ref (-1) in
  let recovery_rounds = ref (-1) in
  let moves_so_far = ref 0 in
  let observer ~step:_ ~rounds ~moved config =
    moves_so_far := !moves_so_far + List.length moved;
    if track_recovery && !recovery_moves < 0
       && not (Checker.has_root sc.params config)
    then begin
      recovery_moves := !moves_so_far;
      recovery_rounds := rounds
    end
  in
  let observer =
    if track_recovery then Some observer else None
  in
  let stats = Transformer.run ?max_steps ?observer sc.params daemon start in
  let hist = history sc in
  let legitimate =
    stats.Engine.terminated
    && Checker.legitimate_terminal sc.params hist stats.Engine.final = Ok ()
  in
  {
    moves = stats.Engine.moves;
    steps = stats.Engine.steps;
    rounds = stats.Engine.rounds;
    terminated = stats.Engine.terminated;
    recovery_moves = !recovery_moves;
    recovery_rounds = !recovery_rounds;
    space_bits = Checker.space_bits sc.params stats.Engine.final;
    moves_per_rule = stats.Engine.moves_per_rule;
    legitimate;
    outputs = Transformer.outputs stats.Engine.final;
  }

let daemon_portfolio rng =
  [
    ("synchronous", Daemon.synchronous);
    ("async-dense", Daemon.distributed_random (Rng.split rng) ~p:0.75);
    ("async-medium", Daemon.distributed_random (Rng.split rng) ~p:0.5);
    ("async-sparse", Daemon.distributed_random (Rng.split rng) ~p:0.15);
    ("central-random", Daemon.central_random (Rng.split rng));
    ("central-min", Daemon.central_min);
    ("round-robin", Daemon.round_robin ());
  ]
