test/test_ablation.ml: Alcotest Buffer Format List Ss_algos Ss_core Ss_expt Ss_graph Ss_prelude Ss_sim Ss_verify String
