test/test_algos.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Ss_algos Ss_graph Ss_prelude Ss_sync Test
