test/test_analysis.ml: Alcotest Array List Printf Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim
