test/test_baselines.ml: Alcotest Array List QCheck QCheck_alcotest Ss_baselines Ss_graph Ss_prelude Ss_sim Test
