test/test_convergence.ml: Alcotest Array List QCheck QCheck_alcotest Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync Ss_verify Test
