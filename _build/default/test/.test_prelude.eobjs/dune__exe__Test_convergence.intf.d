test/test_convergence.mli:
