test/test_energy.ml: Alcotest Array Ss_algos Ss_core Ss_energy Ss_graph Ss_prelude Ss_sim
