test/test_extensions.ml: Alcotest Array Format Fun Int List Printf QCheck QCheck_alcotest Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync Ss_verify Test
