test/test_graph.ml: Alcotest Array List Printf QCheck QCheck_alcotest Ss_graph Ss_prelude String Test
