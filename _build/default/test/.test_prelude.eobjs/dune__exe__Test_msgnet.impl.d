test/test_msgnet.ml: Alcotest List Printf QCheck QCheck_alcotest Ss_algos Ss_core Ss_graph Ss_msgnet Ss_prelude Ss_sync Test
