test/test_msgnet.mli:
