test/test_prelude.ml: Alcotest Array Buffer Format Fun Int List Printf QCheck QCheck_alcotest Ss_prelude String Test
