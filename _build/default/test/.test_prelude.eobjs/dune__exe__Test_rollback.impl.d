test/test_rollback.ml: Alcotest Array List Printf Ss_algos Ss_expt Ss_graph Ss_prelude Ss_rollback Ss_sim Ss_sync
