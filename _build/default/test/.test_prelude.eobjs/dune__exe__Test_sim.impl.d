test/test_sim.ml: Alcotest Array Format Int List QCheck QCheck_alcotest Ss_graph Ss_prelude Ss_sim String Test
