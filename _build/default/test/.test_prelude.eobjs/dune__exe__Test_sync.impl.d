test/test_sync.ml: Alcotest Array Format Int List Printf QCheck QCheck_alcotest Ss_algos Ss_graph Ss_prelude Ss_sync Test
