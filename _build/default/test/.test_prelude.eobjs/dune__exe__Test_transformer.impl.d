test/test_transformer.ml: Alcotest Array Int List Option QCheck QCheck_alcotest Ss_algos Ss_core Ss_graph Ss_prelude Ss_sim Ss_sync Test
