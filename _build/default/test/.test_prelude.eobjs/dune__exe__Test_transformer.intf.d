test/test_transformer.mli:
