(* Tests for the ablated transformer variants: each removed mechanism
   must demonstrably break (no-RP: stuck illegitimate configurations;
   eager-RC: loss of silence) while the full rule set recovers. *)

module Builders = Ss_graph.Builders
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Transformer = Ss_core.Transformer
module Ablation = Ss_core.Ablation
module Checker = Ss_core.Checker
module St = Ss_core.Trans_state
module Leader = Ss_algos.Leader_election
module Stabilization = Ss_verify.Stabilization
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_variant_rule_sets () =
  let params = Transformer.params Leader.algo in
  let names a = Algorithm.rule_names a in
  Alcotest.(check (list string)) "full" [ "RR"; "RP"; "RC"; "RU" ]
    (names (Transformer.algorithm params));
  Alcotest.(check (list string)) "no-RP" [ "RR"; "RC"; "RU" ]
    (names (Ablation.without_rp params));
  Alcotest.(check (list string)) "eager-RC keeps arity"
    [ "RR"; "RP"; "RC"; "RU" ]
    (names (Ablation.with_eager_clear params))

let test_witness_deadlocks_without_rp () =
  let params, config = Ablation.deadlock_witness () in
  let ablated = Ablation.without_rp params in
  (* The witness is immediately terminal for the ablated algorithm... *)
  check "terminal under no-RP" true (Config.is_terminal ablated config);
  (* ...but a root remains: stuck in an illegitimate configuration. *)
  check "root remains" true (Checker.has_root params config)

let test_witness_recovers_with_full_rules () =
  let params, config = Ablation.deadlock_witness () in
  check "full transformer is enabled here" false
    (Config.is_terminal (Transformer.algorithm params) config);
  let stats = Transformer.run params Daemon.synchronous config in
  check "terminates" true stats.Engine.terminated;
  check "no root left" false (Checker.has_root params stats.Engine.final);
  (* Both nodes end at equal heights holding the minimum 5. *)
  let outputs = Transformer.outputs stats.Engine.final in
  Alcotest.(check (array int)) "simulated min" [| 5; 5 |] outputs

let test_witness_first_move_is_rp () =
  let params, config = Ablation.deadlock_witness () in
  let algo = Transformer.algorithm params in
  let enabled = Config.enabled_nodes algo config in
  Alcotest.(check (list int)) "only the tall neighbor is enabled" [ 0 ] enabled;
  let _, moved = Engine.step algo config [ 0 ] in
  Alcotest.(check (list (pair int string))) "RP fires" [ (0, "RP") ] moved

let test_no_rp_stuck_rate_nonzero () =
  (* Over random corruptions some runs of the no-RP variant must end
     illegitimately — RP is a correctness ingredient, not an
     optimization. *)
  let rng = Rng.create 11 in
  let g = Builders.path 12 in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params Leader.algo in
  let sc = { Stabilization.params; graph = g; inputs } in
  let hist = Stabilization.history sc in
  let ablated = Ablation.without_rp params in
  let stuck = ref 0 in
  for _ = 1 to 15 do
    List.iter
      (fun (_d, daemon) ->
        let start =
          Stabilization.corrupted_start (Rng.split rng) ~max_height:12 sc
        in
        let stats = Engine.run ~max_steps:100_000 ablated daemon start in
        if
          (not stats.Engine.terminated)
          || Checker.legitimate_terminal params hist stats.Engine.final <> Ok ()
        then incr stuck)
      (Stabilization.daemon_portfolio (Rng.split rng))
  done;
  check "some runs get stuck" true (!stuck > 0)

let test_full_rules_never_stuck_same_settings () =
  (* Control group: identical corruptions, full rule set — always
     legitimate. *)
  let rng = Rng.create 11 in
  let g = Builders.path 12 in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params Leader.algo in
  let sc = { Stabilization.params; graph = g; inputs } in
  let hist = Stabilization.history sc in
  for _ = 1 to 40 do
    let start = Stabilization.corrupted_start (Rng.split rng) ~max_height:12 sc in
    let stats = Transformer.run params Daemon.synchronous start in
    check "terminated" true stats.Engine.terminated;
    check "legitimate" true
      (Checker.legitimate_terminal params hist stats.Engine.final = Ok ())
  done

let test_eager_rc_can_lose_silence () =
  (* The eager-RC variant drops the freeze window; over the portfolio
     some executions must fail to reach a terminal configuration (or
     end illegitimately) within a generous budget. *)
  let rng = Rng.create 13 in
  let params = Transformer.params Leader.algo in
  let bad = ref 0 in
  let total = ref 0 in
  for seed = 1 to 12 do
    let seed_rng = Rng.create seed in
    let g = Builders.cycle 12 in
    let inputs = Leader.random_ids (Rng.split rng) g in
    let sc = { Stabilization.params; graph = g; inputs } in
    let hist = Stabilization.history sc in
    let algo = Ablation.with_eager_clear params in
    List.iter
      (fun (_d, daemon) ->
        let start =
          Stabilization.corrupted_start (Rng.split seed_rng) ~max_height:10 sc
        in
        let stats = Engine.run ~max_steps:100_000 algo daemon start in
        incr total;
        if
          (not stats.Engine.terminated)
          || Checker.legitimate_terminal params hist stats.Engine.final <> Ok ()
        then incr bad)
      (Stabilization.daemon_portfolio seed_rng)
  done;
  check "some runs break" true (!bad > 0);
  check "but not all (it often still converges)" true (!bad < !total)

let test_ablation_table_smoke () =
  let t = Ss_expt.Ablation_expt.rows ~seeds:[ 1 ] (Rng.create 3) in
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Ss_prelude.Table.render ppf t;
  Format.pp_print_flush ppf ();
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  check_int "three variants + header + rule" 5 (List.length lines)

let () =
  Alcotest.run "ablation"
    [
      ( "variants",
        [
          Alcotest.test_case "rule sets" `Quick test_variant_rule_sets;
          Alcotest.test_case "witness deadlocks without RP" `Quick
            test_witness_deadlocks_without_rp;
          Alcotest.test_case "witness recovers with full rules" `Quick
            test_witness_recovers_with_full_rules;
          Alcotest.test_case "witness first move is RP" `Quick
            test_witness_first_move_is_rp;
          Alcotest.test_case "no-RP gets stuck sometimes" `Quick
            test_no_rp_stuck_rate_nonzero;
          Alcotest.test_case "full rules never stuck (control)" `Quick
            test_full_rules_never_stuck_same_settings;
          Alcotest.test_case "eager-RC loses silence sometimes" `Slow
            test_eager_rc_can_lose_silence;
          Alcotest.test_case "table smoke" `Slow test_ablation_table_smoke;
        ] );
    ]
