(* Tests for the synchronous input algorithms of §5 and §7: min-flood,
   leader election, BFS tree, shortest-path tree, leader+BFS and
   Cole–Vishkin. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Properties = Ss_graph.Properties
module Sync_runner = Ss_sync.Sync_runner
module Min_flood = Ss_algos.Min_flood
module Leader = Ss_algos.Leader_election
module Bfs = Ss_algos.Bfs_tree
module Sp = Ss_algos.Shortest_path
module Lbfs = Ss_algos.Leader_bfs
module Cv = Ss_algos.Cole_vishkin
module Toy = Ss_algos.Toy
module Util = Ss_prelude.Util
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_graph rng =
  let n = 2 + Rng.int rng 10 in
  Builders.random_connected rng ~n ~extra_edges:(Rng.int rng 5)

(* ------------------------------------------------------------------ *)
(* Min flood / max flood                                                *)
(* ------------------------------------------------------------------ *)

let test_min_flood_spec () =
  let g = Builders.cycle 6 in
  let values = [| 4; 9; 2; 8; 7; 6 |] in
  let inputs = Min_flood.inputs_of_values values in
  let h = Sync_runner.run Min_flood.algo g ~inputs in
  check "spec" true (Min_flood.spec_holds g ~inputs ~final:(Sync_runner.final h));
  check "all hold 2" true (Array.for_all (fun s -> s = 2) (Sync_runner.final h))

let test_min_flood_spec_rejects () =
  let g = Builders.cycle 4 in
  let inputs p = p + 1 in
  check "wrong final rejected" false
    (Min_flood.spec_holds g ~inputs ~final:[| 1; 1; 1; 2 |])

let test_max_flood () =
  let g = Builders.path 4 in
  let h = Sync_runner.run Toy.max_flood g ~inputs:(fun p -> p * 3) in
  check "all hold max" true (Array.for_all (fun s -> s = 9) (Sync_runner.final h))

(* ------------------------------------------------------------------ *)
(* Leader election                                                      *)
(* ------------------------------------------------------------------ *)

let test_leader_sequential_ids () =
  let g = Builders.path 5 in
  let inputs = Leader.sequential_ids g in
  let h = Sync_runner.run Leader.algo g ~inputs in
  check "spec" true (Leader.spec_holds g ~inputs ~final:(Sync_runner.final h));
  check "leader is 0" true (Array.for_all (fun s -> s = 0) (Sync_runner.final h));
  check "T <= D" true (h.Sync_runner.t <= Properties.diameter g)

let test_leader_random_ids_injective () =
  let rng = Rng.create 31 in
  let g = Builders.cycle 12 in
  let inputs = Leader.random_ids rng g in
  let ids = List.map inputs (Ss_prelude.Util.range 12) in
  check_int "12 distinct ids" 12 (List.length (List.sort_uniq compare ids))

let test_leader_t_bounded_by_diameter () =
  let rng = Rng.create 32 in
  for _ = 1 to 30 do
    let g = random_graph rng in
    let inputs = Leader.random_ids rng g in
    let h = Sync_runner.run Leader.algo g ~inputs in
    check "T <= D" true (h.Sync_runner.t <= Properties.diameter g);
    check "spec" true (Leader.spec_holds g ~inputs ~final:(Sync_runner.final h))
  done

(* ------------------------------------------------------------------ *)
(* BFS spanning tree                                                    *)
(* ------------------------------------------------------------------ *)

let test_bfs_on_path () =
  let g = Builders.path 4 in
  let inputs = Bfs.inputs g ~root:0 in
  let h = Sync_runner.run Bfs.algo g ~inputs in
  let final = Sync_runner.final h in
  check "spec" true (Bfs.spec_holds g ~root:0 ~final);
  check "root state" true (final.(0) = Bfs.Root);
  (* Every non-root points towards node 0 along the path. *)
  for p = 1 to 3 do
    check_int
      (Printf.sprintf "parent of %d" p)
      (p - 1)
      (Option.get (Bfs.parent_node g p final.(p)))
  done

let test_bfs_breaks_ties_by_port () =
  (* A 4-cycle: node 2 is at distance 2 from root 0 via both 1 and 3;
     it must pick its smallest port pointing to a settled neighbor. *)
  let g = Builders.cycle 4 in
  let inputs = Bfs.inputs g ~root:0 in
  let h = Sync_runner.run Bfs.algo g ~inputs in
  let final = Sync_runner.final h in
  check "spec" true (Bfs.spec_holds g ~root:0 ~final);
  match final.(2) with
  | Bfs.Parent k -> check_int "smallest settled port" 0 k
  | _ -> Alcotest.fail "node 2 has no parent"

let test_bfs_t_is_eccentricity () =
  let rng = Rng.create 33 in
  for _ = 1 to 30 do
    let g = random_graph rng in
    let root = Rng.int rng (Graph.n g) in
    let inputs = Bfs.inputs g ~root in
    let h = Sync_runner.run Bfs.algo g ~inputs in
    check_int "T = ecc(root)"
      (Properties.eccentricity g root)
      h.Sync_runner.t;
    check "spec" true (Bfs.spec_holds g ~root ~final:(Sync_runner.final h))
  done

let test_bfs_spec_rejects () =
  let g = Builders.path 3 in
  (* Node 2 pointing away from the root is not a BFS tree. *)
  check "bad tree rejected" false
    (Bfs.spec_holds g ~root:0 ~final:[| Bfs.Root; Bfs.Parent 1; Bfs.Parent 0 |]);
  check "missing parent rejected" false
    (Bfs.spec_holds g ~root:0 ~final:[| Bfs.Root; Bfs.Null; Bfs.Parent 0 |]);
  check "non-root Root rejected" false
    (Bfs.spec_holds g ~root:0 ~final:[| Bfs.Root; Bfs.Root; Bfs.Parent 0 |])

let test_bfs_parent_node_out_of_range () =
  let g = Builders.path 2 in
  check "garbage port resolves to None" true
    (Bfs.parent_node g 0 (Bfs.Parent 5) = None)

(* ------------------------------------------------------------------ *)
(* Shortest-path tree                                                   *)
(* ------------------------------------------------------------------ *)

let test_sp_unit_weights_match_bfs () =
  let g = Builders.grid ~rows:3 ~cols:3 in
  let weight _ _ = 1 in
  let inputs = Sp.inputs g ~weight ~root:0 in
  let h = Sync_runner.run Sp.algo g ~inputs in
  let final = Sync_runner.final h in
  check "spec" true (Sp.spec_holds g ~weight ~root:0 ~final);
  let bfs = Properties.bfs_distances g 0 in
  Graph.iter_nodes g (fun p ->
      check_int "unit weights = hop distance" bfs.(p) final.(p).Sp.dist)

let test_sp_weighted () =
  (* Triangle with a heavy direct edge: the two-hop route wins. *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let weight u v =
    match (min u v, max u v) with
    | 0, 1 -> 1
    | 1, 2 -> 1
    | 0, 2 -> 10
    | _ -> assert false
  in
  let inputs = Sp.inputs g ~weight ~root:0 in
  let h = Sync_runner.run Sp.algo g ~inputs in
  let final = Sync_runner.final h in
  check "spec" true (Sp.spec_holds g ~weight ~root:0 ~final);
  check_int "two-hop distance" 2 final.(2).Sp.dist;
  check "parent of 2 is 1" true
    ((Graph.neighbors g 2).(Option.get final.(2).Sp.parent) = 1)

let test_sp_random_vs_dijkstra () =
  let rng = Rng.create 34 in
  for _ = 1 to 30 do
    let g = random_graph rng in
    let weight = Sp.random_weights rng g ~max_weight:9 in
    let root = Rng.int rng (Graph.n g) in
    let inputs = Sp.inputs g ~weight ~root in
    let h = Sync_runner.run Sp.algo g ~inputs in
    let final = Sync_runner.final h in
    check "spec vs Dijkstra" true (Sp.spec_holds g ~weight ~root ~final);
    let reference = Sp.reference_distances g ~weight ~root in
    Graph.iter_nodes g (fun p ->
        check_int "distance matches" reference.(p) final.(p).Sp.dist)
  done

let test_sp_weights_symmetric () =
  let rng = Rng.create 35 in
  let g = Builders.cycle 5 in
  let weight = Sp.random_weights rng g ~max_weight:7 in
  List.iter
    (fun (u, v) ->
      check_int "symmetric" (weight u v) (weight v u);
      check "positive" true (weight u v >= 1 && weight u v <= 7))
    (Graph.edges g);
  check "non-edge rejected" true
    (try
       ignore (weight 0 2);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Leader + BFS composition                                             *)
(* ------------------------------------------------------------------ *)

let test_leader_bfs () =
  let rng = Rng.create 36 in
  for _ = 1 to 30 do
    let g = random_graph rng in
    let ids = Leader.random_ids rng g in
    let inputs = Lbfs.inputs ~ids g in
    let h = Sync_runner.run Lbfs.algo g ~inputs in
    check "spec" true (Lbfs.spec_holds g ~inputs ~final:(Sync_runner.final h));
    check "T <= D + 1" true
      (h.Sync_runner.t <= Properties.diameter g + 1)
  done

let test_leader_bfs_single_node () =
  let g = Builders.single () in
  let inputs = Lbfs.inputs ~ids:(fun _ -> 42) g in
  let h = Sync_runner.run Lbfs.algo g ~inputs in
  let final = Sync_runner.final h in
  check "self leader" true
    (final.(0).Lbfs.ldr = 42 && final.(0).Lbfs.dist = 0
    && final.(0).Lbfs.parent = None)

(* ------------------------------------------------------------------ *)
(* Cole–Vishkin                                                         *)
(* ------------------------------------------------------------------ *)

let test_cv_schedule_length () =
  (* 64-bit ids: 64 -> 7 -> 4 -> 3 widths, +1 reduction into {0..5},
     then 3 shift-down rounds. *)
  check_int "reduction iters (64)" 4 (Cv.reduction_iters 64);
  check_int "schedule (64)" 7 (Cv.schedule_length 64);
  check_int "reduction iters (3)" 1 (Cv.reduction_iters 3);
  check "schedule grows like log*" true
    (Cv.schedule_length (1 lsl 16) <= Cv.schedule_length (1 lsl 16) + 1)

let test_cv_small_ring () =
  let n = 6 in
  let g = Builders.cycle n in
  let ids p = p in
  let width = 3 in
  let inputs = Cv.inputs ~ids ~width g in
  let h = Sync_runner.run Cv.algo g ~inputs in
  check "proper 3-coloring" true (Cv.spec_holds g ~final:(Sync_runner.final h));
  check_int "T = schedule length" (Cv.schedule_length width) h.Sync_runner.t

let test_cv_properness_invariant () =
  (* Properness must hold after every synchronous round, not just at
     the end. *)
  let rng = Rng.create 37 in
  let n = 16 and width = 8 in
  let g = Builders.cycle n in
  let ids = Cv.random_ring_ids rng ~n ~width in
  let inputs = Cv.inputs ~ids ~width g in
  let h = Sync_runner.run Cv.algo g ~inputs in
  Array.iteri
    (fun r row ->
      Graph.iter_nodes g (fun p ->
          Array.iter
            (fun q ->
              check
                (Printf.sprintf "round %d: %d vs %d" r p q)
                true
                (row.(p).Cv.color <> row.(q).Cv.color))
            (Graph.neighbors g p)))
    h.Sync_runner.states_by_round

let test_cv_random_rings () =
  let rng = Rng.create 38 in
  List.iter
    (fun (n, width) ->
      let g = Builders.cycle n in
      let ids = Cv.random_ring_ids rng ~n ~width in
      let inputs = Cv.inputs ~ids ~width g in
      let h = Sync_runner.run Cv.algo g ~inputs in
      check
        (Printf.sprintf "n=%d w=%d" n width)
        true
        (Cv.spec_holds g ~final:(Sync_runner.final h)))
    [ (3, 2); (5, 4); (17, 6); (64, 8); (200, 16) ]

let test_cv_ids_distinct () =
  let rng = Rng.create 39 in
  let ids = Cv.random_ring_ids rng ~n:20 ~width:6 in
  let l = List.init 20 ids in
  check_int "distinct" 20 (List.length (List.sort_uniq compare l));
  check "bounded" true (List.for_all (fun id -> id >= 0 && id < 64) l);
  check "width too small rejected" true
    (try
       ignore (Cv.random_ring_ids rng ~n:10 ~width:3 : int -> int);
       false
     with Invalid_argument _ -> true)

let test_cv_spec_rejects () =
  let g = Builders.cycle 3 in
  let mk color = { Cv.color; round = 0 } in
  check "adjacent same color" false
    (Cv.spec_holds g ~final:[| mk 0; mk 0; mk 1 |]);
  check "color out of range" false
    (Cv.spec_holds g ~final:[| mk 0; mk 1; mk 5 |]);
  check "proper accepted" true (Cv.spec_holds g ~final:[| mk 0; mk 1; mk 2 |])

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"CV yields a proper 3-coloring on random rings"
      (pair small_int (int_range 3 40))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let width = max 8 (Util.bit_width n) in
        let g = Builders.cycle n in
        let ids = Cv.random_ring_ids rng ~n ~width in
        let inputs = Cv.inputs ~ids ~width g in
        let h = Sync_runner.run Cv.algo g ~inputs in
        Cv.spec_holds g ~final:(Sync_runner.final h));
    Test.make ~count:60 ~name:"leader election T is at most the diameter"
      small_int
      (fun seed ->
        let rng = Rng.create seed in
        let g = random_graph rng in
        let inputs = Leader.random_ids rng g in
        let h = Sync_runner.run Leader.algo g ~inputs in
        h.Sync_runner.t <= Properties.diameter g);
    Test.make ~count:60 ~name:"BFS parents form a spanning tree" small_int
      (fun seed ->
        let rng = Rng.create seed in
        let g = random_graph rng in
        let root = Rng.int rng (Graph.n g) in
        let inputs = Bfs.inputs g ~root in
        let h = Sync_runner.run Bfs.algo g ~inputs in
        Bfs.spec_holds g ~root ~final:(Sync_runner.final h));
  ]

let () =
  Alcotest.run "algorithms"
    [
      ( "flood",
        [
          Alcotest.test_case "min flood" `Quick test_min_flood_spec;
          Alcotest.test_case "min flood rejects" `Quick test_min_flood_spec_rejects;
          Alcotest.test_case "max flood" `Quick test_max_flood;
        ] );
      ( "leader",
        [
          Alcotest.test_case "sequential ids" `Quick test_leader_sequential_ids;
          Alcotest.test_case "random ids injective" `Quick
            test_leader_random_ids_injective;
          Alcotest.test_case "T bounded by D" `Quick
            test_leader_t_bounded_by_diameter;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "path" `Quick test_bfs_on_path;
          Alcotest.test_case "tie break by port" `Quick
            test_bfs_breaks_ties_by_port;
          Alcotest.test_case "T = eccentricity" `Quick test_bfs_t_is_eccentricity;
          Alcotest.test_case "spec rejects" `Quick test_bfs_spec_rejects;
          Alcotest.test_case "garbage port" `Quick
            test_bfs_parent_node_out_of_range;
        ] );
      ( "shortest-path",
        [
          Alcotest.test_case "unit weights" `Quick test_sp_unit_weights_match_bfs;
          Alcotest.test_case "weighted triangle" `Quick test_sp_weighted;
          Alcotest.test_case "random vs Dijkstra" `Quick test_sp_random_vs_dijkstra;
          Alcotest.test_case "weights symmetric" `Quick test_sp_weights_symmetric;
        ] );
      ( "leader-bfs",
        [
          Alcotest.test_case "random graphs" `Quick test_leader_bfs;
          Alcotest.test_case "single node" `Quick test_leader_bfs_single_node;
        ] );
      ( "cole-vishkin",
        [
          Alcotest.test_case "schedule length" `Quick test_cv_schedule_length;
          Alcotest.test_case "small ring" `Quick test_cv_small_ring;
          Alcotest.test_case "properness invariant" `Quick
            test_cv_properness_invariant;
          Alcotest.test_case "random rings" `Quick test_cv_random_rings;
          Alcotest.test_case "ids distinct" `Quick test_cv_ids_distinct;
          Alcotest.test_case "spec rejects" `Quick test_cv_spec_rejects;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
