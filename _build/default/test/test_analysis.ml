(* Tests for Ss_core.Analysis: the §4 proof structure (segments,
   D-paths, cliffs) checked on hand-crafted configurations and as
   invariants along random executions. *)

module Builders = Ss_graph.Builders
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Trace = Ss_sim.Trace
module Min_flood = Ss_algos.Min_flood
module Leader = Ss_algos.Leader_election
module St = Ss_core.Trans_state
module Transformer = Ss_core.Transformer
module Analysis = Ss_core.Analysis
module Checker = Ss_core.Checker
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params = Transformer.params Min_flood.algo

let st ?(status = St.C) init cells =
  St.make ~init ~status ~cells:(Array.of_list cells)

let config_on g states =
  Config.make g ~inputs:(fun p -> p + 1) ~states:(fun p -> List.nth states p)

(* ------------------------------------------------------------------ *)
(* Cliffs                                                               *)
(* ------------------------------------------------------------------ *)

let test_cliffs () =
  let g = Builders.path 3 in
  let c = config_on g [ st 1 []; st 2 [ 1; 1 ]; st 3 [ 1; 1; 1 ] ] in
  Alcotest.(check (list (pair int int))) "one cliff" [ (0, 1) ]
    (Analysis.cliffs c);
  let flat = config_on g [ st 1 [ 1 ]; st 2 [ 1 ]; st 3 [ 1 ] ] in
  Alcotest.(check (list (pair int int))) "no cliffs" [] (Analysis.cliffs flat)

(* ------------------------------------------------------------------ *)
(* D-paths                                                              *)
(* ------------------------------------------------------------------ *)

let test_d_path_direct_root () =
  (* An error node with an empty list is itself an error root. *)
  let g = Builders.path 2 in
  let c = config_on g [ st ~status:St.E 1 []; st 2 [ 1 ] ] in
  check "root starts its own D-path" true (Analysis.has_d_path params c 0)

let test_d_path_through_chain () =
  (* Heights 2 > 1 > 0, all in error: node 0 reaches the root via a
     decreasing path. *)
  let g = Builders.path 3 in
  let c =
    config_on g
      [
        st ~status:St.E 1 [ 1; 1 ];
        st ~status:St.E 2 [ 1 ];
        st ~status:St.E 3 [];
      ]
  in
  check "chain D-path" true (Analysis.has_d_path params c 0);
  check "all error nodes covered" true
    (Analysis.error_nodes_start_d_paths params c)

let test_d_path_absent () =
  (* An error node whose only lower neighbors are correct non-roots has
     no D-path... but then it is itself a root (depErr), so D-paths
     still exist.  Construct a genuine negative: an error node at
     height 0 is always an error root, so check a *correct* node
     instead — has_d_path may be false for it. *)
  let g = Builders.path 2 in
  let c = config_on g [ st 1 [ 1 ]; st 2 [ 1 ] ] in
  check "correct flat node has no D-path" false (Analysis.has_d_path params c 0)

(* ------------------------------------------------------------------ *)
(* Invariants along executions                                          *)
(* ------------------------------------------------------------------ *)

let run_with_records seed =
  let rng = Rng.create seed in
  let g =
    Builders.random_connected rng ~n:(3 + Rng.int rng 8)
      ~extra_edges:(Rng.int rng 4)
  in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let lp = Transformer.params Leader.algo in
  let start =
    Transformer.corrupt (Rng.split rng) ~max_height:10 lp
      (Transformer.clean_config lp g ~inputs)
  in
  let observer, records = Trace.with_configs () in
  let daemon = Daemon.distributed_random (Rng.split rng) ~p:0.4 in
  let stats = Transformer.run ~observer lp daemon start in
  (lp, Config.n start, records (), stats)

let test_segments_bounded_by_n () =
  for seed = 1 to 25 do
    let lp, n, records, stats = run_with_records seed in
    let seg = Analysis.segment lp records in
    check "terminated" true stats.Ss_sim.Engine.terminated;
    check
      (Printf.sprintf "seed %d: segments <= n" seed)
      true
      (seg.Analysis.segments <= n);
    (* The execution always ends rootless. *)
    check "rootless suffix exists" true (seg.Analysis.rootless_suffix_from <> None);
    (* Boundaries are strictly increasing step indices. *)
    let rec increasing = function
      | a :: b :: rest -> a < b && increasing (b :: rest)
      | _ -> true
    in
    check "boundaries ordered" true (increasing seg.Analysis.boundaries)
  done

let test_error_nodes_always_on_d_paths () =
  (* §4.2: along the whole execution, every node in error starts a
     D-path. *)
  for seed = 30 to 45 do
    let lp, _, records, _ = run_with_records seed in
    List.iter
      (fun (_, config) ->
        check "D-path invariant" true
          (Analysis.error_nodes_start_d_paths lp config))
      records
  done

let test_rootless_configs_are_cliff_free () =
  (* §4.3: a configuration without roots has no cliffs. *)
  for seed = 50 to 65 do
    let lp, _, records, _ = run_with_records seed in
    List.iter
      (fun (_, config) ->
        check "cliff invariant" true
          (Analysis.rootless_implies_cliff_free lp config))
      records
  done

let test_segment_of_clean_run () =
  (* A clean start has no roots: zero segments, rootless from step 0. *)
  let g = Builders.cycle 5 in
  let lp = Transformer.params Leader.algo in
  let observer, records = Trace.with_configs () in
  let _ =
    Transformer.run ~observer lp Daemon.synchronous
      (Transformer.clean_config lp g ~inputs:(fun p -> p))
  in
  let seg = Analysis.segment lp (records ()) in
  check_int "no segments" 0 seg.Analysis.segments;
  check "rootless from the start" true
    (seg.Analysis.rootless_suffix_from = Some 0)

let () =
  Alcotest.run "analysis"
    [
      ( "static",
        [
          Alcotest.test_case "cliffs" `Quick test_cliffs;
          Alcotest.test_case "D-path at a root" `Quick test_d_path_direct_root;
          Alcotest.test_case "D-path through a chain" `Quick
            test_d_path_through_chain;
          Alcotest.test_case "no D-path from correct nodes" `Quick
            test_d_path_absent;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "segments <= n" `Quick test_segments_bounded_by_n;
          Alcotest.test_case "error nodes start D-paths" `Quick
            test_error_nodes_always_on_d_paths;
          Alcotest.test_case "rootless implies cliff-free" `Quick
            test_rootless_configs_are_cliff_free;
          Alcotest.test_case "clean run has no segments" `Quick
            test_segment_of_clean_run;
        ] );
    ]
