(* Tests for the hand-crafted baselines: Dijkstra's K-state token ring
   (the paper's reference [27]) and the naive min+1 BFS. *)

module Builders = Ss_graph.Builders
module Graph = Ss_graph.Graph
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Dijkstra = Ss_baselines.Dijkstra_ring
module Naive = Ss_baselines.Naive_bfs
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Dijkstra's token ring                                                *)
(* ------------------------------------------------------------------ *)

let ring_config n states =
  let g = Builders.cycle n in
  Config.make g ~inputs:(Dijkstra.inputs ~n ()) ~states:(fun p -> states p)

let test_inputs_validation () =
  check "K < n rejected" true
    (try
       ignore (Dijkstra.inputs ~n:5 ~k:4 () 0);
       false
     with Invalid_argument _ -> true)

let test_legitimate_configuration () =
  (* All equal: only machine 0 is privileged. *)
  let c = ring_config 5 (fun _ -> 3) in
  Alcotest.(check (list int)) "root privileged" [ 0 ] (Dijkstra.privileged c);
  check "legitimate" true (Dijkstra.legitimate c)

let test_token_circulates () =
  (* From the legitimate all-equal configuration the privilege visits
     every machine in ring order. *)
  let n = 5 in
  let c = ref (ring_config n (fun _ -> 0)) in
  let visits = ref [] in
  for _ = 1 to n do
    let p = List.hd (Dijkstra.privileged !c) in
    visits := p :: !visits;
    let c', _ = Engine.step Dijkstra.algo !c [ p ] in
    c := c'
  done;
  Alcotest.(check (list int)) "visit order" [ 0; 1; 2; 3; 4 ] (List.rev !visits);
  check "still legitimate" true (Dijkstra.legitimate !c)

let test_convergence_from_arbitrary () =
  let rng = Rng.create 4 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 10 in
    let states = Array.init n (fun _ -> Rng.int rng (n + 1)) in
    let c = ring_config n (fun p -> states.(p)) in
    let daemon =
      match Rng.int rng 3 with
      | 0 -> Daemon.central_random (Rng.split rng)
      | 1 -> Daemon.central_min
      | _ -> Daemon.distributed_random (Rng.split rng) ~p:0.5
    in
    match Dijkstra.run_to_legitimacy daemon c with
    | Some (_, _, legit) ->
        check "legitimate" true (Dijkstra.legitimate legit);
        check "closure" true
          (Dijkstra.closure_holds (Daemon.central_random (Rng.split rng)) legit)
    | None -> Alcotest.fail "did not converge"
  done

let test_never_silent () =
  (* The token ring never reaches a terminal configuration — unlike the
     transformer's silent outputs. *)
  let c = ring_config 4 (fun _ -> 1) in
  let stats = Engine.run ~max_steps:100 Dijkstra.algo Daemon.central_min c in
  check "still running after 100 steps" false stats.Engine.terminated

let test_always_some_privilege () =
  (* At least one machine is privileged in any configuration. *)
  let rng = Rng.create 9 in
  for _ = 1 to 50 do
    let n = 3 + Rng.int rng 8 in
    let c = ring_config n (fun _ -> Rng.int rng (n + 1)) in
    check "some privilege" true (Dijkstra.privileged c <> [])
  done

(* ------------------------------------------------------------------ *)
(* Naive BFS                                                            *)
(* ------------------------------------------------------------------ *)

let test_naive_bfs_converges () =
  let rng = Rng.create 6 in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 10 in
    let g = Builders.random_connected rng ~n ~extra_edges:(Rng.int rng 5) in
    let root = Rng.int rng n in
    let inputs = Naive.inputs g ~root () in
    let c =
      Config.make g ~inputs ~states:(fun _ -> Rng.int rng (n + 1))
    in
    let daemon = Daemon.distributed_random (Rng.split rng) ~p:0.5 in
    let stats = Engine.run Naive.algo daemon c in
    check "terminated" true stats.Engine.terminated;
    check "exact distances" true
      (Naive.spec_holds g ~root ~final:stats.Engine.final.Config.states)
  done

let test_naive_bfs_dmax_caps () =
  (* A disconnected-looking estimate cannot exceed dmax. *)
  let g = Builders.path 3 in
  let inputs = Naive.inputs g ~root:0 ~dmax:5 () in
  let c = Config.make g ~inputs ~states:(fun _ -> 99) in
  let stats = Engine.run Naive.algo Daemon.synchronous c in
  check "terminated" true stats.Engine.terminated;
  Array.iter
    (fun d -> check "capped" true (d <= 5))
    stats.Engine.final.Config.states

let test_adversarial_crawl_is_quadratic () =
  (* On a rooted path from an all-zero start, the tailored adversary
     forces the Θ(n²) underestimate crawl. *)
  let moves n =
    let g = Builders.path n in
    let inputs = Naive.inputs g ~root:0 () in
    let m, ok = Naive.adversarial_run (Config.make g ~inputs ~states:(fun _ -> 0)) in
    check "terminates" true ok;
    m
  in
  let m8 = moves 8 and m16 = moves 16 and m32 = moves 32 in
  (* Quadratic growth: doubling n roughly quadruples moves. *)
  check "m16 >= 3 * m8" true (m16 >= 3 * m8);
  check "m32 >= 3 * m16" true (m32 >= 3 * m16);
  (* And matches the closed form sum ~ n^2/2 within a factor. *)
  check "order n^2" true (m32 >= (32 * 32 / 2) - 32 && m32 <= 32 * 32)

let test_adversarial_result_correct () =
  let g = Builders.lollipop ~clique:5 ~tail:7 in
  let inputs = Naive.inputs g ~root:0 () in
  let c = Config.make g ~inputs ~states:(fun _ -> 0) in
  let _m, ok = Naive.adversarial_run c in
  check "terminates" true ok

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"Dijkstra ring stabilizes and keeps one token"
      (pair small_int (int_range 3 10))
      (fun (seed, n) ->
        let rng = Rng.create (seed + 1) in
        let states = Array.init n (fun _ -> Rng.int rng (n + 1)) in
        let c = ring_config n (fun p -> states.(p)) in
        match
          Dijkstra.run_to_legitimacy (Daemon.central_random rng) c
        with
        | Some (_, _, legit) ->
            Dijkstra.legitimate legit
            && Dijkstra.closure_holds (Daemon.central_random rng) legit
        | None -> false);
    Test.make ~count:60 ~name:"naive BFS reaches exact distances" small_int
      (fun seed ->
        let rng = Rng.create (seed + 1) in
        let n = 3 + Rng.int rng 8 in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let inputs = Naive.inputs g ~root:0 () in
        let c = Config.make g ~inputs ~states:(fun _ -> Rng.int rng n) in
        let stats = Engine.run Naive.algo Daemon.synchronous c in
        stats.Engine.terminated
        && Naive.spec_holds g ~root:0 ~final:stats.Engine.final.Config.states);
  ]

let () =
  Alcotest.run "baselines"
    [
      ( "dijkstra-ring",
        [
          Alcotest.test_case "inputs validation" `Quick test_inputs_validation;
          Alcotest.test_case "legitimate configuration" `Quick
            test_legitimate_configuration;
          Alcotest.test_case "token circulates" `Quick test_token_circulates;
          Alcotest.test_case "convergence" `Quick test_convergence_from_arbitrary;
          Alcotest.test_case "never silent" `Quick test_never_silent;
          Alcotest.test_case "always some privilege" `Quick
            test_always_some_privilege;
        ] );
      ( "naive-bfs",
        [
          Alcotest.test_case "converges" `Quick test_naive_bfs_converges;
          Alcotest.test_case "dmax caps" `Quick test_naive_bfs_dmax_caps;
          Alcotest.test_case "adversarial crawl quadratic" `Quick
            test_adversarial_crawl_is_quadratic;
          Alcotest.test_case "adversarial on lollipop" `Quick
            test_adversarial_result_correct;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
