(* Tests for the experiment harness: workloads, worst-case
   aggregation, the stabilization harness and (smoke-level) the table
   generators that back bench/main.ml. *)

module Builders = Ss_graph.Builders
module Daemon = Ss_sim.Daemon
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Stabilization = Ss_verify.Stabilization
module Workloads = Ss_expt.Workloads
module Measure = Ss_expt.Measure
module Leader = Ss_algos.Leader_election
module Min_flood = Ss_algos.Min_flood
module Rng = Ss_prelude.Rng
module Table = Ss_prelude.Table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let table_lines t =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Table.render ppf t;
  Format.pp_print_flush ppf ();
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Workloads                                                            *)
(* ------------------------------------------------------------------ *)

let test_workloads_standard () =
  let rng = Rng.create 1 in
  let ws = Workloads.standard rng in
  check "non-empty" true (List.length ws > 10);
  List.iter
    (fun (w : Workloads.t) ->
      check "n matches graph" true (w.Workloads.n = Ss_graph.Graph.n w.Workloads.graph);
      check "diameter consistent" true
        (w.Workloads.diameter = Ss_graph.Properties.diameter w.Workloads.graph))
    ws

let test_workloads_diameter_sweep () =
  let ws = Workloads.diameter_sweep () in
  let ds = List.map (fun (w : Workloads.t) -> w.Workloads.diameter) ws in
  check "strictly increasing diameters" true
    (List.sort_uniq compare ds = ds && List.length ds >= 4)

let test_workloads_rings () =
  let ws = Workloads.rings [ 4; 8 ] in
  Alcotest.(check (list int)) "sizes" [ 4; 8 ]
    (List.map (fun (w : Workloads.t) -> w.Workloads.n) ws)

(* ------------------------------------------------------------------ *)
(* Stabilization harness                                                *)
(* ------------------------------------------------------------------ *)

let scenario () =
  let g = Builders.cycle 8 in
  {
    Stabilization.params = Transformer.params Leader.algo;
    graph = g;
    inputs = (fun p -> p);
  }

let test_clean_start_report () =
  let sc = scenario () in
  let r =
    Stabilization.run sc ~daemon:Daemon.synchronous
      ~start:(Stabilization.clean_start sc)
  in
  check "terminated" true r.Stabilization.terminated;
  check "legitimate" true r.Stabilization.legitimate;
  check_int "recovery instantaneous from clean start" 0
    r.Stabilization.recovery_moves;
  check_int "recovery rounds zero" 0 r.Stabilization.recovery_rounds;
  check "moves positive" true (r.Stabilization.moves > 0);
  Alcotest.(check (array int)) "outputs" (Array.make 8 0)
    r.Stabilization.outputs

let test_corrupted_start_recovers () =
  let sc = scenario () in
  let rng = Rng.create 2 in
  let start = Stabilization.corrupted_start rng ~max_height:8 sc in
  let r = Stabilization.run sc ~daemon:(Daemon.central_random rng) ~start in
  check "terminated" true r.Stabilization.terminated;
  check "legitimate" true r.Stabilization.legitimate;
  check "recovery tracked" true (r.Stabilization.recovery_moves >= 0);
  check "recovery before end" true
    (r.Stabilization.recovery_moves <= r.Stabilization.moves)

let test_recovery_tracking_off () =
  let sc = scenario () in
  let r =
    Stabilization.run ~track_recovery:false sc ~daemon:Daemon.synchronous
      ~start:(Stabilization.clean_start sc)
  in
  check_int "disabled marker" (-1) r.Stabilization.recovery_moves

let test_history_cached_values () =
  let sc = scenario () in
  let h = Stabilization.history sc in
  check_int "T on an 8-ring with sequential ids" 4 h.Ss_sync.Sync_runner.t

let test_daemon_portfolio () =
  let rng = Rng.create 3 in
  let d = Stabilization.daemon_portfolio rng in
  check_int "seven adversaries" 7 (List.length d);
  check "named" true (List.for_all (fun (n, _) -> String.length n > 0) d)

(* ------------------------------------------------------------------ *)
(* Measure                                                              *)
(* ------------------------------------------------------------------ *)

let test_worst_case_aggregation () =
  let sc = scenario () in
  let agg = Measure.worst_case ~seeds:[ 1; 2 ] ~max_height:8 sc in
  check_int "runs = seeds x portfolio" (2 * 7) agg.Measure.runs;
  check "legitimate everywhere" true agg.Measure.all_legitimate;
  check "spec default true" true agg.Measure.all_spec;
  check "max moves positive" true (agg.Measure.max_moves > 0);
  check "recovery <= moves" true
    (agg.Measure.max_recovery_moves <= agg.Measure.max_moves)

let test_worst_case_spec_detects_violation () =
  let sc = scenario () in
  let agg =
    Measure.worst_case ~seeds:[ 1 ] ~max_height:8 ~spec:(fun _ -> false) sc
  in
  check "violations reported" false agg.Measure.all_spec

let test_clean_run () =
  let sc = scenario () in
  let r = Measure.clean_run sc ~daemon:Daemon.synchronous in
  check "legitimate" true r.Stabilization.legitimate

(* ------------------------------------------------------------------ *)
(* Table generators (smoke)                                             *)
(* ------------------------------------------------------------------ *)

let test_space_rows_smoke () =
  let t = Ss_expt.Table1.space_rows ~seeds:[ 1 ] (Rng.create 5) in
  let lines = table_lines t in
  (* Header + rule + at least three data rows. *)
  check "has rows" true (List.length lines >= 5)

let test_blowup_rows_smoke () =
  let t = Ss_expt.Blowup_expt.rows ~max_k:3 ~seeds:[ 1 ] () in
  let lines = table_lines t in
  check_int "3 data rows" 5 (List.length lines);
  check "all ok" true
    (List.for_all
       (fun l ->
         (not (String.length l > 3)) || not (String.ends_with ~suffix:"NO" l))
       lines)

let test_energy_rows_smoke () =
  let t = Ss_expt.Energy_expt.rows ~seeds:[ 1 ] (Rng.create 6) in
  check "has rows" true (List.length (table_lines t) >= 6)

let test_locality_rows_smoke () =
  let t = Ss_expt.Locality_expt.rows ~seeds:[ 1 ] (Rng.create 8) in
  let lines = table_lines t in
  check "has rows" true (List.length lines >= 6);
  check "all legitimate" true
    (List.for_all (fun l -> not (String.ends_with ~suffix:"NO" l)) lines)

let test_cv_rows_smoke () =
  let t = Ss_expt.Instances.cv_rows ~seeds:[ 1 ] (Rng.create 7) in
  let lines = table_lines t in
  check "has rows" true (List.length lines >= 4);
  check "no failures" true
    (List.for_all (fun l -> not (String.ends_with ~suffix:"NO" l)) lines)

let () =
  Alcotest.run "expt"
    [
      ( "workloads",
        [
          Alcotest.test_case "standard" `Quick test_workloads_standard;
          Alcotest.test_case "diameter sweep" `Quick test_workloads_diameter_sweep;
          Alcotest.test_case "rings" `Quick test_workloads_rings;
        ] );
      ( "stabilization",
        [
          Alcotest.test_case "clean start" `Quick test_clean_start_report;
          Alcotest.test_case "corrupted start" `Quick test_corrupted_start_recovers;
          Alcotest.test_case "recovery tracking off" `Quick
            test_recovery_tracking_off;
          Alcotest.test_case "history" `Quick test_history_cached_values;
          Alcotest.test_case "portfolio" `Quick test_daemon_portfolio;
        ] );
      ( "measure",
        [
          Alcotest.test_case "aggregation" `Quick test_worst_case_aggregation;
          Alcotest.test_case "spec violation" `Quick
            test_worst_case_spec_detects_violation;
          Alcotest.test_case "clean run" `Quick test_clean_run;
        ] );
      ( "tables",
        [
          Alcotest.test_case "space rows" `Quick test_space_rows_smoke;
          Alcotest.test_case "blowup rows" `Quick test_blowup_rows_smoke;
          Alcotest.test_case "energy rows" `Quick test_energy_rows_smoke;
          Alcotest.test_case "cv rows" `Slow test_cv_rows_smoke;
          Alcotest.test_case "locality rows" `Slow test_locality_rows_smoke;
        ] );
    ]
