(* Tests for the extension modules: generic LOCAL view collection,
   ring MIS composed on Cole–Vishkin, and the model-hierarchy
   (anonymity) checkers of §2.2/§3.3. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Sync_runner = Ss_sync.Sync_runner
module Lv = Ss_algos.Local_views
module Mis = Ss_algos.Ring_mis
module Cv = Ss_algos.Cole_vishkin
module Min_flood = Ss_algos.Min_flood
module Leader = Ss_algos.Leader_election
module Bfs = Ss_algos.Bfs_tree
module Anonymity = Ss_verify.Anonymity
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let int_views =
  Lv.algo ~equal:Int.equal
    ~input_bits:(fun v -> 1 + Util.bit_width (abs v))
    ~random_input:(fun rng -> Rng.int rng 64)
    ~pp:Format.pp_print_int

(* ------------------------------------------------------------------ *)
(* Local views                                                          *)
(* ------------------------------------------------------------------ *)

let test_tree_helpers () =
  let t =
    { Lv.label = 1; children = [ Lv.leaf 2; { Lv.label = 3; children = [ Lv.leaf 4 ] } ] }
  in
  check_int "depth" 2 (Lv.depth_of t);
  check_int "size" 4 (Lv.tree_size t);
  check_int "leaf depth" 0 (Lv.depth_of (Lv.leaf 9));
  check "equal to itself" true (Lv.equal_tree Int.equal t t);
  check "differs from leaf" false (Lv.equal_tree Int.equal t (Lv.leaf 1));
  check_int "fold sum" 10 (Lv.fold_ball ( + ) 0 t);
  check_int "min in ball" 1 (Lv.min_in_ball t Fun.id)

let test_views_converge_to_expected () =
  let g = Builders.cycle 5 in
  let base p = 10 + p in
  let radius = 3 in
  let inputs p = { Lv.self_input = base p; radius } in
  let h = Sync_runner.run int_views g ~inputs in
  check_int "T = radius" radius h.Sync_runner.t;
  Graph.iter_nodes g (fun p ->
      check
        (Printf.sprintf "node %d view" p)
        true
        (Lv.equal_tree Int.equal
           (Sync_runner.final h).(p)
           (Lv.expected_view g ~inputs:base ~radius p)))

let test_views_intermediate_rounds () =
  (* After round i every node holds exactly its depth-i view. *)
  let g = Builders.path 4 in
  let base p = p in
  let radius = 3 in
  let inputs p = { Lv.self_input = base p; radius } in
  let h = Sync_runner.run int_views g ~inputs in
  for i = 0 to radius do
    Graph.iter_nodes g (fun p ->
        check
          (Printf.sprintf "round %d node %d" i p)
          true
          (Lv.equal_tree Int.equal
             h.Sync_runner.states_by_round.(i).(p)
             (Lv.expected_view g ~inputs:base ~radius:i p)))
  done

let test_views_radius_zero_and_singleton () =
  let g = Builders.path 3 in
  let inputs p = { Lv.self_input = p; radius = 0 } in
  let h = Sync_runner.run int_views g ~inputs in
  check_int "radius 0: T = 0" 0 h.Sync_runner.t;
  let g1 = Builders.single () in
  let h1 =
    Sync_runner.run int_views g1 ~inputs:(fun _ -> { Lv.self_input = 7; radius = 5 })
  in
  check_int "singleton: T = 0" 0 h1.Sync_runner.t

let test_views_leader_election_within_ball () =
  (* With radius >= D the minimum over the view is the global minimum:
     generic leader election through LOCAL simulation. *)
  let rng = Rng.create 21 in
  let g = Builders.random_connected rng ~n:7 ~extra_edges:3 in
  let ids = Leader.random_ids rng g in
  let d = Ss_graph.Properties.diameter g in
  let inputs p = { Lv.self_input = ids p; radius = d } in
  let h = Sync_runner.run int_views g ~inputs in
  let expected = Graph.fold_nodes g ~init:max_int ~f:(fun acc p -> min acc (ids p)) in
  Graph.iter_nodes g (fun p ->
      check_int "min over ball = global min" expected
        (Lv.min_in_ball (Sync_runner.final h).(p) Fun.id))

let test_views_through_transformer () =
  (* The heavyweight state type exercises the transformer's generic
     plumbing; corrupted view trees must be repaired. *)
  let rng = Rng.create 33 in
  let g = Builders.cycle 6 in
  let base p = p * 3 in
  let radius = 2 in
  let inputs p = { Lv.self_input = base p; radius } in
  let params = Transformer.params int_views in
  let hist = Sync_runner.run int_views g ~inputs in
  for seed = 1 to 10 do
    ignore seed;
    let start =
      Transformer.corrupt (Rng.split rng) ~max_height:(radius + 3) params
        (Transformer.clean_config params g ~inputs)
    in
    let stats =
      Transformer.run params (Daemon.distributed_random (Rng.split rng) ~p:0.5)
        start
    in
    check "terminated" true stats.Engine.terminated;
    check "legitimate" true
      (Checker.legitimate_terminal params hist stats.Engine.final = Ok ())
  done

(* ------------------------------------------------------------------ *)
(* Ring MIS                                                             *)
(* ------------------------------------------------------------------ *)

let test_mis_schedule () =
  check_int "schedule = CV + 3"
    (Cv.schedule_length 8 + 3)
    (Mis.schedule_length 8)

let test_mis_on_rings () =
  let rng = Rng.create 44 in
  List.iter
    (fun (n, width) ->
      let g = Builders.cycle n in
      let ids = Cv.random_ring_ids rng ~n ~width in
      let inputs = Mis.inputs ~ids ~width g in
      let h = Sync_runner.run Mis.algo g ~inputs in
      check_int
        (Printf.sprintf "T, n=%d" n)
        (Mis.schedule_length width)
        h.Sync_runner.t;
      check
        (Printf.sprintf "maximal independent set, n=%d" n)
        true
        (Mis.spec_holds g ~final:(Sync_runner.final h)))
    [ (3, 4); (7, 5); (16, 8); (33, 8); (100, 12) ]

let test_mis_spec_rejects () =
  let g = Builders.cycle 4 in
  let mk in_mis = { Mis.color = 0; round = 0; in_mis } in
  (* Adjacent flagged nodes: not independent. *)
  check "dependent rejected" false
    (Mis.spec_holds g ~final:[| mk true; mk true; mk false; mk false |]);
  (* No flags at all: not maximal. *)
  check "non-maximal rejected" false
    (Mis.spec_holds g ~final:[| mk false; mk false; mk false; mk false |]);
  (* Alternating flags: a proper MIS on a 4-cycle. *)
  check "proper MIS accepted" true
    (Mis.spec_holds g ~final:[| mk true; mk false; mk true; mk false |])

let test_mis_through_transformer () =
  let rng = Rng.create 55 in
  let n = 17 and width = 8 in
  let g = Builders.cycle n in
  let ids = Cv.random_ring_ids rng ~n ~width in
  let inputs = Mis.inputs ~ids ~width g in
  let b = Mis.schedule_length width in
  let params = Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Mis.algo in
  let hist = Sync_runner.run Mis.algo g ~inputs in
  for seed = 1 to 8 do
    ignore seed;
    let start =
      Transformer.corrupt (Rng.split rng) ~max_height:b params
        (Transformer.clean_config params g ~inputs)
    in
    let stats =
      Transformer.run params (Daemon.distributed_random (Rng.split rng) ~p:0.4)
        start
    in
    check "terminated" true stats.Engine.terminated;
    check "legitimate" true
      (Checker.legitimate_terminal params hist stats.Engine.final = Ok ());
    check "MIS spec" true
      (Mis.spec_holds g ~final:(Transformer.outputs stats.Engine.final))
  done

(* ------------------------------------------------------------------ *)
(* Anonymity / model hierarchy                                          *)
(* ------------------------------------------------------------------ *)

let test_min_flood_is_anonymous () =
  let rng = Rng.create 66 in
  check "port invariant" true
    (Anonymity.sync_step_port_invariant ~rng ~trials:300 Min_flood.algo
       ~gen_input:(fun rng -> Rng.int rng 100)
       ~gen_state:(fun rng -> Rng.int rng 100)
       ~max_degree:6);
  check "multiset invariant" true
    (Anonymity.sync_step_multiset_invariant ~rng ~trials:300 Min_flood.algo
       ~gen_input:(fun rng -> Rng.int rng 100)
       ~gen_state:(fun rng -> Rng.int rng 100)
       ~max_degree:6)

let test_bfs_is_port_sensitive () =
  (* BFS uses port numbers (it stores the parent's port): shuffling
     neighbors must change its behaviour on some trial — the checker
     correctly detects that it does NOT fit the weakest model. *)
  let rng = Rng.create 77 in
  let ok =
    Anonymity.sync_step_port_invariant ~rng ~trials:500 Bfs.algo
      ~gen_input:(fun _rng -> { Bfs.is_root = false; degree = 4 })
      ~gen_state:(fun rng ->
        match Rng.int rng 3 with
        | 0 -> Bfs.Null
        | 1 -> Bfs.Root
        | _ -> Bfs.Parent (Rng.int rng 4))
      ~max_degree:4
  in
  check "detected as port-sensitive" false ok

let test_transformer_preserves_anonymity () =
  (* Trans(min-flood) must itself run in the weak model: all its guards
     and actions are invariant under neighbor permutations. *)
  let rng = Rng.create 88 in
  let params = Transformer.params Min_flood.algo in
  let algo = Transformer.algorithm params in
  let gen_state rng =
    let h = Rng.int rng 4 in
    Ss_core.Trans_state.make
      ~init:(Rng.int rng 50)
      ~status:(if Rng.bool rng then Ss_core.Trans_state.C else Ss_core.Trans_state.E)
      ~cells:(Array.init h (fun _ -> Rng.int rng 50))
  in
  check "transformed algorithm is port invariant" true
    (Anonymity.rules_port_invariant ~rng ~trials:400 algo
       ~gen_input:(fun rng -> Rng.int rng 50)
       ~gen_state ~max_degree:5)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:60 ~name:"view collection matches direct unfolding"
      (pair small_int (int_range 0 3))
      (fun (seed, radius) ->
        let rng = Rng.create (seed + 1) in
        let n = 2 + Rng.int rng 6 in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let base p = p * 7 mod 13 in
        let inputs p = { Lv.self_input = base p; radius } in
        let h = Sync_runner.run int_views g ~inputs in
        let ok = ref true in
        Graph.iter_nodes g (fun p ->
            if
              not
                (Lv.equal_tree Int.equal
                   (Sync_runner.final h).(p)
                   (Lv.expected_view g ~inputs:base ~radius p))
            then ok := false);
        !ok);
    Test.make ~count:60 ~name:"ring MIS is maximal independent on random rings"
      (pair small_int (int_range 3 40))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let width = max 8 (Util.bit_width n) in
        let g = Builders.cycle n in
        let ids = Cv.random_ring_ids rng ~n ~width in
        let inputs = Mis.inputs ~ids ~width g in
        let h = Sync_runner.run Mis.algo g ~inputs in
        Mis.spec_holds g ~final:(Sync_runner.final h));
  ]

let () =
  Alcotest.run "extensions"
    [
      ( "local-views",
        [
          Alcotest.test_case "tree helpers" `Quick test_tree_helpers;
          Alcotest.test_case "converges to expected view" `Quick
            test_views_converge_to_expected;
          Alcotest.test_case "intermediate rounds" `Quick
            test_views_intermediate_rounds;
          Alcotest.test_case "radius 0 / singleton" `Quick
            test_views_radius_zero_and_singleton;
          Alcotest.test_case "leader election in a ball" `Quick
            test_views_leader_election_within_ball;
          Alcotest.test_case "through the transformer" `Quick
            test_views_through_transformer;
        ] );
      ( "ring-mis",
        [
          Alcotest.test_case "schedule" `Quick test_mis_schedule;
          Alcotest.test_case "on rings" `Quick test_mis_on_rings;
          Alcotest.test_case "spec rejects" `Quick test_mis_spec_rejects;
          Alcotest.test_case "through the transformer" `Quick
            test_mis_through_transformer;
        ] );
      ( "anonymity",
        [
          Alcotest.test_case "min-flood is anonymous" `Quick
            test_min_flood_is_anonymous;
          Alcotest.test_case "BFS is port-sensitive" `Quick
            test_bfs_is_port_sensitive;
          Alcotest.test_case "transformer preserves anonymity" `Quick
            test_transformer_preserves_anonymity;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
