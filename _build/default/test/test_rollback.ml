(* Tests for the rollback-compiler baseline and the §7 exponential
   blow-up construction (Figure 1 + the Γ_k schedule). *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Gk = Ss_graph.Gk
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Sync_runner = Ss_sync.Sync_runner
module Min_flood = Ss_algos.Min_flood
module Leader = Ss_algos.Leader_election
module Rollback = Ss_rollback.Rollback
module Blowup = Ss_rollback.Blowup
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rollback compiler basics                                             *)
(* ------------------------------------------------------------------ *)

let test_state_accessors () =
  let st = { Rollback.init = 5; cells = [| 4; 3 |] } in
  check_int "height" 2 (Rollback.height st);
  check_int "cell 0" 5 (Rollback.cell st 0);
  check_int "cell 2" 3 (Rollback.cell st 2);
  check "out of range" true
    (try
       ignore (Rollback.cell st 3);
       false
     with Invalid_argument _ -> true)

let test_bound_validated () =
  check "bound >= 1 required" true
    (try
       ignore (Rollback.algorithm Min_flood.algo ~bound:0);
       false
     with Invalid_argument _ -> true)

let test_clean_run_simulates () =
  let g = Builders.path 4 in
  let inputs p = [| 9; 9; 2; 9 |].(p) in
  let bound = 6 in
  let algo = Rollback.algorithm Min_flood.algo ~bound in
  let stats =
    Engine.run algo Daemon.synchronous
      (Rollback.clean_config Min_flood.algo ~bound g ~inputs)
  in
  check "terminated" true stats.Engine.terminated;
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  check "simulates history" true
    (Rollback.simulates_history Min_flood.algo hist stats.Engine.final)

let test_rollback_is_self_stabilizing () =
  (* Exponential in the worst case, but still correct: corrupted cells
     are repaired under any daemon. *)
  let rng = Rng.create 42 in
  for seed = 1 to 15 do
    let rng' = Rng.create seed in
    let n = 3 + Rng.int rng' 6 in
    let g = Builders.random_connected rng' ~n ~extra_edges:2 in
    let inputs = Leader.random_ids rng' g in
    let bound = n + 2 in
    let algo = Rollback.algorithm Leader.algo ~bound in
    let start =
      Rollback.corrupt (Rng.split rng) Leader.algo
        (Rollback.clean_config Leader.algo ~bound g ~inputs)
    in
    let daemon =
      match seed mod 3 with
      | 0 -> Daemon.synchronous
      | 1 -> Daemon.distributed_random (Rng.split rng) ~p:0.5
      | _ -> Daemon.central_random (Rng.split rng)
    in
    let stats = Engine.run ~max_steps:1_000_000 algo daemon start in
    check "terminated" true stats.Engine.terminated;
    let hist = Sync_runner.run Leader.algo g ~inputs in
    check "repaired" true
      (Rollback.simulates_history Leader.algo hist stats.Engine.final)
  done

let test_corrupt_preserves_shape () =
  let g = Builders.cycle 5 in
  let bound = 4 in
  let clean = Rollback.clean_config Min_flood.algo ~bound g ~inputs:(fun p -> p) in
  let rng = Rng.create 3 in
  let c = Rollback.corrupt rng Min_flood.algo clean in
  Graph.iter_nodes g (fun p ->
      let st = Config.state c p in
      check_int "init preserved" p st.Rollback.init;
      check_int "length fixed" bound (Rollback.height st))

let test_fix_is_one_move () =
  (* A single activation corrects every faulty cell at once. *)
  let g = Builders.path 2 in
  let bound = 3 in
  let inputs p = [| 4; 7 |].(p) in
  let algo = Rollback.algorithm Min_flood.algo ~bound in
  (* Node 0's list is garbage everywhere. *)
  let start =
    Rollback.config_of_cells g ~inputs ~init:inputs
      ~cells:(fun p _ -> if p = 0 then 99 else 7)
      ~bound
  in
  let after, moved = Engine.step algo start [ 0 ] in
  check_int "one move" 1 (List.length moved);
  let st = Config.state after 0 in
  (* Every cell is recomputed from the pre-step closed neighborhood. *)
  check_int "cell 1 fixed" 4 (Rollback.cell st 1);
  (* Cells 2 and 3 are recomputed from the PRE-step values (own stale
     99s vs the neighbor's 7s): min is 7, not yet 4 — the cascade takes
     further activations, which is exactly what Γ_k exploits. *)
  check_int "cell 2 from stale deps" 7 (Rollback.cell st 2);
  check_int "cell 3 from stale deps" 7 (Rollback.cell st 3)

(* ------------------------------------------------------------------ *)
(* The Γ_k schedule (§7)                                                *)
(* ------------------------------------------------------------------ *)

let test_gamma_length_formula () =
  for k = 1 to 8 do
    check_int
      (Printf.sprintf "closed form, k=%d" k)
      (Blowup.gamma_length k)
      (List.length (Blowup.gamma k))
  done

let test_gamma_more_than_doubles () =
  for k = 1 to 9 do
    check
      (Printf.sprintf "|Gamma_%d| > 2|Gamma_%d|" (k + 1) k)
      true
      (Blowup.gamma_length (k + 1) > 2 * Blowup.gamma_length k)
  done

let test_gamma_1_and_2 () =
  (* Γ_1 = a1; Γ_2 as written in §7. *)
  let nd role i = Gk.node ~k:2 role i in
  Alcotest.(check (list int)) "Gamma_1" [ nd Gk.A 1 ] (Blowup.gamma 1);
  Alcotest.(check (list int)) "Gamma_2"
    [
      nd Gk.A 1; nd Gk.B 2; nd Gk.C 1; nd Gk.D 1; nd Gk.E 1; nd Gk.A 1;
      nd Gk.A 2; nd Gk.B 2; nd Gk.C 1; nd Gk.D 1; nd Gk.E 1; nd Gk.A 1;
    ]
    (Blowup.gamma 2)

let test_initial_config_matches_figure_1 () =
  let k = 3 in
  let config = Blowup.initial_config ~k in
  let g = config.Config.graph in
  check_int "graph is G_3" 15 (Graph.n g);
  Graph.iter_nodes g (fun p ->
      let st = Config.state config p in
      let index = Gk.fig1_index ~k p in
      check_int "list length is B" (Blowup.bound_for k) (Rollback.height st);
      for i = 1 to Rollback.height st do
        check_int
          (Printf.sprintf "node %d cell %d" p i)
          (if i < index then 1 else 0)
          (Rollback.cell st i)
      done)

let test_gamma_is_a_legal_execution () =
  (* The engine validates every scripted activation; an exception here
     would falsify the §7 reproduction. *)
  for k = 1 to 6 do
    let r = Blowup.run ~k () in
    check (Printf.sprintf "k=%d stabilizes" k) true r.Blowup.stabilized;
    check_int
      (Printf.sprintf "k=%d schedule executed in full" k)
      (Blowup.gamma_length k)
      r.Blowup.schedule_moves;
    check
      (Printf.sprintf "k=%d total >= schedule" k)
      true
      (r.Blowup.total_moves >= r.Blowup.schedule_moves)
  done

let test_gamma_effect_raises_a_indices () =
  (* The net effect of Γ_k is to raise every a-node's index by one and
     leave every other node unchanged. *)
  let k = 3 in
  let config = Blowup.initial_config ~k in
  let algo = Rollback.algorithm Min_flood.algo ~bound:(Blowup.bound_for k) in
  let final =
    List.fold_left
      (fun c p -> fst (Engine.step algo c [ p ]))
      config (Blowup.gamma k)
  in
  let index_of st =
    let rec go i =
      if i > Rollback.height st then i
      else if Rollback.cell st i = 1 then go (i + 1)
      else i
    in
    go 1
  in
  Graph.iter_nodes config.Config.graph (fun p ->
      let before = index_of (Config.state config p) in
      let after = index_of (Config.state final p) in
      match Gk.role_of p with
      | Gk.A -> check_int (Printf.sprintf "a-node %d up by one" p) (before + 1) after
      | Gk.B | Gk.C | Gk.D | Gk.E ->
          check_int (Printf.sprintf "node %d unchanged" p) before after)

let test_blowup_exponential_growth () =
  (* Total stabilization moves more than double with each k — the
     exponential-energy theorem made measurable. *)
  let totals =
    List.map (fun k -> (Blowup.run ~k ()).Blowup.total_moves) [ 4; 5; 6; 7; 8 ]
  in
  let rec ratios = function
    | a :: b :: rest ->
        check "growth factor > 1.6" true
          (float_of_int b /. float_of_int a > 1.6);
        ratios (b :: rest)
    | _ -> ()
  in
  ratios totals

let test_transformer_polynomial_on_fig1 () =
  (* The transformer on the same initial contents stays polynomial:
     its move count grows roughly linearly in n, so the ratio
     rollback/transformer must exceed 2 for k >= 8. *)
  let moves k =
    let m, ok =
      Ss_expt.Blowup_expt.transformer_on_fig1 ~k ~daemon:Ss_sim.Daemon.central_min
    in
    check (Printf.sprintf "transformer terminates, k=%d" k) true ok;
    m
  in
  let m4 = moves 4 and m8 = moves 8 in
  (* Linear-ish growth: doubling k far less than quadruples moves. *)
  check "polynomial growth" true (m8 < 4 * m4);
  let rollback8 = (Blowup.run ~k:8 ()).Blowup.total_moves in
  check "rollback loses at k=8" true (rollback8 > 2 * m8)

let () =
  Alcotest.run "rollback"
    [
      ( "compiler",
        [
          Alcotest.test_case "state accessors" `Quick test_state_accessors;
          Alcotest.test_case "bound validated" `Quick test_bound_validated;
          Alcotest.test_case "clean run simulates" `Quick test_clean_run_simulates;
          Alcotest.test_case "self-stabilizing" `Quick
            test_rollback_is_self_stabilizing;
          Alcotest.test_case "corrupt preserves shape" `Quick
            test_corrupt_preserves_shape;
          Alcotest.test_case "fix is one move" `Quick test_fix_is_one_move;
        ] );
      ( "gamma",
        [
          Alcotest.test_case "length formula" `Quick test_gamma_length_formula;
          Alcotest.test_case "more than doubles" `Quick
            test_gamma_more_than_doubles;
          Alcotest.test_case "Gamma_1 and Gamma_2" `Quick test_gamma_1_and_2;
          Alcotest.test_case "Figure 1 configuration" `Quick
            test_initial_config_matches_figure_1;
          Alcotest.test_case "legal execution" `Quick
            test_gamma_is_a_legal_execution;
          Alcotest.test_case "raises a-indices by one" `Quick
            test_gamma_effect_raises_a_indices;
        ] );
      ( "separation",
        [
          Alcotest.test_case "exponential growth" `Quick
            test_blowup_exponential_growth;
          Alcotest.test_case "transformer stays polynomial" `Quick
            test_transformer_polynomial_on_fig1;
        ] );
    ]
