(* Tests for Ss_sync: the synchronous reference runner. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Properties = Ss_graph.Properties
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module Min_flood = Ss_algos.Min_flood
module Toy = Ss_algos.Toy
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_constant_terminates_immediately () =
  let g = Builders.cycle 5 in
  let h = Sync_runner.run Toy.constant g ~inputs:(fun p -> p) in
  check_int "T = 0" 0 h.Sync_runner.t;
  check_int "single row" 1 (Array.length h.Sync_runner.states_by_round);
  Alcotest.(check (array int)) "fixpoint = inputs" [| 0; 1; 2; 3; 4 |]
    (Sync_runner.final h)

let test_clock_execution_time () =
  let g = Builders.path 3 in
  let h = Sync_runner.run Toy.clock g ~inputs:(fun _ -> 7) in
  check_int "T = K" 7 (Sync_runner.execution_time h);
  Alcotest.(check (array int)) "fixpoint" [| 7; 7; 7 |] (Sync_runner.final h);
  (* Row i holds the value i at every node. *)
  for i = 0 to 7 do
    check_int (Printf.sprintf "row %d" i) i
      h.Sync_runner.states_by_round.(i).(1)
  done

let test_min_flood_history () =
  let g = Builders.path 4 in
  let values = [| 5; 9; 9; 9 |] in
  let h = Sync_runner.run Min_flood.algo g ~inputs:(fun p -> values.(p)) in
  check_int "T = ecc of the minimum" 3 h.Sync_runner.t;
  (* st_p^i is the minimum over the closed i-ball around p. *)
  for i = 0 to 3 do
    for p = 0 to 3 do
      let expect = if p <= i then 5 else 9 in
      check_int
        (Printf.sprintf "st_%d^%d" p i)
        expect
        h.Sync_runner.states_by_round.(i).(p)
    done
  done

let test_state_at_clamps () =
  let g = Builders.path 2 in
  let h = Sync_runner.run Min_flood.algo g ~inputs:(fun p -> p) in
  check_int "at T" 0 (Sync_runner.state_at h ~round:h.Sync_runner.t ~node:1);
  check_int "beyond T clamps" 0 (Sync_runner.state_at h ~round:1000 ~node:1)

let test_min_flood_t_is_eccentricity () =
  let rng = Rng.create 11 in
  for _ = 1 to 30 do
    let n = 2 + Rng.int rng 10 in
    let g = Builders.random_connected rng ~n ~extra_edges:(Rng.int rng 4) in
    let minimum = Rng.int rng n in
    (* Unique minimum at node [minimum]. *)
    let inputs p = if p = minimum then 0 else 10 + p in
    let h = Sync_runner.run Min_flood.algo g ~inputs in
    check "T <= ecc(min)" true
      (h.Sync_runner.t <= Properties.eccentricity g minimum);
    check "all nodes converged to 0" true
      (Array.for_all (fun s -> s = 0) (Sync_runner.final h))
  done

let test_did_not_terminate () =
  (* A blinker never reaches a fixpoint. *)
  let blinker =
    {
      Sync_algo.sync_name = "blinker";
      equal = Int.equal;
      init = (fun _ -> 0);
      step = (fun _ self _ -> 1 - self);
      random_state = (fun _ _ -> 0);
      state_bits = (fun _ -> 1);
      pp_state = Format.pp_print_int;
    }
  in
  let g = Builders.path 2 in
  check "raises Did_not_terminate" true
    (try
       ignore (Sync_runner.run ~max_rounds:50 blinker g ~inputs:(fun _ -> ()));
       false
     with Sync_runner.Did_not_terminate _ -> true)

let test_max_state_bits () =
  let g = Builders.path 3 in
  let h = Sync_runner.run Min_flood.algo g ~inputs:(fun p -> 100 * p) in
  (* The largest value ever stored is 200: 1 sign bit + 8 value bits. *)
  check_int "S" 9 (Sync_runner.max_state_bits Min_flood.algo h)

let test_apply () =
  check_int "one step of min-flood" 2
    (Sync_algo.apply Min_flood.algo 0 5 [| 2; 7 |])

let test_history_metadata () =
  let g = Builders.cycle 4 in
  let h = Sync_runner.run Min_flood.algo g ~inputs:(fun p -> p) in
  check_int "graph carried" 4 (Graph.n h.Sync_runner.graph);
  Alcotest.(check (array int)) "inputs carried" [| 0; 1; 2; 3 |]
    h.Sync_runner.inputs

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:80
      ~name:"history rows obey the synchronous step relation"
      (pair small_int (int_range 2 8))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let values = Array.init n (fun _ -> Rng.int rng 50) in
        let h = Sync_runner.run Min_flood.algo g ~inputs:(fun p -> values.(p)) in
        let rows = h.Sync_runner.states_by_round in
        let ok = ref true in
        for i = 0 to Array.length rows - 2 do
          for p = 0 to n - 1 do
            let nbrs = Array.map (fun q -> rows.(i).(q)) (Graph.neighbors g p) in
            if rows.(i + 1).(p) <> Sync_algo.apply Min_flood.algo values.(p) rows.(i).(p) nbrs
            then ok := false
          done
        done;
        !ok);
    Test.make ~count:80 ~name:"T is minimal (row T-1 differs from row T)"
      (pair small_int (int_range 2 8))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let values = Array.init n (fun _ -> Rng.int rng 50) in
        let h = Sync_runner.run Min_flood.algo g ~inputs:(fun p -> values.(p)) in
        let t = h.Sync_runner.t in
        t = 0
        || h.Sync_runner.states_by_round.(t - 1)
           <> h.Sync_runner.states_by_round.(t));
  ]

let () =
  Alcotest.run "sync"
    [
      ( "runner",
        [
          Alcotest.test_case "constant" `Quick test_constant_terminates_immediately;
          Alcotest.test_case "clock" `Quick test_clock_execution_time;
          Alcotest.test_case "min-flood history" `Quick test_min_flood_history;
          Alcotest.test_case "state_at clamps" `Quick test_state_at_clamps;
          Alcotest.test_case "T bounded by eccentricity" `Quick
            test_min_flood_t_is_eccentricity;
          Alcotest.test_case "non-termination detected" `Quick
            test_did_not_terminate;
          Alcotest.test_case "max state bits" `Quick test_max_state_bits;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "history metadata" `Quick test_history_metadata;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
