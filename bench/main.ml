(* Benchmark harness: regenerates every table and figure of the paper
   and then times the hot paths of the implementation with Bechamel.

   Paper artefacts reproduced (see DESIGN.md §3 and EXPERIMENTS.md):
     Table 1 (lazy / greedy / error-recovery / space rows),
     §5.1 leader election, §5.2 BFS tree, §5.3 Cole-Vishkin,
     §6 message/energy accounting,
     §7 + Figure 1 rollback exponential blow-up vs the transformer.

   Run with: dune exec bench/main.exe *)

module Rng = Ss_prelude.Rng
module Table = Ss_prelude.Table
module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module P = Ss_core.Predicates

let seeds = [ 1; 2 ]
let fresh_rng () = Rng.create 7

let section title f =
  let t0 = Unix.gettimeofday () in
  let table = f () in
  Printf.printf "== %s  [%.1fs] ==\n%!" title (Unix.gettimeofday () -. t0);
  Table.print table

let experiment_tables () =
  print_endline "#### Paper experiment reproduction ####";
  print_newline ();
  section "Table 1 / lazy mode: moves vs n^3+nT, rounds vs D+T" (fun () ->
      Ss_expt.Table1.lazy_rows ~seeds (fresh_rng ()));
  section "Table 1 / greedy mode: rounds scale with B" (fun () ->
      Ss_expt.Table1.greedy_rows ~seeds (fresh_rng ()));
  section "Table 1 / error recovery: rounds vs min(D,B)" (fun () ->
      Ss_expt.Table1.recovery_rows ~seeds (fresh_rng ()));
  section "Table 1 / space: per-node bits vs B*S" (fun () ->
      Ss_expt.Table1.space_rows ~seeds (fresh_rng ()));
  section "§5.1 leader election instance" (fun () ->
      Ss_expt.Instances.leader_rows ~seeds (fresh_rng ()));
  section "§5.2 BFS spanning tree instance" (fun () ->
      Ss_expt.Instances.bfs_rows ~seeds (fresh_rng ()));
  section "§5.3 Cole-Vishkin ring 3-coloring instance" (fun () ->
      Ss_expt.Instances.cv_rows ~seeds (fresh_rng ()));
  section "shortest-path tree instance (Bellman-Ford input)" (fun () ->
      Ss_expt.Instances.shortest_path_rows ~seeds (fresh_rng ()));
  section "§6 energy: full-state vs delta encodings" (fun () ->
      Ss_expt.Energy_expt.rows ~seeds (fresh_rng ()));
  section "§7 / Figure 1: rollback exponential blow-up (validated Gamma_k)"
    (fun () -> Ss_expt.Blowup_expt.rows ~max_k:10 ());
  section "ablation: each rule mechanism is load-bearing" (fun () ->
      Ss_expt.Ablation_expt.rows ~seeds:[ 1; 2 ] (fresh_rng ()));
  section "§6 end-to-end: transformer over message passing" (fun () ->
      Ss_expt.Msgnet_expt.rows ~seeds (fresh_rng ()));
  section "baseline: hand-crafted min+1 BFS vs transformed BFS" (fun () ->
      Ss_expt.Baselines_expt.bfs_rows ~seeds (fresh_rng ()));
  section "baseline: Dijkstra's token ring [27] (non-silent reference)"
    (fun () -> Ss_expt.Baselines_expt.dijkstra_rows (fresh_rng ()));
  section "locality: generic LOCAL simulation, space = Theta(Delta^r) * B"
    (fun () -> Ss_expt.Locality_expt.rows (fresh_rng ()))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths                           *)
(* ------------------------------------------------------------------ *)

let bench_sync_runner () =
  let g = G.Builders.cycle 32 in
  let rng = Rng.create 1 in
  let inputs = Ss_algos.Leader_election.random_ids rng g in
  fun () ->
    ignore (Ss_sync.Sync_runner.run Ss_algos.Leader_election.algo g ~inputs)

(* A corrupted transformed-leader-election configuration on a ring of
   [n] nodes: the standard workload for the engine benchmarks. *)
let trans_ring ~n ~seed =
  let g = G.Builders.cycle n in
  let rng = Rng.create seed in
  let inputs = Ss_algos.Leader_election.random_ids rng g in
  let params = Core.Transformer.params Ss_algos.Leader_election.algo in
  let algo = Core.Transformer.algorithm params in
  let config =
    Core.Transformer.corrupt rng ~max_height:10 params
      (Core.Transformer.clean_config params g ~inputs)
  in
  (params, algo, config)

let bench_engine_step () =
  let _, algo, config = trans_ring ~n:32 ~seed:2 in
  let enabled = Sim.Config.enabled_nodes algo config in
  fun () -> ignore (Sim.Engine.step algo config enabled)

(* Naive enabled scan: what the old engine paid twice per step — every
   guard of every node, a fresh view array per node. *)
let bench_enabled_scan_naive ~n () =
  let _, algo, config = trans_ring ~n ~seed:3 in
  fun () -> ignore (Sim.Config.enabled_nodes algo config)

(* Incremental enabled scan: what the dirty-set engine pays per step —
   re-evaluate the closed neighborhood of the mover against reusable
   view buffers, then query the maintained enabled set. *)
let bench_enabled_scan_incr ~n () =
  let _, algo, config = trans_ring ~n ~seed:3 in
  let sched = Sim.Sched.create algo config in
  let p = n / 2 in
  fun () ->
    Sim.Sched.update sched config ~moved:[ p ];
    ignore (Sim.Sched.enabled sched)

let recovery_start ~n =
  let g = G.Builders.cycle n in
  let rng = Rng.create 4 in
  let inputs = Ss_algos.Leader_election.random_ids rng g in
  let params = Core.Transformer.params Ss_algos.Leader_election.algo in
  let start =
    Core.Transformer.corrupt rng ~max_height:10 params
      (Core.Transformer.clean_config params g ~inputs)
  in
  (params, start)

let bench_full_recovery ~n () =
  let params, start = recovery_start ~n in
  fun () -> ignore (Core.Transformer.run params Sim.Daemon.synchronous start)

let bench_full_recovery_naive ~n () =
  let params, start = recovery_start ~n in
  fun () ->
    ignore (Core.Transformer.run_naive params Sim.Daemon.synchronous start)

(* Packed vs boxed full recovery under a finite bound.  A packed slab
   holds a single live timeline (the engine mutates it in place), so a
   packed start is single-shot — both variants therefore rebuild the
   corrupted start inside the measured closure, making the pair an
   apples-to-apples end-to-end comparison including layout setup. *)
let bench_recovery_layout ~packed ~n () =
  let g = G.Builders.cycle n in
  let params =
    Core.Transformer.params ~bound:(P.Finite 16)
      Ss_algos.Leader_election.algo
  in
  fun () ->
    let rng = Rng.create 4 in
    let inputs = Ss_algos.Leader_election.random_ids rng g in
    let clean =
      if packed then
        Core.Transformer.packed_config params
          ~codec:Ss_algos.Leader_election.codec g ~inputs
      else Core.Transformer.clean_config params g ~inputs
    in
    let start = Core.Transformer.corrupt rng ~max_height:16 params clean in
    ignore (Core.Transformer.run params Sim.Daemon.synchronous start)

(* Message-network end-to-end recovery: corrupted Cole-Vishkin ring
   coloring (§5.3's ring instance — its finite bound keeps per-event
   simulation work constant, so the event loop itself is what is
   measured), indexed (ring-buffer channels, candidate-set scheduling,
   codec proofs, packed mirrors) vs naive (the original per-event
   Hashtbl.fold + List.nth channel selection over boxed queues, Marshal
   proof pre-images, boxed mirrors).  Both heartbeat regimes are
   benched explicitly: tight is the drain-safe minimum 2m + 2 — the §6
   stress point where proof waves keep every channel busy — and
   adaptive is the deployment default max 400 (4m).  The explicit
   event allowance covers the tight regime's proof churn on larger
   rings; the old grid silently fell back to the adaptive regime at
   m >= 199, which made the published timings non-monotone in n.  A
   fresh rng per run keeps every iteration on the identical event
   schedule *within* a path. *)
let msgnet_cv_start ~n ~width =
  let g = G.Builders.cycle n in
  let rng = Rng.create 4 in
  let ids = Ss_algos.Cole_vishkin.random_ring_ids rng ~n ~width in
  let inputs = Ss_algos.Cole_vishkin.inputs ~ids ~width g in
  let b = Ss_algos.Cole_vishkin.schedule_length width in
  let params =
    Core.Transformer.params ~mode:P.Greedy ~bound:(P.Finite b)
      Ss_algos.Cole_vishkin.algo
  in
  let start =
    Core.Transformer.corrupt rng ~max_height:b params
      (Core.Transformer.clean_config params g ~inputs)
  in
  let hist = Ss_sync.Sync_runner.run Ss_algos.Cole_vishkin.algo g ~inputs in
  (g, params, hist, start)

let msgnet_heartbeat ~regime g =
  let m = G.Graph.m g in
  match regime with `Tight -> (2 * m) + 2 | `Adaptive -> max 400 (4 * m)

(* Tight-regime recoveries deliver far more proof traffic than the
   default 2M-event cap (ring 256 needs ~2.1M deliveries alone); the
   one-shot rows at n = 10^5 need ~6M.  Headroom for both. *)
let msgnet_event_allowance = 50_000_000

let bench_msgnet_recovery ~indexed ~regime ~n () =
  let g, params, _, start = msgnet_cv_start ~n ~width:10 in
  let heartbeat_every = msgnet_heartbeat ~regime g in
  fun () ->
    let rng = Rng.create 23 in
    let _, stats =
      if indexed then
        Ss_msgnet.Msgnet.run ~codec:Ss_algos.Cole_vishkin.codec
          ~heartbeat_every ~max_events:msgnet_event_allowance ~rng params
          start
      else
        Ss_msgnet.Msgnet.run_naive ~heartbeat_every
          ~max_events:msgnet_event_allowance ~rng params start
    in
    assert stats.Ss_msgnet.Msgnet.quiescent

(* Deep-ladder clean simulation: min-flood on a path with distinct
   inputs, so the minimum walks the whole path and T = Θ(n) — every
   node's list grows to height ~n.  This is the regime where the old
   representation paid Θ(h) per extend and Θ(h·deg) per guard check;
   with O(1)-amortized extends and watermarked algoErr the whole run is
   Θ(moves·deg).  The uncached variant runs the identical dirty-set
   engine with the full-prefix reference algoErr — the pre-PR cost
   model — so the pair isolates exactly the incremental-verification
   win. *)
let deep_ladder_start ~n =
  let g = G.Builders.path n in
  let params = Core.Transformer.params Ss_algos.Min_flood.algo in
  (params, Core.Transformer.clean_config params g ~inputs:(fun p -> p))

let bench_deep_ladder ~cached ~n () =
  let params, start = deep_ladder_start ~n in
  if cached then fun () ->
    ignore (Core.Transformer.run params Sim.Daemon.synchronous start)
  else fun () ->
    ignore
      (Sim.Engine.run
         (Core.Transformer.algorithm_uncached params)
         Sim.Daemon.synchronous start)

(* Per-guard algoErr cost at height h: alternate between a clean view
   at height h-1 and its extension at height h (sharing one backing
   buffer), mimicking the dirty-set engine's re-evaluation pattern
   after an RU move.  The cached predicate re-checks at most one cell
   per call (O(Δ·deg), flat in h); the reference re-verifies the whole
   prefix (O(h·deg)). *)
let bench_algo_err ~cached ~h () =
  let params = Core.Transformer.params Ss_algos.Min_flood.algo in
  let input = 5 in
  let mk len =
    Core.Trans_state.make ~init:input ~status:Core.Trans_state.C
      ~cells:(Array.make len input)
  in
  let neighbors = [| mk h; mk h |] in
  let self_a =
    let s = ref (Core.Trans_state.clean input) in
    for _ = 1 to h - 1 do
      s := Core.Trans_state.extend !s input
    done;
    !s
  in
  let self_b = Core.Trans_state.extend self_a input in
  let va = { Sim.Algorithm.input; self = self_a; neighbors } in
  let vb = { Sim.Algorithm.input; self = self_b; neighbors } in
  let eval =
    if cached then begin
      let cache = P.make_cache () in
      fun v -> P.algo_err_cached cache params v
    end
    else fun v -> P.algo_err params v
  in
  let flip = ref false in
  fun () ->
    flip := not !flip;
    assert (not (eval (if !flip then vb else va)))

(* Graph construction at n=4096 exercises the O(n+m) validator
   (hashed symmetry probes); the old O(sum deg^2) symmetry scan made
   this the dominant cost of building dense-ish random graphs. *)
let bench_graph_construct ~n () =
  fun () ->
    let rng = Rng.create 11 in
    ignore (G.Builders.random_connected rng ~n ~extra_edges:(n / 2))

let bench_rollback_scan () =
  let config = Ss_rollback.Blowup.initial_config ~k:4 in
  let algo =
    Ss_rollback.Rollback.algorithm Ss_algos.Min_flood.algo
      ~bound:(Ss_rollback.Blowup.bound_for 4)
  in
  fun () -> ignore (Sim.Config.enabled_nodes algo config)

let bench_gamma () = fun () -> ignore (Ss_rollback.Blowup.gamma 8)

(* ------------------------------------------------------------------ *)
(* Parallel campaign sweep                                              *)
(* ------------------------------------------------------------------ *)

(* One representative slice of the experiment campaign — the same row
   functions the tables above use, with printing suppressed.  Output
   is byte-identical for every job count (DESIGN.md §11), so the sweep
   measures pure scheduling overhead/speedup. *)
let campaign_once () =
  ignore (Ss_expt.Table1.lazy_rows ~seeds (fresh_rng ()));
  ignore (Ss_expt.Table1.greedy_rows ~seeds (fresh_rng ()));
  ignore (Ss_expt.Energy_expt.rows ~seeds (fresh_rng ()));
  ignore (Ss_expt.Msgnet_expt.rows ~seeds (fresh_rng ()));
  ignore (Ss_expt.Blowup_expt.rows ~max_k:9 ());
  ignore (Ss_expt.Ablation_expt.rows ~seeds (fresh_rng ()))

(* Wall time of the campaign at -j 1 / 2 / 4, plus the j4-vs-j1
   speedup.  On a single hardware thread the "speedup" is honestly
   < 1x (extra domains only add GC coordination); the row exists so
   multi-core machines record their real scaling in BENCH_engine.json. *)
let parallel_sweep () =
  let time_at j =
    Ss_par.Par.set_jobs j;
    let t0 = Unix.gettimeofday () in
    campaign_once ();
    Unix.gettimeofday () -. t0
  in
  ignore (time_at 1) (* warm-up: code + allocator, off the record *);
  let sweep = List.map (fun j -> (j, time_at j)) [ 1; 2; 4 ] in
  Ss_par.Par.set_jobs (Ss_par.Par.default_jobs ());
  let t1 = List.assoc 1 sweep and t4 = List.assoc 4 sweep in
  let rows =
    List.map
      (fun (j, t) ->
        [
          Table.S (Printf.sprintf "campaign-sweep/j%d" j);
          Table.I (int_of_float (t *. 1e9));
        ])
      sweep
    @ [
        [
          Table.S "campaign-speedup/j4-vs-j1";
          Table.S (Printf.sprintf "%.2fx" (t1 /. t4));
        ];
      ]
  in
  Printf.printf
    "== parallel campaign sweep ==\nj1 %.2fs  j2 %.2fs  j4 %.2fs  (j4 \
     speedup %.2fx, %d hardware thread%s)\n%!"
    t1 (List.assoc 2 sweep) t4 (t1 /. t4)
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  rows

(* Packed-engine footprint at three scales: bytes retained on the
   major heap by a ready-to-run leader-election configuration (CSR
   torus, packed arena, state handles, inputs), measured as the
   compacted heap-words delta around construction, with the arena's
   own accounting reported alongside.  The bar from the paper-scale
   target is ~200 bytes/node at a million nodes. *)
let memory_rows () =
  (* [live_words] (a full-collection stat) rather than heap size:
     construction churns transient pools (e.g. the id-draw pool) whose
     freed space stays inside the heap chunks and would otherwise be
     billed to the configuration. *)
  let measure ~rows ~cols =
    let before = (Gc.stat ()).Gc.live_words in
    let g = G.Builders.torus ~rows ~cols in
    let rng = Rng.create 5 in
    let inputs = Ss_algos.Leader_election.random_ids rng g in
    let params =
      Core.Transformer.params ~bound:(P.Finite 8)
        Ss_algos.Leader_election.algo
    in
    let config =
      Core.Transformer.packed_config params
        ~codec:Ss_algos.Leader_election.codec g ~inputs
    in
    let after = (Gc.stat ()).Gc.live_words in
    let arena =
      match Core.Trans_state.backing_arena (Sim.Config.state config 0) with
      | Some a -> Core.Cellpack.bytes a
      | None -> 0
    in
    ignore (Sys.opaque_identity config);
    (8 * (after - before), arena)
  in
  List.concat_map
    (fun (rows, cols) ->
      let n = rows * cols in
      let heap, arena = measure ~rows ~cols in
      Printf.printf "memory/torus%d: %d bytes (%d/node, arena %d)\n%!" n heap
        (heap / n) arena;
      [
        [ Table.S (Printf.sprintf "memory-bytes/torus%d" n); Table.I heap ];
        [
          Table.S (Printf.sprintf "memory-arena-bytes/torus%d" n);
          Table.I arena;
        ];
        [
          Table.S (Printf.sprintf "memory-bytes-per-node/torus%d" n);
          Table.I (heap / n);
        ];
      ])
    [ (64, 64); (320, 320); (1000, 1000) ]

(* One-shot message-network rows for the scales Bechamel cannot
   iterate: ring 256 under the tight regime (the naive twin needs
   ~2.1M events there — tens of seconds per run), rings 10^4 and 10^5,
   and a leader workload on a torus (infinite bound — boxed mirrors —
   exercising the other layout arm at scale).  Each workload runs once
   under a hard deadline and must reach quiescence with a legitimate
   terminal configuration, or the bench aborts.  Alongside the wall
   time, each scale workload reports its wire-memory figures:
   msgnet-memory-bytes = resident mirror bytes plus the high-water
   mark of in-flight message bytes — what a deployment provisions for
   the message plane. *)
let msgnet_scale_rows () =
  let module M = Ss_msgnet.Msgnet in
  let deadline_s = 300.0 in
  let finish name params hist t0 (final, stats) =
    let dt = Unix.gettimeofday () -. t0 in
    if not stats.M.quiescent then
      failwith (Printf.sprintf "msgnet scale row %s: not quiescent" name);
    if Core.Checker.legitimate_terminal params hist final <> Ok () then
      failwith (Printf.sprintf "msgnet scale row %s: illegitimate" name);
    Printf.printf "%s: deliveries=%d peak-wire-bits=%d mirror-bytes=%d (%.1fs)\n%!"
      name stats.M.deliveries stats.M.peak_queued_bits stats.M.mirror_bytes dt;
    (stats, dt)
  in
  let time_cv ~indexed ~regime ~name ~n ~width =
    let g, params, hist, start = msgnet_cv_start ~n ~width in
    let heartbeat_every = msgnet_heartbeat ~regime g in
    let budget = Ss_report.Budget.v ~deadline_s () in
    let t0 = Unix.gettimeofday () in
    let rng = Rng.create 23 in
    finish name params hist t0
      (if indexed then
         M.run ~codec:Ss_algos.Cole_vishkin.codec ~heartbeat_every
           ~max_events:msgnet_event_allowance ~budget ~rng params start
       else
         M.run_naive ~heartbeat_every ~max_events:msgnet_event_allowance
           ~budget ~rng params start)
  in
  let time_leader_torus ~name ~rows ~cols =
    let g = G.Builders.torus ~rows ~cols in
    let rng = Rng.create 4 in
    let inputs = Ss_algos.Leader_election.random_ids rng g in
    let params = Core.Transformer.params Ss_algos.Leader_election.algo in
    let start =
      Core.Transformer.corrupt rng ~max_height:(rows + cols) params
        (Core.Transformer.clean_config params g ~inputs)
    in
    let hist = Ss_sync.Sync_runner.run Ss_algos.Leader_election.algo g ~inputs in
    let budget = Ss_report.Budget.v ~deadline_s () in
    let t0 = Unix.gettimeofday () in
    let run_rng = Rng.create 23 in
    finish name params hist t0
      (M.run ~codec:Ss_algos.Leader_election.codec
         ~max_events:msgnet_event_allowance ~budget ~rng:run_rng params start)
  in
  let ns dt = Table.I (int_of_float (dt *. 1e9)) in
  let wire_memory tag (stats : M.stats) n =
    let bytes = stats.M.mirror_bytes + ((stats.M.peak_queued_bits + 7) / 8) in
    [
      [ Table.S (Printf.sprintf "msgnet-memory-bytes/%s" tag); Table.I bytes ];
      [
        Table.S (Printf.sprintf "msgnet-memory-bytes-per-node/%s" tag);
        Table.I (bytes / n);
      ];
    ]
  in
  (* The honest ring-256 tight grid point (the pre-regime-split bench
     silently replaced it with an adaptive run), and the speedup row
     the perf claim is anchored to. *)
  let s_idx, t_idx =
    time_cv ~indexed:true ~regime:`Tight
      ~name:"msgnet-recovery-indexed/ring256/tight" ~n:256 ~width:10
  in
  let _, t_naive =
    time_cv ~indexed:false ~regime:`Tight
      ~name:"msgnet-recovery-naive/ring256/tight" ~n:256 ~width:10
  in
  let speedup = t_naive /. t_idx in
  if speedup < 3.0 then
    failwith
      (Printf.sprintf "msgnet speedup regression: %.2fx < 3x at ring256/tight"
         speedup);
  let s_10k, t_10k =
    time_cv ~indexed:true ~regime:`Adaptive
      ~name:"msgnet-recovery-indexed/ring10000" ~n:10_000 ~width:17
  in
  let s_100k, t_100k =
    time_cv ~indexed:true ~regime:`Adaptive
      ~name:"msgnet-recovery-indexed/ring100000" ~n:100_000 ~width:17
  in
  let s_torus, t_torus =
    time_leader_torus ~name:"msgnet-recovery-indexed/torus48x48-leader"
      ~rows:48 ~cols:48
  in
  [
    [ Table.S "msgnet-recovery-indexed/ring256/tight"; ns t_idx ];
    [ Table.S "msgnet-recovery-naive/ring256/tight"; ns t_naive ];
    [
      Table.S "msgnet-speedup/ring256-tight";
      Table.S (Printf.sprintf "%.1fx" speedup);
    ];
    [ Table.S "msgnet-recovery-indexed/ring10000"; ns t_10k ];
    [ Table.S "msgnet-recovery-indexed/ring100000"; ns t_100k ];
    [ Table.S "msgnet-recovery-indexed/torus48x48-leader"; ns t_torus ];
  ]
  @ wire_memory "ring256-tight" s_idx 256
  @ wire_memory "ring10000" s_10k 10_000
  @ wire_memory "ring100000" s_100k 100_000
  @ wire_memory "torus48x48-leader" s_torus 2304

(* The @msgnet-bigrun CI smoke, mirroring @bigrun on the message
   plane: full §6 recovery of Cole-Vishkin coloring on an n=100000
   ring from a corrupted start, in the production configuration —
   codec proof pre-images, packed mirrors, ring-buffer channels,
   candidate-set scheduling — under a hard wall-clock budget.  A
   deadline trip (non-quiescent finish) fails the alias. *)
let msgnet_bigrun () =
  let module M = Ss_msgnet.Msgnet in
  let t0 = Unix.gettimeofday () in
  let n = 100_000 in
  let g, params, hist, start = msgnet_cv_start ~n ~width:17 in
  let heartbeat_every = msgnet_heartbeat ~regime:`Adaptive g in
  let budget = Ss_report.Budget.v ~deadline_s:240.0 () in
  let rng = Rng.create 23 in
  let final, stats =
    M.run ~codec:Ss_algos.Cole_vishkin.codec ~heartbeat_every
      ~max_events:msgnet_event_allowance ~budget ~rng params start
  in
  let legitimate = Core.Checker.legitimate_terminal params hist final = Ok () in
  Printf.printf
    "msgnet-bigrun: n=%d deliveries=%d waves=%d peak-wire-bits=%d \
     mirror-bytes=%d quiescent=%b legitimate=%b (%.1fs)\n%!"
    n stats.M.deliveries stats.M.proof_waves stats.M.peak_queued_bits
    stats.M.mirror_bytes stats.M.quiescent legitimate
    (Unix.gettimeofday () -. t0);
  if not (stats.M.quiescent && legitimate) then (
    prerr_endline
      "msgnet-bigrun: FAILED (deadline tripped or illegitimate terminal)";
    exit 1)

(* The @bigrun CI smoke: full recovery of leader election on an
   n=100000 torus from a fully corrupted packed start, sharded across
   the worker pool, under a hard wall-clock budget.  A budget trip or
   an illegitimate terminal configuration fails the alias. *)
let bigrun () =
  let t0 = Unix.gettimeofday () in
  let g = G.Builders.torus ~rows:200 ~cols:500 in
  let rng = Rng.create 6 in
  let inputs = Ss_algos.Leader_election.random_ids (Rng.split rng) g in
  let params =
    Core.Transformer.params ~bound:(P.Finite 8) Ss_algos.Leader_election.algo
  in
  let sc = { Ss_verify.Stabilization.params; graph = g; inputs } in
  let start =
    Ss_verify.Stabilization.corrupted_start (Rng.split rng)
      ~codec:Ss_algos.Leader_election.codec ~max_height:8 sc
  in
  let budget = Ss_report.Budget.v ~deadline_s:120.0 () in
  let report =
    Ss_verify.Stabilization.run ~budget ~sharded:true sc
      ~daemon:Sim.Daemon.synchronous ~start
  in
  Printf.printf
    "bigrun: n=%d moves=%d rounds=%d terminated=%b legitimate=%b (%.1fs)\n%!"
    (G.Graph.n g) report.moves report.rounds report.terminated
    report.legitimate
    (Unix.gettimeofday () -. t0);
  if not (report.terminated && report.legitimate) then (
    prerr_endline "bigrun: FAILED (budget tripped or illegitimate terminal)";
    exit 1)

(* Machine-readable results, written next to the printed tables so the
   perf trajectory is trackable across PRs.  Both renderings read the
   same typed Table.t — the text via Table.print, the JSON via the
   shared Ss_report.Run_report.of_table serializer — so the file
   content cannot drift from what was printed. *)
let bench_table label rows =
  let table = Table.create [ "benchmark"; "ns/run" ] in
  List.iter
    (fun (name, est) ->
      let cell =
        match est with
        | Some t -> Table.I (int_of_float (Float.round t))
        | None -> Table.S "n/a"
      in
      Table.add table [ Table.S name; cell ])
    rows;
  Printf.printf "== %s ==\n" label;
  Table.print table;
  table

let emit_json path label table =
  let oc = open_out path in
  output_string oc
    (Ss_report.Json.to_string (Ss_report.Run_report.of_table ~label table));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n%!" path
    (List.length (Table.rows table))

let micro_benchmarks () =
  let open Bechamel in
  print_endline "#### Micro-benchmarks (Bechamel) ####";
  print_newline ();
  let scan_sizes = [ 32; 256; 1024 ] in
  let scan_tests =
    List.concat_map
      (fun n ->
        [
          Test.make
            ~name:(Printf.sprintf "enabled-scan-naive/trans-ring%d" n)
            (Staged.stage (bench_enabled_scan_naive ~n ()));
          Test.make
            ~name:(Printf.sprintf "enabled-scan-incr/trans-ring%d" n)
            (Staged.stage (bench_enabled_scan_incr ~n ()));
        ])
      scan_sizes
  in
  let tests =
    Test.make_grouped ~name:"fasst" ~fmt:"%s %s"
      ([
         Test.make ~name:"sync-runner/leader-ring32"
           (Staged.stage (bench_sync_runner ()));
         Test.make ~name:"engine-step/trans-ring32"
           (Staged.stage (bench_engine_step ()));
       ]
      @ scan_tests
      @ [
          Test.make ~name:"full-recovery/trans-ring16"
            (Staged.stage (bench_full_recovery ~n:16 ()));
          Test.make ~name:"full-recovery-naive/trans-ring16"
            (Staged.stage (bench_full_recovery_naive ~n:16 ()));
          Test.make ~name:"full-recovery/trans-ring64"
            (Staged.stage (bench_full_recovery ~n:64 ()));
          Test.make ~name:"full-recovery-naive/trans-ring64"
            (Staged.stage (bench_full_recovery_naive ~n:64 ()));
          Test.make ~name:"recovery-rebuild-packed/ring256"
            (Staged.stage (bench_recovery_layout ~packed:true ~n:256 ()));
          Test.make ~name:"recovery-rebuild-boxed/ring256"
            (Staged.stage (bench_recovery_layout ~packed:false ~n:256 ()));
          Test.make ~name:"deep-ladder/path256"
            (Staged.stage (bench_deep_ladder ~cached:true ~n:256 ()));
          Test.make ~name:"deep-ladder-uncached/path256"
            (Staged.stage (bench_deep_ladder ~cached:false ~n:256 ()));
          Test.make ~name:"graph-construct/random4096"
            (Staged.stage (bench_graph_construct ~n:4096 ()));
          Test.make ~name:"rollback-scan/G4"
            (Staged.stage (bench_rollback_scan ()));
          Test.make ~name:"gamma-schedule/k8" (Staged.stage (bench_gamma ()));
        ]
      @ List.concat_map
          (fun h ->
            [
              Test.make
                ~name:(Printf.sprintf "algo-err-cached/h%d" h)
                (Staged.stage (bench_algo_err ~cached:true ~h ()));
              Test.make
                ~name:(Printf.sprintf "algo-err-naive/h%d" h)
                (Staged.stage (bench_algo_err ~cached:false ~h ()));
            ])
          [ 8; 64; 512 ]
      (* Ring 256 under the tight regime is a one-shot row in
         [msgnet_scale_rows] — the naive twin needs tens of seconds
         per run there, beyond what Bechamel can iterate. *)
      @ List.concat_map
          (fun (n, regime, tag) ->
            [
              Test.make
                ~name:(Printf.sprintf "msgnet-recovery-indexed/ring%d/%s" n tag)
                (Staged.stage (bench_msgnet_recovery ~indexed:true ~regime ~n ()));
              Test.make
                ~name:(Printf.sprintf "msgnet-recovery-naive/ring%d/%s" n tag)
                (Staged.stage
                   (bench_msgnet_recovery ~indexed:false ~regime ~n ()));
            ])
          [
            (16, `Tight, "tight");
            (64, `Tight, "tight");
            (16, `Adaptive, "adaptive");
            (64, `Adaptive, "adaptive");
            (256, `Adaptive, "adaptive");
          ])
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let estimates =
    List.map
      (fun (name, r) ->
        let est =
          match Analyze.OLS.estimates r with
          | Some (t :: _) -> Some t
          | _ -> None
        in
        (name, est))
      (List.sort compare rows)
  in
  (* Message-network benches get their own file so the §6 perf
     trajectory is trackable independently of the engine's. *)
  let is_msgnet (name, _) =
    let sub = "msgnet" in
    let ln = String.length name and ls = String.length sub in
    let rec at i = i + ls <= ln && (String.sub name i ls = sub || at (i + 1)) in
    at 0
  in
  let msgnet, engine = List.partition is_msgnet estimates in
  let engine_table = bench_table "engine micro-benchmarks" engine in
  let msgnet_table = bench_table "msgnet micro-benchmarks" msgnet in
  List.iter (Table.add engine_table) (parallel_sweep ());
  List.iter (Table.add engine_table) (memory_rows ());
  List.iter (Table.add msgnet_table) (msgnet_scale_rows ());
  emit_json "BENCH_engine.json" "engine micro-benchmarks" engine_table;
  emit_json "BENCH_msgnet.json" "msgnet micro-benchmarks" msgnet_table;
  (* The chaos grid rides along: scenario × algorithm × graph, fully
     deterministic (virtual clocks, per-cell seeds), so this artefact
     is byte-stable across machines and job counts — unlike the two
     timing files above. *)
  let sim_table, sim_ok =
    Ss_expt.Sim_expt.rows
      (Ss_expt.Sim_expt.default_workloads (Ss_prelude.Rng.create 42))
  in
  if not sim_ok then
    failwith "sim grid: a scenario cell failed to re-stabilize";
  emit_json "BENCH_sim.json" "chaos-mode scenario grid" sim_table;
  (* The three-way transformer comparison rides along too: every
     registered transformer × LCL workload × graph family, same
     determinism contract, so the artefact is byte-stable as well. *)
  let tf_table, tf_ok =
    Ss_expt.Transformers_expt.rows ~seeds:[ 1 ] (Ss_prelude.Rng.create 42)
  in
  if not tf_ok then
    failwith "transformers grid: an illegitimate terminal configuration";
  emit_json "BENCH_transformers.json" "transformer comparison grid" tf_table

let () =
  let t0 = Unix.gettimeofday () in
  let has flag = Array.exists (fun a -> a = flag) Sys.argv in
  if has "--bigrun" then bigrun ()
  else if has "--msgnet-bigrun" then msgnet_bigrun ()
  else begin
    if not (has "--micro") then experiment_tables ();
    micro_benchmarks ()
  end;
  Printf.printf "total wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
