(* fasst — Fully Asynchronous Self-Stabilization Toolkit.

   Command-line driver for the reproduction: run individual
   transformed algorithms under chosen adversaries, and regenerate
   every table of the paper (Table 1, the §5 instances, the §6 energy
   accounting, the §7 rollback blow-up). *)

module G = Ss_graph
module Sim = Ss_sim
module Core = Ss_core
module P = Ss_core.Predicates
module Stabilization = Ss_verify.Stabilization
module Rng = Ss_prelude.Rng
module Table = Ss_prelude.Table
module Json = Ss_report.Json
module Run_report = Ss_report.Run_report
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                              *)
(* ------------------------------------------------------------------ *)

module Catalog = Ss_expt.Catalog

let parse_topology = Catalog.parse_topology

let parse_daemon rng spec =
  match String.split_on_char ':' spec with
  | [ "sync" ] -> Sim.Daemon.synchronous
  | [ "async"; p ] -> Sim.Daemon.distributed_random rng ~p:(float_of_string p)
  | [ "async" ] -> Sim.Daemon.distributed_random rng ~p:0.5
  | [ "central" ] -> Sim.Daemon.central_random rng
  | [ "central-min" ] -> Sim.Daemon.central_min
  | [ "central-max" ] -> Sim.Daemon.central_max
  | [ "round-robin" ] -> Sim.Daemon.round_robin ()
  | _ -> failwith ("unknown daemon: " ^ spec)

let topology_arg =
  let doc =
    "Topology: "
    ^ String.concat ", " (Catalog.topology_syntax ())
    ^ ".  torus and random4 stream their edges and scale to millions of \
       nodes.  See $(b,fasst list)."
  in
  Arg.(value & opt string "ring:16" & info [ "t"; "topology" ] ~doc)

let daemon_arg =
  let doc =
    "Daemon: sync, async[:p], central, central-min, central-max, round-robin."
  in
  Arg.(value & opt string "async:0.5" & info [ "d"; "daemon" ] ~doc)

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.")

let seeds_arg =
  Arg.(
    value & opt int 2
    & info [ "seeds" ] ~doc:"Number of corruption seeds per experiment row.")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("lazy", P.Lazy); ("greedy", P.Greedy) ]) P.Lazy
    & info [ "m"; "mode" ] ~doc:"Transformer mode: lazy or greedy.")

let bound_arg =
  let doc = "Bound B on the synchronous time (integer, or 'inf')." in
  Arg.(value & opt string "inf" & info [ "b"; "bound" ] ~doc)

let parse_bound = function
  | "inf" | "infinity" -> P.Infinite
  | s -> P.Finite (int_of_string s)

let corrupt_arg =
  Arg.(
    value & opt float 1.0
    & info [ "p"; "corruption" ] ~doc:"Per-node fault probability.")

let layout_arg =
  let doc =
    "State layout: $(b,auto) (packed arena when the algorithm has a codec \
     and the bound is finite, else boxed), $(b,packed) (require the arena \
     layout; fails without a codec or with an infinite bound), or \
     $(b,boxed) (the historical copy-on-write buffers)."
  in
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("packed", `Packed); ("boxed", `Boxed) ])
        `Auto
    & info [ "layout" ] ~doc)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS"
        ~doc:"Wall-clock budget for the run (monotonic clock).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit machine-readable JSON instead of text tables.  Every row \
           comes from the same typed record as the printed table, so the \
           two are content-identical.")

(* Global parallelism knob.  Every subcommand accepts it; the campaign
   layer fans its rows out over a shared Ss_par pool, and the
   determinism contract (DESIGN.md §11) makes the output byte-identical
   for every value of $(b,-j). *)
let jobs_arg =
  let doc =
    "Number of worker domains for parallel experiment fan-out (default: \
     the runtime's recommended domain count).  Output is byte-identical \
     for every value."
  in
  Arg.(
    value
    & opt int (Ss_par.Par.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* ------------------------------------------------------------------ *)
(* run: one transformed algorithm under one adversary                   *)
(* ------------------------------------------------------------------ *)

let json_report name ~seed ~spec (r : _ Stabilization.report) =
  let base =
    Run_report.v ~seed
      ~outcome:
        (if r.Stabilization.terminated then Ss_report.Budget.Completed
         else Ss_report.Budget.(Tripped Steps))
      name
      (Run_report.Engine
         {
           Run_report.steps = r.Stabilization.steps;
           moves = r.Stabilization.moves;
           rounds = r.Stabilization.rounds;
           moves_per_rule = r.Stabilization.moves_per_rule;
         })
  in
  match Run_report.to_json base with
  | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ("recovery_moves", Json.Int r.Stabilization.recovery_moves);
            ("recovery_rounds", Json.Int r.Stabilization.recovery_rounds);
            ("space_bits", Json.Int r.Stabilization.space_bits);
            ("legitimate", Json.Bool r.Stabilization.legitimate);
            ("specification", Json.Bool spec);
          ])
  | j -> j

let print_report name (r : _ Stabilization.report) =
  Printf.printf "algorithm      : %s\n" name;
  Printf.printf "terminated     : %b\n" r.Stabilization.terminated;
  Printf.printf "moves          : %d\n" r.Stabilization.moves;
  Printf.printf "rounds         : %d\n" r.Stabilization.rounds;
  Printf.printf "steps          : %d\n" r.Stabilization.steps;
  Printf.printf "recovery moves : %d\n" r.Stabilization.recovery_moves;
  Printf.printf "recovery rounds: %d\n" r.Stabilization.recovery_rounds;
  Printf.printf "space (bits)   : %d\n" r.Stabilization.space_bits;
  List.iter
    (fun (rule, n) -> Printf.printf "  %s moves: %d\n" rule n)
    r.Stabilization.moves_per_rule;
  Printf.printf "legitimate     : %b\n" r.Stabilization.legitimate

(* Both renderings read the same typed Table.t: the text goes through
   Table.print, the JSON through Run_report.of_table — content-identical
   by construction (pinned by the test suite). *)
let section ~json title table =
  if json then
    print_endline (Json.to_string (Run_report.of_table ~label:title table))
  else begin
    Printf.printf "== %s ==\n" title;
    Table.print table
  end

(* Non-trans transformers run through the registry's generic
   [measure]; the report is a metric/value table through [section], so
   --json stays content-identical to the text. *)
let run_outcome ~json name (o : Core.Registry.outcome) =
  let table = Table.create [ "metric"; "value" ] in
  let s k v = Table.add table [ Table.S k; Table.S v ] in
  let i k v = Table.add table [ Table.S k; Table.I v ] in
  s "transformer" o.Core.Registry.transformer;
  s "terminated" (string_of_bool o.Core.Registry.terminated);
  i "moves" o.Core.Registry.moves;
  i "rounds" o.Core.Registry.rounds;
  i "steps" o.Core.Registry.steps;
  i "energy-bits" o.Core.Registry.energy_bits;
  i "space-bits" o.Core.Registry.space_bits;
  List.iter
    (fun (rule, n) -> i (rule ^ " moves") n)
    o.Core.Registry.moves_per_rule;
  s "legitimate" (string_of_bool o.Core.Registry.legitimate);
  s "specification" (string_of_bool o.Core.Registry.spec_ok);
  section ~json name table

let run_algo ~json ~transformer ~algo_name ~topology ~daemon ~seed ~mode ~bound
    ~p ~layout ~deadline ~jobs =
  let rng = Rng.create seed in
  let graph = parse_topology rng topology in
  let bound = parse_bound bound in
  let daemon = parse_daemon (Rng.split rng) daemon in
  let go (type s i) ?(codec : s Core.Cellpack.codec option)
      (sync : (s, i) Ss_sync.Sync_algo.t) (inputs : int -> i)
      (spec : s array -> bool) =
    let params = Core.Registry.Trans.params ~mode ~bound sync in
    if transformer <> "trans" then begin
      (* The rollback and adaptive transformers have no
         Stabilization-style recovery phases; the registry's measure
         covers them uniformly. *)
      let entry = Catalog.find_transformer transformer in
      let budget =
        Option.map (fun s -> Ss_report.Budget.v ~deadline_s:s ()) deadline
      in
      let outcome =
        Core.Registry.measure entry ?budget ~corrupt:(`All p)
          ~rng:(Rng.split rng) ~daemon
          ~max_height:(min (P.bound_to_int bound) 1_000_000)
          ~spec params graph ~inputs
      in
      run_outcome ~json sync.Ss_sync.Sync_algo.sync_name outcome
    end
    else begin
    let sc = { Stabilization.params; graph; inputs } in
    (* The corruption ceiling tracks the synchronous execution time.
       Under a finite bound the ground truth is cut at B rounds — the
       only part a B-bounded run can ever reference — so the pre-run
       history is O(B·n) instead of O(T·n): the million-node path
       never materializes the full fixpoint history. *)
    let t =
      let rounds = match bound with P.Finite b -> Some b | P.Infinite -> None in
      (Stabilization.history ?rounds sc).Ss_sync.Sync_runner.t
    in
    let max_height = min (P.bound_to_int bound) (t + 6) in
    let codec =
      match layout with
      | `Boxed -> None
      | `Auto -> ( match bound with P.Finite _ -> codec | P.Infinite -> None)
      | `Packed -> (
          match (codec, bound) with
          | Some _, P.Finite _ -> codec
          | None, _ ->
              failwith ("no packed codec for algorithm: " ^ algo_name)
          | Some _, P.Infinite ->
              failwith "--layout packed requires a finite bound (-b B)")
    in
    let start =
      Stabilization.corrupted_start (Rng.split rng) ~p ?codec ~max_height sc
    in
    let budget =
      Option.map (fun s -> Ss_report.Budget.v ~deadline_s:s ()) deadline
    in
    let report =
      Stabilization.run ?budget ~sharded:(jobs > 1) sc ~daemon ~start
    in
    let name = sync.Ss_sync.Sync_algo.sync_name in
    if json then
      print_endline
        (Json.to_string
           (json_report name ~seed
              ~spec:(spec report.Stabilization.outputs)
              report))
    else begin
      print_report name report;
      Printf.printf "specification  : %b\n" (spec report.Stabilization.outputs)
    end
    end
  in
  let a = Catalog.find_algo algo_name in
  (match Catalog.validate_topology a graph with
  | Ok () -> ()
  | Error e -> failwith e);
  (match a.Catalog.instantiate (Rng.split rng) graph with
  | Catalog.Inst { sync; inputs; spec; codec } -> go ?codec sync inputs spec);
  0

let run_cmd =
  let algo =
    Arg.(
      value & opt string "leader"
      & info [ "a"; "algorithm" ]
          ~doc:
            ("Algorithm: "
            ^ String.concat ", " (Catalog.algo_names ())
            ^ ".  See $(b,fasst list)."))
  in
  let transformer =
    Arg.(
      value & opt string "trans"
      & info [ "T"; "transformer" ]
          ~doc:
            ("Transformer: "
            ^ String.concat ", " (Catalog.transformer_names ())
            ^ ".  See $(b,fasst list)."))
  in
  let term =
    Term.(
      const
        (fun jobs json transformer algo_name topology daemon seed mode bound p
             layout deadline ->
          Ss_par.Par.set_jobs jobs;
          run_algo ~json ~transformer ~algo_name ~topology ~daemon ~seed ~mode
            ~bound ~p ~layout ~deadline ~jobs)
      $ jobs_arg $ json_arg $ transformer $ algo $ topology_arg $ daemon_arg
      $ seed_arg $ mode_arg $ bound_arg $ corrupt_arg $ layout_arg
      $ deadline_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one transformed algorithm from a corrupted configuration under \
          one adversary and report moves/rounds/recovery.")
    term

(* ------------------------------------------------------------------ *)
(* Experiment tables                                                    *)
(* ------------------------------------------------------------------ *)

let seeds_list k = List.init k (fun i -> i + 1)

let table1_run jobs json which seed seeds =
  Ss_par.Par.set_jobs jobs;
  let rng () = Rng.create seed in
  let seeds = seeds_list seeds in
  if which = "lazy" || which = "all" then
    section ~json "Table 1 / lazy mode (leader election)"
      (Ss_expt.Table1.lazy_rows ~seeds (rng ()));
  if which = "greedy" || which = "all" then
    section ~json "Table 1 / greedy mode"
      (Ss_expt.Table1.greedy_rows ~seeds (rng ()));
  if which = "recovery" || which = "all" then
    section ~json "Table 1 / error recovery"
      (Ss_expt.Table1.recovery_rows ~seeds (rng ()));
  if which = "space" || which = "all" then
    section ~json "Table 1 / space" (Ss_expt.Table1.space_rows ~seeds (rng ()));
  0

let table1_cmd =
  let which =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"WHICH" ~doc:"lazy | greedy | recovery | space | all")
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce the complexity rows of Table 1.")
    Term.(const table1_run $ jobs_arg $ json_arg $ which $ seed_arg $ seeds_arg)

let instances_run jobs json which seed seeds =
  Ss_par.Par.set_jobs jobs;
  let rng () = Rng.create seed in
  let seeds = seeds_list seeds in
  if which = "leader" || which = "all" then
    section ~json "§5.1 leader election"
      (Ss_expt.Instances.leader_rows ~seeds (rng ()));
  if which = "bfs" || which = "all" then
    section ~json "§5.2 BFS spanning tree"
      (Ss_expt.Instances.bfs_rows ~seeds (rng ()));
  if which = "cv" || which = "all" then
    section ~json "§5.3 Cole-Vishkin ring coloring"
      (Ss_expt.Instances.cv_rows ~seeds (rng ()));
  if which = "sp" || which = "all" then
    section ~json "shortest-path trees (§1 Bellman-Ford input)"
      (Ss_expt.Instances.shortest_path_rows ~seeds (rng ()));
  0

let instances_cmd =
  let which =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"WHICH" ~doc:"leader | bfs | cv | sp | all")
  in
  Cmd.v
    (Cmd.info "instances" ~doc:"Reproduce the §5 instance experiments.")
    Term.(
      const instances_run $ jobs_arg $ json_arg $ which $ seed_arg $ seeds_arg)

let rollback_run jobs json max_k =
  Ss_par.Par.set_jobs jobs;
  section ~json "§7 / Figure 1: rollback blow-up vs transformer"
    (Ss_expt.Blowup_expt.rows ~max_k ());
  0

let rollback_cmd =
  let max_k =
    Arg.(value & opt int 10 & info [ "k"; "max-k" ] ~doc:"Largest G_k index.")
  in
  Cmd.v
    (Cmd.info "rollback"
       ~doc:
         "Reproduce the exponential move complexity of the rollback compiler \
          on the G_k family (validated schedule Γ_k).")
    Term.(const rollback_run $ jobs_arg $ json_arg $ max_k)

let energy_run jobs json seed seeds =
  Ss_par.Par.set_jobs jobs;
  section ~json "§6 message/energy accounting"
    (Ss_expt.Energy_expt.rows ~seeds:(seeds_list seeds) (Rng.create seed));
  0

let energy_cmd =
  Cmd.v
    (Cmd.info "energy" ~doc:"Reproduce the §6 message-size comparison.")
    Term.(const energy_run $ jobs_arg $ json_arg $ seed_arg $ seeds_arg)

let ablation_run jobs json seed seeds =
  Ss_par.Par.set_jobs jobs;
  section ~json "ablation: removing RP or the RC window breaks the transformer"
    (Ss_expt.Ablation_expt.rows ~seeds:(seeds_list seeds) (Rng.create seed));
  0

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Compare the full rule set against the no-RP and eager-RC ablations \
          (stuck/live-lock rates, worst moves).")
    Term.(const ablation_run $ jobs_arg $ json_arg $ seed_arg $ seeds_arg)

let msgnet_run jobs json seed seeds =
  Ss_par.Par.set_jobs jobs;
  section ~json "§6 end-to-end: transformer over message passing"
    (Ss_expt.Msgnet_expt.rows ~seeds:(seeds_list seeds) (Rng.create seed));
  0

let msgnet_cmd =
  Cmd.v
    (Cmd.info "msgnet"
       ~doc:
         "Run the message-passing realization (mirrors, heartbeat proofs, \
          delta encoding) end-to-end and report traffic plus the wire-memory \
          figures (peak in-flight bits, resident mirror bytes).")
    Term.(const msgnet_run $ jobs_arg $ json_arg $ seed_arg $ seeds_arg)

let baselines_run jobs json seed seeds =
  Ss_par.Par.set_jobs jobs;
  section ~json "hand-crafted min+1 BFS vs transformed BFS"
    (Ss_expt.Baselines_expt.bfs_rows ~seeds:(seeds_list seeds) (Rng.create seed));
  section ~json "Dijkstra's token ring [27]"
    (Ss_expt.Baselines_expt.dijkstra_rows (Rng.create seed));
  0

let baselines_cmd =
  Cmd.v
    (Cmd.info "baselines"
       ~doc:
         "Compare hand-crafted self-stabilizing baselines (min+1 BFS, \
          Dijkstra's token ring) against the transformer.")
    Term.(const baselines_run $ jobs_arg $ json_arg $ seed_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* transformers: the three-way comparison grid                          *)
(* ------------------------------------------------------------------ *)

let transformers_run jobs json seed seeds =
  Ss_par.Par.set_jobs jobs;
  let table, ok =
    Ss_expt.Transformers_expt.rows ~seeds:(seeds_list seeds) (Rng.create seed)
  in
  section ~json "transformer comparison: trans | rollback | adaptive" table;
  (* Any illegitimate terminal configuration is a non-zero exit, so
     the @transformers-smoke alias can gate on it. *)
  if ok then 0 else 1

let transformers_cmd =
  Cmd.v
    (Cmd.info "transformers"
       ~doc:
         "Run every registered transformer (§3 trans, §7 rollback, fully \
          adaptive) over the LCL workload suite (leader, BFS, Cole-Vishkin, \
          MIS, matching, coloring) on ring/torus/random4 graphs and compare \
          moves, rounds and energy bits.  Byte-identical for any $(b,-j); \
          exits non-zero if any cell ends illegitimate.")
    Term.(const transformers_run $ jobs_arg $ json_arg $ seed_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* list: what the registry and the catalog know                         *)
(* ------------------------------------------------------------------ *)

let list_run json =
  let ts = Table.create [ "transformer"; "description" ] in
  List.iter
    (fun e ->
      Table.add ts
        [ Table.S (Core.Registry.name e); Table.S (Core.Registry.doc e) ])
    (Catalog.transformers ());
  section ~json "transformers" ts;
  let al = Table.create [ "algorithm"; "graphs"; "sim-grid"; "description" ] in
  List.iter
    (fun a ->
      Table.add al
        [
          Table.S a.Catalog.algo_name;
          Table.S (if a.Catalog.ring_only then "rings only" else "any");
          Table.S (if a.Catalog.in_sim_grid then "yes" else "no");
          Table.S a.Catalog.algo_doc;
        ])
    Catalog.algorithms;
  section ~json "algorithms" al;
  let tp = Table.create [ "topology" ] in
  List.iter
    (fun syntax -> Table.add tp [ Table.S syntax ])
    (Catalog.topology_syntax ());
  section ~json "topologies" tp;
  0

let list_cmd =
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the registered transformers, workload algorithms and topology \
          families — the same tables every other subcommand parses its \
          arguments against.")
    Term.(const list_run $ json_arg)

(* ------------------------------------------------------------------ *)
(* sim: deterministic chaos-mode scenario grids                         *)
(* ------------------------------------------------------------------ *)

let sim_run jobs json scenario algo topology seed seeds out =
  Ss_par.Par.set_jobs jobs;
  let rng = Rng.create seed in
  let scenarios =
    if scenario = "all" then Ss_chaos.Scenario.all
    else
      match Ss_chaos.Scenario.of_string scenario with
      | Ok s -> [ s ]
      | Error e -> failwith e
  in
  let algos =
    if algo = "all" then Ss_expt.Sim_expt.algo_names else [ algo ]
  in
  let workloads =
    match topology with
    | "default" -> Ss_expt.Sim_expt.default_workloads ~algos (Rng.split rng)
    | spec ->
        Ss_expt.Sim_expt.workloads_for ~algos (Rng.split rng)
          [ (spec, parse_topology (Rng.split rng) spec) ]
  in
  let table, ok =
    Ss_expt.Sim_expt.rows ~scenarios ~seeds:(seeds_list seeds) workloads
  in
  let title = "chaos-mode scenario grid (deterministic fault injection)" in
  section ~json title table;
  (match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string (Run_report.of_table ~label:title table));
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "grid written to %s\n" path);
  (* The smoke contract: a cell that fails to re-stabilize to a
     legitimate quiescent configuration is a non-zero exit, so the
     @sim-chaos alias can gate on it. *)
  if ok then 0 else 1

let sim_cmd =
  let scenario =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ]
          ~doc:
            "Fault scenario: $(b,quick) (no faults), $(b,standard) (0.2% \
             drop, 0.1% reorder, 0.1% duplicate, 2 mid-run corruptions), \
             $(b,chaos) (2% drop, 1% reorder, 1% duplicate, 3 corruptions), \
             or $(b,all).")
  in
  let algo =
    Arg.(
      value & opt string "all"
      & info [ "a"; "algorithm" ]
          ~doc:
            ("Algorithm: "
            ^ String.concat ", " Ss_expt.Sim_expt.algo_names
            ^ ", or all."))
  in
  let topology =
    Arg.(
      value & opt string "default"
      & info [ "t"; "topology" ]
          ~doc:
            "Topology spec (same syntax as $(b,fasst run)), or \
             $(b,default) for the built-in ring + random grid.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ]
          ~doc:"Also write the grid as JSON (Run_report.of_table) to a file.")
  in
  let term =
    Term.(
      const (fun jobs json scenario algo topology seed seeds out ->
          sim_run jobs json scenario algo topology seed seeds out)
      $ jobs_arg $ json_arg $ scenario $ algo $ topology $ seed_arg $ seeds_arg
      $ out)
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Run deterministic chaos-mode simulations: scenario × algorithm × \
          graph grids with message drop/reorder/duplicate injection, mid-run \
          state corruption, per-event invariant checks against the fault-free \
          reference twin, and virtual-clock budgets.  Message rows report \
          peak in-flight wire bits ($(b,wirepeak)).  Byte-identical output \
          for any seed across runs and $(b,-j) values; exits non-zero if any \
          cell fails to re-stabilize.")
    term

(* ------------------------------------------------------------------ *)
(* trace: dump one execution as CSV                                     *)
(* ------------------------------------------------------------------ *)

let trace_run json topology daemon seed out =
  let rng = Rng.create seed in
  let graph = parse_topology rng topology in
  let daemon = parse_daemon (Rng.split rng) daemon in
  let inputs = Ss_algos.Leader_election.random_ids (Rng.split rng) graph in
  let params = Core.Registry.Trans.params Ss_algos.Leader_election.algo in
  let sc = { Stabilization.params; graph; inputs } in
  let t = (Stabilization.history sc).Ss_sync.Sync_runner.t in
  let start =
    Stabilization.corrupted_start (Rng.split rng) ~max_height:(t + 4) sc
  in
  let observer, events = Ss_sim.Trace.make () in
  let stats = Core.Registry.Trans.run ~observer params daemon start in
  let payload =
    if json then Json.to_string (Ss_sim.Trace.to_json (events ())) ^ "\n"
    else Ss_sim.Trace.to_csv (events ())
  in
  (match out with
  | None -> print_string payload
  | Some path ->
      let oc = open_out path in
      output_string oc payload;
      close_out oc;
      Printf.printf "trace written to %s\n" path);
  Printf.eprintf "(%d moves, %d rounds, terminated=%b)\n"
    stats.Ss_sim.Engine.moves stats.Ss_sim.Engine.rounds
    stats.Ss_sim.Engine.terminated;
  0

let dot_run topology seed out =
  let rng = Rng.create seed in
  let graph = parse_topology rng topology in
  let label =
    if String.length topology >= 3 && String.sub topology 0 3 = "gk:" then
      fun v -> Format.asprintf "%a" (G.Gk.pp_node ~k:0) v
    else string_of_int
  in
  let dot = G.Dot.of_graph ~name:"topology" ~label graph in
  (match out with
  | None -> print_string dot
  | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "graph written to %s (n=%d, m=%d, D=%d)\n" path
        (G.Graph.n graph) (G.Graph.m graph)
        (G.Properties.diameter graph));
  0

let dot_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the DOT to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a topology in Graphviz DOT syntax.")
    Term.(const dot_run $ topology_arg $ seed_arg $ out)

let trace_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the CSV to a file instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run transformed leader election from a corrupted start and dump the \
          per-move trace (step, rounds, node, rule) as CSV (or JSON with \
          $(b,--json)).")
    Term.(const trace_run $ json_arg $ topology_arg $ daemon_arg $ seed_arg $ out)

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment table in sequence.")
    Term.(
      const (fun jobs json seed seeds ->
          ignore (table1_run jobs json "all" seed seeds);
          ignore (instances_run jobs json "all" seed seeds);
          ignore (rollback_run jobs json 10);
          ignore (energy_run jobs json seed seeds);
          ignore (msgnet_run jobs json seed seeds);
          ignore (ablation_run jobs json seed seeds);
          ignore (baselines_run jobs json seed seeds);
          0)
      $ jobs_arg $ json_arg $ seed_arg $ seeds_arg)

let main =
  Cmd.group
    (Cmd.info "fasst" ~version:"1.0.0"
       ~doc:
         "Fully Asynchronous Self-Stabilization Toolkit — reproduction of \
          Devismes, Ilcinkas, Johnen & Mazoit (PODC 2024).")
    [
      run_cmd; list_cmd; table1_cmd; instances_cmd; rollback_cmd; energy_cmd;
      ablation_cmd; msgnet_cmd; baselines_cmd; transformers_cmd; sim_cmd;
      trace_cmd; dot_cmd; all_cmd;
    ]

let () = exit (Cmd.eval' main)
