let () = Ss_prelude.Table.print (Ss_expt.Ablation_expt.rows (Ss_prelude.Rng.create 7))
