module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module Util = Ss_prelude.Util
module St = Ss_core.Trans_state
module P = Ss_core.Predicates
module Checker = Ss_core.Checker
module T = Ss_core.Transformer

let rs = "RS"
let rx = "RX"
let co = "CO"

let bound_of (p : ('s, 'i) P.params) =
  match p.P.bound with
  | P.Finite b -> b
  | P.Infinite -> invalid_arg "Adaptive: requires a finite bound"

(* RS: the node detects a refuted checkable cell and truncates its
   list just below the first one.  Unlike the §3 error broadcast
   ([RR] wipes the whole list and recruits the neighborhood into an
   error DAG), the damage stays where the fault is: cells below the
   refuted one were just verified against the current neighbor cells
   and survive. *)
let truncation_height p (v : ('s, 'i) P.view) =
  let i = P.first_bad p v ~base:0 ~top:(P.top_checkable v) in
  i - 1

let rule_rs ~algo_err p =
  {
    Algorithm.rule_name = rs;
    guard = (fun v -> algo_err p v);
    action =
      (fun v -> St.truncate v.Algorithm.self (truncation_height p v));
  }

(* RX: extend when no refuted cell exists, the list is not full, and
   every dependency for the next cell is present.  There is no upper
   neighbor-height window (§3's [updatable] requires [nb <= h+1]):
   after a point truncation the neighbors may tower arbitrarily high
   above the repaired node, and waiting for them would deadlock. *)
let rule_rx p =
  let b = bound_of p in
  {
    Algorithm.rule_name = rx;
    guard =
      (fun v ->
        let h = St.height v.Algorithm.self in
        h < b && P.min_neighbor_height v >= h);
    action =
      (fun v ->
        let self = v.Algorithm.self in
        St.extend self (P.algo_hat p v (St.height self)));
  }

(* CO: a node still flagged [E] by a transient fault clears the flag
   once its simulation is complete.  The adaptive rules never set [E]
   themselves — the status is carried only so the transformer shares
   {!Trans_state} (and the packed backend) with the §3 system. *)
let rule_co p =
  let b = bound_of p in
  {
    Algorithm.rule_name = co;
    guard = (fun v -> St.in_error v.Algorithm.self && St.height v.Algorithm.self = b);
    action = (fun v -> St.with_status v.Algorithm.self St.C);
  }

let algorithm_gen ~algo_err p =
  let b = bound_of p in
  {
    Algorithm.algo_name =
      Printf.sprintf "adaptive(%s,B=%d)" p.P.sync.Sync_algo.sync_name b;
    equal = St.equal p.P.sync.Sync_algo.equal;
    rules = [ rule_rs ~algo_err p; rule_rx p; rule_co p ];
    pp_state = St.pp p.P.sync.Sync_algo.pp_state;
  }

(* Same per-(instantiation × domain) watermark-cache discipline as
   {!Ss_core.Transformer.algorithm}. *)
let algorithm p =
  ignore (bound_of p);
  let key = Domain.DLS.new_key P.make_cache in
  algorithm_gen
    ~algo_err:(fun p v -> P.algo_err_cached (Domain.DLS.get key) p v)
    p

let algorithm_uncached p =
  ignore (bound_of p);
  algorithm_gen ~algo_err:P.algo_err p

(* The state space is exactly the §3 transformer's, so configurations,
   the packed backend and the fault model are shared. *)
let clean_config = T.clean_config
let packed_config = T.packed_config
let corrupt_state = T.corrupt_state
let corrupt = T.corrupt
let outputs = T.outputs

let converged_config p hist g ~inputs =
  let b = bound_of p in
  Config.make g ~inputs ~states:(fun node ->
      let init = p.P.sync.Sync_algo.init (inputs node) in
      St.make ~init ~status:St.C
        ~cells:
          (Array.init b (fun i ->
               Sync_runner.state_at hist ~round:(i + 1) ~node)))

let run ?budget ?max_steps ?max_moves ?now ?chaos ?(self_check = false)
    ?(sharded = false) ?observer ?sinks p daemon config =
  let algo = algorithm p in
  let sinks = Option.value sinks ~default:[] in
  let sinks =
    if not self_check then sinks
    else begin
      let reference = algorithm_uncached p in
      let check ~step:_ ~rounds:_ ~moved:_ config =
        let cached = Config.enabled_nodes algo config in
        let uncached = Config.enabled_nodes reference config in
        if cached <> uncached then
          raise
            (Engine.Divergence
               (Printf.sprintf
                  "cached enabled set {%s} disagrees with uncached {%s}"
                  (String.concat "," (List.map string_of_int cached))
                  (String.concat "," (List.map string_of_int uncached))))
      in
      check :: sinks
    end
  in
  Engine.run ?budget ?max_steps ?max_moves ?now ?chaos ~self_check ~sharded
    ?observer ~sinks algo daemon config

let run_naive ?budget ?max_steps ?max_moves ?now ?observer ?sinks p daemon
    config =
  Engine.run_naive ?budget ?max_steps ?max_moves ?now ?observer ?sinks
    (algorithm_uncached p) daemon config

(* ------------------------------------------------------------------ *)
(* Registry entry                                                       *)
(* ------------------------------------------------------------------ *)

module Entry = struct
  let name = "adaptive"

  let doc =
    "fully adaptive transformer (Bitton-Emek-Izumi-Kutten, arXiv \
     2105.09756): point truncation (RS) instead of error broadcast; \
     recovery work scales with the number of corrupted nodes"

  type 's state = 's St.t

  let supports (p : ('s, 'i) P.params) =
    match p.P.bound with
    | P.Finite _ -> Ok ()
    | P.Infinite -> Error "the adaptive transformer requires a finite bound B"

  let algorithm = algorithm
  let reference_algorithm = algorithm_uncached
  let clean_config = clean_config
  let corrupt_state = corrupt_state
  let outputs = outputs
  let space_bits = Checker.space_bits

  (* Delta encoding in the §6 style: a move announces its rule label
     plus what changed — the new cell for [RX], the new height for
     [RS] (truncation points anywhere below [B]), nothing extra for
     [CO]. *)
  let move_bits p ~rule st =
    let label = 2 in
    if rule = rx then label + p.P.sync.Sync_algo.state_bits (St.top st)
    else if rule = rs then label + Util.bit_width (bound_of p)
    else label

  let legitimate_terminal p hist config =
    let b = bound_of p in
    if not (Config.is_terminal (algorithm p) config) then
      Error "configuration is not terminal"
    else if
      not
        (Array.for_all
           (fun st -> St.height st = b)
           config.Config.states)
    then Error "some terminal height differs from B"
    else if not (Checker.simulates_history p hist config) then
      Error "terminal lists do not match the synchronous history"
    else Ok ()
end

let transformer : Ss_core.Registry.entry = (module Entry)
