(** The Fully Adaptive Self-Stabilizing Transformer of Bitton, Emek,
    Izumi and Kutten (arXiv 2105.09756), realized over the repo's
    {!Ss_core.Trans_state} simulation lists.

    Where the paper's §3 system answers a detected fault with an
    {e error broadcast} — rule [RR] wipes the whole list and the error
    DAG recruits the neighborhood, so even one corrupted node can cost
    work proportional to [n] — the adaptive transformer repairs
    {e in place}:

    - [RS] ({e snip}): a node whose checkable prefix refutes some cell
      truncates its list just below the first refuted cell.  Cells
      beneath it were verified against the current neighbor cells and
      survive; nothing is broadcast.
    - [RX] ({e extend}): with a clean checkable prefix, a list shorter
      than [B] whose next-cell dependencies are all present appends
      [algô(p, h)].  There is deliberately {e no} upper neighbor-height
      window: after a point truncation the neighbors may tower above
      the repaired node, and §3's [nb <= h+1] constraint would
      deadlock the local repair.
    - [CO] ({e clear}): a node still carrying a corrupted [E] flag
      drops it once its list is complete.  The adaptive rules never
      set [E]; the status travels along only because the state space
      is shared with the §3 system (same packed arenas, same
      watermark caches, same fault model).

    The payoff is {e fault locality}: re-stabilization after
    corrupting [k] nodes costs work growing with [k] (each victim
    re-verifies and re-extends its own [O(B)] cells, plus an [O(1)]
    contamination radius), not with [n].  The price is the loss of
    §3's unbounded-[T] support — every list must reach the common
    height [B], so only finite bounds are accepted — and of the
    round-complexity machinery built on the error DAG. *)

val rs : string
(** Rule label ["RS"] (snip/truncate). *)

val rx : string
(** Rule label ["RX"] (extend). *)

val co : string
(** Rule label ["CO"] (clear the corrupted error flag). *)

val bound_of : ('s, 'i) Ss_core.Predicates.params -> int
(** The finite bound [B].
    @raise Invalid_argument on an infinite bound. *)

val algorithm :
  ('s, 'i) Ss_core.Predicates.params ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Algorithm.t
(** The adaptive algorithm with memoized guard predicates (per-domain
    watermark caches, as in {!Ss_core.Transformer.algorithm}).
    @raise Invalid_argument on an infinite bound. *)

val algorithm_uncached :
  ('s, 'i) Ss_core.Predicates.params ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Algorithm.t
(** The uncached reference twin (differential tests). *)

val clean_config :
  ('s, 'i) Ss_core.Predicates.params ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t
(** Shared with the §3 system: empty lists, status [C]. *)

val packed_config :
  ('s, 'i) Ss_core.Predicates.params ->
  codec:'s Ss_core.Cellpack.codec ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t
(** Packed-arena twin of {!clean_config}
    ({!Ss_core.Transformer.packed_config}). *)

val corrupt_state :
  Ss_prelude.Rng.t ->
  max_height:int ->
  ('s, 'i) Ss_core.Predicates.params ->
  'i ->
  's Ss_core.Trans_state.t ->
  's Ss_core.Trans_state.t
(** The §3 fault model, unchanged. *)

val corrupt :
  Ss_prelude.Rng.t ->
  ?p:float ->
  max_height:int ->
  ('s, 'i) Ss_core.Predicates.params ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t

val outputs :
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t -> 's array
(** Each node's newest cell. *)

val converged_config :
  ('s, 'i) Ss_core.Predicates.params ->
  ('s, 'i) Ss_sync.Sync_runner.history ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t
(** The legitimate terminal configuration directly: every node at
    height [B] with cell [i] equal to the synchronous history's round
    [i] (clamped beyond [T]), status [C].  The starting point of
    adaptivity experiments, which corrupt [k] of its nodes and measure
    the recovery. *)

val run :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ?now:(unit -> float) ->
  ?chaos:('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.chaos ->
  ?self_check:bool ->
  ?sharded:bool ->
  ?observer:('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.observer ->
  ?sinks:('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.observer list ->
  ('s, 'i) Ss_core.Predicates.params ->
  Ss_sim.Daemon.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.stats
(** Dirty-set engine run, mirroring {!Ss_core.Transformer.run}
    ([self_check] re-derives enabled sets with the uncached
    predicates). *)

val run_naive :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ?now:(unit -> float) ->
  ?observer:('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.observer ->
  ?sinks:('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.observer list ->
  ('s, 'i) Ss_core.Predicates.params ->
  Ss_sim.Daemon.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.stats
(** Full-rescan reference engine over the uncached algorithm. *)

module Entry :
  Ss_core.Registry.TRANSFORMER with type 's state = 's Ss_core.Trans_state.t
(** The adaptive transformer behind the registry interface: finite
    bounds only; delta-style [move_bits] (new cell for [RX], new
    height for [RS], label only for [CO]); terminal legitimacy = all
    heights [B] + correct simulation contents. *)

val transformer : Ss_core.Registry.entry
(** {!Entry} as a registry entry; entered into the table by
    [Ss_expt.Catalog]. *)
