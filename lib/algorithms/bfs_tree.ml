module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Properties = Ss_graph.Properties
module Rng = Ss_prelude.Rng

type state = Null | Root | Parent of int
type input = { is_root : bool; degree : int }

let equal_state a b =
  match (a, b) with
  | Null, Null | Root, Root -> true
  | Parent i, Parent j -> i = j
  | (Null | Root | Parent _), _ -> false

let pp_state ppf = function
  | Null -> Format.pp_print_string ppf "⊥"
  | Root -> Format.pp_print_string ppf "root"
  | Parent k -> Format.fprintf ppf "↑%d" k

let settled = function Null -> false | Root | Parent _ -> true

let step input self neighbors =
  match self with
  | Root | Parent _ -> self
  | Null ->
      if input.is_root then Root
      else begin
        (* Adopt the smallest port whose neighbor is settled. *)
        let rec find k =
          if k >= Array.length neighbors then Null
          else if settled neighbors.(k) then Parent k
          else find (k + 1)
        in
        find 0
      end

let algo =
  {
    Sync_algo.sync_name = "bfs-tree";
    equal = equal_state;
    init = (fun input -> if input.is_root then Root else Null);
    step;
    random_state =
      (fun rng input ->
        match Rng.int rng 3 with
        | 0 -> Null
        | 1 -> Root
        | _ -> if input.degree = 0 then Null else Parent (Rng.int rng input.degree));
    state_bits =
      (fun s ->
        2 + match s with Parent k -> Ss_prelude.Util.bit_width k | Null | Root -> 0);
    pp_state;
  }

let codec =
  Ss_core.Cellpack.map
    ~inj:(function Null -> 0 | Root -> 1 | Parent k -> k + 2)
    ~prj:(fun w -> match w with 0 -> Null | 1 -> Root | k -> Parent (k - 2))
    Ss_core.Cellpack.int_codec

let inputs g ~root p = { is_root = p = root; degree = Graph.degree g p }

let parent_node g p = function
  | Null | Root -> None
  | Parent k ->
      let nbrs = Graph.neighbors g p in
      if k < 0 || k >= Array.length nbrs then None else Some nbrs.(k)

let spec_holds g ~root ~final =
  let dist = Properties.bfs_distances g root in
  let ok p =
    if p = root then equal_state final.(p) Root
    else
      match parent_node g p final.(p) with
      | None -> false
      | Some q -> dist.(q) = dist.(p) - 1
  in
  let rec go p = p >= Graph.n g || (ok p && go (p + 1)) in
  go 0
