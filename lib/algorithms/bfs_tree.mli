(** Breadth-first-search spanning tree construction (paper §5.2).

    The network is rooted (one distinguished node) and port-labelled;
    nodes are anonymous otherwise.  Each non-root node holds a parent
    pointer, initially [Null].  At each round, a [Null] node that sees
    a neighbor which is the root or has a non-[Null] pointer
    definitively adopts the smallest such port as its parent.  After at
    most [ecc(root) <= D] rounds the pointers form a BFS spanning tree.
    Through the transformer in lazy mode this yields a fully-polynomial
    silent self-stabilizing BFS construction in [O(D)] rounds and
    [O(n³)] moves with [O(B·log Δ)] bits per node. *)

type state =
  | Null  (** No parent chosen yet. *)
  | Root  (** The root's permanent state. *)
  | Parent of int  (** Port index of the chosen parent. *)

type input = { is_root : bool; degree : int }

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm. *)

val codec : state Ss_core.Cellpack.codec
(** One-word packed layout (tagged: [⊥ ↦ 0], [root ↦ 1],
    [↑k ↦ k+2]) for {!Ss_core.Transformer.packed_config}. *)

val inputs : Ss_graph.Graph.t -> root:int -> int -> input
(** Input function distinguishing [root]. *)

val parent_node : Ss_graph.Graph.t -> int -> state -> int option
(** Resolve a parent pointer to the neighbor's node id ([None] for
    [Null]/[Root]). *)

val spec_holds :
  Ss_graph.Graph.t -> root:int -> final:state array -> bool
(** The pointers form a spanning tree rooted at [root] in which every
    node's tree path to the root has length exactly its graph
    distance — i.e. a BFS tree: the root is [Root], every other node
    points to a neighbor strictly closer to the root. *)

val pp_state : Format.formatter -> state -> unit
(** Renders [⊥], [root] or [↑k]. *)
