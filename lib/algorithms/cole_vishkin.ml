module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

type state = { color : int; round : int }
type input = { id : int; width : int; schedule : int }

let reduction_iters w =
  let rec go w acc = if w <= 3 then acc else go (Util.ceil_log2 w + 1) (acc + 1) in
  go (max w 1) 0 + 1

let schedule_length w = reduction_iters w + 3

let equal_state a b = a.color = b.color && a.round = b.round

let pp_state ppf s = Format.fprintf ppf "(c=%d, r=%d)" s.color s.round

(* Lowest bit position where [x] and [y] differ; they must differ. *)
let lowest_diff_bit x y =
  let d = x lxor y in
  let rec go i = if d land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let reduce ~own ~pred =
  if own = pred then
    (* Cannot happen on legal executions (properness is invariant); be
       total anyway for corrupted cells fed in by the transformer. *)
    own land 1
  else begin
    let i = lowest_diff_bit own pred in
    (2 * i) + ((own lsr i) land 1)
  end

let step input self neighbors =
  let k = input.schedule in
  if self.round >= k || Array.length neighbors <> 2 then self
  else begin
    let r = self.round in
    let nb_cw = neighbors.(0).color and nb_ccw = neighbors.(1).color in
    let color =
      if r < reduction_iters input.width then
        reduce ~own:self.color ~pred:nb_ccw
      else begin
        (* Shift-down rounds eliminate colors 5, 4, 3 in that order. *)
        let target = 5 - (r - reduction_iters input.width) in
        if self.color = target then begin
          let free c = c <> nb_cw && c <> nb_ccw in
          if free 0 then 0 else if free 1 then 1 else 2
        end
        else self.color
      end
    in
    { color; round = r + 1 }
  end

let algo =
  {
    Sync_algo.sync_name = "cole-vishkin";
    equal = equal_state;
    init = (fun input -> { color = input.id; round = 0 });
    step;
    random_state =
      (fun rng input ->
        {
          color = Rng.int rng (1 lsl min input.width 16);
          round = Rng.int rng (input.schedule + 2);
        });
    state_bits = (fun s -> Util.bit_width s.color + Util.bit_width s.round);
    pp_state;
  }

let codec =
  Ss_core.Cellpack.map
    ~inj:(fun s -> (s.color, s.round))
    ~prj:(fun (color, round) -> { color; round })
    (Ss_core.Cellpack.pair Ss_core.Cellpack.int_codec Ss_core.Cellpack.int_codec)

let inputs ~ids ~width _g p = { id = ids p; width; schedule = schedule_length width }

let random_ring_ids rng ~n ~width =
  if n > 1 lsl width then invalid_arg "Cole_vishkin.random_ring_ids: width too small";
  (* Sample n distinct ids from [0, 2^width). *)
  let chosen = Hashtbl.create (2 * n) in
  let ids = Array.make n 0 in
  let space = 1 lsl width in
  for p = 0 to n - 1 do
    let rec draw () =
      let id = Rng.int rng space in
      if Hashtbl.mem chosen id then draw ()
      else begin
        Hashtbl.add chosen id ();
        id
      end
    in
    ids.(p) <- draw ()
  done;
  fun p -> ids.(p)

let spec_holds g ~final =
  let ok p =
    let c = final.(p).color in
    c >= 0 && c <= 2
    && Array.for_all (fun q -> final.(q).color <> c) (Graph.neighbors g p)
  in
  let rec go p = p >= Graph.n g || (ok p && go (p + 1)) in
  go 0
