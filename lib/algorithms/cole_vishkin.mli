(** Cole–Vishkin vertex 3-coloring of oriented rings (paper §5.3).

    Nodes of an oriented ring carry unique identifiers of a common bit
    width [w].  Colors start as the identifiers; each {e reduction}
    round every node compares its color with its counterclockwise
    neighbor's color, locates the lowest differing bit [i] with value
    [b], and adopts color [2i + b].  Color width thus drops
    exponentially ([w → ⌈log₂ w⌉ + 1]); after
    [iters(w) + 1 = Θ(log* w)] reductions colors lie in [{0..5}],
    properness being preserved throughout.  Three {e shift-down}
    rounds then eliminate colors 5, 4, 3: each such color class (an
    independent set) simultaneously recolors to the smallest color of
    [{0,1,2}] unused by its two neighbors.

    The round counter is part of the state, so the algorithm is a
    terminating synchronous algorithm with [T = schedule_length w]
    rounds.  Fed to the transformer in greedy mode with
    [B = Θ(log* n)] this gives a silent self-stabilizing 3-coloring in
    [O(log* n)] rounds and [O(n² log* n)] moves — the paper's §5.3
    headline. *)

type state = { color : int; round : int }
type input = { id : int; width : int; schedule : int  (** [T]. *) }

val reduction_iters : int -> int
(** [reduction_iters w] is the number of reduction rounds performed
    for initial width [w]: iterations of [w ← ⌈log₂ w⌉ + 1] needed to
    reach width 3, plus one (the final reduction lands in [{0..5}]). *)

val schedule_length : int -> int
(** [reduction_iters w + 3] — the synchronous execution time [T]. *)

val reduce : own:int -> pred:int -> int
(** One Cole–Vishkin color reduction: lowest differing bit index [i]
    against the predecessor's color, new color [2i + bit].  Total even
    on (illegal) equal colors, for corrupted-cell robustness.  Exposed
    for algorithms composing with the coloring ({!Ring_mis}). *)

val codec : state Ss_core.Cellpack.codec
(** Two-word packed layout [(color, round)] — packed arenas and the
    message network's int-packed delta channels. *)

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm.  Every node must have degree 2 with
    port 0 its clockwise and port 1 its counterclockwise neighbor
    ({!Ss_graph.Builders.cycle}'s convention). *)

val inputs :
  ids:(int -> int) -> width:int -> Ss_graph.Graph.t -> int -> input
(** Build inputs; all ids must be distinct and [< 2^width]. *)

val random_ring_ids :
  Ss_prelude.Rng.t -> n:int -> width:int -> int -> int
(** A random injective id assignment for an [n]-ring drawn from
    [0 .. 2^width).  Requires [n <= 2^width]. *)

val spec_holds : Ss_graph.Graph.t -> final:state array -> bool
(** Colors form a proper coloring with values in [{0,1,2}]. *)

val pp_state : Format.formatter -> state -> unit
