module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Cellpack = Ss_core.Cellpack

(* [color = -1] means uncolored. *)
type state = { id : int; color : int }
type input = int

let uncolored = -1
let equal a b = a.id = b.id && a.color = b.color

(* Greedy (Δ+1)-coloring.  An uncolored node that is the local
   identifier maximum among uncolored neighbors takes the smallest
   color unused in its neighborhood.  Adjacent nodes never pick in the
   same round (strict local maximum, unique ids), colored nodes are
   frozen, and each round the globally largest uncolored node picks —
   so T <= n + 1, and the mex over at most [deg] neighbor colors
   stays within [Δ + 1] colors. *)
let step id self neighbors =
  if self.color <> uncolored then { self with id }
  else if
    Array.for_all
      (fun nb -> nb.color <> uncolored || nb.id < id)
      neighbors
  then begin
    let deg = Array.length neighbors in
    let used = Array.make (deg + 1) false in
    Array.iter
      (fun nb -> if nb.color >= 0 && nb.color <= deg then used.(nb.color) <- true)
      neighbors;
    let rec mex c = if used.(c) then mex (c + 1) else c in
    { id; color = mex 0 }
  end
  else { id; color = uncolored }

let algo =
  {
    Sync_algo.sync_name = "coloring";
    equal;
    init = (fun id -> { id; color = uncolored });
    step;
    random_state =
      (fun rng _ ->
        { id = Rng.int rng 65536; color = Rng.int rng 16 - 1 });
    state_bits =
      (fun s -> 2 + Util.bit_width (abs s.id) + Util.bit_width (abs s.color));
    pp_state =
      (fun ppf s ->
        if s.color = uncolored then Format.fprintf ppf "%d:?" s.id
        else Format.fprintf ppf "%d:%d" s.id s.color);
  }

let codec =
  Cellpack.map
    ~inj:(fun s -> (s.id, s.color))
    ~prj:(fun (id, color) -> { id; color })
    (Cellpack.pair Cellpack.int_codec Cellpack.int_codec)

let spec_holds g ~inputs:_ ~final =
  Ss_core.Checker.coloring_legitimate g
    ~max_colors:(Graph.max_degree g + 1)
    ~color:(fun p -> final.(p).color)
