(** Greedy (Δ+1)-coloring on general graphs — an LCL workload for the
    transformer comparison (distinct from {!Cole_vishkin}, the
    ring-only 3-coloring).

    Nodes have unique identifiers.  An uncolored node that is the
    identifier maximum among its uncolored neighbors takes the
    smallest color unused in its neighborhood ([mex], at most its
    degree).  Adjacent nodes never pick simultaneously, colored nodes
    are frozen, and each round the globally largest uncolored node
    picks — so the fixpoint, a proper coloring with at most [Δ + 1]
    colors, is reached in at most [n + 1] rounds. *)

type state = { id : int; color : int }

type input = int
(** The node's unique identifier. *)

val uncolored : int
(** [-1]. *)

val algo : (state, input) Ss_sync.Sync_algo.t

val codec : state Ss_core.Cellpack.codec
(** Two-word packed layout. *)

val spec_holds :
  Ss_graph.Graph.t -> inputs:(int -> input) -> final:state array -> bool
(** Proper coloring with every color in [[0, Δ]]
    ({!Ss_core.Checker.coloring_legitimate}). *)
