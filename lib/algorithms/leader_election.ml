module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

type state = int
type input = int

let algo =
  {
    Sync_algo.sync_name = "leader-election";
    equal = Int.equal;
    init = (fun id -> id);
    step = (fun _id self neighbors -> Array.fold_left min self neighbors);
    random_state = (fun rng _ -> Rng.int rng 65536);
    state_bits = (fun s -> 1 + Util.bit_width (abs s));
    pp_state = Format.pp_print_int;
  }

let codec = Ss_core.Cellpack.int_codec

let sequential_ids _g p = p

let random_ids rng g =
  let n = Graph.n g in
  let pool = Array.init (16 * n) (fun i -> i) in
  Rng.shuffle rng pool;
  let ids = Array.sub pool 0 n in
  fun p -> ids.(p)

let spec_holds g ~inputs ~final =
  let leader =
    Graph.fold_nodes g ~init:max_int ~f:(fun acc p -> min acc (inputs p))
  in
  Array.for_all (fun s -> s = leader) final
