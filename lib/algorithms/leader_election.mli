(** Leader election by minimum-identifier flooding (paper §5.1).

    Nodes have unique identifiers.  Each node maintains [Best], the
    smallest identifier heard so far, initialized to its own id and
    replaced each round by the minimum over the closed neighborhood.
    After at most [D] synchronous rounds every node designates the
    minimum id of the network — the leader.  Through the transformer
    in lazy mode this yields the first fully-polynomial silent
    self-stabilizing leader election: [O(D)] rounds and [O(n³)]
    moves. *)

type state = int
(** [Best]: smallest identifier seen. *)

type input = int
(** The node's unique identifier. *)

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm. *)

val codec : state Ss_core.Cellpack.codec
(** One-word packed layout for {!Ss_core.Transformer.packed_config}. *)

val sequential_ids : Ss_graph.Graph.t -> int -> input
(** Identifiers [0, 1, …] (node id = identifier). *)

val random_ids : Ss_prelude.Rng.t -> Ss_graph.Graph.t -> int -> input
(** A random injective assignment of identifiers drawn from
    [0 .. 16n). *)

val spec_holds :
  Ss_graph.Graph.t -> inputs:(int -> input) -> final:state array -> bool
(** Every node designates the minimum identifier. *)
