module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Cellpack = Ss_core.Cellpack

(* [prop] is the identifier of the neighbor this node proposes to,
   [mate] the identifier it is matched with; [-1] means none. *)
type state = { id : int; prop : int; mate : int }
type input = int

let none = -1
let equal a b = a.id = b.id && a.prop = b.prop && a.mate = b.mate

(* Propose-to-minimum maximal matching.  Unmatched nodes propose to
   their minimum-id unmatched neighbor; a mutual proposal becomes a
   match (both sides see it in the same round, so mates are always
   symmetric); matched nodes never change again.  Progress: the
   globally minimum-id unmatched node [u] with an unmatched neighbor
   is proposed to by its own proposal target (any unmatched neighbor
   of that target has id >= u, and u is one), so a pair matches every
   couple of rounds and T = O(n). *)
let step id self neighbors =
  if self.mate <> none then { self with id }
  else
    let mutual =
      self.prop <> none
      && Array.exists
           (fun nb -> nb.mate = none && nb.id = self.prop && nb.prop = id)
           neighbors
    in
    if mutual then { id; prop = self.prop; mate = self.prop }
    else
      let prop =
        Array.fold_left
          (fun acc nb ->
            if nb.mate = none && (acc = none || nb.id < acc) then nb.id
            else acc)
          none neighbors
      in
      { id; prop; mate = none }

let algo =
  {
    Sync_algo.sync_name = "matching";
    equal;
    init = (fun id -> { id; prop = none; mate = none });
    step;
    random_state =
      (fun rng _ ->
        {
          id = Rng.int rng 65536;
          prop = Rng.int rng 65536 - 1;
          mate = Rng.int rng 65536 - 1;
        });
    state_bits =
      (fun s ->
        3 + Util.bit_width (abs s.id)
        + Util.bit_width (abs s.prop)
        + Util.bit_width (abs s.mate));
    pp_state =
      (fun ppf s ->
        if s.mate <> none then Format.fprintf ppf "%d=%d" s.id s.mate
        else if s.prop <> none then Format.fprintf ppf "%d>%d" s.id s.prop
        else Format.fprintf ppf "%d." s.id);
  }

let codec =
  Cellpack.map
    ~inj:(fun s -> (s.id, (s.prop, s.mate)))
    ~prj:(fun (id, (prop, mate)) -> { id; prop; mate })
    (Cellpack.pair Cellpack.int_codec
       (Cellpack.pair Cellpack.int_codec Cellpack.int_codec))

let spec_holds g ~inputs ~final =
  let node_of_id = Hashtbl.create (Graph.n g) in
  Graph.iter_nodes g (fun p -> Hashtbl.replace node_of_id (inputs p) p);
  let partner p =
    if final.(p).mate = none then None
    else Hashtbl.find_opt node_of_id final.(p).mate
  in
  (* A mate id that is no node's identifier is illegitimate outright. *)
  Graph.fold_nodes g ~init:true ~f:(fun acc p ->
      acc && (final.(p).mate = none || partner p <> None))
  && Ss_core.Checker.matching_legitimate g ~partner
