(** Maximal matching on general graphs, by propose-to-minimum — an LCL
    workload for the transformer comparison.

    Nodes have unique identifiers.  Unmatched nodes propose to their
    minimum-identifier unmatched neighbor; a {e mutual} proposal
    becomes a match, set symmetrically by both endpoints in the same
    round; matched nodes never change again.  The globally smallest
    unmatched node with an unmatched neighbor is always proposed back
    to within a round, so a pair settles every couple of rounds and
    the fixpoint — a maximal matching — is reached in [O(n)] rounds. *)

type state = { id : int; prop : int; mate : int }
(** [prop]/[mate] hold neighbor {e identifiers} ([-1] = none), not
    node indices — the algorithm runs in the weak port-unaware
    model. *)

type input = int
(** The node's unique identifier. *)

val none : int
(** [-1]. *)

val algo : (state, input) Ss_sync.Sync_algo.t

val codec : state Ss_core.Cellpack.codec
(** Three-word packed layout. *)

val spec_holds :
  Ss_graph.Graph.t -> inputs:(int -> input) -> final:state array -> bool
(** Mates resolve to real nodes and form a maximal matching
    ({!Ss_core.Checker.matching_legitimate}). *)
