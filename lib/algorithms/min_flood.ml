module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Util = Ss_prelude.Util

type state = int
type input = int

let algo =
  {
    Sync_algo.sync_name = "min-flood";
    equal = Int.equal;
    init = (fun v -> v);
    step =
      (fun _input self neighbors -> Array.fold_left min self neighbors);
    random_state = (fun rng _ -> Ss_prelude.Rng.int_in rng (-1024) 1024);
    state_bits = (fun s -> 1 + Util.bit_width (abs s));
    pp_state = Format.pp_print_int;
  }

let codec = Ss_core.Cellpack.int_codec

let inputs_of_values values p = values.(p)

let spec_holds g ~inputs ~final =
  let global_min =
    Graph.fold_nodes g ~init:max_int ~f:(fun acc p -> min acc (inputs p))
  in
  Array.for_all (fun s -> s = global_min) final
