(** Minimum computation by flooding (paper §7's input algorithm).

    Every node holds an integer; at each round a node replaces its
    value by the minimum over its closed neighborhood.  The algorithm
    is silent after at most [D] rounds, with every node holding the
    global minimum.  It runs in the weak anonymous model (the neighbor
    array is used as a multiset). *)

type state = int
type input = int  (** The node's initial value [p.I]. *)

val algo : (state, input) Ss_sync.Sync_algo.t
(** The synchronous algorithm. *)

val codec : state Ss_core.Cellpack.codec
(** One-word packed layout for {!Ss_core.Transformer.packed_config}. *)

val inputs_of_values : int array -> int -> input
(** [inputs_of_values values] is an input function for
    {!Ss_sync.Sync_runner.run}. *)

val spec_holds :
  Ss_graph.Graph.t -> inputs:(int -> input) -> final:state array -> bool
(** Every node ends with the global minimum of the inputs. *)
