module Sync_algo = Ss_sync.Sync_algo
module Graph = Ss_graph.Graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Cellpack = Ss_core.Cellpack

type mem = Undecided | In | Out
type state = { id : int; mem : mem }
type input = int

let equal a b = a.id = b.id && a.mem = b.mem

(* Greedy local-max MIS.  A node joins when every neighbor is either
   already excluded or still undecided with a smaller id; it leaves
   when a neighbor joined.  Adjacent simultaneous joins are impossible
   (ids are unique), and each round the largest-id undecided node
   decides, so T <= n + 1. *)
let step id self neighbors =
  ignore self;
  let mem =
    if Array.exists (fun nb -> nb.mem = In) neighbors then Out
    else if
      Array.for_all (fun nb -> nb.mem = Out || nb.id < id) neighbors
    then In
    else Undecided
  in
  { id; mem }

let algo =
  {
    Sync_algo.sync_name = "mis";
    equal;
    init = (fun id -> { id; mem = Undecided });
    step;
    random_state =
      (fun rng _ ->
        {
          id = Rng.int rng 65536;
          mem =
            (match Rng.int rng 3 with 0 -> Undecided | 1 -> In | _ -> Out);
        });
    state_bits = (fun s -> 2 + 1 + Util.bit_width (abs s.id));
    pp_state =
      (fun ppf s ->
        Format.fprintf ppf "%d%s" s.id
          (match s.mem with Undecided -> "?" | In -> "+" | Out -> "-"));
  }

let mem_tag = function Undecided -> 0 | In -> 1 | Out -> 2
let mem_of_tag = function 0 -> Undecided | 1 -> In | _ -> Out

let codec =
  Cellpack.map
    ~inj:(fun s -> (s.id, mem_tag s.mem))
    ~prj:(fun (id, tag) -> { id; mem = mem_of_tag tag })
    (Cellpack.pair Cellpack.int_codec Cellpack.int_codec)

let spec_holds g ~inputs:_ ~final =
  Array.for_all (fun s -> s.mem <> Undecided) final
  && Ss_core.Checker.mis_legitimate g ~in_set:(fun p -> final.(p).mem = In)
