(** Maximal independent set on general graphs, by greedy local-max
    joining — an LCL workload for the transformer comparison.

    Nodes have unique identifiers.  Each round a node recomputes its
    membership from its neighborhood: it is [Out] when some neighbor
    is [In], [In] when every neighbor is [Out] or still [Undecided]
    with a smaller identifier, and [Undecided] otherwise.  Adjacent
    simultaneous joins are impossible (identifiers are unique and the
    join condition is a strict local maximum), joined nodes never
    revert, and each round the largest-identifier undecided node
    decides — so the fixpoint, a maximal independent set, is reached
    in at most [n + 1] rounds. *)

type mem = Undecided | In | Out

type state = { id : int; mem : mem }

type input = int
(** The node's unique identifier. *)

val algo : (state, input) Ss_sync.Sync_algo.t

val codec : state Ss_core.Cellpack.codec
(** Two-word packed layout (identifier, membership tag). *)

val spec_holds :
  Ss_graph.Graph.t -> inputs:(int -> input) -> final:state array -> bool
(** Every node decided, and the [In] set is a maximal independent set
    ({!Ss_core.Checker.mis_legitimate}). *)
