module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine

type state = int
type input = { index : int; n : int; k : int }

(* On Builders.cycle, port 0 is the clockwise neighbor (i+1) and port 1
   the counterclockwise one (i-1); the token travels clockwise, so a
   machine reads its predecessor on port 1. *)
let predecessor (v : (state, input) Algorithm.view) = v.Algorithm.neighbors.(1)

let algo : (state, input) Algorithm.t =
  {
    Algorithm.algo_name = "dijkstra-token-ring";
    equal = Int.equal;
    rules =
      [
        {
          Algorithm.rule_name = "BOTTOM";
          guard =
            (fun v ->
              v.Algorithm.input.index = 0 && v.Algorithm.self = predecessor v);
          action = (fun v -> (v.Algorithm.self + 1) mod v.Algorithm.input.k);
        };
        {
          Algorithm.rule_name = "COPY";
          guard =
            (fun v ->
              v.Algorithm.input.index <> 0 && v.Algorithm.self <> predecessor v);
          action = (fun v -> predecessor v);
        };
      ];
    pp_state = Format.pp_print_int;
  }

let inputs ~n ?k () =
  let k = match k with Some k -> k | None -> n + 1 in
  if k < n then invalid_arg "Dijkstra_ring.inputs: k must be >= n";
  fun index -> { index; n; k }

let privileged config = Config.enabled_nodes algo config
let legitimate config = List.length (privileged config) = 1

let run_to_legitimacy ?(max_steps = 1_000_000) daemon config =
  let rec go config steps moves =
    if legitimate config then Some (steps, moves, config)
    else if steps >= max_steps then None
    else begin
      let enabled = Config.enabled_nodes algo config in
      let selected =
        daemon.Daemon.select ~step:steps ~enabled:(Array.of_list enabled)
      in
      let config', moved = Engine.step algo config selected in
      go config' (steps + 1) (moves + List.length moved)
    end
  in
  go config 0 0

let closure_holds ?(steps = 200) daemon config =
  let rec go config i =
    i >= steps
    || legitimate config
       &&
       let enabled = Config.enabled_nodes algo config in
       let selected =
         daemon.Daemon.select ~step:i ~enabled:(Array.of_list enabled)
       in
       let config', _ = Engine.step algo config selected in
       go config' (i + 1)
  in
  legitimate config && go config 0
