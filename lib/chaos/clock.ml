type t = { mutable now : float; dt : float }

let create ?(t0 = 0.) ?(dt = 1e-5) () =
  if dt < 0. then invalid_arg "Clock.create: dt must be >= 0";
  { now = t0; dt }

let now t = t.now
let tick t = t.now <- t.now +. t.dt

let advance t dt =
  if dt < 0. then invalid_arg "Clock.advance: dt must be >= 0";
  t.now <- t.now +. dt

let now_fn t () = t.now
