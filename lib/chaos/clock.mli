(** Virtual clock for deterministic simulation time.

    Simulated runs must not read the machine clock: wall time makes
    deadline budgets racy (a GC pause or an NTP step trips them
    non-deterministically) and leaks into [Run_report.wall_s], which
    then differs between two byte-identical executions.  A [Clock.t]
    is a plain counter advanced by the simulation itself — one
    {!tick} per event — so "time" is a pure function of the event
    sequence: same scenario, same virtual timestamps, always.

    Inject it with {!now_fn}: {!Ss_report.Budget.deadline_check}
    takes [?now], and the sim harness stamps its reports with
    {!now} (reported under [timebase = Virtual]). *)

type t

val create : ?t0:float -> ?dt:float -> unit -> t
(** [create ()] starts at [t0] (default [0.]) and advances by [dt]
    seconds (default [1e-5]) per {!tick}.
    @raise Invalid_argument if [dt < 0]. *)

val now : t -> float
(** Current virtual time, seconds. *)

val tick : t -> unit
(** Advance by the per-event [dt]. *)

val advance : t -> float -> unit
(** Advance by an explicit amount.
    @raise Invalid_argument on a negative amount. *)

val now_fn : t -> unit -> float
(** The clock as an injectable [now] function. *)
