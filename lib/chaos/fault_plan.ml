module Rng = Ss_prelude.Rng

let ppm_scale = 1_000_000

type rates = { drop_ppm : int; reorder_ppm : int; dup_ppm : int }

let no_rates = { drop_ppm = 0; reorder_ppm = 0; dup_ppm = 0 }

let check_ppm what v =
  if v < 0 || v > ppm_scale then
    invalid_arg
      (Printf.sprintf "Fault_plan: %s = %d outside [0, %d]" what v ppm_scale)

let rates ?(drop_ppm = 0) ?(reorder_ppm = 0) ?(dup_ppm = 0) () =
  check_ppm "drop_ppm" drop_ppm;
  check_ppm "reorder_ppm" reorder_ppm;
  check_ppm "dup_ppm" dup_ppm;
  { drop_ppm; reorder_ppm; dup_ppm }

type t = {
  r : rates;
  horizon : int;
  rng : Rng.t;
  mutable corrupt_at : int list;
}

let v ?(rates = no_rates) ?(corrupt_at = []) ?(horizon = max_int) ~seed () =
  List.iter
    (fun e ->
      if e < 0 then
        invalid_arg "Fault_plan.v: corruption indices must be >= 0")
    corrupt_at;
  if horizon < 0 then invalid_arg "Fault_plan.v: horizon must be >= 0";
  {
    r = rates;
    horizon;
    (* A private splitmix64 stream: plan draws never touch the run's
       scheduler rng, so attaching or removing a plan cannot shift any
       other stream, and a null plan leaves the run byte-identical to a
       fault-free one. *)
    rng = Rng.create (seed * 0x5851F42D + 0x4C957);
    corrupt_at = List.sort_uniq compare corrupt_at;
  }

let null () = v ~seed:0 ()

let is_null t =
  t.r.drop_ppm = 0 && t.r.reorder_ppm = 0 && t.r.dup_ppm = 0
  && t.corrupt_at = []

let rng t = t.rng

type verdict = Deliver | Drop | Duplicate | Reorder

(* Draw discipline (DESIGN.md §13): exactly three draws per consult —
   drop, then duplicate, then reorder — no matter which verdict wins.
   A fixed per-consult draw count means the plan stream's alignment
   depends only on the number of delivery picks before each event,
   never on earlier verdicts, so a replay that takes the same schedule
   consumes the stream identically.  Past the fault horizon the plan
   is inert: zero draws and an unconditional Deliver — the stream
   freezes at a point that is itself a pure function of the schedule,
   so replays stay aligned. *)
let consult t ~event =
  if event >= t.horizon then Deliver
  else
    let hit ppm = Rng.int t.rng ppm_scale < ppm in
    let drop = hit t.r.drop_ppm in
    let dup = hit t.r.dup_ppm in
    let reorder = hit t.r.reorder_ppm in
    if drop then Drop
    else if dup then Duplicate
    else if reorder then Reorder
    else Deliver

let corruption_due t ~event =
  match t.corrupt_at with
  | e :: rest when e <= event ->
      t.corrupt_at <- rest;
      true
  | _ -> false

let pending_corruptions t = List.length t.corrupt_at
