(** Deterministic fault plans — the chaos layer's decision maker.

    A plan bundles ppm-rated message-fault probabilities (drop /
    duplicate / reorder, TigerBeetle-style parts-per-million) with a
    finite schedule of mid-run state-corruption events, all driven by
    a {e private} splitmix64 stream derived from the plan seed.  The
    run loop that consults a plan never mixes plan draws into its own
    scheduler rng, so:

    - the same [(seed, rates, corrupt_at)] triple replays every
      verdict bit-for-bit;
    - a null plan leaves the host run byte-identical to a fault-free
      one (zero extra draws on the run's stream).

    The consumer ({!Ss_msgnet.Msgnet.run}) consults the plan once per
    delivery pick and asks {!corruption_due} once per event. *)

val ppm_scale : int
(** [1_000_000] — rates are parts per million. *)

type rates = { drop_ppm : int; reorder_ppm : int; dup_ppm : int }

val no_rates : rates
(** All-zero rates. *)

val rates : ?drop_ppm:int -> ?reorder_ppm:int -> ?dup_ppm:int -> unit -> rates
(** Validated constructor.
    @raise Invalid_argument if any rate is outside [\[0, ppm_scale\]]. *)

type t

val v :
  ?rates:rates -> ?corrupt_at:int list -> ?horizon:int -> seed:int -> unit -> t
(** [v ~rates ~corrupt_at ~horizon ~seed ()] is a fresh plan.
    [corrupt_at] lists the event (or step) indices at which one mid-run
    transient corruption fires; it is deduplicated and sorted.
    [horizon] (default unbounded) is the event index past which the
    ppm rates stop applying.  Both make the fault schedule {e finite},
    so a self-stabilizing system always gets a fault-free suffix to
    re-stabilize in — the convergence promise under test is "after the
    last transient fault", not "under a perpetual fault process".
    @raise Invalid_argument on a negative index or horizon. *)

val null : unit -> t
(** A plan that never injects anything. *)

val is_null : t -> bool

val rng : t -> Ss_prelude.Rng.t
(** The plan's private stream — used by the host loop to pick
    corruption victims and drive mutators, keeping every chaos draw
    off the scheduler's stream. *)

type verdict = Deliver | Drop | Duplicate | Reorder

val consult : t -> event:int -> verdict
(** One delivery-pick decision at event index [event].  {b Draw
    discipline}: exactly three draws from the plan stream per consult
    (drop, then duplicate, then reorder — drop wins, then duplicate,
    then reorder), no matter which verdict results, so the stream's
    alignment depends only on how many picks preceded the event.  Once
    [event] reaches the plan's horizon the plan is inert — zero draws,
    unconditional [Deliver]. *)

val corruption_due : t -> event:int -> bool
(** [corruption_due t ~event] is [true] when the head of the
    remaining corruption schedule is [<= event]; the head is consumed.
    At most one corruption fires per call — call once per event. *)

val pending_corruptions : t -> int
(** Remaining scheduled corruption events. *)
