type t = {
  name : string;
  rates : Fault_plan.rates;
  fault_horizon : int;
  corrupt_events : int list;
  corrupt_steps : int list;
}

let quick =
  {
    name = "quick";
    rates = Fault_plan.no_rates;
    fault_horizon = 0;
    corrupt_events = [];
    corrupt_steps = [];
  }

(* Horizons bound the message-fault window: with nonzero drop rates the
   network is perpetually re-perturbed (a dropped update leaves a stale
   mirror that the next proof wave must repair, whose repair traffic is
   itself subject to drops), so a perpetual fault process never
   quiesces.  Self-stabilization promises convergence after the {e
   last} transient fault — the horizon is where that clock starts. *)
let standard =
  {
    name = "standard";
    rates = Fault_plan.rates ~drop_ppm:2_000 ~reorder_ppm:1_000 ~dup_ppm:1_000 ();
    fault_horizon = 30_000;
    corrupt_events = [ 400; 1_100 ];
    corrupt_steps = [ 20; 60 ];
  }

let chaos =
  {
    name = "chaos";
    rates =
      Fault_plan.rates ~drop_ppm:20_000 ~reorder_ppm:10_000 ~dup_ppm:10_000 ();
    fault_horizon = 100_000;
    corrupt_events = [ 300; 900; 1_700 ];
    corrupt_steps = [ 10; 40; 90 ];
  }

let all = [ quick; standard; chaos ]

let of_string s =
  match List.find_opt (fun m -> m.name = s) all with
  | Some m -> Ok m
  | None ->
      Error
        (Printf.sprintf "unknown scenario %S (expected %s)" s
           (String.concat " | " (List.map (fun m -> m.name) all)))

let msgnet_plan t ~seed =
  Fault_plan.v ~rates:t.rates ~horizon:t.fault_horizon
    ~corrupt_at:t.corrupt_events ~seed ()

let engine_plan t ~seed =
  (* The engine loop has no channels, so only the corruption schedule
     applies; a distinct seed offset decorrelates its victim draws
     from the msgnet plan of the same scenario cell. *)
  Fault_plan.v ~corrupt_at:t.corrupt_steps ~seed:(seed + 0x10001) ()
