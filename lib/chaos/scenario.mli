(** Named fault scenarios (TigerBeetle-style modes).

    A scenario is a reusable severity preset: message-fault rates in
    ppm applied up to a finite event horizon, plus finite mid-run
    corruption schedules for the two run loops (event indices for the
    message network, step indices for the atomic-state engine).  Both
    the horizon and the schedules are finite so every scenario ends
    with a fault-free suffix in which the transformer must
    re-stabilize — the §3 claim under test: self-stabilization
    promises convergence after the {e last} transient fault, not under
    a perpetual fault process.

    | scenario | drop | reorder | duplicate | horizon | corruptions |
    |----------|------|---------|-----------|---------|-------------|
    | quick    | 0    | 0       | 0         | 0       | none        |
    | standard | 0.2% | 0.1%    | 0.1%      | 30k ev  | 2           |
    | chaos    | 2%   | 1%      | 1%        | 100k ev | 3           | *)

type t = {
  name : string;
  rates : Fault_plan.rates;
  fault_horizon : int;
      (** Event index past which the ppm rates stop applying. *)
  corrupt_events : int list;  (** Msgnet event indices. *)
  corrupt_steps : int list;  (** Engine step indices. *)
}

val quick : t
(** Fault-free smoke (still exercises the chaos plumbing). *)

val standard : t
(** Mild faults: 0.2% drop, 0.1% reorder, 0.1% duplicate, two mid-run
    corruption bursts.  Every §5 instance must still stabilize. *)

val chaos : t
(** Maximum severity: 2% drop, 1% reorder, 1% duplicate, three
    mid-run corruption bursts. *)

val all : t list
val of_string : string -> (t, string) result

val msgnet_plan : t -> seed:int -> Fault_plan.t
(** The scenario instantiated for one message-network run. *)

val engine_plan : t -> seed:int -> Fault_plan.t
(** The scenario instantiated for one engine run (corruption schedule
    only — the atomic-state model has no channels). *)
