type 's codec = {
  words : int;
  pack : int array -> int -> 's -> unit;
  unpack : int array -> int -> 's;
}

let int_codec =
  {
    words = 1;
    pack = (fun data off v -> data.(off) <- v);
    unpack = (fun data off -> data.(off));
  }

let map ~inj ~prj base =
  {
    words = base.words;
    pack = (fun data off v -> base.pack data off (inj v));
    unpack = (fun data off -> prj (base.unpack data off));
  }

let pair ca cb =
  {
    words = ca.words + cb.words;
    pack =
      (fun data off (a, b) ->
        ca.pack data off a;
        cb.pack data (off + ca.words) b);
    unpack =
      (fun data off -> (ca.unpack data off, cb.unpack data (off + ca.words)));
  }

type 's arena = {
  codec : 's codec;
  a_n : int;
  a_cap : int;
  data : int array;  (* node p's cell slot i at ((p·cap)+i)·words *)
  committed : int array;  (* per node: committed cell count *)
  rep : int array;
      (* per node: current lineage id, minted by Trans_state from the
         same global counter as boxed buffer ids (0 = no handle yet) *)
}

let arena ~codec ~n ~cap =
  if n < 1 then invalid_arg "Cellpack.arena: n must be >= 1";
  if cap < 0 then invalid_arg "Cellpack.arena: cap must be >= 0";
  if codec.words < 1 then invalid_arg "Cellpack.arena: codec.words must be >= 1";
  {
    codec;
    a_n = n;
    a_cap = cap;
    data = Array.make (max 1 (n * cap * codec.words)) 0;
    committed = Array.make n 0;
    rep = Array.make n 0;
  }

let n a = a.a_n
let cap a = a.a_cap

let bytes a =
  (* Flat int-array payloads; 8 bytes per word on 64-bit. *)
  8 * (Array.length a.data + (2 * a.a_n) + 8)

let slot a node i = ((node * a.a_cap) + i) * a.codec.words
