(** Packed state arenas (DESIGN.md §12).

    A {e codec} lays one simulated-algorithm state into a fixed number
    of machine words of a flat [int array]; an {e arena} is one such
    array holding the transformer cells of an entire node population:
    node [p]'s logical cell [i] (1-based) lives at word offset
    [((p * cap) + (i-1)) * codec.words].  With a finite transformer
    bound [B] every list has height at most [B], so [cap = B] packs a
    whole million-node run into [n * B * words] boxed-pointer-free
    words — no per-cell allocation, no GC scanning of the payload.

    Arenas are {e low-level} storage: the record fields are exposed
    because {!Trans_state} (the only writer) manages the per-node
    committed frontiers and lineage ids directly.  Everyone else
    should treat an arena as opaque and go through {!Trans_state}. *)

type 's codec = {
  words : int;  (** Words per packed state; [>= 1]. *)
  pack : int array -> int -> 's -> unit;
      (** [pack data off s] writes [s] at [data.(off .. off+words-1)]. *)
  unpack : int array -> int -> 's;  (** Inverse of [pack]. *)
}
(** A fixed-width binary layout for states ['s].  [unpack] after
    [pack] must reproduce a state [equal] to the original (physical
    identity is {e not} preserved — packed cells are values, not
    pointers). *)

val int_codec : int codec
(** The identity layout for [int] states: one word. *)

val map : inj:('s -> 't) -> prj:('t -> 's) -> 't codec -> 's codec
(** Derive a codec through an isomorphism — e.g. lay out a variant
    state over {!int_codec} with an injection to tags.
    [prj (inj s)] must equal [s]. *)

val pair : 'a codec -> 'b codec -> ('a * 'b) codec
(** Product layout: the two components side by side. *)

type 's arena = {
  codec : 's codec;
  a_n : int;  (** Number of node slots. *)
  a_cap : int;  (** Max cells per node (the transformer bound [B]). *)
  data : int array;  (** [n * cap * words] payload words. *)
  committed : int array;
      (** Per node: number of committed cells.  Maintained by
          {!Trans_state}; cells below the frontier are write-once
          until the lineage id changes. *)
  rep : int array;
      (** Per node: current lineage id ([0] until first handle),
          minted by {!Trans_state} from the same global counter as
          boxed buffer ids — so [Trans_state.rep_id] is globally
          unique across both backends. *)
}

val arena : codec:'s codec -> n:int -> cap:int -> 's arena
(** Fresh zeroed arena for [n] nodes of at most [cap] cells each.
    @raise Invalid_argument on [n < 1], [cap < 0] or a codec with
    [words < 1]. *)

val n : 's arena -> int
val cap : 's arena -> int

val bytes : 's arena -> int
(** Resident size of the arena's flat arrays in bytes (64-bit words),
    for memory accounting in benchmarks. *)

val slot : 's arena -> int -> int -> int
(** [slot a node i] is the word offset of node [node]'s cell slot [i]
    (0-based slot — logical cell [i+1]).  No bounds check. *)
