module Config = Ss_sim.Config
module Graph = Ss_graph.Graph
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module St = Trans_state

let roots params config =
  List.filter
    (fun p -> Predicates.is_root params (Config.view config p))
    (Ss_prelude.Util.range (Config.n config))

let has_root params config =
  List.exists
    (fun p -> Predicates.is_root params (Config.view config p))
    (Ss_prelude.Util.range (Config.n config))

let heights config = Array.map St.height config.Config.states

let error_count config =
  Array.fold_left
    (fun acc st -> if St.in_error st then acc + 1 else acc)
    0 config.Config.states

let max_cliff config =
  let h = heights config in
  List.fold_left
    (fun acc (u, v) -> max acc (abs (h.(u) - h.(v))))
    0
    (Graph.edges config.Config.graph)

let space_bits params config =
  let bits = params.Transformer.sync.Sync_algo.state_bits in
  Array.fold_left
    (fun acc st ->
      let cell_bits = St.fold_cells (fun b s -> b + bits s) 0 st in
      max acc (1 + bits (St.init st) + cell_bits))
    0 config.Config.states

let simulates_history params history config =
  let eq = params.Transformer.sync.Sync_algo.equal in
  let ok p =
    let st = Config.state config p in
    (not (St.in_error st))
    && eq (St.init st) (Sync_runner.state_at history ~round:0 ~node:p)
    &&
    let rec cells i =
      i > St.height st
      || (eq (St.cell st i) (Sync_runner.state_at history ~round:i ~node:p)
         && cells (i + 1))
    in
    cells 1
  in
  let rec go p = p >= Config.n config || (ok p && go (p + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* LCL output checkers                                                  *)
(* ------------------------------------------------------------------ *)

let mis_legitimate g ~in_set =
  let independent =
    List.for_all (fun (u, v) -> not (in_set u && in_set v)) (Graph.edges g)
  in
  let dominated p =
    in_set p || Array.exists in_set (Graph.neighbors g p)
  in
  independent && Graph.fold_nodes g ~init:true ~f:(fun acc p -> acc && dominated p)

let matching_legitimate g ~partner =
  let adjacent u v = Array.exists (fun w -> w = v) (Graph.neighbors g u) in
  let consistent p =
    match partner p with
    | None -> true
    | Some q ->
        q <> p && q >= 0 && q < Graph.n g && adjacent p q
        && partner q = Some p
  in
  let maximal =
    List.for_all
      (fun (u, v) -> partner u <> None || partner v <> None)
      (Graph.edges g)
  in
  maximal
  && Graph.fold_nodes g ~init:true ~f:(fun acc p -> acc && consistent p)

let coloring_legitimate g ~max_colors ~color =
  let in_range p = color p >= 0 && color p < max_colors in
  let proper = List.for_all (fun (u, v) -> color u <> color v) (Graph.edges g) in
  proper && Graph.fold_nodes g ~init:true ~f:(fun acc p -> acc && in_range p)

let legitimate_terminal params history config =
  let algo = Transformer.algorithm params in
  if not (Config.is_terminal algo config) then
    Error "configuration is not terminal"
  else if has_root params config then Error "terminal configuration has a root"
  else begin
    let h = heights config in
    let h0 = if Array.length h = 0 then 0 else h.(0) in
    if not (Array.for_all (fun x -> x = h0) h) then
      Error "terminal heights are not all equal"
    else if not (simulates_history params history config) then
      Error "terminal lists do not match the synchronous history"
    else Ok ()
  end
