module Config = Ss_sim.Config
module Graph = Ss_graph.Graph
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module St = Trans_state

let roots params config =
  List.filter
    (fun p -> Predicates.is_root params (Config.view config p))
    (Ss_prelude.Util.range (Config.n config))

let has_root params config =
  List.exists
    (fun p -> Predicates.is_root params (Config.view config p))
    (Ss_prelude.Util.range (Config.n config))

let heights config = Array.map St.height config.Config.states

let error_count config =
  Array.fold_left
    (fun acc st -> if St.in_error st then acc + 1 else acc)
    0 config.Config.states

let max_cliff config =
  let h = heights config in
  List.fold_left
    (fun acc (u, v) -> max acc (abs (h.(u) - h.(v))))
    0
    (Graph.edges config.Config.graph)

let space_bits params config =
  let bits = params.Transformer.sync.Sync_algo.state_bits in
  Array.fold_left
    (fun acc st ->
      let cell_bits = St.fold_cells (fun b s -> b + bits s) 0 st in
      max acc (1 + bits (St.init st) + cell_bits))
    0 config.Config.states

let simulates_history params history config =
  let eq = params.Transformer.sync.Sync_algo.equal in
  let ok p =
    let st = Config.state config p in
    (not (St.in_error st))
    && eq (St.init st) (Sync_runner.state_at history ~round:0 ~node:p)
    &&
    let rec cells i =
      i > St.height st
      || (eq (St.cell st i) (Sync_runner.state_at history ~round:i ~node:p)
         && cells (i + 1))
    in
    cells 1
  in
  let rec go p = p >= Config.n config || (ok p && go (p + 1)) in
  go 0

let legitimate_terminal params history config =
  let algo = Transformer.algorithm params in
  if not (Config.is_terminal algo config) then
    Error "configuration is not terminal"
  else if has_root params config then Error "terminal configuration has a root"
  else begin
    let h = heights config in
    let h0 = if Array.length h = 0 then 0 else h.(0) in
    if not (Array.for_all (fun x -> x = h0) h) then
      Error "terminal heights are not all equal"
    else if not (simulates_history params history config) then
      Error "terminal lists do not match the synchronous history"
    else Ok ()
  end
