(** Global inspection of transformer configurations: roots, heights,
    legitimacy.

    These are omniscient checks used by experiments and tests — not
    available to the nodes themselves. *)

val roots :
  ('s, 'i) Transformer.params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  int list
(** Nodes currently satisfying [root(p)], in increasing order.  The
    paper proves this set can only shrink along any execution. *)

val has_root :
  ('s, 'i) Transformer.params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  bool
(** Whether some root remains — [false] marks the end of the error
    recovery phase (§4). *)

val heights : ('s Trans_state.t, 'i) Ss_sim.Config.t -> int array
(** Per-node list heights. *)

val error_count : ('s Trans_state.t, 'i) Ss_sim.Config.t -> int
(** Number of nodes with status [E]. *)

val max_cliff : ('s Trans_state.t, 'i) Ss_sim.Config.t -> int
(** Largest height difference across an edge (a {e cliff} is a
    difference [>= 2], §4.3). *)

val space_bits :
  ('s, 'i) Transformer.params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  int
(** Maximum over nodes of the memory footprint in bits: the sizes of
    all cells plus [init] plus one status bit — the measured
    counterpart of Table 1's [O(B·S)]. *)

val simulates_history :
  ('s, 'i) Transformer.params ->
  ('s, 'i) Ss_sync.Sync_runner.history ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  bool
(** Every node's cell [i] equals [st_p^i] (rounds beyond [T] clamp to
    the fixpoint) for all [i <= h], and every status is [C]. *)

val mis_legitimate : Ss_graph.Graph.t -> in_set:(int -> bool) -> bool
(** The flagged set is a {e maximal independent set}: no edge has both
    endpoints in the set, and every node outside it has a neighbor
    inside. *)

val matching_legitimate :
  Ss_graph.Graph.t -> partner:(int -> int option) -> bool
(** [partner p] is the node matched to [p] ([None] when unmatched).
    Checks a {e maximal matching}: partners are mutual, distinct and
    adjacent, and no edge joins two unmatched nodes. *)

val coloring_legitimate :
  Ss_graph.Graph.t -> max_colors:int -> color:(int -> int) -> bool
(** Every node's color lies in [[0, max_colors)] (negative = uncolored
    = illegitimate) and no edge is monochromatic — for the greedy
    algorithm, call with [max_colors = Δ + 1]. *)

val legitimate_terminal :
  ('s, 'i) Transformer.params ->
  ('s, 'i) Ss_sync.Sync_runner.history ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  (unit, string) result
(** Full terminal-configuration check (§4.1): no enabled node, no
    root, all heights equal, correct simulation contents.  Returns a
    diagnostic on failure. *)
