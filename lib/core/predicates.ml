module Algorithm = Ss_sim.Algorithm
module Sync_algo = Ss_sync.Sync_algo
module St = Trans_state

type mode = Lazy | Greedy
type bound = Finite of int | Infinite

type ('s, 'i) params = {
  sync : ('s, 'i) Sync_algo.t;
  mode : mode;
  bound : bound;
}

type ('s, 'i) view = ('s Trans_state.t, 'i) Algorithm.view

let below_bound b h = match b with Finite b -> h < b | Infinite -> true
let bound_to_int = function Finite b -> b | Infinite -> max_int

let algo_hat params (v : ('s, 'i) view) i =
  params.sync.Sync_algo.step v.Algorithm.input
    (St.cell v.Algorithm.self i)
    (Array.map (fun nb -> St.cell nb i) v.Algorithm.neighbors)

let min_neighbor_height (v : ('s, 'i) view) =
  Array.fold_left
    (fun acc nb -> min acc (St.height nb))
    max_int v.Algorithm.neighbors

let algo_err params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  let min_nb = min_neighbor_height v in
  (* Cell i is checkable when all dependencies exist: i - 1 <= q.h for
     every neighbor q, i.e. i <= min_nb + 1 (beware overflow when the
     node has no neighbors). *)
  let top_checkable = if min_nb = max_int then h else min h (min_nb + 1) in
  if top_checkable < 1 then false
  else begin
    (* This guard is the hottest path of both engines; one scratch
       dependency array refilled per cell replaces the fresh Array.map
       that algo_hat would allocate for every checked cell ([step]
       computes from the array and must not retain it). *)
    let nbs = v.Algorithm.neighbors in
    let deg = Array.length nbs in
    let deps = Array.make deg (St.cell self 0) in
    let rec bad i =
      i <= top_checkable
      && begin
           for k = 0 to deg - 1 do
             deps.(k) <- St.cell nbs.(k) (i - 1)
           done;
           (not
              (params.sync.Sync_algo.equal (St.cell self i)
                 (params.sync.Sync_algo.step v.Algorithm.input
                    (St.cell self (i - 1))
                    deps)))
           || bad (i + 1)
         end
    in
    bad 1
  end

let dep_err _params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  let nbs = v.Algorithm.neighbors in
  match self.St.status with
  | St.E -> not (Array.exists (fun q -> St.in_error q && St.height q < h) nbs)
  | St.C -> Array.exists (fun q -> St.height q >= h + 2) nbs

let is_root params v = algo_err params v || dep_err params v

let err_prop_index _params (v : ('s, 'i) view) =
  let h = St.height v.Algorithm.self in
  (* The smallest valid i is (min height of an error neighbor) + 1;
     it must satisfy q.h < i < p.h. *)
  let best = ref max_int in
  Array.iter
    (fun q -> if St.in_error q then best := min !best (St.height q))
    v.Algorithm.neighbors;
  if !best < max_int && !best + 1 < h then Some (!best + 1) else None

let can_clear_e _params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  St.in_error self
  && Array.for_all
       (fun q ->
         let hq = St.height q in
         abs (hq - h) <= 1 && (hq <= h || not (St.in_error q)))
       v.Algorithm.neighbors

let updatable params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  (not (St.in_error self))
  && below_bound params.bound h
  && Array.for_all
       (fun q ->
         let hq = St.height q in
         h <= hq && hq <= h + 1)
       v.Algorithm.neighbors
  && (params.mode = Greedy
     || (not (params.sync.Sync_algo.equal (St.top self) (algo_hat params v h)))
     || Array.exists (fun q -> St.height q > h) v.Algorithm.neighbors)
