module Algorithm = Ss_sim.Algorithm
module Sync_algo = Ss_sync.Sync_algo
module St = Trans_state

type mode = Lazy | Greedy
type bound = Finite of int | Infinite

type ('s, 'i) params = {
  sync : ('s, 'i) Sync_algo.t;
  mode : mode;
  bound : bound;
}

type ('s, 'i) view = ('s Trans_state.t, 'i) Algorithm.view

let below_bound b h = match b with Finite b -> h < b | Infinite -> true
let bound_to_int = function Finite b -> b | Infinite -> max_int

let algo_hat params (v : ('s, 'i) view) i =
  params.sync.Sync_algo.step v.Algorithm.input
    (St.cell v.Algorithm.self i)
    (Array.map (fun nb -> St.cell nb i) v.Algorithm.neighbors)

let min_neighbor_height (v : ('s, 'i) view) =
  Array.fold_left
    (fun acc nb -> min acc (St.height nb))
    max_int v.Algorithm.neighbors

(* Cell i is checkable when all dependencies exist: i - 1 <= q.h for
   every neighbor q, i.e. i <= min_nb + 1 (beware overflow when the
   node has no neighbors). *)
let top_checkable (v : ('s, 'i) view) : int =
  let h = St.height v.Algorithm.self in
  let min_nb = min_neighbor_height v in
  if min_nb = max_int then h else min h (min_nb + 1)

(* Scan cells [base+1 .. top] for an algorithm error, refilling one
   scratch dependency array per cell instead of the fresh Array.map
   that algo_hat would allocate ([step] computes from the array and
   must not retain it).  Returns the index of the first bad cell, or
   [top + 1] when the whole range verifies. *)
let first_bad params (v : ('s, 'i) view) ~base ~top =
  let self = v.Algorithm.self in
  let nbs = v.Algorithm.neighbors in
  let deg = Array.length nbs in
  let deps = Array.make deg (St.cell self 0) in
  let i = ref (base + 1) in
  let bad = ref false in
  while (not !bad) && !i <= top do
    for k = 0 to deg - 1 do
      deps.(k) <- St.cell nbs.(k) (!i - 1)
    done;
    if
      not
        (params.sync.Sync_algo.equal (St.cell self !i)
           (params.sync.Sync_algo.step v.Algorithm.input
              (St.cell self (!i - 1))
              deps))
    then bad := true
    else incr i
  done;
  !i

let algo_err params (v : ('s, 'i) view) =
  let top = top_checkable v in
  top >= 1 && first_bad params v ~base:0 ~top <= top

(* ------------------------------------------------------------------ *)
(* Memoized verification watermarks                                    *)
(* ------------------------------------------------------------------ *)

(* One watermark per node, keyed by the identity of the node's backing
   buffer ({!St.rep_id}): cells [1 .. verified] were checked against
   dependencies that are still physically present as long as every
   neighbor kept its buffer (write-once committed prefixes, see
   trans_state.ml).  A guard re-evaluation therefore costs O(deg)
   stamp comparisons plus one [step] per cell appended or repaired
   since the previous evaluation — O(Δ·deg) instead of the naive
   O(h·deg) full-prefix re-verification. *)
type entry = {
  mutable input : Obj.t;
      (* Physical token of the view's input: a buffer is the [self] of
         exactly one node in practice, but a pathological config could
         alias states across nodes — the token turns that into a cache
         miss instead of a wrong answer. *)
  mutable self_stamp : int;
  mutable nb_stamps : int array;
  mutable nb_reps : int array;
  mutable verified : int;  (* cells 1 .. verified are algo-correct *)
  mutable top : int;  (* top_checkable at the last evaluation *)
  mutable result : bool;
}

type ('s, 'i) cache = (int, entry) Hashtbl.t

let make_cache () : ('s, 'i) cache = Hashtbl.create 64

(* Error broadcasts mint a fresh buffer per RR move; cap the table so
   a long recovery cannot accumulate unbounded stale watermarks. *)
let cache_capacity = 1 lsl 16

(* Global count of guard evaluations answered (fully or partially)
   from a watermark instead of a full-prefix rescan.  The caches
   themselves are per-domain (transformer.ml keys them through
   Domain.DLS), so this one shared counter is the only cross-domain
   write on the hot path; it exists so tests can assert that sharded
   runs actually exercise the cached predicates. *)
let hits = Atomic.make 0
let cache_hits () = Atomic.get hits

let algo_err_cached (tbl : ('s, 'i) cache) params (v : ('s, 'i) view) =
  let top = top_checkable v in
  if top < 1 then false
  else begin
    let self = v.Algorithm.self in
    let nbs = v.Algorithm.neighbors in
    let deg = Array.length nbs in
    let input = Obj.repr v.Algorithm.input in
    let rep = St.rep_id self in
    let fresh_hit e =
      e.input == input
      && e.self_stamp = St.stamp self
      && e.top = top
      && Array.length e.nb_stamps = deg
      &&
      let rec go k = k >= deg || (e.nb_stamps.(k) = St.stamp nbs.(k) && go (k + 1)) in
      go 0
    in
    let prefix_valid e =
      e.input == input
      && Array.length e.nb_reps = deg
      &&
      let rec go k = k >= deg || (e.nb_reps.(k) = St.rep_id nbs.(k) && go (k + 1)) in
      go 0
    in
    let found = Hashtbl.find_opt tbl rep in
    match found with
    | Some e when fresh_hit e ->
        Atomic.incr hits;
        e.result
    | _ ->
        let base =
          match found with
          | Some e when prefix_valid e -> min e.verified top
          | _ -> 0
        in
        if base > 0 then Atomic.incr hits;
        let i = first_bad params v ~base ~top in
        let result = i <= top in
        let verified = if result then i - 1 else top in
        (match found with
        | Some e ->
            e.input <- input;
            e.self_stamp <- St.stamp self;
            if Array.length e.nb_stamps = deg then
              for k = 0 to deg - 1 do
                e.nb_stamps.(k) <- St.stamp nbs.(k);
                e.nb_reps.(k) <- St.rep_id nbs.(k)
              done
            else begin
              e.nb_stamps <- Array.init deg (fun k -> St.stamp nbs.(k));
              e.nb_reps <- Array.init deg (fun k -> St.rep_id nbs.(k))
            end;
            e.verified <- verified;
            e.top <- top;
            e.result <- result
        | None ->
            if Hashtbl.length tbl >= cache_capacity then Hashtbl.reset tbl;
            Hashtbl.replace tbl rep
              {
                input;
                self_stamp = St.stamp self;
                nb_stamps = Array.init deg (fun k -> St.stamp nbs.(k));
                nb_reps = Array.init deg (fun k -> St.rep_id nbs.(k));
                verified;
                top;
                result;
              });
        result
  end

let dep_err _params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  let nbs = v.Algorithm.neighbors in
  match St.status self with
  | St.E -> not (Array.exists (fun q -> St.in_error q && St.height q < h) nbs)
  | St.C -> Array.exists (fun q -> St.height q >= h + 2) nbs

let is_root params v = algo_err params v || dep_err params v

let err_prop_index _params (v : ('s, 'i) view) =
  let h = St.height v.Algorithm.self in
  (* The smallest valid i is (min height of an error neighbor) + 1;
     it must satisfy q.h < i < p.h. *)
  let best = ref max_int in
  Array.iter
    (fun q -> if St.in_error q then best := min !best (St.height q))
    v.Algorithm.neighbors;
  if !best < max_int && !best + 1 < h then Some (!best + 1) else None

let can_clear_e _params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  St.in_error self
  && Array.for_all
       (fun q ->
         let hq = St.height q in
         abs (hq - h) <= 1 && (hq <= h || not (St.in_error q)))
       v.Algorithm.neighbors

let updatable params (v : ('s, 'i) view) =
  let self = v.Algorithm.self in
  let h = St.height self in
  (not (St.in_error self))
  && below_bound params.bound h
  && Array.for_all
       (fun q ->
         let hq = St.height q in
         h <= hq && hq <= h + 1)
       v.Algorithm.neighbors
  && (params.mode = Greedy
     || (not (params.sync.Sync_algo.equal (St.top self) (algo_hat params v h)))
     || Array.exists (fun q -> St.height q > h) v.Algorithm.neighbors)
