(** The transformer's guard predicates (paper §3.1).

    All predicates are evaluated over a node's {!Ss_sim.Algorithm.view}
    whose states are {!Trans_state.t}; they only inspect the node's
    own state and the {e set} of neighbor states, as required by the
    weak model (§2.2). *)

type mode = Lazy | Greedy
(** Lazy simulates a new round only when necessary; greedy simulates
    all [B] rounds (§3.1). *)

type bound = Finite of int | Infinite
(** The upper bound [B] on the synchronous execution time [T];
    [Infinite] encodes [B = +∞]. *)

type ('s, 'i) params = {
  sync : ('s, 'i) Ss_sync.Sync_algo.t;  (** The simulated algorithm. *)
  mode : mode;
  bound : bound;
}

type ('s, 'i) view = ('s Trans_state.t, 'i) Ss_sim.Algorithm.view
(** What a transformer node observes. *)

val below_bound : bound -> int -> bool
(** [below_bound b h] is [h < B] ([true] when [B = +∞]). *)

val bound_to_int : bound -> int
(** [Finite b -> b], [Infinite -> max_int] (for caps in experiments). *)

val algo_hat : ('s, 'i) params -> ('s, 'i) view -> int -> 's
(** [algo_hat params v i] is the paper's [algô(p, i)]: the simulated
    algorithm applied by the node when every node of its closed
    neighborhood is in the state of its cell [i].  All heights in the
    closed neighborhood must be [>= i] — guaranteed by the guards that
    call it.
    @raise Invalid_argument when a dependency is missing. *)

val min_neighbor_height : ('s, 'i) view -> int
(** Smallest neighbor height ([max_int] when there are no neighbors). *)

val top_checkable : ('s, 'i) view -> int
(** The largest checkable cell index: [min h (min_nb + 1)] (and [h]
    for an isolated node) — cell [i] is checkable when every
    dependency [q.L(i-1)] exists. *)

val first_bad : ('s, 'i) params -> ('s, 'i) view -> base:int -> top:int -> int
(** [first_bad params v ~base ~top] scans cells [base+1 .. top]
    (cells [1 .. base] are assumed verified) and returns the index of
    the first cell that differs from [algô(p, i-1)], or [top + 1] when
    the whole range verifies.  The shared primitive under
    {!algo_err}, {!algo_err_cached} and the adaptive transformer's
    point-truncation rule. *)

val algo_err : ('s, 'i) params -> ('s, 'i) view -> bool
(** [algoErr(p)]: some cell [1 <= i <= h] has all its dependencies
    present ([∀q, q.h >= i-1]) yet differs from [algô(p, i-1)].
    Reference implementation: re-verifies the whole checkable prefix,
    O(h·deg) calls to [step]. *)

type ('s, 'i) cache
(** Memoized verification watermarks for {!algo_err_cached}: per node
    (keyed by the {!Trans_state.rep_id} of its backing buffer), the
    deepest prefix of [L] already verified against the current
    neighbor cells, together with the neighbor version stamps the
    verification read.  Sound because committed buffer prefixes are
    write-once: as long as each neighbor keeps its buffer, the cells
    behind the watermark are physically unchanged, and every move that
    could affect them (divergence, [RR] wipe, corruption) mints a
    fresh buffer — a cache miss, never a stale hit. *)

val make_cache : unit -> ('s, 'i) cache
(** A fresh, empty cache.  One cache serves one (algorithm, graph)
    instantiation; sharing it across unrelated configs is safe (keys
    are globally unique buffer ids) but wastes capacity. *)

val algo_err_cached : ('s, 'i) cache -> ('s, 'i) params -> ('s, 'i) view -> bool
(** Same result as {!algo_err}, but O(deg) on a stamp-exact hit and
    O(Δ·deg) when only Δ cells were appended or became checkable since
    the last evaluation of this node. *)

val cache_hits : unit -> int
(** Process-wide count of {!algo_err_cached} evaluations answered from
    a watermark (stamp-exact hits plus partial prefix reuses), across
    all caches and domains.  Monotone; tests assert it increases to
    pin that a run exercised the cached path. *)

val dep_err : ('s, 'i) params -> ('s, 'i) view -> bool
(** [depErr(p)]: the node is in error without an error neighbor of
    smaller height, or is correct while some neighbor towers [>= h+2]
    above it. *)

val is_root : ('s, 'i) params -> ('s, 'i) view -> bool
(** [root(p) = algoErr(p) ∨ depErr(p)] — the detector of "major
    errors" that launches an error broadcast. *)

val err_prop_index : ('s, 'i) params -> ('s, 'i) view -> int option
(** The smallest [i] with [errProp(p, i) = ∃q, q.s = E ∧ q.h < i < p.h]
    (the highest-priority enabled [RP(i)] rule), if any. *)

val can_clear_e : ('s, 'i) params -> ('s, 'i) view -> bool
(** [canClearE(p)]: in error, all neighbor heights within one of the
    node's, and no higher neighbor still in error — the node may leave
    the error DAG. *)

val updatable : ('s, 'i) params -> ('s, 'i) view -> bool
(** [updatable(p)]: correct status, list not full, neighbor heights in
    [\[h, h+1\]], and — in lazy mode — a reason to go on: either the
    simulation has not terminated at height [h] or some neighbor is
    already ahead. *)
