module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module Graph = Ss_graph.Graph
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module P = Predicates

module type TRANSFORMER = sig
  val name : string
  val doc : string

  type 's state

  val supports : ('s, 'i) P.params -> (unit, string) result
  val algorithm : ('s, 'i) P.params -> ('s state, 'i) Ss_sim.Algorithm.t

  val reference_algorithm :
    ('s, 'i) P.params -> ('s state, 'i) Ss_sim.Algorithm.t

  val clean_config :
    ('s, 'i) P.params ->
    Graph.t ->
    inputs:(int -> 'i) ->
    ('s state, 'i) Config.t

  val corrupt_state :
    Rng.t -> max_height:int -> ('s, 'i) P.params -> 'i -> 's state -> 's state

  val outputs : ('s state, 'i) Config.t -> 's array
  val space_bits : ('s, 'i) P.params -> ('s state, 'i) Config.t -> int
  val move_bits : ('s, 'i) P.params -> rule:string -> 's state -> int

  val legitimate_terminal :
    ('s, 'i) P.params ->
    ('s, 'i) Sync_runner.history ->
    ('s state, 'i) Config.t ->
    (unit, string) result
end

type entry = (module TRANSFORMER)

(* Registration order is rendering order; an assoc list keeps it. *)
let table : (string * entry) list ref = ref []

let name (module T : TRANSFORMER) = T.name
let doc (module T : TRANSFORMER) = T.doc
let supports (module T : TRANSFORMER) params = T.supports params

let register entry =
  let n = name entry in
  if List.mem_assoc n !table then
    invalid_arg ("Registry.register: duplicate transformer: " ^ n);
  table := !table @ [ (n, entry) ]

let find n = List.assoc_opt n !table
let all () = List.map snd !table

let find_exn n =
  match find n with
  | Some e -> e
  | None ->
      failwith
        (Printf.sprintf "unknown transformer: %s (known: %s)" n
           (String.concat ", " (List.map fst !table)))

(* ------------------------------------------------------------------ *)
(* The §3 transformer                                                   *)
(* ------------------------------------------------------------------ *)

module Trans = struct
  include Transformer

  let name = "trans"

  let doc =
    "paper §3 Trans(AlgI): error broadcast (RR), DAG truncation (RP), \
     feedback (RC), simulation (RU)"

  type 's state = 's Trans_state.t

  let supports _ = Ok ()
  let reference_algorithm = algorithm_uncached
  let space_bits = Checker.space_bits

  (* §6's delta encoding — kept in lock-step with Ss_energy.delta_bits
     (which owns the analytical model; this hook feeds the
     transformer-comparison grid). *)
  let move_bits p ~rule st =
    let label = 2 in
    if rule = ru then
      label + p.P.sync.Sync_algo.state_bits (Trans_state.top st)
    else if rule = rp then
      label
      + (match p.P.bound with P.Finite b -> Util.bit_width b | P.Infinite -> 32)
    else label

  let legitimate_terminal = Checker.legitimate_terminal
end

let trans : entry = (module Trans)
let () = register trans

(* ------------------------------------------------------------------ *)
(* Generic measured runs                                                *)
(* ------------------------------------------------------------------ *)

type outcome = {
  transformer : string;
  moves : int;
  steps : int;
  rounds : int;
  terminated : bool;
  legitimate : bool;
  spec_ok : bool;
  space_bits : int;
  energy_bits : int;
  moves_per_rule : (string * int) list;
}

let measure (type s i) (entry : entry) ?budget ?(max_steps = 2_000_000)
    ?(corrupt = `All 1.0) ?hist ~rng ~daemon ~max_height
    ~(spec : s array -> bool) (params : (s, i) P.params) graph ~inputs =
  let module T = (val entry) in
  (match T.supports params with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Registry.measure: %s: %s" T.name e));
  let clean = T.clean_config params graph ~inputs in
  let corrupt_one node st =
    T.corrupt_state rng ~max_height params (Config.input clean node) st
  in
  let start =
    match corrupt with
    | `None -> clean
    | `All p ->
        if not (p >= 0.0 && p <= 1.0) then
          invalid_arg
            (Printf.sprintf "Registry.measure: p = %g not in [0, 1]" p);
        Config.with_states clean
          (Array.mapi
             (fun node st ->
               if Rng.chance rng p then corrupt_one node st else st)
             clean.Config.states)
    | `Nodes nodes ->
        let nodes = List.sort_uniq compare nodes in
        List.iter
          (fun v ->
            if v < 0 || v >= Config.n clean then
              invalid_arg
                (Printf.sprintf "Registry.measure: node %d out of range" v))
          nodes;
        let states = Array.copy clean.Config.states in
        List.iter (fun v -> states.(v) <- corrupt_one v states.(v)) nodes;
        Config.with_states clean states
  in
  let energy = ref 0 in
  let sink ~step:_ ~rounds:_ ~moved after =
    List.iter
      (fun (v, rule) ->
        energy :=
          !energy
          + Graph.degree graph v
            * T.move_bits params ~rule (Config.state after v))
      moved
  in
  let stats =
    Engine.run ?budget ~max_steps ~sinks:[ sink ] (T.algorithm params) daemon
      start
  in
  let hist =
    match hist with
    | Some h -> h
    | None ->
        let stop_after =
          match params.P.bound with
          | P.Finite b -> Some b
          | P.Infinite -> None
        in
        Sync_runner.run ?stop_after params.P.sync graph ~inputs
  in
  let legitimate =
    stats.Engine.terminated
    && T.legitimate_terminal params hist stats.Engine.final = Ok ()
  in
  {
    transformer = T.name;
    moves = stats.Engine.moves;
    steps = stats.Engine.steps;
    rounds = stats.Engine.rounds;
    terminated = stats.Engine.terminated;
    legitimate;
    spec_ok = spec (T.outputs stats.Engine.final);
    space_bits = T.space_bits params stats.Engine.final;
    energy_bits = !energy;
    moves_per_rule = stats.Engine.moves_per_rule;
  }
