(** The pluggable transformer registry.

    A {e transformer} turns a terminating synchronous algorithm
    (a {!Ss_sync.Sync_algo.t} plus a graph and a bound, packaged as a
    {!Predicates.params}) into an asynchronous self-stabilizing
    algorithm the {!Ss_sim.Engine} consumes directly, together with
    the accounting hooks every campaign needs: per-move energy bits,
    space bits, corruption, and a terminal-legitimacy verdict against
    the synchronous ground truth.

    Three transformers register here: the paper's §3 system ({!Trans},
    seeded by this module), the §7 rollback compiler
    ([Ss_rollback.Rollback.transformer]) and the fully adaptive
    transformer ([Ss_adaptive.Adaptive.transformer]) — the latter two
    are entered into the table by [Ss_expt.Catalog], the campaign
    layer's single source of truth.

    {b Contract} (DESIGN.md §14).  A registered transformer must keep
    the properties the simulation stack relies on: rules that read
    only the node's own state and the multiset of neighbor states
    (dirty-set scheduler soundness), pure guards safe to re-evaluate
    at any time from any domain (sharded sweeps, chaos harness
    re-scans), and value-semantics states (the engine never mutates a
    state in place). *)

module type TRANSFORMER = sig
  val name : string
  (** Registry key, e.g. ["trans"], ["rollback"], ["adaptive"]. *)

  val doc : string
  (** One-line description for [fasst list]. *)

  type 's state
  (** Per-node transformed state over simulated states ['s]. *)

  val supports : ('s, 'i) Predicates.params -> (unit, string) result
  (** Whether this transformer accepts the given parameters (e.g. the
      rollback compiler and the adaptive transformer require a finite
      bound).  [Error] carries a diagnostic. *)

  val algorithm :
    ('s, 'i) Predicates.params -> ('s state, 'i) Ss_sim.Algorithm.t
  (** The transformed asynchronous algorithm (production path — may
      embed caches, which must never change results). *)

  val reference_algorithm :
    ('s, 'i) Predicates.params -> ('s state, 'i) Ss_sim.Algorithm.t
  (** The uncached reference twin for differential testing; equal to
      {!algorithm} observationally. *)

  val clean_config :
    ('s, 'i) Predicates.params ->
    Ss_graph.Graph.t ->
    inputs:(int -> 'i) ->
    ('s state, 'i) Ss_sim.Config.t
  (** The controlled initial configuration. *)

  val corrupt_state :
    Ss_prelude.Rng.t ->
    max_height:int ->
    ('s, 'i) Predicates.params ->
    'i ->
    's state ->
    's state
  (** Transient-fault model: scramble one node state (heights, where
      variable, stay within [min max_height B]). *)

  val outputs : ('s state, 'i) Ss_sim.Config.t -> 's array
  (** The simulated algorithm's outputs (each node's newest cell). *)

  val space_bits :
    ('s, 'i) Predicates.params -> ('s state, 'i) Ss_sim.Config.t -> int
  (** Maximum per-node memory footprint in bits. *)

  val move_bits : ('s, 'i) Predicates.params -> rule:string -> 's state -> int
  (** Energy hook: bits of {e one message} announcing a move that
      produced the given state under the given rule — §6's delta
      encoding for Trans-shaped transformers, a full-state broadcast
      for the rollback compiler.  {!measure} multiplies by the mover's
      degree and sums. *)

  val legitimate_terminal :
    ('s, 'i) Predicates.params ->
    ('s, 'i) Ss_sync.Sync_runner.history ->
    ('s state, 'i) Ss_sim.Config.t ->
    (unit, string) result
  (** Terminal-configuration legitimacy against the synchronous ground
      truth (terminality included). *)
end

type entry = (module TRANSFORMER)

val register : entry -> unit
(** Add a transformer to the table.
    @raise Invalid_argument on a duplicate name. *)

val find : string -> entry option
(** Look up by name. *)

val find_exn : string -> entry
(** @raise Failure with the known names on an unknown name. *)

val all : unit -> entry list
(** Every registered transformer, in registration order (so tables and
    [fasst list] render deterministically). *)

val name : entry -> string

val doc : entry -> string

val supports : entry -> ('s, 'i) Predicates.params -> (unit, string) result

(* ------------------------------------------------------------------ *)
(* The §3 transformer as a registry entry                               *)
(* ------------------------------------------------------------------ *)

(** The paper's transformer behind the {!TRANSFORMER} interface — the
    whole {!Transformer} API (params, rules, packed configs, [run]
    wrappers) plus the registry hooks.  Call sites alias this module
    instead of {!Transformer}: the registry is the only consumption
    path for the §3 system outside [lib/core]. *)
module Trans : sig
  include module type of Transformer

  val name : string
  (** ["trans"]. *)

  val doc : string

  type 's state = 's Trans_state.t

  val supports : ('s, 'i) Predicates.params -> (unit, string) result
  (** Always [Ok] — the §3 system takes any mode/bound combination
      {!Transformer.params} admits. *)

  val reference_algorithm :
    ('s, 'i) Predicates.params -> ('s Trans_state.t, 'i) Ss_sim.Algorithm.t
  (** {!Transformer.algorithm_uncached}. *)

  val space_bits :
    ('s, 'i) Predicates.params -> ('s Trans_state.t, 'i) Ss_sim.Config.t -> int
  (** {!Checker.space_bits}. *)

  val move_bits : ('s, 'i) Predicates.params -> rule:string -> 's Trans_state.t -> int
  (** §6's delta encoding: 2 label bits, plus the new cell for [RU] or
      the new height for [RP]. *)

  val legitimate_terminal :
    ('s, 'i) Predicates.params ->
    ('s, 'i) Ss_sync.Sync_runner.history ->
    ('s Trans_state.t, 'i) Ss_sim.Config.t ->
    (unit, string) result
  (** {!Checker.legitimate_terminal}. *)
end

val trans : entry
(** {!Trans}, pre-registered by this module. *)

(* ------------------------------------------------------------------ *)
(* Generic measured runs                                                *)
(* ------------------------------------------------------------------ *)

type outcome = {
  transformer : string;
  moves : int;
  steps : int;
  rounds : int;
  terminated : bool;
  legitimate : bool;  (** Terminated into a legitimate configuration. *)
  spec_ok : bool;  (** The caller's output specification held. *)
  space_bits : int;
  energy_bits : int;
      (** [Σ deg(p) · move_bits] over the execution's moves — the
          transformer-comparison energy column. *)
  moves_per_rule : (string * int) list;
}

val measure :
  entry ->
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?corrupt:[ `None | `All of float | `Nodes of int list ] ->
  ?hist:('s, 'i) Ss_sync.Sync_runner.history ->
  rng:Ss_prelude.Rng.t ->
  daemon:Ss_sim.Daemon.t ->
  max_height:int ->
  spec:('s array -> bool) ->
  ('s, 'i) Predicates.params ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  outcome
(** One measured run of any registered transformer, entirely behind
    the interface: build the clean configuration, corrupt it
    ([`All p] hits each node with probability [p] — the default with
    [p = 1] — [`Nodes] corrupts exactly the given nodes, [`None]
    starts clean), run the engine with a move-bits energy sink, and
    check the terminal configuration against the synchronous ground
    truth ([hist]; computed here when not supplied, cut at [B] under a
    finite bound) and the caller's output [spec].
    [max_steps] defaults to [2_000_000].
    @raise Invalid_argument when the transformer does not support the
    parameters ({!supports}), on a corruption probability outside
    [[0, 1]], or on out-of-range corruption nodes. *)
