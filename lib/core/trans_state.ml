type status = C | E

(* Backing buffer shared by a whole lineage of states.  The committed
   prefix [data.(0 .. committed-1)] is write-once: [extend] only ever
   writes at index [committed], so any two states sharing a buffer
   agree (physically) on their common logical prefix — the invariant
   both the O(1) [equal] fast paths and the prefix-verification cache
   in {!Predicates} rest on. *)
type 's buffer = {
  id : int;  (* globally unique; Predicates keys its memo on it *)
  mutable data : 's array;
  mutable committed : int;
}

type 's t = {
  init : 's;
  status : status;
  buf : 's buffer;
  len : int;  (* logical height; cells live in buf.data.(0 .. len-1) *)
  stamp : int;
      (* Monotone version stamp, fresh on every construction: equal
         stamps imply the two values are the same construction, hence
         logically equal. *)
}

(* Atomic: states are constructed concurrently by campaign pool tasks
   (DESIGN.md §11), and both the O(1) [equal] fast path and the
   Predicates watermark cache are only sound if stamps / buffer ids
   are globally unique — a racy [incr] could mint duplicates. *)
let buffer_counter = Atomic.make 0
let stamp_counter = Atomic.make 0

let fresh_stamp () = 1 + Atomic.fetch_and_add stamp_counter 1

let fresh_buffer data committed =
  { id = 1 + Atomic.fetch_and_add buffer_counter 1; data; committed }

let make ~init ~status ~cells =
  (* Defensive copy: the caller keeps ownership of [cells]. *)
  let cells = Array.copy cells in
  {
    init;
    status;
    buf = fresh_buffer cells (Array.length cells);
    len = Array.length cells;
    stamp = fresh_stamp ();
  }

let clean init = make ~init ~status:C ~cells:[||]
let height st = st.len
let init st = st.init
let status st = st.status
let stamp st = st.stamp
let rep_id st = st.buf.id

let cell st i =
  if i = 0 then st.init
  else if i >= 1 && i <= st.len then st.buf.data.(i - 1)
  else
    invalid_arg (Printf.sprintf "Trans_state.cell: index %d, height %d" i st.len)

let top st = cell st st.len

let truncate st i =
  if i < 0 || i > st.len then invalid_arg "Trans_state.truncate";
  (* O(1): a length drop sharing the backing buffer. *)
  if i = st.len then st else { st with len = i; stamp = fresh_stamp () }

let extend st s =
  let b = st.buf in
  if st.len = b.committed then begin
    (* Unique extension: this state owns the frontier, write in place
       (amortized O(1) with capacity doubling). *)
    let cap = Array.length b.data in
    if st.len = cap then begin
      let data = Array.make (max 4 (2 * cap)) s in
      Array.blit b.data 0 data 0 cap;
      b.data <- data
    end;
    b.data.(st.len) <- s;
    b.committed <- st.len + 1;
    { st with len = st.len + 1; stamp = fresh_stamp () }
  end
  else if b.data.(st.len) == s then
    (* Aliased re-extension: the committed cell already IS [s] (the
       message-network mirrors replay exactly the cells their origin
       appended), so just re-adopt it — no copy, prefix sharing kept. *)
    { st with len = st.len + 1; stamp = fresh_stamp () }
  else begin
    (* Divergence from a shared prefix: copy-on-write. *)
    let data = Array.make (max 4 (2 * (st.len + 1))) s in
    Array.blit b.data 0 data 0 st.len;
    {
      st with
      buf = fresh_buffer data (st.len + 1);
      len = st.len + 1;
      stamp = fresh_stamp ();
    }
  end

let with_status st status =
  if st.status = status then st else { st with status; stamp = fresh_stamp () }

let wipe st =
  { init = st.init; status = E; buf = fresh_buffer [||] 0; len = 0;
    stamp = fresh_stamp () }

let in_error st = st.status = E

let equal eq a b =
  (* Stamp fast path (O(1)): equal stamps only arise by aliasing a
     construction, so the logical values coincide.  Buffer fast path:
     shared buffers agree on the committed prefix, so equal lengths
     mean equal cells. *)
  a.stamp = b.stamp
  || (a.status = b.status && a.len = b.len && eq a.init b.init
     &&
     if a.buf == b.buf then true
     else begin
       let rec go i =
         i >= a.len || (eq a.buf.data.(i) b.buf.data.(i) && go (i + 1))
       in
       go 0
     end)

let cells st = Array.sub st.buf.data 0 st.len

let fold_cells f acc st =
  let acc = ref acc in
  for i = 0 to st.len - 1 do
    acc := f !acc st.buf.data.(i)
  done;
  !acc

let snapshot st = (st.status, st.init, cells st)

let pp_status ppf = function
  | C -> Format.pp_print_string ppf "C"
  | E -> Format.pp_print_string ppf "E"

let pp pp_state ppf st =
  Format.fprintf ppf "{%a h=%d [%a]}" pp_status st.status st.len
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_state)
    (Array.to_list (cells st))
