type status = C | E

(* Backing buffer shared by a whole lineage of boxed states.  The
   committed prefix [data.(0 .. committed-1)] is write-once: [extend]
   only ever writes at index [committed], so any two states sharing a
   buffer agree (physically) on their common logical prefix — the
   invariant both the O(1) [equal] fast paths and the
   prefix-verification cache in {!Predicates} rest on. *)
type 's buffer = {
  id : int;  (* globally unique; Predicates keys its memo on it *)
  mutable data : 's array;
  mutable committed : int;
}

(* Two storage backends behind one value-semantics API:

   - [Boxed]: the historical copy-on-write buffer.  Fully persistent —
     any number of states may share and diverge from a prefix.

   - [Packed]: the state's cells live in a slab of a {!Cellpack}
     arena, laid out flat with no per-cell boxing.  Packed states obey
     a {e linear-history} discipline: each node slot holds one live
     timeline, and constructing a new state by writing {e below} the
     slab's committed frontier (overwrite-extend after a truncate,
     [wipe], [rebuild]) invalidates every older handle on that slot —
     reading a stale handle's cells is unspecified.  The engine's
     per-node single-timeline usage satisfies this by construction;
     anything needing persistence (naive reference twins, traces)
     stays boxed.

   The watermark soundness contract of {!Predicates} — equal [rep_id]
   implies the committed prefix is physically unchanged — holds for
   both: boxed buffers never overwrite below [committed], and every
   packed write below the frontier mints a fresh lineage id into
   [arena.rep.(node)], so surviving handles with the old id are
   exactly the (unreadable) stale ones that the discipline already
   rules out of circulation. *)
type 's backend =
  | Boxed of 's buffer
  | Packed of { arena : 's Cellpack.arena; node : int; rep : int }

type 's t = {
  init : 's;
  status : status;
  len : int;  (* logical height; cells live at logical indices 1..len *)
  stamp : int;
      (* Monotone version stamp, fresh on every construction: equal
         stamps imply the two values are the same construction, hence
         logically equal. *)
  backend : 's backend;
}

(* Atomic: states are constructed concurrently by campaign pool tasks
   (DESIGN.md §11), and both the O(1) [equal] fast path and the
   Predicates watermark cache are only sound if stamps / lineage ids
   are globally unique — a racy [incr] could mint duplicates.  Packed
   lineage ids come from the same counter as boxed buffer ids, so
   [rep_id] is unique across backends. *)
let buffer_counter = Atomic.make 0
let stamp_counter = Atomic.make 0

let fresh_stamp () = 1 + Atomic.fetch_and_add stamp_counter 1
let fresh_rep () = 1 + Atomic.fetch_and_add buffer_counter 1
let fresh_buffer data committed = { id = fresh_rep (); data; committed }

let make ~init ~status ~cells =
  (* Defensive copy: the caller keeps ownership of [cells]. *)
  let cells = Array.copy cells in
  {
    init;
    status;
    len = Array.length cells;
    stamp = fresh_stamp ();
    backend = Boxed (fresh_buffer cells (Array.length cells));
  }

let clean init = make ~init ~status:C ~cells:[||]

let packed_clean arena ~node ~init =
  let rep = fresh_rep () in
  arena.Cellpack.rep.(node) <- rep;
  arena.Cellpack.committed.(node) <- 0;
  {
    init;
    status = C;
    len = 0;
    stamp = fresh_stamp ();
    backend = Packed { arena; node; rep };
  }

let height st = st.len
let init st = st.init
let status st = st.status
let stamp st = st.stamp

let rep_id st =
  match st.backend with Boxed b -> b.id | Packed p -> p.rep

let backing_arena st =
  match st.backend with Boxed _ -> None | Packed p -> Some p.arena

let cell st i =
  if i = 0 then st.init
  else if i >= 1 && i <= st.len then
    match st.backend with
    | Boxed b -> b.data.(i - 1)
    | Packed { arena; node; _ } ->
        arena.Cellpack.codec.Cellpack.unpack arena.Cellpack.data
          (Cellpack.slot arena node (i - 1))
  else
    invalid_arg (Printf.sprintf "Trans_state.cell: index %d, height %d" i st.len)

let top st = cell st st.len

let truncate st i =
  if i < 0 || i > st.len then invalid_arg "Trans_state.truncate";
  (* O(1) on both backends: a logical length drop.  Packed: the slab's
     committed frontier and lineage id are untouched — the truncated
     cells stay physically in place until an overwrite-extend mints a
     fresh lineage. *)
  if i = st.len then st else { st with len = i; stamp = fresh_stamp () }

let extend st s =
  match st.backend with
  | Boxed b ->
      if st.len = b.committed then begin
        (* Unique extension: this state owns the frontier, write in
           place (amortized O(1) with capacity doubling). *)
        let cap = Array.length b.data in
        if st.len = cap then begin
          let data = Array.make (max 4 (2 * cap)) s in
          Array.blit b.data 0 data 0 cap;
          b.data <- data
        end;
        b.data.(st.len) <- s;
        b.committed <- st.len + 1;
        { st with len = st.len + 1; stamp = fresh_stamp () }
      end
      else if b.data.(st.len) == s then
        (* Aliased re-extension: the committed cell already IS [s] (the
           message-network mirrors replay exactly the cells their
           origin appended), so just re-adopt it — no copy, prefix
           sharing kept. *)
        { st with len = st.len + 1; stamp = fresh_stamp () }
      else begin
        (* Divergence from a shared prefix: copy-on-write. *)
        let data = Array.make (max 4 (2 * (st.len + 1))) s in
        Array.blit b.data 0 data 0 st.len;
        {
          st with
          backend = Boxed (fresh_buffer data (st.len + 1));
          len = st.len + 1;
          stamp = fresh_stamp ();
        }
      end
  | Packed { arena; node; rep } ->
      if st.len >= arena.Cellpack.a_cap then
        invalid_arg
          (Printf.sprintf
             "Trans_state.extend: packed arena capacity %d exceeded"
             arena.Cellpack.a_cap);
      arena.Cellpack.codec.Cellpack.pack arena.Cellpack.data
        (Cellpack.slot arena node st.len)
        s;
      let rep =
        if st.len = arena.Cellpack.committed.(node) then
          (* Frontier extension: committed prefix untouched, the
             lineage continues — watermarks keyed on [rep] stay
             valid and verification resumes above them. *)
          rep
        else begin
          (* Write below (or, for a stale handle, beyond) the
             committed frontier: the slab's history changed, mint a
             fresh lineage id so every cache keyed on the old one
             misses. *)
          let r = fresh_rep () in
          arena.Cellpack.rep.(node) <- r;
          r
        end
      in
      arena.Cellpack.committed.(node) <- st.len + 1;
      {
        st with
        len = st.len + 1;
        stamp = fresh_stamp ();
        backend = Packed { arena; node; rep };
      }

let with_status st status =
  if st.status = status then st else { st with status; stamp = fresh_stamp () }

let wipe st =
  match st.backend with
  | Boxed _ ->
      {
        init = st.init;
        status = E;
        len = 0;
        stamp = fresh_stamp ();
        backend = Boxed (fresh_buffer [||] 0);
      }
  | Packed { arena; node; _ } ->
      (* Resetting the slab rewrites history below the frontier:
         fresh lineage. *)
      let rep = fresh_rep () in
      arena.Cellpack.rep.(node) <- rep;
      arena.Cellpack.committed.(node) <- 0;
      {
        init = st.init;
        status = E;
        len = 0;
        stamp = fresh_stamp ();
        backend = Packed { arena; node; rep };
      }

let rebuild st ~status ~cells =
  match st.backend with
  | Boxed _ -> make ~init:st.init ~status ~cells
  | Packed { arena; node; _ } ->
      let len = Array.length cells in
      if len > arena.Cellpack.a_cap then
        invalid_arg
          (Printf.sprintf
             "Trans_state.rebuild: %d cells exceed packed arena capacity %d"
             len arena.Cellpack.a_cap);
      for i = 0 to len - 1 do
        arena.Cellpack.codec.Cellpack.pack arena.Cellpack.data
          (Cellpack.slot arena node i)
          cells.(i)
      done;
      (* Arbitrary rewrite (fault injection): fresh lineage. *)
      let rep = fresh_rep () in
      arena.Cellpack.rep.(node) <- rep;
      arena.Cellpack.committed.(node) <- len;
      {
        init = st.init;
        status;
        len;
        stamp = fresh_stamp ();
        backend = Packed { arena; node; rep };
      }

let in_error st = st.status = E

let equal eq a b =
  (* Stamp fast path (O(1)): equal stamps only arise by aliasing a
     construction, so the logical values coincide.  Backend fast
     paths: boxed states sharing a buffer agree on the committed
     prefix, so equal lengths mean equal cells; packed states on the
     same slab with the same lineage id likewise — every write since
     either handle was built was a frontier extension. *)
  a.stamp = b.stamp
  || (a.status = b.status && a.len = b.len && eq a.init b.init
     &&
     match (a.backend, b.backend) with
     | Boxed x, Boxed y when x == y -> true
     | Packed x, Packed y when x.arena == y.arena && x.node = y.node ->
         x.rep = y.rep
         ||
         let rec go i = i > a.len || (eq (cell a i) (cell b i) && go (i + 1)) in
         go 1
     | _ ->
         let rec go i = i > a.len || (eq (cell a i) (cell b i) && go (i + 1)) in
         go 1)

let cells st =
  match st.backend with
  | Boxed b -> Array.sub b.data 0 st.len
  | Packed _ -> Array.init st.len (fun i -> cell st (i + 1))

let fold_cells f acc st =
  let acc = ref acc in
  for i = 1 to st.len do
    acc := f !acc (cell st i)
  done;
  !acc

let snapshot st = (st.status, st.init, cells st)

let pp_status ppf = function
  | C -> Format.pp_print_string ppf "C"
  | E -> Format.pp_print_string ppf "E"

let pp pp_state ppf st =
  Format.fprintf ppf "{%a h=%d [%a]}" pp_status st.status st.len
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_state)
    (Array.to_list (cells st))
