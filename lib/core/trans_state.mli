(** The transformer's node state (paper §3.1).

    A node state consists of:
    - [init]: the node's initial state in the simulated algorithm —
      read-only (never written by a rule, never corrupted by faults);
    - [status]: [C] (correct) or [E] (in error);
    - the simulation list [L], cell [i] (1-based) ultimately holding
      [st_p^i], the state of the node at round [i] of the synchronous
      execution.

    By convention [L(0) = init]; the {e height} [h] of a node is the
    length of its list.

    {b Representation.} Values have immutable {e value semantics} —
    [extend]/[truncate]/[with_status] return new states and never
    change an existing one — but share a capacity-doubling backing
    buffer whose committed prefix is write-once.  Consequences:
    - [extend] is amortized O(1) when the state is uniquely extendable
      (the overwhelmingly common case: a node appending to its own
      list), and copies on divergence from a shared prefix;
    - [truncate] is O(1) (a logical length drop);
    - [equal] has two O(1) fast paths: equal version {!stamp}s, and a
      physically shared buffer at equal heights;
    - two states sharing a buffer agree {e physically} on their common
      logical prefix — the invariant behind the incremental
      prefix-verification cache of {!Predicates}.

    {b Packed backend} (DESIGN.md §12).  A state may instead keep its
    cells in a node slot of a flat {!Cellpack} arena — no per-cell
    boxing, no GC-scanned payload — created with {!packed_clean}.
    The API is identical, with two restrictions:
    - {e capacity}: a packed list can never exceed the arena's [cap]
      (the transformer bound [B]); [extend] beyond it raises;
    - {e linear history}: each arena slot holds one live timeline.
      Constructing a new state by writing below the slab's committed
      frontier ([extend] after [truncate], {!wipe}, {!rebuild})
      invalidates every older handle on that slot; reading a stale
      handle's cells is unspecified.  The engine's per-node single
      timeline satisfies this by construction — reference twins and
      anything retaining history stay boxed.

    [rep_id] remains sound for the {!Predicates} watermark cache on
    both backends: every packed write below the committed frontier
    mints a fresh lineage id, so equal [rep_id] still implies a
    physically unchanged committed prefix. *)

type status = C | E

type 's t

val make : init:'s -> status:status -> cells:'s array -> 's t
(** Plain constructor ([cells] is copied; the result owns a fresh
    buffer). *)

val clean : 's -> 's t
(** [clean init] is the controlled initial state: status [C], empty
    list. *)

val packed_clean : 's Cellpack.arena -> node:int -> init:'s -> 's t
(** [packed_clean arena ~node ~init] is {!clean} on the packed
    backend: a fresh, empty timeline in [arena]'s slot [node] (a
    fresh lineage id is minted; any previous handle on the slot
    becomes stale). *)

val height : 's t -> int
(** [height st] is [h], the length of the list. *)

val init : 's t -> 's
(** The read-only initial state [L(0)]. *)

val status : 's t -> status

val cell : 's t -> int -> 's
(** [cell st i] is [L(i)] for [0 <= i <= height st]; [cell st 0] is
    [init].
    @raise Invalid_argument when [i] is out of range. *)

val top : 's t -> 's
(** [top st = cell st (height st)] — the newest simulated state. *)

val truncate : 's t -> int -> 's t
(** [truncate st i] cuts the list down to height [i <= height st].
    O(1): the result shares the backing buffer. *)

val extend : 's t -> 's -> 's t
(** [extend st s] appends [s], increasing the height by one.
    Boxed: amortized O(1) on the unique-extension path; O(h)
    copy-on-write when diverging from a prefix another state extended
    differently (re-appending the {e physically} identical cell
    re-adopts it without copying).  Packed: O(1) slab write — keeps
    the lineage id when extending the committed frontier, mints a
    fresh one when overwriting below it.
    @raise Invalid_argument when a packed list would exceed the
    arena's capacity. *)

val rebuild : 's t -> status:status -> cells:'s array -> 's t
(** [rebuild st ~status ~cells] replaces the whole list and status,
    keeping [init] {e and the backend} — the fault-injection
    constructor ({!Transformer.corrupt_state}).  Boxed: a fresh
    buffer, like {!make}.  Packed: rewrites the slot in place and
    mints a fresh lineage id (older handles become stale).
    @raise Invalid_argument when packed and
    [Array.length cells > cap]. *)

val with_status : 's t -> status -> 's t
(** Replace the status ([st] itself when already equal). *)

val wipe : 's t -> 's t
(** [wipe st] is the error-reset state of rule [RR]: status [E], empty
    list, same [init] — on a fresh buffer, so sharers keep their
    prefix. *)

val in_error : 's t -> bool
(** [status = E]. *)

val equal : ('s -> 's -> bool) -> 's t -> 's t -> bool
(** Structural equality given a state equality (O(1) on the stamp and
    shared-buffer fast paths). *)

val stamp : 's t -> int
(** Monotone per-state version stamp, fresh on every construction:
    [stamp a = stamp b] implies [a] and [b] are the same construction
    and therefore logically equal.  Schedulers and caches use it as a
    cheap "has this state changed?" token. *)

val rep_id : 's t -> int
(** Identity of the backing lineage (globally unique across both
    backends: boxed buffer id, or packed slot lineage id).  Two states
    with the same [rep_id] agree physically on their common logical
    prefix; {!Predicates} keys its verification watermarks on it. *)

val backing_arena : 's t -> 's Cellpack.arena option
(** The arena a packed state lives in ([None] for boxed states) —
    for memory accounting in benchmarks. *)

val cells : 's t -> 's array
(** Fresh copy of the logical list [L(1..h)] (never exposes backing
    capacity). *)

val fold_cells : ('a -> 's -> 'a) -> 'a -> 's t -> 'a
(** Left fold over the logical cells [L(1) .. L(h)], allocation-free. *)

val snapshot : 's t -> status * 's * 's array
(** Canonical logical content [(status, init, cells)].  Two logically
    equal states yield structurally equal snapshots regardless of how
    they were built — the wire/proof serialization base
    ({!Ss_msgnet.Msgnet}). *)

val pp :
  (Format.formatter -> 's -> unit) -> Format.formatter -> 's t -> unit
(** Renders status, height and list contents. *)

val pp_status : Format.formatter -> status -> unit
