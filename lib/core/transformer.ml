module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module Sync_algo = Ss_sync.Sync_algo
module Rng = Ss_prelude.Rng
module St = Trans_state
module P = Predicates

type ('s, 'i) params = ('s, 'i) P.params = {
  sync : ('s, 'i) Sync_algo.t;
  mode : P.mode;
  bound : P.bound;
}

let params ?(mode = P.Lazy) ?(bound = P.Infinite) sync =
  (match (mode, bound) with
  | P.Greedy, P.Infinite ->
      invalid_arg "Transformer.params: greedy mode requires a finite bound"
  | _, P.Finite b when b <= 0 ->
      invalid_arg "Transformer.params: the bound must be positive"
  | _ -> ());
  { sync; mode; bound }

let rr = "RR"
let rp = "RP"
let rc = "RC"
let ru = "RU"

let rule_rr ~algo_err p =
  {
    Algorithm.rule_name = rr;
    guard =
      (fun v ->
        let self = v.Algorithm.self in
        (St.height self > 0 || not (St.in_error self))
        && (algo_err p v || P.dep_err p v));
    action = (fun v -> St.wipe v.Algorithm.self);
  }

let rule_rp p =
  {
    Algorithm.rule_name = rp;
    guard = (fun v -> P.err_prop_index p v <> None);
    action =
      (fun v ->
        match P.err_prop_index p v with
        | Some i -> St.with_status (St.truncate v.Algorithm.self i) St.E
        | None -> assert false);
  }

let rule_rc p =
  {
    Algorithm.rule_name = rc;
    guard = (fun v -> P.can_clear_e p v);
    action = (fun v -> St.with_status v.Algorithm.self St.C);
  }

let rule_ru p =
  {
    Algorithm.rule_name = ru;
    guard = (fun v -> P.updatable p v);
    action =
      (fun v ->
        let self = v.Algorithm.self in
        St.extend self (P.algo_hat p v (St.height self)));
  }

let algorithm_gen ~algo_err p =
  {
    Algorithm.algo_name =
      Printf.sprintf "trans(%s,%s,B=%s)" p.sync.Sync_algo.sync_name
        (match p.mode with P.Lazy -> "lazy" | P.Greedy -> "greedy")
        (match p.bound with P.Infinite -> "inf" | P.Finite b -> string_of_int b);
    equal = St.equal p.sync.Sync_algo.equal;
    rules = [ rule_rr ~algo_err p; rule_rp p; rule_rc p; rule_ru p ];
    pp_state = St.pp p.sync.Sync_algo.pp_state;
  }

(* One watermark cache per (algorithm instantiation × domain): the
   cache is a plain Hashtbl, so sharded runs — whose guard sweeps
   execute on the Ss_par pool's domains — get a lazily created
   private instance through Domain.DLS instead of racing on one
   table.  The cache is a pure memo (it never changes results), so
   per-domain instances cannot affect the execution; each DLS key
   costs every domain one slot for the life of the process, which at
   campaign scale (thousands of instantiations) is a few kilobytes
   per domain. *)
let algorithm p =
  let key = Domain.DLS.new_key P.make_cache in
  algorithm_gen ~algo_err:(fun p v -> P.algo_err_cached (Domain.DLS.get key) p v) p

let algorithm_uncached p = algorithm_gen ~algo_err:P.algo_err p

let clean_config p g ~inputs =
  Config.make g ~inputs ~states:(fun node ->
      St.clean (p.sync.Sync_algo.init (inputs node)))

let packed_config p ~codec g ~inputs =
  let cap =
    match p.bound with
    | P.Finite b -> b
    | P.Infinite ->
        invalid_arg "Transformer.packed_config: requires a finite bound"
  in
  (* One arena for the whole population: n slots of B cells each.
     Heights never exceed a finite B (RU's guard, and [corrupt] caps
     at B), so the slabs can never overflow. *)
  let arena = Cellpack.arena ~codec ~n:(Ss_graph.Graph.n g) ~cap in
  Config.make g ~inputs ~states:(fun node ->
      St.packed_clean arena ~node ~init:(p.sync.Sync_algo.init (inputs node)))

let corrupt_state rng ~max_height params input (st : 's St.t) =
  let cap = min max_height (P.bound_to_int params.bound) in
  let random_cells len =
    Array.init len (fun _ -> params.sync.Sync_algo.random_state rng input)
  in
  let random_status () = if Rng.bool rng then St.C else St.E in
  let flip_status () =
    St.with_status st (if St.in_error st then St.C else St.E)
  in
  let h = St.height st in
  match Rng.int rng 5 with
  | 0 ->
      (* Full scramble: fresh status, height and contents
         (backend-preserving: packed states are rewritten in their
         slab). *)
      St.rebuild st ~status:(random_status ())
        ~cells:(random_cells (Rng.int rng (cap + 1)))
  | 1 ->
      (* Truncation. *)
      if h = 0 then St.with_status st (random_status ())
      else St.truncate st (Rng.int rng h)
  | 2 ->
      (* Garbage extension: always at least one cell; a full list has
         no room, so degrade to a status flip rather than a no-op. *)
      if cap <= h then flip_status ()
      else
        let extra = 1 + Rng.int rng (cap - h) in
        St.rebuild st ~status:(St.status st)
          ~cells:(Array.append (St.cells st) (random_cells extra))
  | 3 ->
      (* Single-cell flip; an empty list with no capacity degrades to
         a status flip rather than a no-op. *)
      if h = 0 then
        if cap = 0 then flip_status ()
        else St.extend st (params.sync.Sync_algo.random_state rng input)
      else begin
        let i = Rng.int rng h in
        let cells = St.cells st in
        cells.(i) <- params.sync.Sync_algo.random_state rng input;
        St.rebuild st ~status:(St.status st) ~cells
      end
  | _ -> flip_status ()

let corrupt rng ?(p = 1.0) ~max_height params config =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Transformer.corrupt: p = %g not in [0, 1]" p);
  let states =
    Array.mapi
      (fun node st ->
        if Rng.chance rng p then
          corrupt_state rng ~max_height params (Config.input config node) st
        else st)
      config.Config.states
  in
  Config.with_states config states

let run ?budget ?max_steps ?max_moves ?now ?chaos ?(self_check = false)
    ?(sharded = false) ?observer ?sinks p daemon config =
  (* Sharded runs use the cached predicates too: {!algorithm} keys its
     watermark cache through Domain.DLS, so every pool domain works on
     a private instance (DESIGN.md §12/§14). *)
  let algo = algorithm p in
  let sinks = Option.value sinks ~default:[] in
  let sinks =
    if not self_check then sinks
    else begin
      (* Cached predicates are validated the same way the dirty-set
         scheduler is: a sink re-derives the enabled set with the
         uncached reference predicates and compares. *)
      let reference = algorithm_uncached p in
      let check ~step:_ ~rounds:_ ~moved:_ config =
        let cached = Config.enabled_nodes algo config in
        let uncached = Config.enabled_nodes reference config in
        if cached <> uncached then
          raise
            (Engine.Divergence
               (Printf.sprintf
                  "cached enabled set {%s} disagrees with uncached {%s}"
                  (String.concat "," (List.map string_of_int cached))
                  (String.concat "," (List.map string_of_int uncached))))
      in
      check :: sinks
    end
  in
  Engine.run ?budget ?max_steps ?max_moves ?now ?chaos ~self_check ~sharded
    ?observer ~sinks algo daemon config

let run_naive ?budget ?max_steps ?max_moves ?now ?observer ?sinks p daemon
    config =
  Engine.run_naive ?budget ?max_steps ?max_moves ?now ?observer ?sinks
    (algorithm_uncached p) daemon config

let outputs config = Array.map St.top config.Config.states
