module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module Sync_algo = Ss_sync.Sync_algo
module Rng = Ss_prelude.Rng
module St = Trans_state
module P = Predicates

type ('s, 'i) params = ('s, 'i) P.params = {
  sync : ('s, 'i) Sync_algo.t;
  mode : P.mode;
  bound : P.bound;
}

let params ?(mode = P.Lazy) ?(bound = P.Infinite) sync =
  (match (mode, bound) with
  | P.Greedy, P.Infinite ->
      invalid_arg "Transformer.params: greedy mode requires a finite bound"
  | _, P.Finite b when b <= 0 ->
      invalid_arg "Transformer.params: the bound must be positive"
  | _ -> ());
  { sync; mode; bound }

let rr = "RR"
let rp = "RP"
let rc = "RC"
let ru = "RU"

let rule_rr p =
  {
    Algorithm.rule_name = rr;
    guard =
      (fun v ->
        let self = v.Algorithm.self in
        (St.height self > 0 || not (St.in_error self)) && P.is_root p v);
    action =
      (fun v -> { v.Algorithm.self with St.status = St.E; cells = [||] });
  }

let rule_rp p =
  {
    Algorithm.rule_name = rp;
    guard = (fun v -> P.err_prop_index p v <> None);
    action =
      (fun v ->
        match P.err_prop_index p v with
        | Some i -> St.with_status (St.truncate v.Algorithm.self i) St.E
        | None -> assert false);
  }

let rule_rc p =
  {
    Algorithm.rule_name = rc;
    guard = (fun v -> P.can_clear_e p v);
    action = (fun v -> St.with_status v.Algorithm.self St.C);
  }

let rule_ru p =
  {
    Algorithm.rule_name = ru;
    guard = (fun v -> P.updatable p v);
    action =
      (fun v ->
        let self = v.Algorithm.self in
        St.extend self (P.algo_hat p v (St.height self)));
  }

let algorithm p =
  {
    Algorithm.algo_name =
      Printf.sprintf "trans(%s,%s,B=%s)" p.sync.Sync_algo.sync_name
        (match p.mode with P.Lazy -> "lazy" | P.Greedy -> "greedy")
        (match p.bound with P.Infinite -> "inf" | P.Finite b -> string_of_int b);
    equal = St.equal p.sync.Sync_algo.equal;
    rules = [ rule_rr p; rule_rp p; rule_rc p; rule_ru p ];
    pp_state = St.pp p.sync.Sync_algo.pp_state;
  }

let clean_config p g ~inputs =
  Config.make g ~inputs ~states:(fun node ->
      St.clean (p.sync.Sync_algo.init (inputs node)))

let corrupt_state rng ~max_height params input (st : 's St.t) =
  let cap = min max_height (P.bound_to_int params.bound) in
  let random_cells input len =
    Array.init len (fun _ -> params.sync.Sync_algo.random_state rng input)
  in
    match Rng.int rng 5 with
    | 0 ->
        (* Full scramble: fresh status, height and contents. *)
        let h = Rng.int rng (cap + 1) in
        {
          St.init = st.St.init;
          status = (if Rng.bool rng then St.C else St.E);
          cells = random_cells input h;
        }
    | 1 ->
        (* Truncation. *)
        let h = St.height st in
        if h = 0 then St.with_status st (if Rng.bool rng then St.C else St.E)
        else St.truncate st (Rng.int rng h)
    | 2 ->
        (* Garbage extension. *)
        let extra = Rng.int rng (max 1 (cap - St.height st + 1)) in
        {
          st with
          St.cells =
            Array.append st.St.cells (random_cells input extra);
        }
    | 3 ->
        (* Single-cell flip. *)
        let h = St.height st in
        if h = 0 then
          { st with St.cells = random_cells input (min 1 cap) }
        else begin
          let i = Rng.int rng h in
          let cells = Array.copy st.St.cells in
          cells.(i) <- params.sync.Sync_algo.random_state rng input;
          { st with St.cells = cells }
        end
    | _ ->
        (* Status flip. *)
        St.with_status st (if St.in_error st then St.C else St.E)

let corrupt rng ?(p = 1.0) ~max_height params config =
  let states =
    Array.mapi
      (fun node st ->
        if Rng.chance rng p then
          corrupt_state rng ~max_height params (Config.input config node) st
        else st)
      config.Config.states
  in
  Config.with_states config states

let run ?budget ?max_steps ?max_moves ?self_check ?observer ?sinks p daemon
    config =
  Engine.run ?budget ?max_steps ?max_moves ?self_check ?observer ?sinks
    (algorithm p) daemon config

let run_naive ?budget ?max_steps ?max_moves ?observer ?sinks p daemon config =
  Engine.run_naive ?budget ?max_steps ?max_moves ?observer ?sinks (algorithm p)
    daemon config

let outputs config = Array.map St.top config.Config.states
