(** The transformer [Trans(AlgI)] (paper §3) — the core contribution.

    Given a terminating synchronous algorithm, a bound [B] on its
    execution time and a mode, [algorithm] produces a fully
    asynchronous {e silent self-stabilizing} atomic-state algorithm
    that simulates it with the Table 1 guarantees:

    - lazy mode: [O(min(n³+nT, n²B))] moves, [O(D+T)] rounds;
    - greedy mode: [O(min(n³+nB, n²B))] moves, [O(B)] rounds;
    - error recovery (both): [O(min(n³, n²B))] moves,
      [O(min(D, B))] rounds;
    - space: [O(B·S)] bits per node.

    The four rules, in decreasing priority:
    - [RR] — a {e root} (a node satisfying [algoErr ∨ depErr]) starts
      an error broadcast: it empties its list and turns status [E];
    - [RP(i)] — error propagation / DAG compression: a node with an
      error neighbor of height [< i < h] truncates to the smallest
      such [i] and turns [E] (smaller [i] has higher priority);
    - [RC] — feedback: a node that can no longer gain children leaves
      the error DAG by turning [C];
    - [RU] — simulation: an up-to-date node extends its list with
      [algô(p, h)]. *)

type ('s, 'i) params = ('s, 'i) Predicates.params = {
  sync : ('s, 'i) Ss_sync.Sync_algo.t;
  mode : Predicates.mode;
  bound : Predicates.bound;
}

val params :
  ?mode:Predicates.mode ->
  ?bound:Predicates.bound ->
  ('s, 'i) Ss_sync.Sync_algo.t ->
  ('s, 'i) params
(** [params sync] defaults to lazy mode with [B = +∞].
    @raise Invalid_argument for greedy mode with an infinite bound
    (the simulation would never become silent) or a non-positive
    finite bound. *)

val rr : string
(** Rule label ["RR"]. *)

val rp : string
(** Rule label ["RP"]. *)

val rc : string
(** Rule label ["RC"]. *)

val ru : string
(** Rule label ["RU"]. *)

val algorithm :
  ('s, 'i) params -> ('s Trans_state.t, 'i) Ss_sim.Algorithm.t
(** The transformed algorithm, ready for {!Ss_sim.Engine.run}.  Each
    call embeds a fresh per-domain family of {!Predicates.cache}s
    (keyed through [Domain.DLS], so sharded guard sweeps on the
    [Ss_par] pool each use a private instance), and [RR]'s [algoErr]
    guard re-verifies only the cells that changed since the node's
    previous evaluation (O(Δ·deg) instead of O(h·deg)).  The cache
    never changes results — see {!Predicates.algo_err_cached} — and
    [run ~self_check:true] cross-validates it on every step. *)

val algorithm_uncached :
  ('s, 'i) params -> ('s Trans_state.t, 'i) Ss_sim.Algorithm.t
(** Same algorithm with the reference full-prefix [algoErr] — the
    differential-testing and benchmarking baseline ({!run_naive} uses
    it). *)

val clean_config :
  ('s, 'i) params ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t
(** The controlled initial configuration: every node has status [C]
    and an empty list. *)

val packed_config :
  ('s, 'i) params ->
  codec:'s Cellpack.codec ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t
(** Like {!clean_config}, but every node state lives in one shared
    {!Cellpack} arena of [n × B] packed cells (DESIGN.md §12) — the
    million-node layout: O(n·B·words) flat words, no per-cell boxing.
    Requires a finite bound (it is the slab capacity); heights can
    never exceed it, so the arena never overflows.  The configuration
    behaves identically to a boxed one under {!run}, {!corrupt} and
    the checkers; only {!run_naive} twins must stay boxed (packed
    slots hold a single live timeline — see {!Trans_state}).
    @raise Invalid_argument when [params.bound] is [Infinite]. *)

val corrupt :
  Ss_prelude.Rng.t ->
  ?p:float ->
  max_height:int ->
  ('s, 'i) params ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t
(** [corrupt rng ~max_height params config] models transient faults:
    each node is hit independently with probability [p] (default 1)
    and its state is replaced by one of several corruption patterns —
    full scramble, truncation, garbage extension (always at least one
    cell), single-cell flip, or status flip.  Patterns that would
    degenerate to a no-op (extending a full list, flipping a cell of
    an empty zero-capacity list) fall back to a status flip, so a hit
    node always actually changes.  Heights never exceed
    [min(max_height, B)] and the read-only [init] field is
    preserved.
    @raise Invalid_argument if [p] is outside [[0, 1]] (including
    NaN). *)

val corrupt_state :
  Ss_prelude.Rng.t ->
  max_height:int ->
  ('s, 'i) params ->
  'i ->
  's Trans_state.t ->
  's Trans_state.t
(** Single-state corruption, as applied per node by {!corrupt}.  Also
    used to corrupt the neighbor {e mirrors} of the message-passing
    emulation. *)

val run :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ?now:(unit -> float) ->
  ?chaos:('s Trans_state.t, 'i) Ss_sim.Engine.chaos ->
  ?self_check:bool ->
  ?sharded:bool ->
  ?observer:('s Trans_state.t, 'i) Ss_sim.Engine.observer ->
  ?sinks:('s Trans_state.t, 'i) Ss_sim.Engine.observer list ->
  ('s, 'i) params ->
  Ss_sim.Daemon.t ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Trans_state.t, 'i) Ss_sim.Engine.stats
(** Convenience wrapper over {!Ss_sim.Engine.run} (the incremental
    dirty-set engine; [self_check] cross-validates it against a full
    scan every step, {e and} cross-validates the cached predicates of
    {!algorithm} against the uncached reference of
    {!algorithm_uncached}, raising {!Ss_sim.Engine.Divergence} on any
    mismatch).  All the engine's budget and sink-bus options pass
    through unchanged.

    [sharded] (default [false]) enables the engine's sharded
    scheduler.  The cached predicates are used either way:
    {!algorithm} keys its watermark cache through [Domain.DLS], so
    each pool domain lazily creates a private instance instead of
    racing on a shared table.  Execution stays byte-identical to the
    sequential run — the cache never changes results. *)

val run_naive :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ?now:(unit -> float) ->
  ?observer:('s Trans_state.t, 'i) Ss_sim.Engine.observer ->
  ?sinks:('s Trans_state.t, 'i) Ss_sim.Engine.observer list ->
  ('s, 'i) params ->
  Ss_sim.Daemon.t ->
  ('s Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Trans_state.t, 'i) Ss_sim.Engine.stats
(** Convenience wrapper over {!Ss_sim.Engine.run_naive}, the
    full-rescan reference engine (differential testing and
    benchmarking). *)

val outputs : ('s Trans_state.t, 'i) Ss_sim.Config.t -> 's array
(** The simulated algorithm's outputs: each node's newest cell
    [L(h)]. *)
