module Graph = Ss_graph.Graph
module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module Sync_algo = Ss_sync.Sync_algo
module Util = Ss_prelude.Util
module St = Ss_core.Trans_state
module Transformer = Ss_core.Registry.Trans

type cost = {
  moves : int;
  messages : int;
  bits_full_state : int;
  bits_delta : int;
  heartbeat_messages : int;
  heartbeat_bits : int;
  rounds : int;
  terminated : bool;
}

let height_bits = function
  | Ss_core.Predicates.Finite b -> Util.bit_width b
  | Ss_core.Predicates.Infinite -> 32

type proof_cost = { proof_bits : int; nonce_bits : int }

let default_proof_cost = { proof_bits = 64; nonce_bits = 64 }
let proof_message_bits pc = pc.proof_bits + pc.nonce_bits
let request_message_bits = 2

let state_proof ~nonce s =
  Int64.logxor (Util.fnv1a64 s) (Int64.mul nonce 0x9E3779B97F4A7C15L)

let full_state_bits sync st =
  let bits = sync.Sync_algo.state_bits in
  1 (* status *) + bits (St.init st)
  + St.fold_cells (fun acc c -> acc + bits c) 0 st

let delta_bits params st rule =
  let sync = params.Transformer.sync in
  let label = 2 in
  if rule = Transformer.ru then label + sync.Sync_algo.state_bits (St.top st)
  else if rule = Transformer.rp then label + height_bits params.Transformer.bound
  else label (* RR and RC carry no payload *)

let measure ?(proof = default_proof_cost) ?(heartbeat_period = 16) ?max_steps
    params daemon config =
  let g = config.Config.graph in
  let messages = ref 0 in
  let bits_full = ref 0 in
  let bits_delta = ref 0 in
  let last_heartbeat_round = ref 0 in
  let heartbeat_messages = ref 0 in
  let sum_degrees =
    Graph.fold_nodes g ~init:0 ~f:(fun acc p -> acc + Graph.degree g p)
  in
  let observer ~step:_ ~rounds ~moved after =
    List.iter
      (fun (p, rule) ->
        let deg = Graph.degree g p in
        let st = Config.state after p in
        messages := !messages + deg;
        bits_full :=
          !bits_full + (deg * full_state_bits params.Transformer.sync st);
        bits_delta := !bits_delta + (deg * delta_bits params st rule))
      moved;
    (* Periodic proofs: every [heartbeat_period] completed rounds each
       node sends one proof on each incident channel. *)
    while rounds - !last_heartbeat_round >= heartbeat_period do
      last_heartbeat_round := !last_heartbeat_round + heartbeat_period;
      heartbeat_messages := !heartbeat_messages + sum_degrees
    done
  in
  let stats = Transformer.run ?max_steps ~observer params daemon config in
  let cost =
    {
      moves = stats.Engine.moves;
      messages = !messages;
      bits_full_state = !bits_full;
      bits_delta = !bits_delta;
      heartbeat_messages = !heartbeat_messages;
      heartbeat_bits = !heartbeat_messages * proof_message_bits proof;
      rounds = stats.Engine.rounds;
      terminated = stats.Engine.terminated;
    }
  in
  (stats, cost)
