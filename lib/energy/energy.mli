(** The message/energy cost model of paper §6.

    The atomic-state model has no messages, but an implementation in a
    message-passing system makes each moving node inform its neighbors
    of its state change, and makes all nodes periodically exchange
    {e proofs} of their states (a salted hash plus its nonce) to detect
    transient faults.  §6 argues that:

    - the number of algorithm messages is governed by the {e move}
      count (each move triggers [deg(p)] messages);
    - sending whole states costs [O(B·S)] bits per message, while
      {e delta encoding} (2 bits of rule label, plus [O(log B)] bits
      for [RP]'s new height or [O(S)] bits for [RU]'s new cell) brings
      each message down to [O(S + log B)];
    - proof heartbeats are small and can be rare.

    This module measures all three quantities over actual simulator
    executions of the transformer. *)

type cost = {
  moves : int;  (** Total moves of the execution. *)
  messages : int;  (** Algorithm messages: [Σ deg(p)] over moves. *)
  bits_full_state : int;
      (** Total bits if every message carries the sender's whole
          transformed state. *)
  bits_delta : int;
      (** Total bits under §6's delta encoding: 2 bits of rule label
          plus the rule's payload. *)
  heartbeat_messages : int;
      (** Proof messages: one per node per neighbor every
          [heartbeat_period] completed rounds. *)
  heartbeat_bits : int;  (** [heartbeat_messages * (proof_bits + nonce_bits)]. *)
  rounds : int;
  terminated : bool;
}

val height_bits : Ss_core.Predicates.bound -> int
(** Bits needed to transmit a height [<= B] ([log₂(B+1)], and 32 for
    an infinite bound — a practical word). *)

type proof_cost = { proof_bits : int; nonce_bits : int }
(** Wire cost of one proof message: hash bits plus wave-nonce bits.
    The single source of truth shared by {!measure} (the analytical
    §6 cost model) and [Ss_msgnet.Msgnet.run] (the executable
    message-network realization), so the two entry points can never
    drift apart on what a proof costs. *)

val default_proof_cost : proof_cost
(** [{ proof_bits = 64; nonce_bits = 64 }] — a 64-bit salted hash plus
    a 64-bit wave nonce, 128 bits per proof message in total. *)

val proof_message_bits : proof_cost -> int
(** [proof_bits + nonce_bits]: total bits of one proof message. *)

val request_message_bits : int
(** Bits of a repair [Request] message (a bare 2-bit message tag). *)

val state_proof : nonce:int64 -> string -> int64
(** The §6 proof of a (serialized) state: a 64-bit hash of the state
    salted with the nonce.  Exposed so tests can check that proofs
    discriminate distinct states. *)

val full_state_bits :
  ('s, 'i) Ss_sync.Sync_algo.t -> 's Ss_core.Trans_state.t -> int
(** Bits of a whole transformed state: 1 status bit plus the sizes of
    [init] and every cell. *)

val delta_bits :
  ('s, 'i) Ss_core.Predicates.params -> 's Ss_core.Trans_state.t -> string -> int
(** Bits of §6's delta encoding for a move that produced the given
    state under the given rule label: 2 label bits, plus the new
    height for [RP] or the new cell for [RU]. *)

val measure :
  ?proof:proof_cost ->
  ?heartbeat_period:int ->
  ?max_steps:int ->
  ('s, 'i) Ss_core.Predicates.params ->
  Ss_sim.Daemon.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Engine.stats * cost
(** Run the transformer and account message costs (defaults:
    [proof = default_proof_cost], [heartbeat_period = 16] rounds). *)
