module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Engine = Ss_sim.Engine
module Transformer = Ss_core.Transformer
module Ablation = Ss_core.Ablation
module Checker = Ss_core.Checker
module Stabilization = Ss_verify.Stabilization
module Leader = Ss_algos.Leader_election

type tally = {
  mutable runs : int;
  mutable terminated : int;
  mutable legitimate : int;
  mutable max_moves : int;
  mutable max_rounds : int;
}

let fresh_tally () =
  { runs = 0; terminated = 0; legitimate = 0; max_moves = 0; max_rounds = 0 }

let rows ?(seeds = [ 1; 2; 3 ]) rng =
  let table =
    Table.create
      [
        "variant"; "runs"; "terminated"; "legitimate"; "max-moves";
        "max-rounds";
      ]
  in
  let workloads =
    [
      Ss_graph.Builders.path 12;
      Ss_graph.Builders.cycle 12;
      Ss_graph.Builders.binary_tree 15;
      Ss_graph.Builders.random_connected (Rng.split rng) ~n:14 ~extra_edges:6;
    ]
  in
  let variants =
    [
      ("full", Transformer.algorithm);
      ("no-RP", Ablation.without_rp);
      ("eager-RC", Ablation.with_eager_clear);
    ]
  in
  List.iter
    (fun (name, make_algo) ->
      let tally = fresh_tally () in
      List.iter
        (fun g ->
          let inputs = Leader.random_ids (Rng.split rng) g in
          let params = Transformer.params Leader.algo in
          let sc = { Stabilization.params; graph = g; inputs } in
          let hist = Stabilization.history sc in
          let t = hist.Ss_sync.Sync_runner.t in
          let algo = make_algo params in
          List.iter
            (fun seed ->
              let seed_rng = Rng.create seed in
              List.iter
                (fun (_dn, daemon) ->
                  let start =
                    Stabilization.corrupted_start (Rng.split seed_rng)
                      ~max_height:(t + 4) sc
                  in
                  (* A step budget: non-stabilizing variants may stall
                     in a live-lock rather than a deadlock. *)
                  let stats =
                    Engine.run
                      ~budget:(Ss_report.Budget.v ~steps:200_000 ())
                      algo daemon start
                  in
                  tally.runs <- tally.runs + 1;
                  if stats.Engine.terminated then begin
                    tally.terminated <- tally.terminated + 1;
                    if
                      Checker.legitimate_terminal params hist stats.Engine.final
                      = Ok ()
                    then tally.legitimate <- tally.legitimate + 1
                  end;
                  tally.max_moves <- max tally.max_moves stats.Engine.moves;
                  tally.max_rounds <- max tally.max_rounds stats.Engine.rounds)
                (Stabilization.daemon_portfolio seed_rng))
            seeds)
        workloads;
      Table.add table
        [
          Table.S name;
          Table.I tally.runs;
          Table.I tally.terminated;
          Table.I tally.legitimate;
          Table.I tally.max_moves;
          Table.I tally.max_rounds;
        ])
    variants;
  table
