module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Par = Ss_par.Par
module Engine = Ss_sim.Engine
module Transformer = Ss_core.Registry.Trans
module Ablation = Ss_core.Ablation
module Checker = Ss_core.Checker
module Stabilization = Ss_verify.Stabilization
module Leader = Ss_algos.Leader_election

type tally = {
  mutable runs : int;
  mutable terminated : int;
  mutable legitimate : int;
  mutable max_moves : int;
  mutable max_rounds : int;
}

let fresh_tally () =
  { runs = 0; terminated = 0; legitimate = 0; max_moves = 0; max_rounds = 0 }

let merge_into acc t =
  acc.runs <- acc.runs + t.runs;
  acc.terminated <- acc.terminated + t.terminated;
  acc.legitimate <- acc.legitimate + t.legitimate;
  acc.max_moves <- max acc.max_moves t.max_moves;
  acc.max_rounds <- max acc.max_rounds t.max_rounds

let rows ?(seeds = [ 1; 2; 3 ]) rng =
  let table =
    Table.create
      [
        "variant"; "runs"; "terminated"; "legitimate"; "max-moves";
        "max-rounds";
      ]
  in
  let workloads =
    [
      Ss_graph.Builders.path 12;
      Ss_graph.Builders.cycle 12;
      Ss_graph.Builders.binary_tree 15;
      Ss_graph.Builders.random_connected (Rng.split rng) ~n:14 ~extra_edges:6;
    ]
  in
  let variants =
    [
      ("full", Transformer.algorithm);
      ("no-RP", Ablation.without_rp);
      ("eager-RC", Ablation.with_eager_clear);
    ]
  in
  (* Fan out at (variant × workload) granularity — the finest grain at
     which every task can own its algorithm instance (the cached
     predicate table inside [make_algo params] is mutable and must not
     be shared across domains; DESIGN.md §11).  Splits for the
     per-pair inputs happen at task-list construction in the
     historical variant-major order; per-pair tallies merge back in
     that same order (sums and maxes, so the row is identical to the
     sequential interleaving). *)
  let tasks =
    Rng.split_per rng
      (List.concat_map
         (fun variant -> List.map (fun g -> (variant, g)) workloads)
         variants)
  in
  let tallies =
    Par.map
      (fun (((_vname, make_algo), g), rng') ->
        let inputs = Leader.random_ids rng' g in
        let params = Transformer.params Leader.algo in
        let sc = { Stabilization.params; graph = g; inputs } in
        let hist = Stabilization.history sc in
        let t = hist.Ss_sync.Sync_runner.t in
        let algo = make_algo params in
        let tally = fresh_tally () in
        List.iter
          (fun seed ->
            let seed_rng = Rng.create seed in
            List.iter
              (fun (_dn, daemon) ->
                let start =
                  Stabilization.corrupted_start (Rng.split seed_rng)
                    ~max_height:(t + 4) sc
                in
                (* A step budget: non-stabilizing variants may stall
                   in a live-lock rather than a deadlock. *)
                let stats =
                  Engine.run
                    ~budget:(Ss_report.Budget.v ~steps:200_000 ())
                    algo daemon start
                in
                tally.runs <- tally.runs + 1;
                if stats.Engine.terminated then begin
                  tally.terminated <- tally.terminated + 1;
                  if
                    Checker.legitimate_terminal params hist stats.Engine.final
                    = Ok ()
                  then tally.legitimate <- tally.legitimate + 1
                end;
                tally.max_moves <- max tally.max_moves stats.Engine.moves;
                tally.max_rounds <- max tally.max_rounds stats.Engine.rounds)
              (Stabilization.daemon_portfolio seed_rng))
          seeds;
        tally)
      tasks
  in
  List.iter
    (fun (name, _) ->
      let acc = fresh_tally () in
      List.iter2
        (fun (((vname, _), _g), _rng) t ->
          if String.equal vname name then merge_into acc t)
        tasks tallies;
      Table.add table
        [
          Table.S name;
          Table.I acc.runs;
          Table.I acc.terminated;
          Table.I acc.legitimate;
          Table.I acc.max_moves;
          Table.I acc.max_rounds;
        ])
    variants;
  table
