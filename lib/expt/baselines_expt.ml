module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module G = Ss_graph
module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module Transformer = Ss_core.Registry.Trans
module Stabilization = Ss_verify.Stabilization
module Bfs = Ss_algos.Bfs_tree
module Naive = Ss_baselines.Naive_bfs
module Dijkstra = Ss_baselines.Dijkstra_ring

let naive_worst_case rng g ~root seeds =
  let inputs = Naive.inputs g ~root () in
  let worst_moves = ref 0 and worst_rounds = ref 0 and ok = ref true in
  List.iter
    (fun seed ->
      let seed_rng = Rng.create (seed * 31) in
      List.iter
        (fun (_name, daemon) ->
          (* Adversarial start: every non-root estimate is 0 — the
             classic underestimate flood. *)
          let start =
            Config.make g ~inputs ~states:(fun _ -> 0)
          in
          let stats =
            Engine.run
              ~budget:(Ss_report.Budget.v ~steps:5_000_000 ())
              Naive.algo daemon start
          in
          worst_moves := max !worst_moves stats.Engine.moves;
          worst_rounds := max !worst_rounds stats.Engine.rounds;
          ok :=
            !ok && stats.Engine.terminated
            && Naive.spec_holds g ~root ~final:stats.Engine.final.Config.states)
        (Stabilization.daemon_portfolio seed_rng))
    seeds;
  ignore rng;
  (!worst_moves, !worst_rounds, !ok)

let transformed_worst_case rng g ~root seeds =
  let inputs = Bfs.inputs g ~root in
  let sc =
    { Stabilization.params = Transformer.params Bfs.algo; graph = g; inputs }
  in
  let t = (Stabilization.history sc).Ss_sync.Sync_runner.t in
  let agg =
    Measure.worst_case ~seeds ~max_height:(t + 4)
      ~spec:(fun final -> Bfs.spec_holds g ~root ~final)
      sc
  in
  ignore rng;
  (agg.Measure.max_moves, agg.Measure.max_rounds,
   agg.Measure.all_legitimate && agg.Measure.all_spec)

let bfs_rows ?(seeds = [ 1; 2 ]) rng =
  let table =
    Table.create
      [
        "graph"; "n"; "D"; "naive-moves"; "naive-adv-moves"; "trans-moves";
        "trans-rounds"; "ok";
      ]
  in
  let workloads =
    [
      ("path", G.Builders.path 24);
      ("lollipop", G.Builders.lollipop ~clique:8 ~tail:16);
      ("grid", G.Builders.grid ~rows:4 ~cols:6);
      ("random", G.Builders.random_connected (Rng.split rng) ~n:24 ~extra_edges:12);
    ]
  in
  (* One pool task per workload; the two historical per-workload splits
     are pre-derived in order (DESIGN.md §11). *)
  let tasks =
    List.rev
      (List.fold_left
         (fun acc (name, g) ->
           let naive_rng = Rng.split rng in
           let trans_rng = Rng.split rng in
           (name, g, naive_rng, trans_rng) :: acc)
         [] workloads)
  in
  List.iter (Table.add table)
    (Ss_par.Par.map
       (fun (name, g, naive_rng, trans_rng) ->
         let root = 0 in
         let nm, _nr, nok = naive_worst_case naive_rng g ~root seeds in
         let adv_moves, adv_ok =
           Naive.adversarial_run
             (Config.make g
                ~inputs:(Naive.inputs g ~root ())
                ~states:(fun _ -> 0))
         in
         let tm, tr, tok = transformed_worst_case trans_rng g ~root seeds in
         [
           Table.S name;
           Table.I (G.Graph.n g);
           Table.I (G.Properties.diameter g);
           Table.I nm;
           Table.I adv_moves;
           Table.I tm;
           Table.I tr;
           Table.S (if nok && tok && adv_ok then "yes" else "NO");
         ])
       tasks);
  table

let dijkstra_rows ?(seeds = [ 1; 2; 3 ]) rng =
  let table =
    Table.create [ "n"; "K"; "steps-to-legit"; "moves-to-legit"; "closure" ]
  in
  List.iter (Table.add table)
    (Ss_par.Par.map
       (fun n ->
         (* Self-contained task: every draw comes from the per-seed
            generators, so ring sizes can run on any domain. *)
         let g = G.Builders.cycle n in
         let inputs = Dijkstra.inputs ~n () in
         let worst_steps = ref 0
         and worst_moves = ref 0
         and closure = ref true in
         List.iter
           (fun seed ->
             let seed_rng = Rng.create (seed * 17) in
             let start =
               Config.make g ~inputs ~states:(fun _ ->
                   Rng.int seed_rng (n + 1))
             in
             List.iter
               (fun (_name, daemon) ->
                 match Dijkstra.run_to_legitimacy daemon start with
                 | Some (steps, moves, legit_config) ->
                     worst_steps := max !worst_steps steps;
                     worst_moves := max !worst_moves moves;
                     closure :=
                       !closure
                       && Dijkstra.closure_holds
                            (Ss_sim.Daemon.central_random (Rng.split seed_rng))
                            legit_config
                 | None -> closure := false)
               (Stabilization.daemon_portfolio seed_rng))
           seeds;
         [
           Table.I n;
           Table.I (n + 1);
           Table.I !worst_steps;
           Table.I !worst_moves;
           Table.S (if !closure then "yes" else "NO");
         ])
       [ 5; 9; 17; 33 ]);
  ignore rng;
  table
