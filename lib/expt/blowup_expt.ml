module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Gk = Ss_graph.Gk
module Config = Ss_sim.Config
module Engine = Ss_sim.Engine
module P = Ss_core.Predicates
module Transformer = Ss_core.Registry.Trans
module St = Ss_core.Trans_state
module Blowup = Ss_rollback.Blowup
module Min_flood = Ss_algos.Min_flood
module Stabilization = Ss_verify.Stabilization

let fig1_transformer_config ~k =
  let g = Gk.make k in
  let b = Blowup.bound_for k in
  Config.make g
    ~inputs:(fun _ -> 1)
    ~states:(fun p ->
      let index = Gk.fig1_index ~k p in
      St.make ~init:1 ~status:St.C
        ~cells:(Array.init b (fun idx -> if idx + 1 < index then 1 else 0)))

let transformer_on_fig1 ~k ~daemon =
  let params =
    Transformer.params ~mode:P.Greedy
      ~bound:(P.Finite (Blowup.bound_for k))
      Min_flood.algo
  in
  let stats =
    Transformer.run ~max_steps:20_000_000 params daemon
      (fig1_transformer_config ~k)
  in
  (stats.Engine.moves, stats.Engine.terminated)

let rows ?(max_k = 9) ?(seeds = [ 1 ]) () =
  let table =
    Table.create
      [
        "k"; "n"; "B"; "|Gamma_k|"; "rollback-moves"; "trans-moves";
        "ratio"; "ok";
      ]
  in
  (* One pool task per k; each task owns its configs, daemons and
     generators outright ([Rng.create seed] only). *)
  List.iter (Table.add_row table)
    (Ss_par.Par.map
       (fun k ->
         let r = Blowup.run ~k () in
         let trans_moves, trans_ok =
           List.fold_left
             (fun (worst, ok) seed ->
               let rng = Rng.create seed in
               List.fold_left
                 (fun (worst, ok) (_name, daemon) ->
                   let m, t = transformer_on_fig1 ~k ~daemon in
                   (max worst m, ok && t))
                 (worst, ok)
                 (Stabilization.daemon_portfolio rng))
             (0, true) seeds
         in
         [
           string_of_int k;
           string_of_int r.Blowup.n;
           string_of_int (Blowup.bound_for k);
           string_of_int r.Blowup.schedule_moves;
           string_of_int r.Blowup.total_moves;
           string_of_int trans_moves;
           Printf.sprintf "%.1f"
             (float_of_int r.Blowup.total_moves
             /. float_of_int (max 1 trans_moves));
           (if r.Blowup.stabilized && trans_ok then "yes" else "NO");
         ])
       (List.init max_k (fun i -> i + 1)));
  table
