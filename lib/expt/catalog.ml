module G = Ss_graph
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Sync_algo = Ss_sync.Sync_algo
module Registry = Ss_core.Registry

(* ------------------------------------------------------------------ *)
(* Transformers                                                         *)
(* ------------------------------------------------------------------ *)

(* The §3 transformer registers itself inside [Ss_core.Registry]; the
   out-of-core transformers enter the table here, when the campaign
   layer is linked.  Everything downstream (fasst run/list/
   transformers, the bench archives, the tests) enumerates through
   this module, so the side effect is guaranteed to have run. *)
let () =
  Registry.register Ss_rollback.Rollback.transformer;
  Registry.register Ss_adaptive.Adaptive.transformer

let transformers () = Registry.all ()
let transformer_names () = List.map Registry.name (transformers ())
let find_transformer = Registry.find_exn

(* ------------------------------------------------------------------ *)
(* Workload algorithms                                                  *)
(* ------------------------------------------------------------------ *)

type algo_inst =
  | Inst : {
      sync : ('s, 'i) Sync_algo.t;
      inputs : int -> 'i;
      spec : 's array -> bool;
      codec : 's Ss_core.Cellpack.codec option;
    }
      -> algo_inst

type algo = {
  algo_name : string;
  algo_doc : string;
  ring_only : bool;
  in_sim_grid : bool;
  instantiate : Rng.t -> G.Graph.t -> algo_inst;
}

let algorithms =
  [
    {
      algo_name = "leader";
      algo_doc = "leader election by minimum-id flooding (§5.1)";
      ring_only = false;
      in_sim_grid = true;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Leader_election in
          let inputs = A.random_ids rng g in
          Inst
            {
              sync = A.algo;
              inputs;
              spec = (fun final -> A.spec_holds g ~inputs ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "minflood";
      algo_doc = "minimum computation by flooding (§7's input algorithm)";
      ring_only = false;
      in_sim_grid = false;
      instantiate =
        (fun _rng g ->
          let module A = Ss_algos.Min_flood in
          ignore g;
          let inputs p = p * 31 mod 17 in
          Inst
            {
              sync = A.algo;
              inputs;
              spec = (fun final -> A.spec_holds g ~inputs ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "bfs";
      algo_doc = "BFS spanning tree, root 0 (§5.2)";
      ring_only = false;
      in_sim_grid = true;
      instantiate =
        (fun _rng g ->
          let module A = Ss_algos.Bfs_tree in
          Inst
            {
              sync = A.algo;
              inputs = A.inputs g ~root:0;
              spec = (fun final -> A.spec_holds g ~root:0 ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "sp";
      algo_doc = "shortest-path tree over random weights (Bellman-Ford)";
      ring_only = false;
      in_sim_grid = false;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Shortest_path in
          let weight = A.random_weights rng g ~max_weight:8 in
          Inst
            {
              sync = A.algo;
              inputs = A.inputs g ~weight ~root:0;
              spec = (fun final -> A.spec_holds g ~weight ~root:0 ~final);
              codec = None;
            });
    };
    {
      algo_name = "leaderbfs";
      algo_doc = "composed leader election + BFS tree";
      ring_only = false;
      in_sim_grid = false;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Leader_bfs in
          let ids = Ss_algos.Leader_election.random_ids rng g in
          let inputs = A.inputs ~ids g in
          Inst
            {
              sync = A.algo;
              inputs;
              spec = (fun final -> A.spec_holds g ~inputs ~final);
              codec = None;
            });
    };
    {
      algo_name = "cv";
      algo_doc = "Cole-Vishkin 3-coloring on oriented rings (§5.3)";
      ring_only = true;
      in_sim_grid = true;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Cole_vishkin in
          let n = G.Graph.n g in
          let width = max 8 (Util.bit_width n) in
          let ids = A.random_ring_ids rng ~n ~width in
          Inst
            {
              sync = A.algo;
              inputs = A.inputs ~ids ~width g;
              spec = (fun final -> A.spec_holds g ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "mis";
      algo_doc = "maximal independent set, greedy local-max (general graphs)";
      ring_only = false;
      in_sim_grid = false;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Mis in
          let inputs = Ss_algos.Leader_election.random_ids rng g in
          Inst
            {
              sync = A.algo;
              inputs;
              spec = (fun final -> A.spec_holds g ~inputs ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "matching";
      algo_doc = "maximal matching, propose-to-minimum (general graphs)";
      ring_only = false;
      in_sim_grid = false;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Matching in
          let inputs = Ss_algos.Leader_election.random_ids rng g in
          Inst
            {
              sync = A.algo;
              inputs;
              spec = (fun final -> A.spec_holds g ~inputs ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "coloring";
      algo_doc = "greedy (Delta+1)-coloring (general graphs)";
      ring_only = false;
      in_sim_grid = false;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Coloring in
          let inputs = Ss_algos.Leader_election.random_ids rng g in
          Inst
            {
              sync = A.algo;
              inputs;
              spec = (fun final -> A.spec_holds g ~inputs ~final);
              codec = Some A.codec;
            });
    };
    {
      algo_name = "ringmis";
      algo_doc = "MIS on oriented rings, composed on Cole-Vishkin";
      ring_only = true;
      in_sim_grid = false;
      instantiate =
        (fun rng g ->
          let module A = Ss_algos.Ring_mis in
          let n = G.Graph.n g in
          let width = max 8 (Util.bit_width n) in
          let ids = Ss_algos.Cole_vishkin.random_ring_ids rng ~n ~width in
          Inst
            {
              sync = A.algo;
              inputs = A.inputs ~ids ~width g;
              spec = (fun final -> A.spec_holds g ~final);
              codec = None;
            });
    };
  ]

let algo_names () = List.map (fun a -> a.algo_name) algorithms
let sim_algo_names () =
  List.filter_map
    (fun a -> if a.in_sim_grid then Some a.algo_name else None)
    algorithms

let find_algo name =
  match List.find_opt (fun a -> a.algo_name = name) algorithms with
  | Some a -> a
  | None ->
      failwith
        (Printf.sprintf "unknown algorithm: %s (known: %s)" name
           (String.concat ", " (algo_names ())))

let is_ring g =
  G.Graph.m g = G.Graph.n g
  && G.Graph.fold_nodes g ~init:true ~f:(fun acc v ->
         acc && G.Graph.degree g v = 2)

let validate_topology a g =
  if a.ring_only && not (is_ring g) then
    Error
      (Printf.sprintf "algorithm %s is ring-only (n = m, all degrees 2)"
         a.algo_name)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Topologies                                                           *)
(* ------------------------------------------------------------------ *)

(* The single source of the CLI topology syntax: each family parses its
   own SPEC tail.  Kept as data so [fasst list] renders it. *)
let topologies =
  let dims spec s k =
    match String.split_on_char 'x' s with
    | [ a; b ] -> k (int_of_string a) (int_of_string b)
    | _ -> failwith (spec ^ " expects " ^ spec ^ ":AxB")
  in
  [
    ("path", "path:N", fun _ s -> G.Builders.path (int_of_string s));
    ("ring", "ring:N", fun _ s -> G.Builders.cycle (int_of_string s));
    ("cycle", "cycle:N", fun _ s -> G.Builders.cycle (int_of_string s));
    ("star", "star:N", fun _ s -> G.Builders.star (int_of_string s));
    ("tree", "tree:N", fun _ s -> G.Builders.binary_tree (int_of_string s));
    ("complete", "complete:N", fun _ s -> G.Builders.complete (int_of_string s));
    ( "hypercube",
      "hypercube:D",
      fun _ s -> G.Builders.hypercube (int_of_string s) );
    ( "grid",
      "grid:RxC",
      fun _ s -> dims "grid" s (fun rows cols -> G.Builders.grid ~rows ~cols) );
    ( "torus",
      "torus:RxC",
      fun _ s -> dims "torus" s (fun rows cols -> G.Builders.torus ~rows ~cols)
    );
    ( "random",
      "random:N",
      fun rng s ->
        let n = int_of_string s in
        G.Builders.random_connected rng ~n ~extra_edges:(n / 2) );
    ("random4", "random4:N", fun rng s -> G.Builders.random4 rng (int_of_string s));
    ( "lollipop",
      "lollipop:CxT",
      fun _ s ->
        dims "lollipop" s (fun clique tail -> G.Builders.lollipop ~clique ~tail)
    );
    ("wheel", "wheel:N", fun _ s -> G.Builders.wheel (int_of_string s));
    ( "bipartite",
      "bipartite:AxB",
      fun _ s -> dims "bipartite" s G.Builders.complete_bipartite );
    ( "caterpillar",
      "caterpillar:SxL",
      fun _ s ->
        dims "caterpillar" s (fun spine legs ->
            G.Builders.caterpillar ~spine ~legs) );
    ("gk", "gk:K", fun _ s -> G.Gk.make (int_of_string s));
  ]

let topology_syntax () = List.map (fun (_, syntax, _) -> syntax) topologies

let parse_topology rng spec =
  match String.index_opt spec ':' with
  | None -> failwith ("unknown topology: " ^ spec)
  | Some i -> (
      let family = String.sub spec 0 i in
      let tail = String.sub spec (i + 1) (String.length spec - i - 1) in
      match List.find_opt (fun (name, _, _) -> name = family) topologies with
      | Some (_, _, build) -> build rng tail
      | None ->
          failwith
            (Printf.sprintf "unknown topology: %s (families: %s)" spec
               (String.concat ", "
                  (List.map (fun (name, _, _) -> name) topologies))))
