(** The campaign layer's single source of truth: which transformers,
    workload algorithms and graph families exist.

    Loading this module registers the out-of-core transformers
    ([Ss_rollback], [Ss_adaptive]) into {!Ss_core.Registry} — the §3
    system registers itself there.  [fasst list], [fasst run],
    [fasst transformers], the sim grid and the bench archives all
    enumerate through this module, so nothing downstream keeps a
    hand-maintained string list. *)

val transformers : unit -> Ss_core.Registry.entry list
(** All registered transformers, in registration order
    ([trans; rollback; adaptive]). *)

val transformer_names : unit -> string list

val find_transformer : string -> Ss_core.Registry.entry
(** @raise Failure with the known names on an unknown name. *)

type algo_inst =
  | Inst : {
      sync : ('s, 'i) Ss_sync.Sync_algo.t;
      inputs : int -> 'i;
      spec : 's array -> bool;
          (** Output specification over the final simulated states. *)
      codec : 's Ss_core.Cellpack.codec option;
          (** Packed-arena layout, when one exists. *)
    }
      -> algo_inst
(** One workload algorithm instantiated on one graph.  The existential
    keeps per-algorithm state/input types out of campaign plumbing;
    unpack it where the types are needed. *)

type algo = {
  algo_name : string;  (** CLI name ([fasst run -a], [fasst list]). *)
  algo_doc : string;
  ring_only : bool;
      (** Requires a ring ({!is_ring}); {!validate_topology} rejects
          anything else. *)
  in_sim_grid : bool;
      (** Member of the default chaos-mode sim grid
          ({!Sim_expt.algo_names}). *)
  instantiate : Ss_prelude.Rng.t -> Ss_graph.Graph.t -> algo_inst;
      (** Draw inputs (ids, weights) from the given stream. *)
}

val algorithms : algo list
(** Every workload, in rendering order. *)

val algo_names : unit -> string list

val sim_algo_names : unit -> string list
(** The [in_sim_grid] subset. *)

val find_algo : string -> algo
(** @raise Failure with the known names on an unknown name. *)

val is_ring : Ss_graph.Graph.t -> bool
(** [n = m] and every degree is 2 (the builders only make connected
    graphs, so this characterizes the cycle). *)

val validate_topology : algo -> Ss_graph.Graph.t -> (unit, string) result
(** [Error] when a ring-only algorithm meets a non-ring graph. *)

val topology_syntax : unit -> string list
(** One [family:ARGS] usage string per graph family, for help texts
    and [fasst list]. *)

val parse_topology : Ss_prelude.Rng.t -> string -> Ss_graph.Graph.t
(** Parse a CLI topology spec ([ring:16], [torus:4x6], [gk:3], …).
    The rng feeds the random families.
    @raise Failure on an unknown family or malformed dimensions. *)
