module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Par = Ss_par.Par
module G = Ss_graph
module Daemon = Ss_sim.Daemon
module P = Ss_core.Predicates
module Transformer = Ss_core.Registry.Trans
module Energy = Ss_energy.Energy
module Leader = Ss_algos.Leader_election
module Stabilization = Ss_verify.Stabilization
module Sync_runner = Ss_sync.Sync_runner

let rows ?(seeds = [ 1; 2 ]) rng =
  let table =
    Table.create
      [
        "n"; "B"; "moves"; "messages"; "full-bits"; "delta-bits";
        "ratio"; "predicted"; "hb-bits";
      ]
  in
  (* One row per (n, seed): the per-n setup (graph, ids, history) is
     derived sequentially — consuming the parent stream in the
     historical order — then the (n × seed) grid fans out over the
     shared pool, each task drawing only from [Rng.create seed]. *)
  let contexts =
    List.map
      (fun (n, rng) ->
        let g = G.Builders.cycle n in
        let inputs = Leader.random_ids rng g in
        let sc =
          {
            Stabilization.params = Transformer.params Leader.algo;
            graph = g;
            inputs;
          }
        in
        let hist = Stabilization.history sc in
        let t = hist.Sync_runner.t in
        let b = t + 2 in
        let s = Sync_runner.max_state_bits Leader.algo hist in
        (n, g, inputs, b, s))
      (Rng.split_per rng [ 8; 16; 32; 64 ])
  in
  let tasks =
    List.concat_map (fun ctx -> List.map (fun seed -> (ctx, seed)) seeds)
      contexts
  in
  List.iter (Table.add_row table)
    (Par.map
       (fun ((n, g, inputs, b, s), seed) ->
         let params = Transformer.params ~bound:(P.Finite b) Leader.algo in
         let rng' = Rng.create seed in
         let start =
           Transformer.corrupt (Rng.split rng') ~max_height:b params
             (Transformer.clean_config params g ~inputs)
         in
         let daemon = Daemon.distributed_random (Rng.split rng') ~p:0.5 in
         let _stats, cost = Energy.measure params daemon start in
         let ratio =
           float_of_int cost.Energy.bits_full_state
           /. float_of_int (max 1 cost.Energy.bits_delta)
         in
         let predicted =
           float_of_int (b * s) /. float_of_int (s + Util.bit_width b)
         in
         [
           string_of_int n;
           string_of_int b;
           string_of_int cost.Energy.moves;
           string_of_int cost.Energy.messages;
           string_of_int cost.Energy.bits_full_state;
           string_of_int cost.Energy.bits_delta;
           Printf.sprintf "%.1f" ratio;
           Printf.sprintf "%.1f" predicted;
           string_of_int cost.Energy.heartbeat_bits;
         ])
       tasks);
  table
