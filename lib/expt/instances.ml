module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Par = Ss_par.Par
module G = Ss_graph
module P = Ss_core.Predicates
module Transformer = Ss_core.Registry.Trans
module Stabilization = Ss_verify.Stabilization
module Sync_runner = Ss_sync.Sync_runner
module Leader = Ss_algos.Leader_election
module Bfs = Ss_algos.Bfs_tree
module Cv = Ss_algos.Cole_vishkin
module Sp = Ss_algos.Shortest_path

let default_seeds = [ 1; 2 ]

(* Rows fan out over the shared domain pool: parent-RNG splits happen
   while the row thunks are built (in row order), each thunk draws only
   from its own generator, and rows are appended in construction order
   — byte-identical output for any [-j] (DESIGN.md §11). *)
let run_rows table row_thunks =
  List.iter (Table.add_row table) (Par.map (fun row -> row ()) row_thunks)

let leader_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [ "family"; "n"; "D"; "rounds"; "D+T"; "moves"; "n^3"; "spec"; "legit" ]
  in
  run_rows table
    (List.map
       (fun ((w : Workloads.t), rng) () ->
         let inputs = Leader.random_ids rng w.Workloads.graph in
         let sc =
           {
             Stabilization.params = Transformer.params Leader.algo;
             graph = w.Workloads.graph;
             inputs;
           }
         in
         let t = (Stabilization.history sc).Sync_runner.t in
         let spec final = Leader.spec_holds w.Workloads.graph ~inputs ~final in
         let agg = Measure.worst_case ~seeds ~max_height:(t + 4) ~spec sc in
         [
           w.Workloads.family;
           string_of_int w.Workloads.n;
           string_of_int w.Workloads.diameter;
           string_of_int agg.Measure.max_rounds;
           string_of_int (w.Workloads.diameter + t);
           string_of_int agg.Measure.max_moves;
           string_of_int (w.Workloads.n * w.Workloads.n * w.Workloads.n);
           (if agg.Measure.all_spec then "yes" else "NO");
           (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (Rng.split_per rng (Workloads.diameter_sweep () @ Workloads.standard rng)));
  table

let bfs_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [ "family"; "n"; "D"; "rounds"; "D+T"; "moves"; "n^3"; "spec"; "legit" ]
  in
  run_rows table
    (List.map
       (fun ((w : Workloads.t), _rng) () ->
         let root = 0 in
         let inputs = Bfs.inputs w.Workloads.graph ~root in
         let sc =
           {
             Stabilization.params = Transformer.params Bfs.algo;
             graph = w.Workloads.graph;
             inputs;
           }
         in
         let t = (Stabilization.history sc).Sync_runner.t in
         let spec final = Bfs.spec_holds w.Workloads.graph ~root ~final in
         let agg = Measure.worst_case ~seeds ~max_height:(t + 4) ~spec sc in
         [
           w.Workloads.family;
           string_of_int w.Workloads.n;
           string_of_int w.Workloads.diameter;
           string_of_int agg.Measure.max_rounds;
           string_of_int (w.Workloads.diameter + t);
           string_of_int agg.Measure.max_moves;
           string_of_int (w.Workloads.n * w.Workloads.n * w.Workloads.n);
           (if agg.Measure.all_spec then "yes" else "NO");
           (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (List.map (fun w -> (w, rng)) (Workloads.standard rng)));
  table

let cv_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [
        "n"; "width"; "log*n"; "T"; "B"; "rounds"; "moves"; "n^2*B"; "spec";
        "legit";
      ]
  in
  run_rows table
    (List.map
       (fun ((n, width), rng) () ->
         let g = G.Builders.cycle n in
         let ids = Cv.random_ring_ids rng ~n ~width in
         let inputs = Cv.inputs ~ids ~width g in
         let t = Cv.schedule_length width in
         let b = t in
         let sc =
           {
             Stabilization.params =
               Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Cv.algo;
             graph = g;
             inputs;
           }
         in
         let spec final = Cv.spec_holds g ~final in
         let agg = Measure.worst_case ~seeds ~max_height:b ~spec sc in
         [
           string_of_int n;
           string_of_int width;
           string_of_int (Util.log_star n);
           string_of_int t;
           string_of_int b;
           string_of_int agg.Measure.max_rounds;
           string_of_int agg.Measure.max_moves;
           string_of_int (n * n * b);
           (if agg.Measure.all_spec then "yes" else "NO");
           (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (Rng.split_per rng [ (8, 6); (16, 8); (64, 10); (128, 16); (256, 16) ]));
  table

let shortest_path_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [ "family"; "n"; "D"; "T"; "rounds"; "moves"; "spec"; "legit" ]
  in
  run_rows table
    (List.map
       (fun ((w : Workloads.t), rng) () ->
         let root = 0 in
         let weight =
           Sp.random_weights rng w.Workloads.graph ~max_weight:8
         in
         let inputs = Sp.inputs w.Workloads.graph ~weight ~root in
         let sc =
           {
             Stabilization.params = Transformer.params Sp.algo;
             graph = w.Workloads.graph;
             inputs;
           }
         in
         let t = (Stabilization.history sc).Sync_runner.t in
         let spec final = Sp.spec_holds w.Workloads.graph ~weight ~root ~final in
         let agg = Measure.worst_case ~seeds ~max_height:(t + 4) ~spec sc in
         [
           w.Workloads.family;
           string_of_int w.Workloads.n;
           string_of_int w.Workloads.diameter;
           string_of_int t;
           string_of_int agg.Measure.max_rounds;
           string_of_int agg.Measure.max_moves;
           (if agg.Measure.all_spec then "yes" else "NO");
           (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (Rng.split_per rng
          [
            Workloads.make "path" (G.Builders.path 16);
            Workloads.make "cycle" (G.Builders.cycle 16);
            Workloads.make "grid" (G.Builders.grid ~rows:4 ~cols:4);
            Workloads.make "random"
              (G.Builders.random_connected (Rng.split rng) ~n:20 ~extra_edges:12);
          ]));
  table
