module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module G = Ss_graph
module Transformer = Ss_core.Registry.Trans
module Stabilization = Ss_verify.Stabilization
module Sync_runner = Ss_sync.Sync_runner
module Lv = Ss_algos.Local_views

let int_views =
  Lv.algo ~equal:Int.equal
    ~input_bits:(fun v -> 1 + Util.bit_width (abs v))
    ~random_input:(fun rng -> Rng.int rng 64)
    ~pp:Format.pp_print_int

let rows ?(seeds = [ 1 ]) rng =
  let table =
    Table.create
      [
        "graph"; "n"; "radius"; "T"; "S(view-bits)"; "B*S"; "space-bits";
        "moves"; "rounds"; "legit";
      ]
  in
  let workloads =
    [ ("ring", G.Builders.cycle 10); ("grid", G.Builders.grid ~rows:3 ~cols:4) ]
  in
  (* (workload × radius) grid over the shared pool; tasks draw no
     parent randomness at all. *)
  List.iter (Table.add_row table)
    (Ss_par.Par.map
       (fun ((name, g), radius) ->
         let base p = (p * 13) mod 31 in
         let inputs p = { Lv.self_input = base p; radius } in
         let sc =
           {
             Stabilization.params = Transformer.params int_views;
             graph = g;
             inputs;
           }
         in
         let hist = Stabilization.history sc in
         let t = hist.Sync_runner.t in
         let s = Sync_runner.max_state_bits int_views hist in
         let agg = Measure.worst_case ~seeds ~max_height:(t + 2) sc in
         [
           name;
           string_of_int (G.Graph.n g);
           string_of_int radius;
           string_of_int t;
           string_of_int s;
           string_of_int ((t + 2) * s);
           string_of_int agg.Measure.max_space_bits;
           string_of_int agg.Measure.max_moves;
           string_of_int agg.Measure.max_rounds;
           (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (List.concat_map
          (fun w -> List.map (fun radius -> (w, radius)) [ 1; 2; 3; 4 ])
          workloads));
  ignore rng;
  table
