module Stabilization = Ss_verify.Stabilization
module Rng = Ss_prelude.Rng

type agg = {
  runs : int;
  max_moves : int;
  max_rounds : int;
  max_recovery_moves : int;
  max_recovery_rounds : int;
  max_space_bits : int;
  all_legitimate : bool;
  all_spec : bool;
}

let empty =
  {
    runs = 0;
    max_moves = 0;
    max_rounds = 0;
    max_recovery_moves = 0;
    max_recovery_rounds = 0;
    max_space_bits = 0;
    all_legitimate = true;
    all_spec = true;
  }

let absorb ~spec agg (r : _ Stabilization.report) =
  {
    runs = agg.runs + 1;
    max_moves = max agg.max_moves r.Stabilization.moves;
    max_rounds = max agg.max_rounds r.Stabilization.rounds;
    max_recovery_moves = max agg.max_recovery_moves r.Stabilization.recovery_moves;
    max_recovery_rounds =
      max agg.max_recovery_rounds r.Stabilization.recovery_rounds;
    max_space_bits = max agg.max_space_bits r.Stabilization.space_bits;
    all_legitimate = agg.all_legitimate && r.Stabilization.legitimate;
    all_spec = agg.all_spec && spec r.Stabilization.outputs;
  }

let worst_case ?track_recovery ?max_steps ?(corruption_p = 1.0)
    ?(spec = fun _ -> true) ~seeds ~max_height sc =
  (* Fan the (seed × daemon) replicas out over the shared domain pool.
     All parent-stream consumption — portfolio construction and the
     per-replica [Rng.split] — happens here, sequentially, in the
     historical order; each replica then only draws from its own
     pre-split generator and constructs its own start configuration,
     daemon and (inside {!Stabilization.run}) algorithm.  The fold
     over reports is in replica order and every [absorb] component is
     commutative-associative with [empty] as identity, so the
     aggregate is byte-identical to the sequential one for any job
     count. *)
  let replicas =
    List.concat_map
      (fun seed ->
        let rng = Rng.create seed in
        Rng.split_per rng (Stabilization.daemon_portfolio rng))
      seeds
  in
  let reports =
    Ss_par.Par.map
      (fun ((_name, daemon), rng) ->
        let start =
          Stabilization.corrupted_start rng ~p:corruption_p ~max_height sc
        in
        Stabilization.run ?track_recovery ?max_steps sc ~daemon ~start)
      replicas
  in
  List.fold_left (absorb ~spec) empty reports

let clean_run ?max_steps sc ~daemon =
  Stabilization.run ?max_steps sc ~daemon ~start:(Stabilization.clean_start sc)
