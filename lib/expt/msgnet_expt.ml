module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Par = Ss_par.Par
module G = Ss_graph
module Transformer = Ss_core.Registry.Trans
module Checker = Ss_core.Checker
module M = Ss_msgnet.Msgnet
module Leader = Ss_algos.Leader_election
module Sync_runner = Ss_sync.Sync_runner

let rows ?(seeds = [ 1; 2 ]) rng =
  (* total-bits = update-bits + proof-bits + request-bits + repair-bits
     (the shared Ss_energy.Energy accounting: proofs cost hash + nonce,
     requests cost Energy.request_message_bits each).  "stale" counts
     proofs from superseded waves dropped without comparison. *)
  (* wire-peak-bits is the high-water mark of in-flight bits across all
     channels; mirror-bytes the resident bytes behind the 2m mirrors —
     the two wire-memory figures a deployment provisions against. *)
  let table =
    Table.create
      [
        "graph"; "n"; "encoding"; "execs"; "deliveries"; "update-bits";
        "proof-bits"; "request-bits"; "repair-bits"; "total-bits"; "stale";
        "wire-peak-bits"; "mirror-bytes"; "ok";
      ]
  in
  let workloads =
    [
      ("ring", G.Builders.cycle 8);
      ("ring", G.Builders.cycle 16);
      ("ring", G.Builders.cycle 32);
      ("random", G.Builders.random_connected (Rng.split rng) ~n:16 ~extra_edges:8);
      ("random", G.Builders.random_connected (Rng.split rng) ~n:32 ~extra_edges:16);
    ]
  in
  (* Per-workload setup consumes the parent stream sequentially (one
     split per workload, as ever); the (workload × encoding) rows then
     fan out over the shared pool, every task drawing only from
     [Rng.create (seed * 101)] and owning its protocol state. *)
  let contexts =
    List.map
      (fun ((name, g), rng) ->
        let inputs = Leader.random_ids rng g in
        let params = Transformer.params Leader.algo in
        let hist = Sync_runner.run Leader.algo g ~inputs in
        (name, g, inputs, params, hist))
      (Rng.split_per rng workloads)
  in
  let tasks =
    List.concat_map
      (fun ctx ->
        List.map
          (fun enc -> (ctx, enc))
          [ ("full", M.Full_state); ("delta", M.Delta) ])
      contexts
  in
  List.iter (Table.add table)
    (Par.map
       (fun ((name, g, inputs, params, hist), (enc_name, encoding)) ->
         (* Aggregate over seeds: worst bits, all-ok conjunction. *)
         let execs = ref 0
         and deliveries = ref 0
         and update_bits = ref 0
         and proof_bits = ref 0
         and request_bits = ref 0
         and repair_bits = ref 0
         and total = ref 0
         and stale = ref 0
         and wire_peak = ref 0
         and mirror_bytes = ref 0
         and ok = ref true in
         List.iter
           (fun seed ->
             let seed_rng = Rng.create (seed * 101) in
             let start =
               Transformer.corrupt (Rng.split seed_rng)
                 ~max_height:(hist.Sync_runner.t + 4)
                 params
                 (Transformer.clean_config params g ~inputs)
             in
             (* Leader's codec switches the proof pre-images to the
                packed encoder; the infinite bound keeps the mirrors
                boxed, so the traffic columns are unchanged. *)
             let final, stats =
               M.run ~codec:Leader.codec ~encoding ~rng:seed_rng params start
             in
             execs := max !execs stats.M.rule_executions;
             deliveries := max !deliveries stats.M.deliveries;
             update_bits := max !update_bits stats.M.update_bits;
             proof_bits := max !proof_bits stats.M.proof_bits;
             request_bits :=
               max !request_bits
                 (stats.M.request_messages
                 * Ss_energy.Energy.request_message_bits);
             repair_bits := max !repair_bits stats.M.full_copy_bits;
             total := max !total (M.total_bits stats);
             stale := max !stale stats.M.stale_proof_messages;
             wire_peak := max !wire_peak stats.M.peak_queued_bits;
             mirror_bytes := max !mirror_bytes stats.M.mirror_bytes;
             ok :=
               !ok && stats.M.quiescent
               && Checker.legitimate_terminal params hist final = Ok ())
           seeds;
         (* Typed cells: the printed table and the JSON rows emitted
            by Run_report.of_table read the same record. *)
         [
           Table.S name;
           Table.I (G.Graph.n g);
           Table.S enc_name;
           Table.I !execs;
           Table.I !deliveries;
           Table.I !update_bits;
           Table.I !proof_bits;
           Table.I !request_bits;
           Table.I !repair_bits;
           Table.I !total;
           Table.I !stale;
           Table.I !wire_peak;
           Table.I !mirror_bytes;
           Table.S (if !ok then "yes" else "NO");
         ])
       tasks);
  table
