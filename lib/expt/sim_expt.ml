module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Par = Ss_par.Par
module G = Ss_graph
module Sim = Ss_sim
module Config = Ss_sim.Config
module P = Ss_core.Predicates
module St = Ss_core.Trans_state
module Transformer = Ss_core.Registry.Trans
module Checker = Ss_core.Checker
module M = Ss_msgnet.Msgnet
module Sync_runner = Ss_sync.Sync_runner
module Scenario = Ss_chaos.Scenario
module Clock = Ss_chaos.Clock
module Budget = Ss_report.Budget

exception Invariant_violation of string

(* One algorithm instantiated on one graph, with its synchronous
   ground-truth history.  The existential keeps the per-algorithm state
   and input types out of the grid plumbing. *)
type workload =
  | W : {
      algo_name : string;
      graph_name : string;
      graph : G.Graph.t;
      params : ('s, 'i) Transformer.params;
      inputs : int -> 'i;
      hist : ('s, 'i) Sync_runner.history;
      codec : 's Ss_core.Cellpack.codec option;
          (* When the algorithm exports one, the msgnet leg runs with
             codec proof pre-images and (the grid bound being finite)
             packed mirrors — the production configuration. *)
    }
      -> workload

(* Workloads come from the {!Catalog}: any registered algorithm can
   enter the grid under the uniform policy (greedy mode, bound = the
   measured synchronous time), and the default roster is the catalog's
   [in_sim_grid] subset. *)
let workload rng ~algo ~graph_name graph =
  let a = Catalog.find_algo algo in
  (match Catalog.validate_topology a graph with
  | Ok () -> ()
  | Error e -> failwith e);
  match a.Catalog.instantiate rng graph with
  | Catalog.Inst { sync; inputs; spec = _; codec } ->
      let hist = Sync_runner.run sync graph ~inputs in
      let b = max 1 hist.Sync_runner.t in
      let params = Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) sync in
      W { algo_name = algo; graph_name; graph; params; inputs; hist; codec }

let algo_names = Catalog.sim_algo_names ()

(* Virtual-time allowance per run.  The clock ticks 10 µs per event, so
   this corresponds to 10^7 events — far beyond any grid cell; it is
   here to exercise the injectable-deadline seam on every run, not to
   trip. *)
let virtual_deadline_s = 100.

(* "wirepeak" is the msgnet leg's peak in-flight wire bits (engine rows
   read 0: the atomic-state engine has no wire). *)
let headers =
  [
    "scenario"; "algo"; "graph"; "n"; "loop"; "moves"; "events"; "drops";
    "dups"; "reorders"; "corrupt"; "stale"; "wirepeak"; "ok";
  ]

(* ------------------------------------------------------------------ *)
(* One grid cell                                                        *)
(* ------------------------------------------------------------------ *)

(* The engine leg: dirty-set engine with self-check (the incremental
   enabled-set shadow state is re-derived by full scan after every
   step), scheduled mid-run corruption at the scenario's step indices,
   and a per-step observer asserting the height invariant on the
   virtual clock's event stream. *)
let engine_leg (type s i) ~scenario ~seed ~(params : (s, i) Transformer.params)
    ~inputs:_ ~(hist : (s, i) Sync_runner.history) ~max_height ~daemon_rng
    start =
  let clk = Clock.create () in
  let height_cap = max max_height hist.Sync_runner.t + 4 in
  let observer ~step:_ ~rounds:_ ~moved:_ config =
    Clock.tick clk;
    Array.iter
      (fun st ->
        let h = St.height st in
        if h < 0 || h > height_cap then
          raise
            (Invariant_violation
               (Printf.sprintf "engine: height %d outside [0, %d]" h height_cap)))
      config.Config.states
  in
  let plan = Scenario.engine_plan scenario ~seed in
  let scheduled = Ss_chaos.Fault_plan.pending_corruptions plan in
  let chaos =
    {
      Sim.Engine.plan;
      mutate =
        (fun crng v config ->
          Transformer.corrupt_state crng ~max_height params
            (Config.input config v)
            config.Config.states.(v));
    }
  in
  let stats =
    Transformer.run ~self_check:true
      ~budget:(Budget.v ~deadline_s:virtual_deadline_s ())
      ~now:(Clock.now_fn clk) ~chaos ~observer params daemon_rng start
  in
  let fired = scheduled - Ss_chaos.Fault_plan.pending_corruptions plan in
  let ok =
    stats.Sim.Engine.terminated
    && Checker.legitimate_terminal params hist stats.Sim.Engine.final = Ok ()
  in
  (stats, fired, ok)

(* The msgnet leg: chaos plan at the delivery picker, scheduled mid-run
   corruption, an event sink asserting stream-level conservation (every
   delivery or drop is backed by a send or a duplicate; wave nonces are
   monotone), and the fault-free naive twin as ground truth for the
   final outputs. *)
let msgnet_leg (type s i) ~scenario ~seed ~(params : (s, i) Transformer.params)
    ~(inputs : int -> i) ~(hist : (s, i) Sync_runner.history) ~max_height
    ~(codec : s Ss_core.Cellpack.codec option) ~rng ~naive_rng start =
  let clk = Clock.create () in
  let sent = ref 0
  and delivered = ref 0
  and dropped = ref 0
  and dup = ref 0
  and last_nonce = ref 0 in
  let sink ev =
    Clock.tick clk;
    (match ev with
    | M.Sent _ -> incr sent
    | M.Delivered _ -> incr delivered
    | M.Dropped _ -> incr dropped
    | M.Duplicated _ -> incr dup
    | M.Reordered _ | M.Corrupted _ -> ()
    | M.Wave { nonce } ->
        if nonce <> !last_nonce + 1 then
          raise
            (Invariant_violation
               (Printf.sprintf "msgnet: wave nonce %d after %d" nonce
                  !last_nonce));
        last_nonce := nonce);
    if !delivered + !dropped > !sent + !dup then
      raise
        (Invariant_violation
           (Printf.sprintf
              "msgnet: %d delivered + %d dropped exceeds %d sent + %d \
               duplicated"
              !delivered !dropped !sent !dup))
  in
  let chaos =
    {
      M.plan = Scenario.msgnet_plan scenario ~seed;
      mutate =
        (fun crng v st ->
          Transformer.corrupt_state crng ~max_height params (inputs v) st);
    }
  in
  let final, stats =
    M.run ?codec
      ~budget:(Budget.v ~deadline_s:virtual_deadline_s ())
      ~now:(Clock.now_fn clk) ~chaos ~sinks:[ sink ] ~rng params start
  in
  (* Counter/event agreement: the stats record and the sink stream are
     two views of the same execution. *)
  if
    stats.M.dropped_messages <> !dropped
    || stats.M.duplicated_messages <> !dup
  then
    raise
      (Invariant_violation
         "msgnet: fault counters disagree with the event stream");
  let naive_final, naive_stats = M.run_naive ~rng:naive_rng params start in
  let ok =
    stats.M.quiescent
    && Checker.legitimate_terminal params hist final = Ok ()
    && naive_stats.M.quiescent
    && Checker.legitimate_terminal params hist naive_final = Ok ()
    && Transformer.outputs final = Transformer.outputs naive_final
  in
  (stats, ok)

let cell_rows ~seeds (scenario, W w) =
  let n = G.Graph.n w.graph in
  let max_height =
    min (P.bound_to_int w.params.Transformer.bound) (w.hist.Sync_runner.t + 4)
  in
  (* Worst-over-seeds aggregation, msgnet_expt-style. *)
  let e_moves = ref 0
  and e_steps = ref 0
  and e_corrupt = ref 0
  and e_ok = ref true in
  let m_execs = ref 0
  and m_events = ref 0
  and m_drops = ref 0
  and m_dups = ref 0
  and m_reorders = ref 0
  and m_corrupt = ref 0
  and m_stale = ref 0
  and m_wirepeak = ref 0
  and m_ok = ref true in
  List.iter
    (fun seed ->
      (* Every draw in this cell comes from streams derived from the
         cell seed alone — nothing is shared across pool tasks, so the
         grid is byte-identical for every job count. *)
      let seed_rng = Rng.create ((seed * 7919) + 97) in
      let start =
        Transformer.corrupt (Rng.split seed_rng) ~max_height w.params
          (Transformer.clean_config w.params w.graph ~inputs:w.inputs)
      in
      let daemon =
        Sim.Daemon.distributed_random (Rng.split seed_rng) ~p:0.5
      in
      let stats, fired, ok =
        engine_leg ~scenario ~seed ~params:w.params ~inputs:w.inputs
          ~hist:w.hist ~max_height ~daemon_rng:daemon start
      in
      e_moves := max !e_moves stats.Sim.Engine.moves;
      e_steps := max !e_steps stats.Sim.Engine.steps;
      e_corrupt := max !e_corrupt fired;
      e_ok := !e_ok && ok;
      let mstats, mok =
        msgnet_leg ~scenario ~seed ~params:w.params ~inputs:w.inputs
          ~hist:w.hist ~max_height ~codec:w.codec ~rng:(Rng.split seed_rng)
          ~naive_rng:(Rng.split seed_rng) start
      in
      m_execs := max !m_execs mstats.M.rule_executions;
      m_events := max !m_events mstats.M.deliveries;
      m_drops := max !m_drops mstats.M.dropped_messages;
      m_dups := max !m_dups mstats.M.duplicated_messages;
      m_reorders := max !m_reorders mstats.M.reordered_messages;
      m_corrupt := max !m_corrupt mstats.M.corruption_events;
      m_stale := max !m_stale mstats.M.stale_proof_messages;
      m_wirepeak := max !m_wirepeak mstats.M.peak_queued_bits;
      m_ok := !m_ok && mok)
    seeds;
  let row loop moves events drops dups reorders corrupt stale wirepeak ok =
    [
      Table.S scenario.Scenario.name;
      Table.S w.algo_name;
      Table.S w.graph_name;
      Table.I n;
      Table.S loop;
      Table.I moves;
      Table.I events;
      Table.I drops;
      Table.I dups;
      Table.I reorders;
      Table.I corrupt;
      Table.I stale;
      Table.I wirepeak;
      Table.S (if ok then "yes" else "NO");
    ]
  in
  [
    row "engine" !e_moves !e_steps 0 0 0 !e_corrupt 0 0 !e_ok;
    row "msgnet" !m_execs !m_events !m_drops !m_dups !m_reorders !m_corrupt
      !m_stale !m_wirepeak !m_ok;
  ]

(* ------------------------------------------------------------------ *)
(* The grid                                                             *)
(* ------------------------------------------------------------------ *)

let workloads_for ?(algos = algo_names) rng graphs =
  List.concat_map
    (fun ((name, g), rng) ->
      List.filter_map
        (fun algo ->
          (* Ring-only members of a larger sweep are skipped on unfit
             topologies instead of failing the whole grid; an explicit
             single-algorithm request still fails loudly inside
             [workload]. *)
          if
            (Catalog.find_algo algo).Catalog.ring_only
            && List.length algos > 1
            && not (Catalog.is_ring g)
          then None
          else Some (workload (Rng.split rng) ~algo ~graph_name:name g))
        algos)
    (Rng.split_per rng graphs)

let default_workloads ?algos rng =
  workloads_for ?algos (Rng.split rng)
    [
      ("ring:16", G.Builders.cycle 16);
      ( "random:24",
        G.Builders.random_connected (Rng.split rng) ~n:24 ~extra_edges:12 );
    ]

let rows ?(scenarios = Scenario.all) ?(seeds = [ 1; 2 ]) workloads =
  let table = Table.create headers in
  let cells =
    List.concat_map (fun s -> List.map (fun w -> (s, w)) workloads) scenarios
  in
  let all_rows = List.concat (Par.map (cell_rows ~seeds) cells) in
  List.iter (Table.add table) all_rows;
  let ok =
    List.for_all
      (fun cells ->
        match List.rev cells with Table.S "NO" :: _ -> false | _ -> true)
      all_rows
  in
  (table, ok)
