(** Chaos-mode simulation grids: scenario × algorithm × graph.

    Every cell runs both execution loops through a named
    {!Ss_chaos.Scenario} — the dirty-set engine with scheduled mid-run
    corruption and per-step shadow-state checks ([self_check] plus a
    height-invariant observer), and the message network with ppm-rated
    drop/duplicate/reorder injection, a stream-conservation event sink,
    and the fault-free {!Ss_msgnet.Msgnet.run_naive} twin as ground
    truth for the final outputs.  Both legs run on deterministic
    virtual clocks ({!Ss_chaos.Clock}), so deadline budgets and every
    reported figure replay byte-identically — for any [-j], per the
    DESIGN.md §11 campaign-determinism contract.

    An "ok" cell certifies that the run reached verified quiescence
    {e through} the injected faults and that the terminal configuration
    is legitimate against the synchronous ground truth — the paper's
    §3 claim exercised in an arbitrary asynchronous environment rather
    than only from a bad start. *)

exception Invariant_violation of string
(** Raised (from inside the pool) the moment any per-event invariant
    breaks: engine heights out of range, non-monotone wave nonces,
    deliveries unbacked by sends, or fault counters disagreeing with
    the event stream.  Escapes {!rows} so harness bugs fail loudly
    instead of averaging into a table cell. *)

type workload
(** One algorithm instantiated on one graph, with its synchronous
    ground-truth history precomputed. *)

val workload :
  Ss_prelude.Rng.t ->
  algo:string ->
  graph_name:string ->
  Ss_graph.Graph.t ->
  workload
(** [workload rng ~algo ~graph_name g] builds a grid workload for any
    {!Catalog} algorithm, under the uniform policy: greedy mode, bound
    = the measured synchronous time.  The rng seeds algorithm inputs
    (ids); the synchronous history is computed here, once, outside the
    pool.
    @raise Failure on an unknown algorithm or a ring-only algorithm on
    a non-ring topology. *)

val algo_names : string list
(** The default grid roster: the catalog's [in_sim_grid] subset
    (currently leader, bfs, cv). *)

val workloads_for :
  ?algos:string list ->
  Ss_prelude.Rng.t ->
  (string * Ss_graph.Graph.t) list ->
  workload list
(** [workloads_for rng graphs] crosses the named graphs with [algos]
    (default {!algo_names}).  When [algos] has several members,
    ring-only algorithms are silently skipped on unfit topologies; a
    single-algorithm list keeps {!workload}'s strict failure. *)

val default_workloads : ?algos:string list -> Ss_prelude.Rng.t -> workload list
(** The built-in grid: ring and random-connected topologies × every
    algorithm that fits them. *)

val rows :
  ?scenarios:Ss_chaos.Scenario.t list ->
  ?seeds:int list ->
  workload list ->
  Ss_prelude.Table.t * bool
(** [rows workloads] runs the scenario × workload grid on the shared
    {!Ss_par.Par} pool (two rows per cell: ["engine"] and ["msgnet"])
    and returns the typed table plus the conjunction of every cell's
    "ok" — [false] means some run failed to re-stabilize to a
    legitimate quiescent configuration.  Defaults:
    [scenarios = Scenario.all], [seeds = \[1; 2\]]. *)
