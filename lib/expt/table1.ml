module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Par = Ss_par.Par
module P = Ss_core.Predicates
module Transformer = Ss_core.Registry.Trans
module Stabilization = Ss_verify.Stabilization
module Sync_runner = Ss_sync.Sync_runner
module Leader = Ss_algos.Leader_election
module Toy = Ss_algos.Toy

let default_seeds = [ 1; 2 ]

let leader_scenario rng ?mode ?bound (w : Workloads.t) =
  let inputs = Leader.random_ids rng w.Workloads.graph in
  {
    Stabilization.params = Transformer.params ?mode ?bound Leader.algo;
    graph = w.Workloads.graph;
    inputs;
  }

let sync_time sc = (Stabilization.history sc).Sync_runner.t

(* Rows are built from typed cells (Table.S / Table.I) so the text
   renderer and the JSON serializer (Run_report.of_table) read the very
   same record — the machine-readable output cannot drift from the
   printed table.

   Each table fans its rows out over the shared domain pool
   (DESIGN.md §11): every parent-RNG split happens sequentially while
   the row thunks are BUILT, each thunk draws only from its own
   pre-split generator, and the computed cell rows are appended in
   construction order — so the rendering is byte-identical for any
   [-j]. *)

let run_rows table row_thunks =
  List.iter (Table.add table) (Par.map (fun row -> row ()) row_thunks)

let lazy_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [
        "family"; "n"; "D"; "T"; "moves"; "n^3+nT"; "rounds"; "D+T"; "legit";
      ]
  in
  run_rows table
    (List.map
       (fun ((w : Workloads.t), rng) () ->
         let sc = leader_scenario rng w in
         let t = sync_time sc in
         let agg = Measure.worst_case ~seeds ~max_height:(t + 4) sc in
         [
           Table.S w.Workloads.family;
           Table.I w.Workloads.n;
           Table.I w.Workloads.diameter;
           Table.I t;
           Table.I agg.Measure.max_moves;
           Table.I
             ((w.Workloads.n * w.Workloads.n * w.Workloads.n)
             + (w.Workloads.n * t));
           Table.I agg.Measure.max_rounds;
           Table.I (w.Workloads.diameter + t);
           Table.S (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (Rng.split_per rng (Workloads.standard rng)));
  table

let greedy_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [ "workload"; "n"; "T"; "B"; "moves"; "n^3+nB"; "rounds"; "legit" ]
  in
  (* Clock with exact T, growing B: rounds must scale with B. *)
  let clock_row n k b () =
    let g = Ss_graph.Builders.cycle n in
    let sc =
      {
        Stabilization.params =
          Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Toy.clock;
        graph = g;
        inputs = (fun _ -> k);
      }
    in
    let agg = Measure.worst_case ~seeds ~max_height:b sc in
    [
      Table.S (Printf.sprintf "clock(T=%d)" k);
      Table.I n;
      Table.I k;
      Table.I b;
      Table.I agg.Measure.max_moves;
      Table.I ((n * n * n) + (n * b));
      Table.I agg.Measure.max_rounds;
      Table.S (if agg.Measure.all_legitimate then "yes" else "NO");
    ]
  in
  (* Greedy leader election with B a small multiple of T. *)
  let leader_row ((w : Workloads.t), rng') () =
    let probe = leader_scenario (Rng.copy rng') w in
    let t = max 1 (sync_time probe) in
    let b = 2 * t in
    let sc = leader_scenario rng' ~mode:P.Greedy ~bound:(P.Finite b) w in
    let agg = Measure.worst_case ~seeds ~max_height:b sc in
    [
      Table.S ("leader/" ^ w.Workloads.family);
      Table.I w.Workloads.n;
      Table.I t;
      Table.I b;
      Table.I agg.Measure.max_moves;
      Table.I
        ((w.Workloads.n * w.Workloads.n * w.Workloads.n)
        + (w.Workloads.n * b));
      Table.I agg.Measure.max_rounds;
      Table.S (if agg.Measure.all_legitimate then "yes" else "NO");
    ]
  in
  run_rows table
    (List.map (fun b -> clock_row 16 8 b) [ 8; 16; 32; 64 ]
    @ List.map leader_row
        (Rng.split_per rng (Workloads.rings [ 8; 16; 32 ])));
  table

let recovery_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create
      [
        "workload"; "n"; "D"; "B"; "recov-rounds"; "min(D,B)"; "recov-moves";
        "min(n^3,n^2B)";
      ]
  in
  (* Lazy leader election, B = +inf: recovery within O(D). *)
  let leader_row ((w : Workloads.t), rng') () =
    let sc = leader_scenario rng' w in
    let t = sync_time sc in
    let agg = Measure.worst_case ~seeds ~max_height:(t + 4) sc in
    [
      Table.S ("leader/" ^ w.Workloads.family);
      Table.I w.Workloads.n;
      Table.I w.Workloads.diameter;
      Table.S "inf";
      Table.I agg.Measure.max_recovery_rounds;
      Table.I w.Workloads.diameter;
      Table.I agg.Measure.max_recovery_moves;
      Table.I (w.Workloads.n * w.Workloads.n * w.Workloads.n);
    ]
  in
  (* The B < D regime: a short clock on a long path — recovery is
     bounded by B, not by the (large) diameter. *)
  let clock_row n () =
    let b = 4 in
    let g = Ss_graph.Builders.path n in
    let d = n - 1 in
    let sc =
      {
        Stabilization.params =
          Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Toy.clock;
        graph = g;
        inputs = (fun _ -> b);
      }
    in
    let agg = Measure.worst_case ~seeds ~max_height:b sc in
    [
      Table.S (Printf.sprintf "clock(B=%d)/path" b);
      Table.I n;
      Table.I d;
      Table.I b;
      Table.I agg.Measure.max_recovery_rounds;
      Table.I (min d b);
      Table.I agg.Measure.max_recovery_moves;
      Table.I (min (n * n * n) (n * n * b));
    ]
  in
  run_rows table
    (List.map leader_row (Rng.split_per rng (Workloads.diameter_sweep ()))
    @ List.map clock_row [ 16; 32; 64 ]);
  table

let space_rows ?(seeds = default_seeds) rng =
  let table =
    Table.create [ "workload"; "n"; "B"; "S"; "B*S"; "space-bits"; "legit" ]
  in
  run_rows table
    (List.map
       (fun ((w : Workloads.t), rng') () ->
         let probe = leader_scenario (Rng.copy rng') w in
         let t = max 1 (sync_time probe) in
         let b = t + 2 in
         let sc = leader_scenario rng' ~mode:P.Greedy ~bound:(P.Finite b) w in
         let hist = Stabilization.history sc in
         let s =
           Sync_runner.max_state_bits sc.Stabilization.params.Transformer.sync
             hist
         in
         let agg = Measure.worst_case ~seeds ~max_height:b sc in
         [
           Table.S ("leader/" ^ w.Workloads.family);
           Table.I w.Workloads.n;
           Table.I b;
           Table.I s;
           Table.I (b * s);
           Table.I agg.Measure.max_space_bits;
           Table.S (if agg.Measure.all_legitimate then "yes" else "NO");
         ])
       (Rng.split_per rng
          (Workloads.standard rng |> List.filteri (fun i _ -> i mod 3 = 0))));
  table
