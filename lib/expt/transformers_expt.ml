module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module Par = Ss_par.Par
module G = Ss_graph
module Sim = Ss_sim
module P = Ss_core.Predicates
module Registry = Ss_core.Registry
module Transformer = Ss_core.Registry.Trans
module Sync_runner = Ss_sync.Sync_runner

let headers =
  [
    "transformer"; "algo"; "graph"; "n"; "B"; "moves"; "rounds"; "steps";
    "energy-bits"; "space-bits"; "ok";
  ]

let default_algos = [ "leader"; "bfs"; "cv"; "mis"; "matching"; "coloring" ]

let default_graphs rng =
  [
    ("ring:24", G.Builders.cycle 24);
    ("torus:4x6", G.Builders.torus ~rows:4 ~cols:6);
    ("random4:16", G.Builders.random4 (Rng.split rng) 16);
  ]

(* One grid cell: a transformer on an instantiated workload.  The
   workload (inputs, ground-truth history, greedy/Finite-B params) is
   built once per (algo, graph) and shared by every transformer, so
   the comparison is apples-to-apples.  [Unfit] marks a ring-only
   algorithm on a non-ring graph — rendered as an "n/a" row rather
   than silently dropped, so the grid shape is the full cross
   product. *)
type cell =
  | Run : {
      entry : Registry.entry;
      algo_name : string;
      graph_name : string;
      graph : G.Graph.t;
      params : ('s, 'i) P.params;
      inputs : int -> 'i;
      spec : 's array -> bool;
      hist : ('s, 'i) Sync_runner.history;
    }
      -> cell
  | Unfit of { t_name : string; algo_name : string; graph_name : string }

let cell_row ~seeds = function
  | Unfit { t_name; algo_name; graph_name } ->
      ( [
          Table.S t_name;
          Table.S algo_name;
          Table.S graph_name;
          Table.S "-";
          Table.S "-";
          Table.S "-";
          Table.S "-";
          Table.S "-";
          Table.S "-";
          Table.S "-";
          Table.S "n/a";
        ],
        true )
  | Run { entry; algo_name; graph_name; graph; params; inputs; spec; hist } ->
      let b = P.bound_to_int params.P.bound in
      let moves = ref 0
      and rounds = ref 0
      and steps = ref 0
      and energy = ref 0
      and space = ref 0
      and ok = ref true in
      List.iter
        (fun seed ->
          (* Every draw comes from streams derived from the seed ints
             alone — byte-identical grids for any -j (DESIGN.md §11). *)
          let seed_rng = Rng.create ((seed * 7919) + 97) in
          let daemon =
            Sim.Daemon.distributed_random (Rng.split seed_rng) ~p:0.5
          in
          let o =
            Registry.measure entry ~hist ~rng:(Rng.split seed_rng) ~daemon
              ~max_height:b ~spec params graph ~inputs
          in
          (* Worst-over-seeds aggregation, sim_expt-style. *)
          moves := max !moves o.Registry.moves;
          rounds := max !rounds o.Registry.rounds;
          steps := max !steps o.Registry.steps;
          energy := max !energy o.Registry.energy_bits;
          space := max !space o.Registry.space_bits;
          ok := !ok && o.Registry.terminated && o.Registry.legitimate
                && o.Registry.spec_ok)
        seeds;
      ( [
          Table.S (Registry.name entry);
          Table.S algo_name;
          Table.S graph_name;
          Table.I (G.Graph.n graph);
          Table.I b;
          Table.I !moves;
          Table.I !rounds;
          Table.I !steps;
          Table.I !energy;
          Table.I !space;
          Table.S (if !ok then "yes" else "NO");
        ],
        !ok )

let rows ?transformers ?(algos = default_algos) ?graphs ?(seeds = [ 1; 2 ])
    rng =
  let transformers =
    match transformers with Some ts -> ts | None -> Catalog.transformers ()
  in
  let graphs =
    match graphs with Some gs -> gs | None -> default_graphs (Rng.split rng)
  in
  (* Workloads are instantiated sequentially, outside the pool, so the
     id/weight draws are independent of -j. *)
  let workloads =
    List.concat_map
      (fun algo ->
        let a = Catalog.find_algo algo in
        List.map
          (fun (graph_name, graph) ->
            match Catalog.validate_topology a graph with
            | Error _ -> `Unfit (algo, graph_name)
            | Ok () -> (
                match a.Catalog.instantiate (Rng.split rng) graph with
                | Catalog.Inst { sync; inputs; spec; codec = _ } ->
                    let hist = Sync_runner.run sync graph ~inputs in
                    let b = max 1 hist.Sync_runner.t in
                    let params =
                      Transformer.params ~mode:P.Greedy ~bound:(P.Finite b)
                        sync
                    in
                    `Fit
                      (fun entry ->
                        Run
                          {
                            entry;
                            algo_name = algo;
                            graph_name;
                            graph;
                            params;
                            inputs;
                            spec;
                            hist;
                          })))
          graphs)
      algos
  in
  let cells =
    List.concat_map
      (fun entry ->
        List.map
          (function
            | `Fit make -> make entry
            | `Unfit (algo_name, graph_name) ->
                Unfit { t_name = Registry.name entry; algo_name; graph_name })
          workloads)
      transformers
  in
  let table = Table.create headers in
  let results = Par.map (cell_row ~seeds) cells in
  List.iter (fun (row, _) -> Table.add table row) results;
  (table, List.for_all snd results)
