(** The three-way transformer comparison: every registered transformer
    on every LCL workload on every graph family, measured.

    Each (algorithm, graph) workload is instantiated {e once} — same
    ids, same synchronous ground-truth history, same greedy/[Finite B]
    parameters (with [B] the measured synchronous time) — and handed
    to every transformer through {!Ss_core.Registry.measure}: clean
    configuration, every node corrupted, the dirty-set engine under a
    distributed random daemon, per-move energy accounting through the
    transformer's own [move_bits] hook, and terminal legitimacy plus
    the workload's output specification.

    The table is worst-over-seeds per cell; the companion boolean is
    the conjunction of every cell's "ok", so the CI smoke can gate on
    any illegitimate terminal configuration.  Ring-only workloads on
    non-ring graphs render as "n/a" rows, keeping the full cross
    product visible.  Byte-identical output for any [-j] (DESIGN.md
    §11). *)

val headers : string list

val default_algos : string list
(** [leader; bfs; cv; mis; matching; coloring]. *)

val default_graphs :
  Ss_prelude.Rng.t -> (string * Ss_graph.Graph.t) list
(** [ring:24], [torus:4x6], [random4:16]. *)

val rows :
  ?transformers:Ss_core.Registry.entry list ->
  ?algos:string list ->
  ?graphs:(string * Ss_graph.Graph.t) list ->
  ?seeds:int list ->
  Ss_prelude.Rng.t ->
  Ss_prelude.Table.t * bool
(** [rows rng] runs the grid on the shared {!Ss_par.Par} pool.
    Defaults: all registered transformers, {!default_algos},
    {!default_graphs}, [seeds = \[1; 2\]]. *)
