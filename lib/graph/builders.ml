module Rng = Ss_prelude.Rng

let single () = Graph.of_edges ~n:1 []

let path n =
  if n < 1 then invalid_arg "Builders.path";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle";
  (* Direct CSR, no intermediate adjacency: port 0 is clockwise and
     port 1 is counterclockwise at every node (correct by
     construction, so validation is skipped). *)
  let offsets = Array.init (n + 1) (fun i -> 2 * i) in
  let targets = Array.make (2 * n) 0 in
  for i = 0 to n - 1 do
    targets.(2 * i) <- (i + 1) mod n;
    targets.((2 * i) + 1) <- (i + n - 1) mod n
  done;
  Graph.of_csr ~validate:false ~offsets ~targets ()

let complete n =
  if n < 1 then invalid_arg "Builders.complete";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let star n =
  if n < 2 then invalid_arg "Builders.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Builders.torus";
  (* Streamed: the historical builder consed every edge onto a list
     and handed it to [of_edges], whose processing order was therefore
     the {e reverse} of generation order.  The stream replays exactly
     that order (generation index [2(r·cols+c)] for the right edge,
     [+1] for the down edge, streamed last-to-first), so port
     assignment — and every pinned table derived from it — is
     bit-identical, without ever materializing the 2·n edge list.
     Correct by construction for rows, cols >= 3, so validation is
     skipped and a 10^6-node torus builds in linear time. *)
  let n = rows * cols in
  let count = 2 * n in
  let id r c = (r * cols) + c in
  let edge i =
    let k = count - 1 - i in
    let v = k / 2 in
    let r = v / cols and c = v mod cols in
    if k land 1 = 0 then (v, id r ((c + 1) mod cols))
    else (v, id ((r + 1) mod rows) c)
  in
  Graph.of_edge_stream ~validate:false ~n ~count edge

let hypercube d =
  if d < 0 then invalid_arg "Builders.hypercube";
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let binary_tree n =
  if n < 1 then invalid_arg "Builders.binary_tree";
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := ((i - 1) / 2, i) :: !edges
  done;
  Graph.of_edges ~n !edges

let lollipop ~clique ~tail =
  if clique < 1 || tail < 0 then invalid_arg "Builders.lollipop";
  let n = clique + tail in
  let edges = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then 0 else clique + i - 1 in
    edges := (prev, clique + i) :: !edges
  done;
  Graph.of_edges ~n !edges

let wheel n =
  if n < 4 then invalid_arg "Builders.wheel";
  let rim = n - 1 in
  let edges = ref [] in
  for i = 1 to rim do
    edges := (0, i) :: !edges;
    let next = if i = rim then 1 else i + 1 in
    edges := (i, next) :: !edges
  done;
  Graph.of_edges ~n !edges

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Builders.complete_bipartite";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Builders.caterpillar";
  let n = spine * (legs + 1) in
  let edges = ref [] in
  for s = 0 to spine - 1 do
    if s + 1 < spine then edges := (s, s + 1) :: !edges;
    for l = 0 to legs - 1 do
      edges := (s, spine + (s * legs) + l) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

(* Random 4-regular graph as the union of two Hamiltonian cycles: the
   ring 0–1–…–(n-1)–0 plus a uniform random cycle (a permutation read
   cyclically).  Every node gets exactly four ports —
   [(v+1) mod n; (v-1) mod n; successor in the random cycle;
   predecessor in the random cycle] — so the graph is connected,
   4-regular and built in O(n) flat words with no edge list.  The
   random cycle must avoid ring edges (a coinciding edge would be a
   parallel edge); a deterministic local repair pass swaps conflicting
   permutation entries, and the rare irreparable draw is simply
   redrawn, all from the same [rng] stream. *)
let random4 rng n =
  if n < 8 then invalid_arg "Builders.random4: n must be >= 8";
  let ring_adjacent a b =
    let d = (a - b + n) mod n in
    d = 1 || d = n - 1
  in
  let repaired perm =
    let good t = not (ring_adjacent perm.(t) perm.((t + 1) mod n)) in
    let ok = ref true in
    for t = 0 to n - 1 do
      if !ok && not (good t) then begin
        let i1 = (t + 1) mod n in
        (* Swap positions i1 and j; acceptable only if every pair the
           swap touches is good afterwards — including already-scanned
           pairs, so the scan invariant survives. *)
        let fixed = ref false in
        let j = ref 0 in
        while (not !fixed) && !j < n do
          if !j <> i1 then begin
            let a = perm.(i1) in
            perm.(i1) <- perm.(!j);
            perm.(!j) <- a;
            let touched =
              [ (i1 + n - 1) mod n; i1; (!j + n - 1) mod n; !j ]
            in
            if List.for_all good touched then fixed := true
            else begin
              let b = perm.(i1) in
              perm.(i1) <- perm.(!j);
              perm.(!j) <- b
            end
          end;
          incr j
        done;
        if not !fixed then ok := false
      end
    done;
    !ok
  in
  let perm = Rng.permutation rng n in
  let attempts = ref 0 in
  while (not (repaired perm)) && !attempts < 64 do
    incr attempts;
    Array.blit (Rng.permutation rng n) 0 perm 0 n
  done;
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) perm;
  let offsets = Array.init (n + 1) (fun i -> 4 * i) in
  let targets = Array.make (4 * n) 0 in
  for v = 0 to n - 1 do
    let i = pos.(v) in
    targets.(4 * v) <- (v + 1) mod n;
    targets.((4 * v) + 1) <- (v + n - 1) mod n;
    targets.((4 * v) + 2) <- perm.((i + 1) mod n);
    targets.((4 * v) + 3) <- perm.((i + n - 1) mod n)
  done;
  (* O(n) port-distinctness check stands in for full validation: the
     construction is symmetric by definition, so distinct ports at
     every node are exactly simplicity. *)
  for v = 0 to n - 1 do
    for a = 0 to 3 do
      let pa = targets.((4 * v) + a) in
      if pa = v then failwith "Builders.random4: self-loop";
      for b = a + 1 to 3 do
        if pa = targets.((4 * v) + b) then
          failwith "Builders.random4: repair failed"
      done
    done
  done;
  Graph.of_csr ~validate:false ~offsets ~targets ()

let random_tree rng n =
  if n < 1 then invalid_arg "Builders.random_tree";
  let edges = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  Graph.of_edges ~n edges

let random_connected rng ~n ~extra_edges =
  if n < 1 then invalid_arg "Builders.random_connected";
  let tree_edges = List.init (n - 1) (fun i -> (Rng.int rng (i + 1), i + 1)) in
  let present = Hashtbl.create 64 in
  List.iter (fun (u, v) -> Hashtbl.add present (min u v, max u v) ()) tree_edges;
  let max_edges = n * (n - 1) / 2 in
  let budget = min extra_edges (max_edges - (n - 1)) in
  let extra = ref [] in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < budget && !attempts < 100 * (budget + 1) do
    incr attempts;
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem present key) then begin
        Hashtbl.add present key ();
        extra := key :: !extra;
        incr added
      end
    end
  done;
  Graph.of_edges ~n (tree_edges @ !extra)
