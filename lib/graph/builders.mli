(** Topology constructors.

    Every builder returns a connected graph.  These are the workloads
    for the Table 1 sweeps and the §5 instance experiments: paths and
    cycles (diameter [Θ(n)]), grids and tori (diameter [Θ(√n)]),
    hypercubes and balanced trees (diameter [Θ(log n)]), cliques and
    stars (diameter [O(1)]), random trees / connected graphs, and the
    lollipop, which mixes a clique with a long tail. *)

val single : unit -> Graph.t
(** The one-node graph. *)

val path : int -> Graph.t
(** [path n] is the path [0 – 1 – … – n-1].  Diameter [n-1].
    @raise Invalid_argument if [n < 1]. *)

val cycle : int -> Graph.t
(** [cycle n] is the ring on [n >= 3] nodes.  Node [i]'s port 0 is its
    clockwise neighbor [(i+1) mod n] and port 1 its counterclockwise
    neighbor — the orientation convention assumed by
    {!Ss_algos.Cole_vishkin}.  Diameter [⌊n/2⌋].
    @raise Invalid_argument if [n < 3]. *)

val complete : int -> Graph.t
(** [complete n] is the clique on [n >= 1] nodes. *)

val star : int -> Graph.t
(** [star n] is the star with center [0] and [n-1 >= 1] leaves. *)

val grid : rows:int -> cols:int -> Graph.t
(** [grid ~rows ~cols] is the [rows × cols] grid; node [(r,c)] has id
    [r*cols + c].  Diameter [rows+cols-2].
    @raise Invalid_argument if either dimension is [< 1]. *)

val torus : rows:int -> cols:int -> Graph.t
(** [torus ~rows ~cols] is the wrap-around grid.  Both dimensions must
    be [>= 3] so the graph stays simple. *)

val hypercube : int -> Graph.t
(** [hypercube d] is the [d]-dimensional hypercube on [2^d] nodes
    ([d >= 0]).  Diameter [d]. *)

val binary_tree : int -> Graph.t
(** [binary_tree n] is the complete binary tree on [n >= 1] nodes in
    heap order (children of [i] are [2i+1] and [2i+2]).  Diameter
    [Θ(log n)]. *)

val lollipop : clique:int -> tail:int -> Graph.t
(** [lollipop ~clique ~tail] glues a path of [tail] extra nodes to node
    [0] of a [clique]-node clique ([clique >= 1], [tail >= 0]). *)

val wheel : int -> Graph.t
(** [wheel n] is a hub (node 0) joined to every node of an
    [(n-1)]-cycle ([n >= 4]).  Diameter 2. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b] is [K_{a,b}] with the left part on nodes
    [0..a-1] ([a, b >= 1]). *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** [caterpillar ~spine ~legs] is a path of [spine] nodes with [legs]
    leaves attached to each spine node — a tree with large [n] and
    diameter [spine + 1] (for [legs >= 1]), handy for decoupling [n]
    from [D]. *)

val random4 : Ss_prelude.Rng.t -> int -> Graph.t
(** [random4 rng n] is a random connected 4-regular graph on [n >= 8]
    nodes: the union of the ring [0–1–…–(n-1)–0] with a uniform random
    second Hamiltonian cycle (locally repaired so no cycle edge
    coincides with a ring edge).  Built directly in CSR form in O(n)
    with no intermediate edge list — the expander-style big-n workload
    of the million-node benches.  Ports of [v]: clockwise ring
    neighbor, counterclockwise ring neighbor, random-cycle successor,
    random-cycle predecessor. *)

val random_tree : Ss_prelude.Rng.t -> int -> Graph.t
(** [random_tree rng n] is a uniform-attachment random tree: node [i]
    ([i >= 1]) attaches to a uniform node in [0..i-1]. *)

val random_connected : Ss_prelude.Rng.t -> n:int -> extra_edges:int -> Graph.t
(** [random_connected rng ~n ~extra_edges] is a random tree plus
    [extra_edges] additional distinct random edges (fewer when the
    graph saturates). *)
