type t = { adj : int array array; m : int }

let validate adj =
  let n = Array.length adj in
  (* One hashed neighbor set per node serves both checks: duplicates
     while it is filled, then O(1) symmetry probes — O(n + m) overall
     where the per-edge [Array.exists] scan was O(Σ deg²). *)
  let seen =
    Array.map (fun nbrs -> Hashtbl.create (max 8 (Array.length nbrs))) adj
  in
  Array.iteri
    (fun p nbrs ->
      Array.iter
        (fun q ->
          if q < 0 || q >= n then
            invalid_arg
              (Printf.sprintf "Graph: node %d has out-of-range neighbor %d" p q);
          if q = p then
            invalid_arg (Printf.sprintf "Graph: self-loop at node %d" p);
          if Hashtbl.mem seen.(p) q then
            invalid_arg
              (Printf.sprintf "Graph: parallel edge {%d,%d}" p q);
          Hashtbl.add seen.(p) q ())
        nbrs)
    adj;
  (* Symmetry: q must list p whenever p lists q. *)
  Array.iteri
    (fun p nbrs ->
      Array.iter
        (fun q ->
          if not (Hashtbl.mem seen.(q) p) then
            invalid_arg
              (Printf.sprintf "Graph: edge {%d,%d} is not symmetric" p q))
        nbrs)
    adj

let of_adjacency adj =
  validate adj;
  let m =
    Array.fold_left (fun acc nbrs -> acc + Array.length nbrs) 0 adj / 2
  in
  { adj = Array.map Array.copy adj; m }

let of_edges ~n edges =
  if n < 1 then invalid_arg "Graph.of_edges: n must be >= 1";
  let buf = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Graph.of_edges: edge (%d,%d) out of range" u v);
      buf.(u) <- v :: buf.(u);
      buf.(v) <- u :: buf.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.rev l)) buf in
  of_adjacency adj

let n g = Array.length g.adj
let m g = g.m
let neighbors g p = g.adj.(p)
let degree g p = Array.length g.adj.(p)
let mem_edge g p q = Array.exists (fun r -> r = q) g.adj.(p)

let port_of g p q =
  let nbrs = g.adj.(p) in
  let rec go i =
    if i >= Array.length nbrs then raise Not_found
    else if nbrs.(i) = q then i
    else go (i + 1)
  in
  go 0

let port_table g =
  (* One hashtable pass per node instead of a linear [port_of] scan
     per lookup: O(n + m) to build, O(1) per cached entry. *)
  let inverse =
    Array.map
      (fun nbrs ->
        let h = Hashtbl.create (max 4 (Array.length nbrs)) in
        Array.iteri (fun i q -> Hashtbl.replace h q i) nbrs;
        h)
      g.adj
  in
  Array.mapi
    (fun p nbrs -> Array.map (fun q -> Hashtbl.find inverse.(q) p) nbrs)
    g.adj

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun p nbrs -> Array.iter (fun q -> if p < q then acc := (p, q) :: !acc) nbrs)
    g.adj;
  List.sort compare !acc

let iter_nodes g f =
  for p = 0 to n g - 1 do
    f p
  done

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun p -> acc := f !acc p);
  !acc

let max_degree g = fold_nodes g ~init:0 ~f:(fun acc p -> max acc (degree g p))
let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" (n g) (m g)
