(* Compressed sparse row: node [p]'s port-ordered neighbors are
   [tgt.(off.(p)) .. tgt.(off.(p+1) - 1)].  One offsets/targets pair
   for the whole graph — two int arrays totalling [n + 1 + 2m] words —
   instead of [n] boxed per-node arrays, so a 10^6-node topology costs
   a few flat megabytes and degree/port lookups stay O(1). *)
type t = { off : int array; tgt : int array; m : int }

let n g = Array.length g.off - 1
let m g = g.m
let degree g p = g.off.(p + 1) - g.off.(p)
let nbr g p i = g.tgt.(g.off.(p) + i)
let neighbors g p = Array.sub g.tgt g.off.(p) (degree g p)

let iter_neighbors g p f =
  for k = g.off.(p) to g.off.(p + 1) - 1 do
    f g.tgt.(k)
  done

let fold_neighbors g p ~init ~f =
  let acc = ref init in
  iter_neighbors g p (fun q -> acc := f !acc q);
  !acc

(* Validation, O(n + m log m) and hashtable-free:
   - range / self-loop / parallel edges in one pass per directed entry,
     in the same per-entry order as the historical checker (a stamp
     array replaces the per-node hashed neighbor sets);
   - symmetry by comparing the sorted multiset of directed edge codes
     [p·n + q] against the codes of the reversed entries — equal
     multisets iff every listed edge is listed both ways. *)
let validate_csr off tgt =
  let n = Array.length off - 1 in
  let mark = Array.make n (-1) in
  for p = 0 to n - 1 do
    for k = off.(p) to off.(p + 1) - 1 do
      let q = tgt.(k) in
      if q < 0 || q >= n then
        invalid_arg
          (Printf.sprintf "Graph: node %d has out-of-range neighbor %d" p q);
      if q = p then
        invalid_arg (Printf.sprintf "Graph: self-loop at node %d" p);
      if mark.(q) = p then
        invalid_arg (Printf.sprintf "Graph: parallel edge {%d,%d}" p q);
      mark.(q) <- p
    done
  done;
  (* Symmetry in O(n+m), no sorting: bucket every directed entry by
     its target (a counting sort), giving sources(p) = { s : s->p }.
     Parallel edges were excluded above, so adjacency lists are sets
     and (p,q) has its reverse (q,p) iff q ∈ sources(p) — checked
     with the same stamped-mark trick. *)
  let len = Array.length tgt in
  let inoff = Array.make (n + 1) 0 in
  for k = 0 to len - 1 do
    inoff.(tgt.(k) + 1) <- inoff.(tgt.(k) + 1) + 1
  done;
  for p = 0 to n - 1 do
    inoff.(p + 1) <- inoff.(p + 1) + inoff.(p)
  done;
  let src = Array.make (max 1 len) 0 in
  let cur = Array.sub inoff 0 n in
  for p = 0 to n - 1 do
    for k = off.(p) to off.(p + 1) - 1 do
      let q = tgt.(k) in
      src.(cur.(q)) <- p;
      cur.(q) <- cur.(q) + 1
    done
  done;
  Array.fill mark 0 n (-1);
  for p = 0 to n - 1 do
    for k = inoff.(p) to inoff.(p + 1) - 1 do
      mark.(src.(k)) <- p
    done;
    for k = off.(p) to off.(p + 1) - 1 do
      let q = tgt.(k) in
      if mark.(q) <> p then
        invalid_arg (Printf.sprintf "Graph: edge {%d,%d} is not symmetric" p q)
    done
  done

let of_csr ?(validate = true) ~offsets ~targets () =
  let n = Array.length offsets - 1 in
  if n < 0 then invalid_arg "Graph.of_csr: offsets must be nonempty";
  if offsets.(0) <> 0 || offsets.(n) <> Array.length targets then
    invalid_arg "Graph.of_csr: offsets must span the target array";
  for p = 0 to n - 1 do
    if offsets.(p + 1) < offsets.(p) then
      invalid_arg "Graph.of_csr: offsets must be nondecreasing"
  done;
  if validate then validate_csr offsets targets;
  { off = offsets; tgt = targets; m = Array.length targets / 2 }

let of_adjacency adj =
  let n = Array.length adj in
  let off = Array.make (n + 1) 0 in
  for p = 0 to n - 1 do
    off.(p + 1) <- off.(p) + Array.length adj.(p)
  done;
  let tgt = Array.make off.(n) 0 in
  Array.iteri
    (fun p nbrs -> Array.iteri (fun i q -> tgt.(off.(p) + i) <- q) nbrs)
    adj;
  of_csr ~offsets:off ~targets:tgt ()

let of_edges ~n edges =
  if n < 1 then invalid_arg "Graph.of_edges: n must be >= 1";
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.of_edges: edge (%d,%d) out of range" u v)
  in
  (* Two passes — degrees, then targets — so no intermediate per-node
     lists are ever materialized.  Ports keep the historical contract:
     assigned in the order edges are listed. *)
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      check (u, v);
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let off = Array.make (n + 1) 0 in
  for p = 0 to n - 1 do
    off.(p + 1) <- off.(p) + deg.(p)
  done;
  let tgt = Array.make off.(n) 0 in
  let cur = Array.sub off 0 n in
  List.iter
    (fun (u, v) ->
      tgt.(cur.(u)) <- v;
      cur.(u) <- cur.(u) + 1;
      tgt.(cur.(v)) <- u;
      cur.(v) <- cur.(v) + 1)
    edges;
  of_csr ~offsets:off ~targets:tgt ()

(* Streaming constructor for generated topologies: [f i] is the i-th
   edge in the port-assignment (processing) order; it is called twice
   per edge — degree pass, then fill pass — so builders never hold an
   edge list. *)
let of_edge_stream ?validate ~n ~count f =
  if n < 1 then invalid_arg "Graph.of_edge_stream: n must be >= 1";
  let deg = Array.make n 0 in
  for i = 0 to count - 1 do
    let u, v = f i in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.of_edge_stream: edge (%d,%d) out of range" u v);
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1
  done;
  let off = Array.make (n + 1) 0 in
  for p = 0 to n - 1 do
    off.(p + 1) <- off.(p) + deg.(p)
  done;
  let tgt = Array.make off.(n) 0 in
  let cur = Array.sub off 0 n in
  for i = 0 to count - 1 do
    let u, v = f i in
    tgt.(cur.(u)) <- v;
    cur.(u) <- cur.(u) + 1;
    tgt.(cur.(v)) <- u;
    cur.(v) <- cur.(v) + 1
  done;
  of_csr ?validate ~offsets:off ~targets:tgt ()

let mem_edge g p q =
  let rec go k = k < g.off.(p + 1) && (g.tgt.(k) = q || go (k + 1)) in
  go g.off.(p)

let port_of g p q =
  let base = g.off.(p) in
  let rec go k =
    if k >= g.off.(p + 1) then raise Not_found
    else if g.tgt.(k) = q then k - base
    else go (k + 1)
  in
  go base

let port_table g =
  (* One hashtable pass per node instead of a linear [port_of] scan
     per lookup: O(n + m) to build, O(1) per cached entry. *)
  let nn = n g in
  let inverse =
    Array.init nn (fun p ->
        let h = Hashtbl.create (max 4 (degree g p)) in
        for i = 0 to degree g p - 1 do
          Hashtbl.replace h (nbr g p i) i
        done;
        h)
  in
  Array.init nn (fun p ->
      Array.init (degree g p) (fun i -> Hashtbl.find inverse.(nbr g p i) p))

let edges g =
  let acc = ref [] in
  for p = 0 to n g - 1 do
    iter_neighbors g p (fun q -> if p < q then acc := (p, q) :: !acc)
  done;
  List.sort compare !acc

let iter_nodes g f =
  for p = 0 to n g - 1 do
    f p
  done

let fold_nodes g ~init ~f =
  let acc = ref init in
  iter_nodes g (fun p -> acc := f !acc p);
  !acc

let max_degree g = fold_nodes g ~init:0 ~f:(fun acc p -> max acc (degree g p))
let memory_words g = Array.length g.off + Array.length g.tgt + 4
let pp ppf g = Format.fprintf ppf "graph(n=%d, m=%d)" (n g) (m g)
