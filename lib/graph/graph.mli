(** Undirected simple graphs with port-numbered adjacency.

    Nodes are integers [0 .. n-1].  Each node [p] sees its neighbors
    through an ordered array (its {e ports}); port order is the order
    in which neighbor states are presented to algorithms running in
    models with port numbers (paper §3.3).  Algorithms written for the
    weak anonymous model of §2.2 simply ignore the order.

    {b Representation.}  Adjacency is stored in compressed sparse row
    (CSR) form: one offsets array and one targets array for the whole
    graph ([n + 1 + 2m] flat words), not one boxed array per node.
    Degree and port lookups are O(1) ({!degree}, {!nbr}); hot paths
    iterate ports with {!iter_neighbors} instead of materializing a
    neighbor array.

    All graphs are validated at construction: no self-loops, no
    parallel edges, symmetric adjacency.  Connectivity is {e not}
    enforced here (see {!Properties.is_connected}); the builders in
    {!Builders} only produce connected graphs. *)

type t

val of_adjacency : int array array -> t
(** [of_adjacency adj] builds a graph from per-node neighbor arrays.
    [adj.(p)] lists the neighbors of [p] in port order.
    @raise Invalid_argument if the adjacency is not simple and
    symmetric or mentions nodes out of range. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on [n] nodes with the given
    (unordered) edges.  Ports are assigned in the order edges are
    listed; duplicate edges and self-loops are rejected.
    @raise Invalid_argument on invalid input. *)

val of_csr : ?validate:bool -> offsets:int array -> targets:int array -> unit -> t
(** [of_csr ~offsets ~targets ()] adopts a prebuilt CSR pair:
    [offsets] has [n + 1] entries with [offsets.(0) = 0], and node
    [p]'s ports are [targets.(offsets.(p)) .. targets.(offsets.(p+1)
    - 1)].  The arrays are {e adopted}, not copied — the caller must
    not mutate them afterwards.  [validate] (default [true]) runs the
    full simplicity/symmetry check; builders whose construction is
    correct by construction pass [false] to keep 10^6-node generation
    linear.
    @raise Invalid_argument on malformed offsets or (when validating)
    non-simple input. *)

val of_edge_stream :
  ?validate:bool -> n:int -> count:int -> (int -> int * int) -> t
(** [of_edge_stream ~n ~count f] builds the graph whose i-th edge (in
    port-assignment order) is [f i], without ever materializing an
    edge list: [f] is called twice per index — once for the degree
    pass, once for the fill pass — and must be pure. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** [neighbors g p] is the port-ordered neighbor array of [p] — a
    fresh copy of the node's CSR segment (O(deg) allocation; hot paths
    should use {!nbr}/{!iter_neighbors}).  The returned array must not
    be mutated. *)

val degree : t -> int -> int
(** [degree g p] is the number of neighbors of [p].  O(1). *)

val nbr : t -> int -> int -> int
(** [nbr g p i] is [p]'s port-[i] neighbor, [0 <= i < degree g p].
    O(1), allocation-free; bounds are the caller's responsibility. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g p f] applies [f] to [p]'s neighbors in port
    order, allocation-free. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Allocation-free left fold over [p]'s neighbors in port order. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g p q] tests whether [{p,q}] is an edge. *)

val port_of : t -> int -> int -> int
(** [port_of g p q] is the port index of [q] in [p]'s neighbor array.
    @raise Not_found if [q] is not a neighbor of [p]. *)

val port_table : t -> int array array
(** [port_table g] precomputes every reverse port lookup: with
    [rp = port_table g] and [q = (neighbors g p).(i)], the entry
    [rp.(p).(i)] equals [port_of g q p] — the port under which [q]
    sees [p].  Built once in [O(n + m)]; use it instead of repeated
    [port_of] calls on hot paths (e.g. per-message delivery in the
    message-network simulator).  The returned arrays must not be
    mutated. *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], in increasing order. *)

val iter_nodes : t -> (int -> unit) -> unit
(** [iter_nodes g f] applies [f] to every node in increasing order. *)

val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Left fold over nodes in increasing order. *)

val max_degree : t -> int
(** Maximum degree over all nodes ([0] for the single-node graph). *)

val memory_words : t -> int
(** Words of flat storage held by the CSR pair ([n + 1 + 2m] plus
    record overhead) — the graph term of the bench memory rows. *)

val pp : Format.formatter -> t -> unit
(** Terse rendering ["graph(n=…, m=…)"]. *)
