(** Undirected simple graphs with port-numbered adjacency.

    Nodes are integers [0 .. n-1].  Each node [p] sees its neighbors
    through an ordered array (its {e ports}); port order is the order
    in which neighbor states are presented to algorithms running in
    models with port numbers (paper §3.3).  Algorithms written for the
    weak anonymous model of §2.2 simply ignore the order.

    All graphs are validated at construction: no self-loops, no
    parallel edges, symmetric adjacency.  Connectivity is {e not}
    enforced here (see {!Properties.is_connected}); the builders in
    {!Builders} only produce connected graphs. *)

type t

val of_adjacency : int array array -> t
(** [of_adjacency adj] builds a graph from per-node neighbor arrays.
    [adj.(p)] lists the neighbors of [p] in port order.
    @raise Invalid_argument if the adjacency is not simple and
    symmetric or mentions nodes out of range. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on [n] nodes with the given
    (unordered) edges.  Ports are assigned in the order edges are
    listed; duplicate edges and self-loops are rejected.
    @raise Invalid_argument on invalid input. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** [neighbors g p] is the port-ordered neighbor array of [p].  The
    returned array must not be mutated. *)

val degree : t -> int -> int
(** [degree g p] is the number of neighbors of [p]. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g p q] tests whether [{p,q}] is an edge. *)

val port_of : t -> int -> int -> int
(** [port_of g p q] is the port index of [q] in [p]'s neighbor array.
    @raise Not_found if [q] is not a neighbor of [p]. *)

val port_table : t -> int array array
(** [port_table g] precomputes every reverse port lookup: with
    [rp = port_table g] and [q = (neighbors g p).(i)], the entry
    [rp.(p).(i)] equals [port_of g q p] — the port under which [q]
    sees [p].  Built once in [O(n + m)]; use it instead of repeated
    [port_of] calls on hot paths (e.g. per-message delivery in the
    message-network simulator).  The returned arrays must not be
    mutated. *)

val edges : t -> (int * int) list
(** All edges as pairs [(u, v)] with [u < v], in increasing order. *)

val iter_nodes : t -> (int -> unit) -> unit
(** [iter_nodes g f] applies [f] to every node in increasing order. *)

val fold_nodes : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Left fold over nodes in increasing order. *)

val max_degree : t -> int
(** Maximum degree over all nodes ([0] for the single-node graph). *)

val pp : Format.formatter -> t -> unit
(** Terse rendering ["graph(n=…, m=…)"]. *)
