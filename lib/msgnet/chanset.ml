module Rng = Ss_prelude.Rng

type t = {
  pos : int array;
  (* pos.(id) is the index of [id] in [active], or -1 when absent. *)
  active : int array;
  mutable len : int;
}

let create capacity =
  {
    pos = Array.make (max 1 capacity) (-1);
    active = Array.make (max 1 capacity) 0;
    len = 0;
  }

let cardinal t = t.len
let is_empty t = t.len = 0
let mem t id = t.pos.(id) >= 0

let add t id =
  if t.pos.(id) < 0 then begin
    t.active.(t.len) <- id;
    t.pos.(id) <- t.len;
    t.len <- t.len + 1
  end

let remove t id =
  let i = t.pos.(id) in
  if i >= 0 then begin
    let last = t.active.(t.len - 1) in
    t.active.(i) <- last;
    t.pos.(last) <- i;
    t.pos.(id) <- -1;
    t.len <- t.len - 1
  end

let pick t rng =
  if t.len = 0 then invalid_arg "Chanset.pick: empty set"
  else t.active.(Rng.int rng t.len)

let elements t = List.sort compare (Array.to_list (Array.sub t.active 0 t.len))
