(** Dense O(1) membership set over channel ids [0 .. capacity-1] —
    the channel-level analogue of the engine's dirty-set scheduler.

    The message-network event loop must repeatedly pick a uniformly
    random non-empty directed channel.  A full scan over all [2m]
    channels per delivered message makes every event O(m); this
    structure maintains the non-empty set incrementally instead: a
    dense array of the active ids plus an inverse position index, so
    [add] / [remove] are O(1) (remove swaps with the last element) and
    a uniform [pick] is a single array read.  Iteration order is
    unspecified; membership and cardinality are exact. *)

type t

val create : int -> t
(** [create capacity] is an empty set over ids [0 .. capacity-1]. *)

val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> int -> unit
(** O(1); no-op when already present. *)

val remove : t -> int -> unit
(** O(1) swap-with-last; no-op when absent. *)

val pick : t -> Ss_prelude.Rng.t -> int
(** Uniform member in O(1) (one rng draw, one array read).
    @raise Invalid_argument on the empty set. *)

val elements : t -> int list
(** Members in increasing order (fresh list; for tests/debugging). *)
