module Graph = Ss_graph.Graph
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Sync_algo = Ss_sync.Sync_algo
module St = Ss_core.Trans_state
module Cellpack = Ss_core.Cellpack
module Transformer = Ss_core.Registry.Trans
module Energy = Ss_energy.Energy
module Rng = Ss_prelude.Rng
module Budget = Ss_report.Budget
module Run_report = Ss_report.Run_report

type encoding = Full_state | Delta

type 's delta = D_rr | D_rp of int | D_rc | D_ru of 's

type 's message =
  | Update_full of 's St.t
  | Update_delta of 's delta
  | Proof of int64 * int64  (* hash, wave nonce *)
  | Request
  | Full_copy of 's St.t

type msg_kind = K_update | K_proof | K_request | K_full_copy

type layout = [ `Auto | `Packed | `Boxed ]

type event =
  | Sent of { src : int; dst : int; kind : msg_kind; bits : int }
  | Delivered of { src : int; dst : int; kind : msg_kind }
  | Wave of { nonce : int }
  | Dropped of { src : int; dst : int; kind : msg_kind }
  | Duplicated of { src : int; dst : int; kind : msg_kind }
  | Reordered of { src : int; dst : int }
  | Corrupted of { node : int }

type sink = event -> unit

type 's chaos = {
  plan : Ss_chaos.Fault_plan.t;
  mutate : Rng.t -> int -> 's St.t -> 's St.t;
}

type stats = {
  deliveries : int;
  rule_executions : int;
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
  stale_proof_messages : int;
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;
  dropped_messages : int;
  reordered_messages : int;
  duplicated_messages : int;
  corruption_events : int;
  peak_queued_bits : int;
  mirror_bytes : int;
  quiescent : bool;
  outcome : Budget.outcome;
}

let total_bits s =
  s.update_bits + s.proof_bits + s.full_copy_bits
  + (s.request_messages * Energy.request_message_bits)

type 's counters = {
  mutable deliveries : int;
  mutable rule_executions : int;
  mutable update_messages : int;
  mutable update_bits : int;
  mutable proof_messages : int;
  mutable proof_bits_total : int;
  mutable stale_proof_messages : int;
  mutable request_messages : int;
  mutable full_copy_messages : int;
  mutable full_copy_bits : int;
  mutable proof_waves : int;
  mutable requests_in_wave : int;
  mutable dropped : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable corruptions : int;
}

let fresh_counters () =
  {
    deliveries = 0;
    rule_executions = 0;
    update_messages = 0;
    update_bits = 0;
    proof_messages = 0;
    proof_bits_total = 0;
    stale_proof_messages = 0;
    request_messages = 0;
    full_copy_messages = 0;
    full_copy_bits = 0;
    proof_waves = 0;
    requests_in_wave = 0;
    dropped = 0;
    reordered = 0;
    duplicated = 0;
    corruptions = 0;
  }

let delta_of_move rule_name new_state =
  if rule_name = Transformer.rr then D_rr
  else if rule_name = Transformer.rp then D_rp (St.height new_state)
  else if rule_name = Transformer.rc then D_rc
  else D_ru (St.top new_state)

(* Canonical wire/proof pre-image: the logical snapshot only (status,
   init, cells) with [No_sharing], so logically equal states encode to
   the same bytes no matter how they were built — backing-buffer
   capacity, version stamps and physical sharing never leak onto the
   wire.  Injective for the plain-data states the sync algorithms
   use. *)
let canonical_bytes (st : _ St.t) =
  Marshal.to_string (St.snapshot st) [ Marshal.No_sharing ]

(* Codec proof pre-image: the same logical content (status, init,
   cells in order) written through the algorithm's fixed-width
   {!Cellpack} codec into a reusable buffer — no boxed snapshot, no
   Marshal walk.  Equality agreement with [canonical_bytes] is what
   the proof protocol needs, and holds by construction: the byte
   length determines the height, the first byte the status, and
   [unpack] after [pack] reproducing the state makes the per-cell
   word image injective — so equal bytes iff equal snapshots. *)
let codec_bytes_into (c : 's Cellpack.codec) buf cscratch (st : 's St.t) =
  Buffer.clear buf;
  Buffer.add_char buf (match St.status st with St.C -> 'C' | St.E -> 'E');
  let add s =
    c.Cellpack.pack cscratch 0 s;
    for w = 0 to c.Cellpack.words - 1 do
      Buffer.add_int64_le buf (Int64.of_int cscratch.(w))
    done
  in
  add (St.init st);
  St.fold_cells (fun () s -> add s) () st;
  Buffer.contents buf

let codec_bytes c st =
  codec_bytes_into c (Buffer.create 64) (Array.make c.Cellpack.words 0) st

(* A delta's wire size is derivable from the delta alone: D_ru carries
   the new top cell, whose size is the sync algorithm's state_bits. *)
let delta_bits params = function
  | D_rr | D_rc -> 2
  | D_rp _ -> 2 + Energy.height_bits params.Transformer.bound
  | D_ru s -> 2 + params.Transformer.sync.Sync_algo.state_bits s

let kind_of_message = function
  | Update_full _ | Update_delta _ -> K_update
  | Proof _ -> K_proof
  | Request -> K_request
  | Full_copy _ -> K_full_copy

(* Ring-record tags.  Every indexed channel is a {!Ringbuf} of int
   records: [tag_boxed] records park their payload (a message variant
   the codec cannot flatten) in a lazily created per-channel side
   queue whose order mirrors the tagged records' order in the ring. *)
let tag_request = 0

let tag_proof = 1
let tag_rr = 2
let tag_rc = 3
let tag_rp = 4
let tag_ru = 5
let tag_boxed = 6

let run_impl ~indexed ?codec ?(layout = `Auto) ?(encoding = Delta) ?budget
    ?max_events ?(proof = Energy.default_proof_cost) ?heartbeat_every ?now
    ?chaos ~rng ?(corrupt_mirrors = true) ?(sinks = []) params config =
  let g = config.Config.graph in
  let n = Config.n config in
  let sync = params.Transformer.sync in
  let algo = Transformer.algorithm params in
  let states = Array.copy config.Config.states in
  (* Unified budget: the event cap (one delivery per event, so
     [stats.deliveries] never exceeds it) resolves against the legacy
     [max_events]; the deadline is checked once per event. *)
  let b = Option.value budget ~default:Budget.unlimited in
  let max_events =
    Budget.resolve ~default:2_000_000 max_events b.Budget.deliveries
  in
  let deadline = Budget.deadline_check ?now b in
  let observing = sinks <> [] in
  let emit ev = List.iter (fun s -> s ev) sinks in
  let proof_msg_bits = Energy.proof_message_bits proof in
  (* Each wave enqueues one proof per directed link (2m messages) while
     the timer fires every [heartbeat_every] *deliveries*: a period at
     or below 2m refills waves faster than they can drain, so channels
     never empty and quiescence is unreachable.  The default therefore
     scales with the network instead of being a constant that silently
     breaks past m = 200. *)
  let heartbeat_every =
    match heartbeat_every with
    | Some h -> h
    | None -> max 400 (4 * Graph.m g)
  in

  (* Directed FIFO channels, indexed densely: channel [chan_of.(u).(i)]
     carries u's messages to its port-i neighbor.  [chan_dst_port] is
     the receiver-side port (precomputed via Graph.port_table — no
     per-delivery [port_of] scan), which doubles as the index of the
     reply channel: the receiver answers u on [chan_of.(v).(port)]. *)
  let nchan = 2 * Graph.m g in
  let chan_dst = Array.make (max 1 nchan) 0 in
  let chan_src = Array.make (max 1 nchan) 0 in
  let chan_dst_port = Array.make (max 1 nchan) 0 in
  let chan_of =
    let ports = Graph.port_table g in
    let next = ref 0 in
    Array.init n (fun u ->
        Array.mapi
          (fun i v ->
            let id = !next in
            incr next;
            chan_src.(id) <- u;
            chan_dst.(id) <- v;
            chan_dst_port.(id) <- ports.(u).(i);
            id)
          (Graph.neighbors g u))
  in
  (* Indexed channel storage: one flat int ring per directed link, plus
     a lazily allocated boxed side queue for the message variants that
     cannot be int-packed (full states, and D_ru without a codec). *)
  let rings =
    if indexed then Array.init (max 1 nchan) (fun _ -> Ringbuf.create ())
    else [||]
  in
  let side : 's message Queue.t option array =
    if indexed then Array.make (max 1 nchan) None else [||]
  in
  let side_q cid =
    match side.(cid) with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        side.(cid) <- Some q;
        q
  in
  (* The naive reference path keeps the historical per-channel boxed
     queues and the original (u, v)-keyed hash table, so its selection
     and storage reproduce what every event paid before the indexed
     scheduler existed. *)
  let chan_q =
    if indexed then [||]
    else Array.init (max 1 nchan) (fun _ -> Queue.create ())
  in
  let naive_channels = Hashtbl.create (if indexed then 1 else 4 * Graph.m g) in
  if not indexed then
    Array.iteri
      (fun u row ->
        let nbrs = Graph.neighbors g u in
        Array.iteri
          (fun i cid -> Hashtbl.replace naive_channels (u, nbrs.(i)) cid)
          row)
      chan_of;
  let chan_queue cid =
    chan_q.(Hashtbl.find naive_channels (chan_src.(cid), chan_dst.(cid)))
  in

  (* The non-empty-channel set, maintained on every send/deliver so the
     indexed path picks a random pending link in O(1) instead of
     rescanning all 2m channels per event. *)
  let active = Chanset.create nchan in

  (* Mirror layout.  Under the engine's --layout policy: [`Packed]
     requires a codec and a finite bound (each of the 2m mirrors lives
     in the slot of one Cellpack arena, indexed by the owner's outgoing
     channel id — the same dense (node, port) numbering the channels
     use); [`Auto] packs exactly when both are available; [`Boxed]
     keeps the historical per-mirror buffers.  The packed arena caps a
     mirror at B cells — chaos can starve a mirror of its RR reset and
     drift it past B, so over-tall contents fall back to boxed handles
     until a full-state install re-packs the slot. *)
  let marena =
    let finite =
      match params.Transformer.bound with
      | Ss_core.Predicates.Finite b -> Some b
      | Ss_core.Predicates.Infinite -> None
    in
    match (layout, codec, finite) with
    | `Boxed, _, _ -> None
    | `Auto, Some c, Some cap when nchan > 0 ->
        Some (Cellpack.arena ~codec:c ~n:nchan ~cap)
    | `Auto, _, _ -> None
    | `Packed, None, _ -> invalid_arg "Msgnet.run: packed layout needs a codec"
    | `Packed, Some _, None ->
        invalid_arg "Msgnet.run: packed layout needs a finite bound"
    | `Packed, Some c, Some cap ->
        if nchan = 0 then None else Some (Cellpack.arena ~codec:c ~n:nchan ~cap)
  in
  (* [install v port src] stores [src]'s logical content as v's port
     mirror: packed into the arena slot when it fits, the boxed handle
     itself otherwise.  Rebuilding through a fresh [packed_clean]
     handle is safe even when the previous slot holder was boxed or
     stale — it only writes the slab and mints a fresh lineage. *)
  let install v port src =
    match marena with
    | Some a when St.height src <= Cellpack.cap a ->
        St.rebuild
          (St.packed_clean a ~node:chan_of.(v).(port) ~init:(St.init src))
          ~status:(St.status src) ~cells:(St.cells src)
    | _ -> src
  in
  (* Mirrors: mirrors.(v).(k) is v's belief about its port-k neighbor. *)
  let mirrors =
    Array.init n (fun v ->
        Array.mapi
          (fun i u ->
            install v i
              (if corrupt_mirrors then
                 Transformer.corrupt_state rng
                   ~max_height:(St.height states.(u) + 4)
                   params (Config.input config u) states.(u)
               else states.(u)))
          (Graph.neighbors g v))
  in
  (* Extend a mirror by a delivered D_ru cell.  A packed mirror at the
     arena bound boxes itself instead of raising: with faulty channels
     a dropped D_rr can leave a mirror growing without its reset, and
     the protocol must keep running until a proof wave repairs it. *)
  let mirror_extend m s =
    match St.backing_arena m with
    | Some a when St.height m >= Cellpack.cap a ->
        St.extend
          (St.make ~init:(St.init m) ~status:(St.status m) ~cells:(St.cells m))
          s
    | _ -> St.extend m s
  in
  let apply_delta mirror = function
    | D_rr -> St.wipe mirror
    | D_rp i ->
        (* A corrupted mirror may be shorter than the sender's list; a
           total best-effort truncation keeps the protocol running until
           a proof exchange repairs the copy. *)
        St.with_status (St.truncate mirror (min i (St.height mirror))) St.E
    | D_rc -> St.with_status mirror St.C
    | D_ru s -> mirror_extend mirror s
  in

  (* Proof pre-images, memoized by the §10 version stamp: serializing
     a transformer state is far more expensive than hashing it, and
     proof waves keep re-proving states and mirrors that have not
     changed since the previous wave.  A state's stamp only matches
     the memo's when the entry was computed from that very
     construction, so a hit can never serve stale bytes — and no
     write-path invalidation hook is needed at all.  The encoder is
     the algorithm's codec when one is given (reusable buffer, no
     boxed snapshot), the Marshal reference otherwise. *)
  let encode =
    match codec with
    | Some c ->
        let buf = Buffer.create 64 in
        let cscratch = Array.make c.Cellpack.words 0 in
        fun st -> codec_bytes_into c buf cscratch st
    | None -> canonical_bytes
  in
  let state_ser = Array.make (max 1 n) "" in
  let state_ser_stamp = Array.make (max 1 n) (-1) in
  let serialize_state v =
    let st = states.(v) in
    let k = St.stamp st in
    if state_ser_stamp.(v) = k then state_ser.(v)
    else begin
      let s = encode st in
      state_ser_stamp.(v) <- k;
      state_ser.(v) <- s;
      s
    end
  in
  (* Mirror memo, dense over the same (node, port) channel numbering. *)
  let mirror_ser = Array.make (max 1 nchan) "" in
  let mirror_ser_stamp = Array.make (max 1 nchan) (-1) in
  let serialize_mirror v port =
    let id = chan_of.(v).(port) in
    let st = mirrors.(v).(port) in
    let k = St.stamp st in
    if mirror_ser_stamp.(id) = k then mirror_ser.(id)
    else begin
      let s = encode st in
      mirror_ser_stamp.(id) <- k;
      mirror_ser.(id) <- s;
      s
    end
  in
  let set_mirror v port st = mirrors.(v).(port) <- st in

  (* One wire-size accounting for every message kind, shared by the
     counters, the event sinks and the queued-bits watermark. *)
  let message_bits = function
    | Update_full s -> Energy.full_state_bits sync s
    | Update_delta d -> delta_bits params d
    | Proof _ -> proof_msg_bits
    | Request -> Energy.request_message_bits
    | Full_copy s -> Energy.full_state_bits sync s
  in
  (* Peak in-flight wire load: bits enter on send, leave on delivery
     or drop (a duplicate's surviving copy never left).  The watermark
     is the protocol's bufferbloat figure at quiescence-free periods —
     reported as [peak_queued_bits]. *)
  let queued_bits = ref 0 in
  let peak_queued_bits = ref 0 in
  let account_send bits =
    queued_bits := !queued_bits + bits;
    if !queued_bits > !peak_queued_bits then peak_queued_bits := !queued_bits
  in
  let account_drain bits = queued_bits := !queued_bits - bits in

  (* Indexed wire codec: flatten a message into [rscratch] and push it
     on the channel's ring.  Proofs split their 64-bit hash into two
     32-bit words plus the nonce; deltas carry the rule tag and, with
     a codec, the int-packed payload cell.  Anything else parks the
     variant in the side queue behind a [tag_boxed] record. *)
  let rscratch =
    let cwords = match codec with Some c -> c.Cellpack.words | None -> 0 in
    Array.make (max 4 (1 + cwords)) 0
  in
  let encode_push cid msg =
    let r = rings.(cid) in
    match msg with
    | Request ->
        rscratch.(0) <- tag_request;
        Ringbuf.push r rscratch 1
    | Proof (h, pn) ->
        rscratch.(0) <- tag_proof;
        rscratch.(1) <- Int64.to_int (Int64.logand h 0xFFFF_FFFFL);
        rscratch.(2) <- Int64.to_int (Int64.shift_right_logical h 32);
        rscratch.(3) <- Int64.to_int pn;
        Ringbuf.push r rscratch 4
    | Update_delta D_rr ->
        rscratch.(0) <- tag_rr;
        Ringbuf.push r rscratch 1
    | Update_delta D_rc ->
        rscratch.(0) <- tag_rc;
        Ringbuf.push r rscratch 1
    | Update_delta (D_rp i) ->
        rscratch.(0) <- tag_rp;
        rscratch.(1) <- i;
        Ringbuf.push r rscratch 2
    | Update_delta (D_ru s) as boxed -> (
        match codec with
        | Some c ->
            rscratch.(0) <- tag_ru;
            c.Cellpack.pack rscratch 1 s;
            Ringbuf.push r rscratch (1 + c.Cellpack.words)
        | None ->
            rscratch.(0) <- tag_boxed;
            Ringbuf.push r rscratch 1;
            Queue.push boxed (side_q cid))
    | (Update_full _ | Full_copy _) as boxed ->
        rscratch.(0) <- tag_boxed;
        Ringbuf.push r rscratch 1;
        Queue.push boxed (side_q cid)
  in
  (* [rscratch] holds the head record; [popped] tells the side queue
     whether to consume or only peek its aligned boxed payload. *)
  let decode_scratch cid ~popped =
    match rscratch.(0) with
    | 0 -> Request
    | 1 ->
        let h =
          Int64.logor
            (Int64.of_int rscratch.(1))
            (Int64.shift_left (Int64.of_int rscratch.(2)) 32)
        in
        Proof (h, Int64.of_int rscratch.(3))
    | 2 -> Update_delta D_rr
    | 3 -> Update_delta D_rc
    | 4 -> Update_delta (D_rp rscratch.(1))
    | 5 -> (
        match codec with
        | Some c -> Update_delta (D_ru (c.Cellpack.unpack rscratch 1))
        | None -> assert false (* tag_ru is only pushed with a codec *))
    | _ ->
        let q = side_q cid in
        if popped then Queue.pop q else Queue.peek q
  in

  let send cid msg bits =
    account_send bits;
    if observing then
      emit
        (Sent
           {
             src = chan_src.(cid);
             dst = chan_dst.(cid);
             kind = kind_of_message msg;
             bits;
           });
    if indexed then begin
      if Ringbuf.is_empty rings.(cid) then Chanset.add active cid;
      encode_push cid msg
    end
    else Queue.push msg (chan_queue cid)
  in
  let pop_head cid =
    if indexed then begin
      ignore (Ringbuf.pop rings.(cid) rscratch);
      let msg = decode_scratch cid ~popped:true in
      if Ringbuf.is_empty rings.(cid) then Chanset.remove active cid;
      msg
    end
    else Queue.pop (chan_queue cid)
  in
  let peek_head cid =
    if indexed then begin
      ignore (Ringbuf.peek rings.(cid) rscratch);
      decode_scratch cid ~popped:false
    end
    else Queue.peek (chan_queue cid)
  in
  let chan_pending cid =
    if indexed then Ringbuf.records rings.(cid)
    else Queue.length (chan_queue cid)
  in

  (* Reference (naive) selection: exactly what every event paid before
     the indexed scheduler — a Hashtbl.fold over all 2m channels
     rebuilding the pending-link list, then a random pick from it. *)
  let pick_channel () =
    if indexed then
      if Chanset.is_empty active then -1 else Chanset.pick active rng
    else
      match
        Hashtbl.fold
          (fun _ cid acc ->
            if Queue.is_empty chan_q.(cid) then acc else cid :: acc)
          naive_channels []
      with
      | [] -> -1
      | pending -> Rng.pick_list rng pending
  in

  let c = fresh_counters () in

  let broadcast_move v new_state rule_name =
    let nbrs = Graph.neighbors g v in
    Array.iteri
      (fun i _u ->
        c.update_messages <- c.update_messages + 1;
        let msg =
          match encoding with
          | Full_state -> Update_full new_state
          | Delta -> Update_delta (delta_of_move rule_name new_state)
        in
        let bits = message_bits msg in
        c.update_bits <- c.update_bits + bits;
        send chan_of.(v).(i) msg bits)
      nbrs
  in

  (* Enabled-candidate set (indexed path): the nodes whose own state or
     some mirror changed since their guards were last found disabled —
     a superset of the enabled nodes, kept dense so the drained-channel
     scheduler picks in O(1) amortized instead of scanning all n
     guards per event (the engine's dirty-set discipline, §7).  Nodes
     start as candidates; [act] settles a node's membership (kept only
     when its safety budget ran out while rules might still fire), and
     a rejected pick is removed for good until its next write. *)
  let candidates = Chanset.create (if indexed then n else 0) in
  if indexed then
    for v = 0 to n - 1 do
      Chanset.add candidates v
    done;

  let view_of v =
    {
      Algorithm.input = Config.input config v;
      self = states.(v);
      neighbors = mirrors.(v);
    }
  in

  (* Local step: act on own state + mirrors until no rule is enabled
     (bounded for safety against pathological mirror contents). *)
  let act v =
    let budget = ref (Ss_core.Predicates.bound_to_int params.Transformer.bound) in
    if !budget > 1_000_000 then budget := St.height states.(v) + n + 8;
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      match Algorithm.enabled_rule algo (view_of v) with
      | None -> continue := false
      | Some rule ->
          let new_state = rule.Algorithm.action (view_of v) in
          states.(v) <- new_state;
          c.rule_executions <- c.rule_executions + 1;
          broadcast_move v new_state rule.Algorithm.rule_name
    done;
    (* [!continue] here means the safety budget ran out first: the node
       may still be enabled, so it must stay pickable. *)
    if indexed then
      if !continue then Chanset.add candidates v
      else Chanset.remove candidates v
  in

  (* Wave nonce.  Proofs carry the nonce of the wave that hashed them;
     a proof from a superseded wave is dropped on delivery instead of
     being compared — the current wave re-verifies every mirror anyway,
     so a stale proof can only add spurious Request/Full_copy traffic
     (e.g. when the repair it would ask for is already queued behind
     it).  Dropping also keeps [requests_in_wave] correctly attributed:
     only current-wave proofs can raise requests, so the reset at wave
     start can never erase or miscount in-flight evidence. *)
  let nonce = ref 0L in
  (* Wave integrity.  Quiescence is deduced from "the last wave raised
     no request" — sound over loss-free FIFO channels, but any chaos
     action (drop, duplicate, reorder, corruption) after the wave began
     can hide a stale mirror or perturb one after its proof verified.
     So every chaos action clears this flag and completion additionally
     requires a chaos-free wave window; the expected wait is
     e^(rate·2m) waves, negligible for the shipped scenario rates. *)
  let wave_intact = ref false in
  let chaos_hit () = wave_intact := false in

  (* Deliver [msg], already popped from (or peeked at the head of)
     channel [cid]: count it, notify sinks, and run the receiver's
     protocol reaction. *)
  let process cid msg =
    c.deliveries <- c.deliveries + 1;
    let v = chan_dst.(cid) in
    if observing then
      emit
        (Delivered { src = chan_src.(cid); dst = v; kind = kind_of_message msg });
    (* The naive path re-derives the receiver-side port with the O(deg)
       scan the original code paid per delivery. *)
    let port =
      if indexed then chan_dst_port.(cid)
      else Graph.port_of g v chan_src.(cid)
    in
    match msg with
    | Update_full s ->
        set_mirror v port (install v port s);
        act v
    | Update_delta d ->
        set_mirror v port (apply_delta mirrors.(v).(port) d);
        act v
    | Proof (h, pnonce) ->
        if pnonce < !nonce then
          c.stale_proof_messages <- c.stale_proof_messages + 1
        else if Energy.state_proof ~nonce:pnonce (serialize_mirror v port) <> h
        then begin
          c.request_messages <- c.request_messages + 1;
          c.requests_in_wave <- c.requests_in_wave + 1;
          send chan_of.(v).(port) Request Energy.request_message_bits
        end
    | Request ->
        let fb = Energy.full_state_bits sync states.(v) in
        c.full_copy_messages <- c.full_copy_messages + 1;
        c.full_copy_bits <- c.full_copy_bits + fb;
        send chan_of.(v).(port) (Full_copy states.(v)) fb
    | Full_copy s ->
        set_mirror v port (install v port s);
        act v
  in

  let deliver cid =
    let msg = pop_head cid in
    account_drain (message_bits msg);
    process cid msg
  in

  (* Chaos actions, each charged as one event.  Drop discards the
     channel head; duplicate delivers the head while the copy stays
     queued (so the same message is processed again later); reorder
     rotates the head behind the rest of the FIFO (a no-op disguise
     when the queue holds a single message, where it degenerates to a
     plain delivery). *)
  let chaos_drop cid =
    let msg = pop_head cid in
    account_drain (message_bits msg);
    c.dropped <- c.dropped + 1;
    chaos_hit ();
    if observing then
      emit
        (Dropped
           {
             src = chan_src.(cid);
             dst = chan_dst.(cid);
             kind = kind_of_message msg;
           })
  in
  let chaos_duplicate cid =
    let msg = peek_head cid in
    c.duplicated <- c.duplicated + 1;
    chaos_hit ();
    if observing then
      emit
        (Duplicated
           {
             src = chan_src.(cid);
             dst = chan_dst.(cid);
             kind = kind_of_message msg;
           });
    process cid msg
  in
  let chaos_reorder cid =
    if chan_pending cid < 2 then deliver cid
    else begin
      if indexed then begin
        (* Rotate the raw record; a boxed payload rotates with it so
           the side queue stays aligned with its ring markers. *)
        let len = Ringbuf.pop rings.(cid) rscratch in
        Ringbuf.push rings.(cid) rscratch len;
        if rscratch.(0) = tag_boxed then begin
          let q = side_q cid in
          Queue.push (Queue.pop q) q
        end
      end
      else begin
        let q = chan_queue cid in
        Queue.push (Queue.pop q) q
      end;
      c.reordered <- c.reordered + 1;
      chaos_hit ();
      if observing then
        emit (Reordered { src = chan_src.(cid); dst = chan_dst.(cid) })
    end
  in

  (* Reference (naive) enabled pick: the full O(n) guard scan the
     original code paid on every drained-channel event. *)
  let node_scratch = Array.make (max 1 n) 0 in
  let pick_enabled_on_mirrors () =
    if indexed then begin
      (* Rejection sampling over the candidate superset: each draw is
         uniform over the remaining candidates, and a disabled draw is
         removed for good (it re-enters on its next state or mirror
         write via [act]), so the accepted node is uniform over the
         enabled set and the scan cost is amortized against writes. *)
      let rec go () =
        if Chanset.is_empty candidates then -1
        else begin
          let v = Chanset.pick candidates rng in
          if Algorithm.is_enabled algo (view_of v) then v
          else begin
            Chanset.remove candidates v;
            go ()
          end
        end
      in
      go ()
    end
    else begin
      let k = ref 0 in
      for v = 0 to n - 1 do
        if Algorithm.is_enabled algo (view_of v) then begin
          node_scratch.(!k) <- v;
          incr k
        end
      done;
      if !k = 0 then -1 else node_scratch.(Rng.int rng !k)
    end
  in

  (* [at] is the event index firing the wave, recorded so the periodic
     heartbeat never stacks a second wave right on top of a
     quiescence-probe wave (which would supersede its nonce and erase
     its evidence before a single proof is delivered). *)
  let last_wave_event = ref (-1) in
  let proof_wave ~at =
    last_wave_event := at;
    wave_intact := true;
    nonce := Int64.add !nonce 1L;
    c.proof_waves <- c.proof_waves + 1;
    c.requests_in_wave <- 0;
    if observing then emit (Wave { nonce = Int64.to_int !nonce });
    Graph.iter_nodes g (fun v ->
        let h = Energy.state_proof ~nonce:!nonce (serialize_state v) in
        Array.iter
          (fun cid ->
            c.proof_messages <- c.proof_messages + 1;
            c.proof_bits_total <- c.proof_bits_total + proof_msg_bits;
            send cid (Proof (h, !nonce)) proof_msg_bits)
          chan_of.(v))
  in

  let rec loop events =
    if events >= max_events then Budget.Tripped Budget.Deliveries
    else if deadline () then Budget.Tripped Budget.Deadline
    else begin
      (* Scheduled transient corruption: mutate a victim's real state
         mid-run, exactly as §3's arbitrary-configuration premise
         allows.  The stamp-keyed serialization memo misses on the
         fresh construction by itself; the victim's guards must be
         re-examined, so it re-enters the candidate set. *)
      (match chaos with
      | Some ch when Ss_chaos.Fault_plan.corruption_due ch.plan ~event:events
        ->
          let crng = Ss_chaos.Fault_plan.rng ch.plan in
          let victim = Rng.int crng n in
          states.(victim) <- ch.mutate crng victim states.(victim);
          if indexed then Chanset.add candidates victim;
          c.corruptions <- c.corruptions + 1;
          chaos_hit ();
          if observing then emit (Corrupted { node = victim })
      | _ -> ());
      (* Periodic heartbeat: without it, delta updates applied to a
         corrupted mirror would keep it wrong forever and the system
         could churn indefinitely (§6's proofs are timer-driven, not
         quiescence-driven).  Suppressed when the previous event already
         fired a quiescence-probe wave — stacking a second wave would
         supersede the probe's nonce before any of its proofs land. *)
      if
        events > 0
        && events mod heartbeat_every = 0
        && !last_wave_event < events - 1
      then proof_wave ~at:events;
      match pick_channel () with
      | cid when cid >= 0 ->
          (match chaos with
          | None -> deliver cid
          | Some ch -> (
              match Ss_chaos.Fault_plan.consult ch.plan ~event:events with
              | Ss_chaos.Fault_plan.Deliver -> deliver cid
              | Ss_chaos.Fault_plan.Drop -> chaos_drop cid
              | Ss_chaos.Fault_plan.Duplicate -> chaos_duplicate cid
              | Ss_chaos.Fault_plan.Reorder -> chaos_reorder cid));
          loop (events + 1)
      | _ -> (
          match pick_enabled_on_mirrors () with
          | v when v >= 0 ->
              act v;
              loop (events + 1)
          | _ ->
              (* Local quiescence.  The last wave's proofs have all been
                 delivered (no channel is pending) and, being
                 current-wave on delivery, none were dropped as stale:
                 if the wave verified every mirror (no request) and no
                 chaos action touched the window, the states are
                 terminal for the atomic-state transformer; otherwise
                 re-probe.  The deadline is re-checked first so a run
                 that drains its channels past its time budget reports
                 [Tripped Deadline] instead of spinning probe waves (or
                 claiming [Completed]) on borrowed time. *)
              if c.proof_waves > 0 && c.requests_in_wave = 0 && !wave_intact
              then Budget.Completed
              else if deadline () then Budget.Tripped Budget.Deadline
              else begin
                proof_wave ~at:events;
                loop (events + 1)
              end)
    end
  in
  let outcome = loop 0 in
  (* Resident mirror accounting: the arena's flat arrays at their true
     size, plus an estimate for boxed mirrors (one word per cell plus
     a small per-state overhead) and the per-mirror handles. *)
  let mirror_bytes =
    let boxed_words = ref 0 in
    Array.iter
      (fun row ->
        Array.iter
          (fun m ->
            match St.backing_arena m with
            | Some _ -> ()
            | None -> boxed_words := !boxed_words + St.height m + 4)
          row)
      mirrors;
    let arena_bytes = match marena with Some a -> Cellpack.bytes a | None -> 0 in
    arena_bytes + (8 * (!boxed_words + (8 * nchan)))
  in
  let stats =
    {
      deliveries = c.deliveries;
      rule_executions = c.rule_executions;
      update_messages = c.update_messages;
      update_bits = c.update_bits;
      proof_messages = c.proof_messages;
      proof_bits = c.proof_bits_total;
      stale_proof_messages = c.stale_proof_messages;
      request_messages = c.request_messages;
      full_copy_messages = c.full_copy_messages;
      full_copy_bits = c.full_copy_bits;
      proof_waves = c.proof_waves;
      dropped_messages = c.dropped;
      reordered_messages = c.reordered;
      duplicated_messages = c.duplicated;
      corruption_events = c.corruptions;
      peak_queued_bits = !peak_queued_bits;
      mirror_bytes;
      quiescent = outcome = Budget.Completed;
      outcome;
    }
  in
  (Config.with_states config states, stats)

let run ?codec ?layout ?encoding ?budget ?max_events ?proof ?heartbeat_every
    ?now ?chaos ~rng ?corrupt_mirrors ?sinks params config =
  run_impl ~indexed:true ?codec ?layout ?encoding ?budget ?max_events ?proof
    ?heartbeat_every ?now ?chaos ~rng ?corrupt_mirrors ?sinks params config

let run_naive ?encoding ?budget ?max_events ?proof ?heartbeat_every ?now ~rng
    ?corrupt_mirrors ?sinks params config =
  run_impl ~indexed:false ?encoding ?budget ?max_events ?proof ?heartbeat_every
    ?now ~rng ?corrupt_mirrors ?sinks params config

let report ?(label = "msgnet-run") ?seed ?wall_s ?timebase (s : stats) =
  Run_report.v ?seed ?wall_s ?timebase ~outcome:s.outcome label
    (Run_report.Msgnet
       {
         Run_report.deliveries = s.deliveries;
         rule_executions = s.rule_executions;
         update_messages = s.update_messages;
         update_bits = s.update_bits;
         proof_messages = s.proof_messages;
         proof_bits = s.proof_bits;
         stale_proof_messages = s.stale_proof_messages;
         request_messages = s.request_messages;
         full_copy_messages = s.full_copy_messages;
         full_copy_bits = s.full_copy_bits;
         proof_waves = s.proof_waves;
         dropped_messages = s.dropped_messages;
         reordered_messages = s.reordered_messages;
         duplicated_messages = s.duplicated_messages;
         corruption_events = s.corruption_events;
         peak_queued_bits = s.peak_queued_bits;
         mirror_bytes = s.mirror_bytes;
         total_bits = total_bits s;
       })
