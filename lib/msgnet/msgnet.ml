module Graph = Ss_graph.Graph
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Sync_algo = Ss_sync.Sync_algo
module St = Ss_core.Trans_state
module Transformer = Ss_core.Registry.Trans
module Energy = Ss_energy.Energy
module Rng = Ss_prelude.Rng
module Budget = Ss_report.Budget
module Run_report = Ss_report.Run_report

type encoding = Full_state | Delta

type 's delta = D_rr | D_rp of int | D_rc | D_ru of 's

type 's message =
  | Update_full of 's St.t
  | Update_delta of 's delta
  | Proof of int64 * int64  (* hash, wave nonce *)
  | Request
  | Full_copy of 's St.t

type msg_kind = K_update | K_proof | K_request | K_full_copy

type event =
  | Sent of { src : int; dst : int; kind : msg_kind; bits : int }
  | Delivered of { src : int; dst : int; kind : msg_kind }
  | Wave of { nonce : int }
  | Dropped of { src : int; dst : int; kind : msg_kind }
  | Duplicated of { src : int; dst : int; kind : msg_kind }
  | Reordered of { src : int; dst : int }
  | Corrupted of { node : int }

type sink = event -> unit

type 's chaos = {
  plan : Ss_chaos.Fault_plan.t;
  mutate : Rng.t -> int -> 's St.t -> 's St.t;
}

type stats = {
  deliveries : int;
  rule_executions : int;
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
  stale_proof_messages : int;
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;
  dropped_messages : int;
  reordered_messages : int;
  duplicated_messages : int;
  corruption_events : int;
  quiescent : bool;
  outcome : Budget.outcome;
}

let total_bits s =
  s.update_bits + s.proof_bits + s.full_copy_bits
  + (s.request_messages * Energy.request_message_bits)

type 's counters = {
  mutable deliveries : int;
  mutable rule_executions : int;
  mutable update_messages : int;
  mutable update_bits : int;
  mutable proof_messages : int;
  mutable proof_bits_total : int;
  mutable stale_proof_messages : int;
  mutable request_messages : int;
  mutable full_copy_messages : int;
  mutable full_copy_bits : int;
  mutable proof_waves : int;
  mutable requests_in_wave : int;
  mutable dropped : int;
  mutable reordered : int;
  mutable duplicated : int;
  mutable corruptions : int;
}

let fresh_counters () =
  {
    deliveries = 0;
    rule_executions = 0;
    update_messages = 0;
    update_bits = 0;
    proof_messages = 0;
    proof_bits_total = 0;
    stale_proof_messages = 0;
    request_messages = 0;
    full_copy_messages = 0;
    full_copy_bits = 0;
    proof_waves = 0;
    requests_in_wave = 0;
    dropped = 0;
    reordered = 0;
    duplicated = 0;
    corruptions = 0;
  }

let delta_of_move rule_name new_state =
  if rule_name = Transformer.rr then D_rr
  else if rule_name = Transformer.rp then D_rp (St.height new_state)
  else if rule_name = Transformer.rc then D_rc
  else D_ru (St.top new_state)

(* Canonical wire/proof pre-image: the logical snapshot only (status,
   init, cells) with [No_sharing], so logically equal states encode to
   the same bytes no matter how they were built — backing-buffer
   capacity, version stamps and physical sharing never leak onto the
   wire.  Injective for the plain-data states the sync algorithms
   use. *)
let canonical_bytes (st : _ St.t) =
  Marshal.to_string (St.snapshot st) [ Marshal.No_sharing ]

let apply_delta mirror = function
  | D_rr -> St.wipe mirror
  | D_rp i ->
      (* A corrupted mirror may be shorter than the sender's list; a
         total best-effort truncation keeps the protocol running until
         a proof exchange repairs the copy. *)
      St.with_status (St.truncate mirror (min i (St.height mirror))) St.E
  | D_rc -> St.with_status mirror St.C
  | D_ru s -> St.extend mirror s

(* A delta's wire size is derivable from the delta alone: D_ru carries
   the new top cell, whose size is the sync algorithm's state_bits. *)
let delta_bits params = function
  | D_rr | D_rc -> 2
  | D_rp _ -> 2 + Energy.height_bits params.Transformer.bound
  | D_ru s -> 2 + params.Transformer.sync.Sync_algo.state_bits s

let kind_of_message = function
  | Update_full _ | Update_delta _ -> K_update
  | Proof _ -> K_proof
  | Request -> K_request
  | Full_copy _ -> K_full_copy

let run_impl ~indexed ?(encoding = Delta) ?budget ?max_events
    ?(proof = Energy.default_proof_cost) ?heartbeat_every ?now ?chaos ~rng
    ?(corrupt_mirrors = true) ?(sinks = []) params config =
  let g = config.Config.graph in
  let n = Config.n config in
  let sync = params.Transformer.sync in
  let algo = Transformer.algorithm params in
  let states = Array.copy config.Config.states in
  (* Unified budget: the event cap (one delivery per event, so
     [stats.deliveries] never exceeds it) resolves against the legacy
     [max_events]; the deadline is checked once per event. *)
  let b = Option.value budget ~default:Budget.unlimited in
  let max_events =
    Budget.resolve ~default:2_000_000 max_events b.Budget.deliveries
  in
  let deadline = Budget.deadline_check ?now b in
  let observing = sinks <> [] in
  let emit ev = List.iter (fun s -> s ev) sinks in
  let serialize = canonical_bytes in
  let proof_msg_bits = Energy.proof_message_bits proof in
  (* Each wave enqueues one proof per directed link (2m messages) while
     the timer fires every [heartbeat_every] *deliveries*: a period at
     or below 2m refills waves faster than they can drain, so channels
     never empty and quiescence is unreachable.  The default therefore
     scales with the network instead of being a constant that silently
     breaks past m = 200. *)
  let heartbeat_every =
    match heartbeat_every with
    | Some h -> h
    | None -> max 400 (4 * Graph.m g)
  in

  (* Mirrors: mirrors.(v).(k) is v's belief about its port-k neighbor. *)
  let mirrors =
    Array.init n (fun v ->
        Array.map
          (fun u ->
            if corrupt_mirrors then
              Transformer.corrupt_state rng
                ~max_height:(St.height states.(u) + 4)
                params (Config.input config u) states.(u)
            else states.(u))
          (Graph.neighbors g v))
  in

  (* Proof pre-images, memoized.  Serializing a transformer state is
     far more expensive than hashing it, and proof waves keep re-proving
     states and mirrors that have not changed since the previous wave —
     so cache the serialization and invalidate on write. *)
  let state_ser = Array.make n None in
  let serialize_state v =
    match state_ser.(v) with
    | Some s -> s
    | None ->
        let s = serialize states.(v) in
        state_ser.(v) <- Some s;
        s
  in
  let mirror_ser =
    Array.map (fun row -> Array.make (Array.length row) None) mirrors
  in
  let serialize_mirror v port =
    match mirror_ser.(v).(port) with
    | Some s -> s
    | None ->
        let s = serialize mirrors.(v).(port) in
        mirror_ser.(v).(port) <- Some s;
        s
  in
  let set_mirror v port st =
    mirrors.(v).(port) <- st;
    mirror_ser.(v).(port) <- None
  in

  (* Directed FIFO channels, indexed densely: channel [chan_of.(u).(i)]
     carries u's messages to its port-i neighbor.  [chan_dst_port] is
     the receiver-side port (precomputed via Graph.port_table — no
     per-delivery [port_of] scan), which doubles as the index of the
     reply channel: the receiver answers u on [chan_of.(v).(port)]. *)
  let nchan = 2 * Graph.m g in
  let chan_dst = Array.make (max 1 nchan) 0 in
  let chan_src = Array.make (max 1 nchan) 0 in
  let chan_dst_port = Array.make (max 1 nchan) 0 in
  let chan_q = Array.init (max 1 nchan) (fun _ -> Queue.create ()) in
  let chan_of =
    let ports = Graph.port_table g in
    let next = ref 0 in
    Array.init n (fun u ->
        Array.mapi
          (fun i v ->
            let id = !next in
            incr next;
            chan_src.(id) <- u;
            chan_dst.(id) <- v;
            chan_dst_port.(id) <- ports.(u).(i);
            id)
          (Graph.neighbors g u))
  in
  (* The naive reference path keeps the original (u, v)-keyed hash
     table so its selection reproduces what every event paid before
     the indexed scheduler existed. *)
  let naive_channels = Hashtbl.create (if indexed then 1 else 4 * Graph.m g) in
  if not indexed then
    Array.iteri
      (fun u row ->
        let nbrs = Graph.neighbors g u in
        Array.iteri
          (fun i cid -> Hashtbl.replace naive_channels (u, nbrs.(i)) cid)
          row)
      chan_of;

  (* The non-empty-channel set, maintained on every send/deliver so the
     indexed path picks a random pending link in O(1) instead of
     rescanning all 2m channels per event. *)
  let active = Chanset.create nchan in
  (* The original code kept channels in a (u, v)-keyed hash table and
     paid one tuple-keyed lookup per send and per delivery; the naive
     reference path keeps that cost (and skips the Chanset upkeep it
     never consults). *)
  let chan_queue cid =
    if indexed then chan_q.(cid)
    else chan_q.(Hashtbl.find naive_channels (chan_src.(cid), chan_dst.(cid)))
  in
  (* One wire-size accounting for every message kind, shared by the
     counters and the event sinks. *)
  let message_bits = function
    | Update_full s -> Energy.full_state_bits sync s
    | Update_delta d -> delta_bits params d
    | Proof _ -> proof_msg_bits
    | Request -> Energy.request_message_bits
    | Full_copy s -> Energy.full_state_bits sync s
  in
  let send cid msg =
    let q = chan_queue cid in
    if indexed && Queue.is_empty q then Chanset.add active cid;
    if observing then
      emit
        (Sent
           {
             src = chan_src.(cid);
             dst = chan_dst.(cid);
             kind = kind_of_message msg;
             bits = message_bits msg;
           });
    Queue.push msg q
  in

  (* Reference (naive) selection: exactly what every event paid before
     the indexed scheduler — a Hashtbl.fold over all 2m channels
     rebuilding the pending-link list, then a random pick from it. *)
  let pick_channel () =
    if indexed then
      if Chanset.is_empty active then -1 else Chanset.pick active rng
    else
      match
        Hashtbl.fold
          (fun _ cid acc ->
            if Queue.is_empty chan_q.(cid) then acc else cid :: acc)
          naive_channels []
      with
      | [] -> -1
      | pending -> Rng.pick_list rng pending
  in

  let c = fresh_counters () in

  let broadcast_move v new_state rule_name =
    let nbrs = Graph.neighbors g v in
    Array.iteri
      (fun i _u ->
        c.update_messages <- c.update_messages + 1;
        let msg =
          match encoding with
          | Full_state -> Update_full new_state
          | Delta -> Update_delta (delta_of_move rule_name new_state)
        in
        c.update_bits <- c.update_bits + message_bits msg;
        send chan_of.(v).(i) msg)
      nbrs
  in

  (* Local step: act on own state + mirrors until no rule is enabled
     (bounded for safety against pathological mirror contents). *)
  let act v =
    let budget = ref (Ss_core.Predicates.bound_to_int params.Transformer.bound) in
    if !budget > 1_000_000 then budget := St.height states.(v) + n + 8;
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      let view =
        {
          Algorithm.input = Config.input config v;
          self = states.(v);
          neighbors = mirrors.(v);
        }
      in
      match Algorithm.enabled_rule algo view with
      | None -> continue := false
      | Some rule ->
          let new_state = rule.Algorithm.action view in
          states.(v) <- new_state;
          state_ser.(v) <- None;
          c.rule_executions <- c.rule_executions + 1;
          broadcast_move v new_state rule.Algorithm.rule_name
    done
  in

  (* Wave nonce.  Proofs carry the nonce of the wave that hashed them;
     a proof from a superseded wave is dropped on delivery instead of
     being compared — the current wave re-verifies every mirror anyway,
     so a stale proof can only add spurious Request/Full_copy traffic
     (e.g. when the repair it would ask for is already queued behind
     it).  Dropping also keeps [requests_in_wave] correctly attributed:
     only current-wave proofs can raise requests, so the reset at wave
     start can never erase or miscount in-flight evidence. *)
  let nonce = ref 0L in
  (* Wave integrity.  Quiescence is deduced from "the last wave raised
     no request" — sound over loss-free FIFO channels, but any chaos
     action (drop, duplicate, reorder, corruption) after the wave began
     can hide a stale mirror or perturb one after its proof verified.
     So every chaos action clears this flag and completion additionally
     requires a chaos-free wave window; the expected wait is
     e^(rate·2m) waves, negligible for the shipped scenario rates. *)
  let wave_intact = ref false in
  let chaos_hit () = wave_intact := false in

  (* Deliver [msg], already popped from (or peeked at the head of)
     channel [cid]: count it, notify sinks, and run the receiver's
     protocol reaction. *)
  let process cid msg =
    c.deliveries <- c.deliveries + 1;
    let v = chan_dst.(cid) in
    if observing then
      emit
        (Delivered { src = chan_src.(cid); dst = v; kind = kind_of_message msg });
    (* The naive path re-derives the receiver-side port with the O(deg)
       scan the original code paid per delivery. *)
    let port =
      if indexed then chan_dst_port.(cid)
      else Graph.port_of g v chan_src.(cid)
    in
    match msg with
    | Update_full s ->
        set_mirror v port s;
        act v
    | Update_delta d ->
        set_mirror v port (apply_delta mirrors.(v).(port) d);
        act v
    | Proof (h, pnonce) ->
        if pnonce < !nonce then
          c.stale_proof_messages <- c.stale_proof_messages + 1
        else if Energy.state_proof ~nonce:pnonce (serialize_mirror v port) <> h
        then begin
          c.request_messages <- c.request_messages + 1;
          c.requests_in_wave <- c.requests_in_wave + 1;
          send chan_of.(v).(port) Request
        end
    | Request ->
        c.full_copy_messages <- c.full_copy_messages + 1;
        c.full_copy_bits <-
          c.full_copy_bits + Energy.full_state_bits sync states.(v);
        send chan_of.(v).(port) (Full_copy states.(v))
    | Full_copy s ->
        set_mirror v port s;
        act v
  in

  let deliver cid =
    let q = chan_queue cid in
    let msg = Queue.pop q in
    if indexed && Queue.is_empty q then Chanset.remove active cid;
    process cid msg
  in

  (* Chaos actions, each charged as one event.  Drop discards the
     channel head; duplicate delivers the head while the copy stays
     queued (so the same message is processed again later); reorder
     rotates the head behind the rest of the FIFO (a no-op disguise
     when the queue holds a single message, where it degenerates to a
     plain delivery). *)
  let chaos_drop cid =
    let q = chan_queue cid in
    let msg = Queue.pop q in
    if indexed && Queue.is_empty q then Chanset.remove active cid;
    c.dropped <- c.dropped + 1;
    chaos_hit ();
    if observing then
      emit
        (Dropped
           {
             src = chan_src.(cid);
             dst = chan_dst.(cid);
             kind = kind_of_message msg;
           })
  in
  let chaos_duplicate cid =
    let msg = Queue.peek (chan_queue cid) in
    c.duplicated <- c.duplicated + 1;
    chaos_hit ();
    if observing then
      emit
        (Duplicated
           {
             src = chan_src.(cid);
             dst = chan_dst.(cid);
             kind = kind_of_message msg;
           });
    process cid msg
  in
  let chaos_reorder cid =
    let q = chan_queue cid in
    if Queue.length q < 2 then deliver cid
    else begin
      let msg = Queue.pop q in
      Queue.push msg q;
      c.reordered <- c.reordered + 1;
      chaos_hit ();
      if observing then
        emit (Reordered { src = chan_src.(cid); dst = chan_dst.(cid) })
    end
  in

  let node_scratch = Array.make n 0 in
  let pick_enabled_on_mirrors () =
    let k = ref 0 in
    for v = 0 to n - 1 do
      let view =
        {
          Algorithm.input = Config.input config v;
          self = states.(v);
          neighbors = mirrors.(v);
        }
      in
      if Algorithm.is_enabled algo view then begin
        node_scratch.(!k) <- v;
        incr k
      end
    done;
    if !k = 0 then -1 else node_scratch.(Rng.int rng !k)
  in

  (* [at] is the event index firing the wave, recorded so the periodic
     heartbeat never stacks a second wave right on top of a
     quiescence-probe wave (which would supersede its nonce and erase
     its evidence before a single proof is delivered). *)
  let last_wave_event = ref (-1) in
  let proof_wave ~at =
    last_wave_event := at;
    wave_intact := true;
    nonce := Int64.add !nonce 1L;
    c.proof_waves <- c.proof_waves + 1;
    c.requests_in_wave <- 0;
    if observing then emit (Wave { nonce = Int64.to_int !nonce });
    Graph.iter_nodes g (fun v ->
        let h = Energy.state_proof ~nonce:!nonce (serialize_state v) in
        Array.iter
          (fun cid ->
            c.proof_messages <- c.proof_messages + 1;
            c.proof_bits_total <- c.proof_bits_total + proof_msg_bits;
            send cid (Proof (h, !nonce)))
          chan_of.(v))
  in

  let rec loop events =
    if events >= max_events then Budget.Tripped Budget.Deliveries
    else if deadline () then Budget.Tripped Budget.Deadline
    else begin
      (* Scheduled transient corruption: mutate a victim's real state
         mid-run, exactly as §3's arbitrary-configuration premise
         allows.  The serialization cache must be invalidated or the
         next wave would prove the pre-corruption bytes. *)
      (match chaos with
      | Some ch when Ss_chaos.Fault_plan.corruption_due ch.plan ~event:events
        ->
          let crng = Ss_chaos.Fault_plan.rng ch.plan in
          let victim = Rng.int crng n in
          states.(victim) <- ch.mutate crng victim states.(victim);
          state_ser.(victim) <- None;
          c.corruptions <- c.corruptions + 1;
          chaos_hit ();
          if observing then emit (Corrupted { node = victim })
      | _ -> ());
      (* Periodic heartbeat: without it, delta updates applied to a
         corrupted mirror would keep it wrong forever and the system
         could churn indefinitely (§6's proofs are timer-driven, not
         quiescence-driven).  Suppressed when the previous event already
         fired a quiescence-probe wave — stacking a second wave would
         supersede the probe's nonce before any of its proofs land. *)
      if
        events > 0
        && events mod heartbeat_every = 0
        && !last_wave_event < events - 1
      then proof_wave ~at:events;
      match pick_channel () with
      | cid when cid >= 0 ->
          (match chaos with
          | None -> deliver cid
          | Some ch -> (
              match Ss_chaos.Fault_plan.consult ch.plan ~event:events with
              | Ss_chaos.Fault_plan.Deliver -> deliver cid
              | Ss_chaos.Fault_plan.Drop -> chaos_drop cid
              | Ss_chaos.Fault_plan.Duplicate -> chaos_duplicate cid
              | Ss_chaos.Fault_plan.Reorder -> chaos_reorder cid));
          loop (events + 1)
      | _ -> (
          match pick_enabled_on_mirrors () with
          | v when v >= 0 ->
              act v;
              loop (events + 1)
          | _ ->
              (* Local quiescence.  The last wave's proofs have all been
                 delivered (no channel is pending) and, being
                 current-wave on delivery, none were dropped as stale:
                 if the wave verified every mirror (no request) and no
                 chaos action touched the window, the states are
                 terminal for the atomic-state transformer; otherwise
                 re-probe.  The deadline is re-checked first so a run
                 that drains its channels past its time budget reports
                 [Tripped Deadline] instead of spinning probe waves (or
                 claiming [Completed]) on borrowed time. *)
              if c.proof_waves > 0 && c.requests_in_wave = 0 && !wave_intact
              then Budget.Completed
              else if deadline () then Budget.Tripped Budget.Deadline
              else begin
                proof_wave ~at:events;
                loop (events + 1)
              end)
    end
  in
  let outcome = loop 0 in
  let stats =
    {
      deliveries = c.deliveries;
      rule_executions = c.rule_executions;
      update_messages = c.update_messages;
      update_bits = c.update_bits;
      proof_messages = c.proof_messages;
      proof_bits = c.proof_bits_total;
      stale_proof_messages = c.stale_proof_messages;
      request_messages = c.request_messages;
      full_copy_messages = c.full_copy_messages;
      full_copy_bits = c.full_copy_bits;
      proof_waves = c.proof_waves;
      dropped_messages = c.dropped;
      reordered_messages = c.reordered;
      duplicated_messages = c.duplicated;
      corruption_events = c.corruptions;
      quiescent = outcome = Budget.Completed;
      outcome;
    }
  in
  (Config.with_states config states, stats)

let run ?encoding ?budget ?max_events ?proof ?heartbeat_every ?now ?chaos ~rng
    ?corrupt_mirrors ?sinks params config =
  run_impl ~indexed:true ?encoding ?budget ?max_events ?proof ?heartbeat_every
    ?now ?chaos ~rng ?corrupt_mirrors ?sinks params config

let run_naive ?encoding ?budget ?max_events ?proof ?heartbeat_every ?now ~rng
    ?corrupt_mirrors ?sinks params config =
  run_impl ~indexed:false ?encoding ?budget ?max_events ?proof ?heartbeat_every
    ?now ~rng ?corrupt_mirrors ?sinks params config

let report ?(label = "msgnet-run") ?seed ?wall_s ?timebase (s : stats) =
  Run_report.v ?seed ?wall_s ?timebase ~outcome:s.outcome label
    (Run_report.Msgnet
       {
         Run_report.deliveries = s.deliveries;
         rule_executions = s.rule_executions;
         update_messages = s.update_messages;
         update_bits = s.update_bits;
         proof_messages = s.proof_messages;
         proof_bits = s.proof_bits;
         stale_proof_messages = s.stale_proof_messages;
         request_messages = s.request_messages;
         full_copy_messages = s.full_copy_messages;
         full_copy_bits = s.full_copy_bits;
         proof_waves = s.proof_waves;
         dropped_messages = s.dropped_messages;
         reordered_messages = s.reordered_messages;
         duplicated_messages = s.duplicated_messages;
         corruption_events = s.corruption_events;
         total_bits = total_bits s;
       })
