(** A message-passing realization of the transformer — §6 made
    executable.

    The atomic-state model assumes a node reads its neighbors' states
    directly.  §6 sketches how to implement this over asynchronous
    message passing: every node keeps a {e mirror} (last known copy)
    of each neighbor's state; a node that moves sends each neighbor an
    update — either its whole state ([O(B·S)] bits) or a {e delta}
    ([O(S + log B)] bits: the rule label plus its payload); and nodes
    periodically exchange {e proofs} (a salted hash plus its wave
    nonce) so that mirrors corrupted by transient faults are detected
    and repaired via an explicit full-copy request.

    This module is an event-driven simulator of that protocol:

    - per-directed-link FIFO channels with adversarial (random)
      delivery interleaving; the event loop picks a pending link in
      O(1) amortized from an incrementally maintained non-empty
      channel set ({!Chanset}) — the channel-level analogue of the
      engine's dirty-set scheduler — instead of rescanning all [2m]
      channels per delivered message;
    - guard evaluation over the node's own state and its mirrors —
      which may be stale or even corrupted; wrong moves taken on stale
      information are later corrected by the transformer's own error
      mechanism, which is exactly why self-stabilization makes the
      implementation simple;
    - proof waves tagged with a monotone {e nonce}: a proof delivered
      after its wave has been superseded is dropped (counted in
      [stale_proof_messages]) rather than compared, because the newer
      wave re-verifies every mirror anyway — comparing it could only
      raise spurious [Request]/[Full_copy] repair traffic (e.g. when
      the repair it asks for is already queued behind it), and its
      request would be mis-attributed to the current wave's
      [requests_in_wave] accounting;
    - quiescence detection: when no message is in flight and no node
      is enabled on its mirrors, a proof wave runs; the execution ends
      when a wave triggers no repair (all mirrors verified accurate),
      at which point the true states form a terminal configuration of
      the atomic-state transformer.  Because stale proofs never raise
      requests, the [requests_in_wave = 0] test counts evidence from
      the deciding wave only.

    Faults can hit both the node states and the mirrors
    independently. *)

type encoding =
  | Full_state  (** Every update carries the whole state. *)
  | Delta  (** Updates carry rule label + payload (§6). *)

type msg_kind = K_update | K_proof | K_request | K_full_copy
(** Wire-level message class, as seen by event sinks. *)

type layout = [ `Auto | `Packed | `Boxed ]
(** Mirror storage policy, mirroring the engine's [--layout]
    (DESIGN.md §12, §15).  [`Auto] packs all [2m] mirrors into one
    {!Ss_core.Cellpack} arena exactly when the run has both a [codec]
    and a finite transformer bound; [`Packed] demands it (raising
    [Invalid_argument] when either is missing); [`Boxed] keeps the
    historical per-mirror buffers. *)

type event =
  | Sent of { src : int; dst : int; kind : msg_kind; bits : int }
      (** A message was enqueued on the [src → dst] channel; [bits] is
          its wire size, the same figure the [stats] bit counters
          accumulate. *)
  | Delivered of { src : int; dst : int; kind : msg_kind }
      (** The head of the [src → dst] channel was delivered. *)
  | Wave of { nonce : int }  (** A proof wave started. *)
  | Dropped of { src : int; dst : int; kind : msg_kind }
      (** The head of the [src → dst] channel was discarded by the
          fault plan instead of delivered. *)
  | Duplicated of { src : int; dst : int; kind : msg_kind }
      (** The head of the [src → dst] channel is about to be delivered
          (a [Delivered] event follows) while a copy stays at the
          head — the same message will be processed again later. *)
  | Reordered of { src : int; dst : int }
      (** The head of the [src → dst] channel was rotated behind the
          rest of its FIFO. *)
  | Corrupted of { node : int }
      (** A scheduled transient fault mutated [node]'s true state
          mid-run. *)

type sink = event -> unit
(** A sink on the protocol's event stream.  Same purity contract as
    {!Ss_sim.Engine.observer} (DESIGN.md §9): sinks observe, they must
    not mutate protocol state.  When no sink is registered the event
    loop allocates no events. *)

type 's chaos = {
  plan : Ss_chaos.Fault_plan.t;
      (** Per-delivery drop/duplicate/reorder verdicts plus the
          schedule of mid-run corruption events.  The plan owns a
          private RNG stream, so attaching one never perturbs the
          scheduler's own draws: a {!Ss_chaos.Fault_plan.null} plan
          replays byte-identically to a run with no [chaos] at all. *)
  mutate : Ss_prelude.Rng.t -> int -> 's Ss_core.Trans_state.t -> 's Ss_core.Trans_state.t;
      (** [mutate rng v st] is the corrupted replacement for node [v]'s
          state [st]; typically built from
          {!Ss_core.Transformer.corrupt_state}.  Draws only from the
          given (plan-owned) rng. *)
}
(** A fault-injection attachment for {!run}. *)

type stats = {
  deliveries : int;  (** Total messages delivered. *)
  rule_executions : int;  (** Moves taken by nodes (on possibly stale views). *)
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
      (** [proof_messages * Energy.proof_message_bits]: hash plus wave
          nonce per proof. *)
  stale_proof_messages : int;
      (** Proofs delivered after their wave was superseded and dropped
          without comparison. *)
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;  (** Timer- and quiescence-triggered proof waves. *)
  dropped_messages : int;
      (** Messages discarded at delivery-pick time by the fault plan. *)
  reordered_messages : int;
      (** Channel heads rotated to the back instead of delivered. *)
  duplicated_messages : int;
      (** Messages delivered while a copy stayed at the channel head. *)
  corruption_events : int;
      (** Scheduled mid-run transient corruptions applied. *)
  peak_queued_bits : int;
      (** High-water mark of in-flight wire bits: bits enter on send and
          leave on delivery or drop, so this is the protocol's peak
          channel-buffer load — the figure a deployment would provision
          per-link buffers against. *)
  mirror_bytes : int;
      (** Resident bytes behind the [2m] mirrors at the end of the run:
          the packed arena's flat arrays when mirrors are packed, an
          estimate (one word per cell plus a small per-state overhead)
          for boxed mirrors, plus the per-mirror handles. *)
  quiescent : bool;  (** Reached verified quiescence within the budget.
                         Equivalent to [outcome = Completed]. *)
  outcome : Ss_report.Budget.outcome;
      (** [Completed] on verified quiescence, [Tripped Deliveries] when
          the event cap ran out, [Tripped Deadline] on the wall-clock
          limit. *)
}

val total_bits : stats -> int
(** All traffic: updates + proofs + requests
    ([Energy.request_message_bits] each) + full copies. *)

val canonical_bytes : 's Ss_core.Trans_state.t -> string
(** Canonical wire/proof pre-image of a state: a [Marshal] dump
    ([No_sharing]) of its logical snapshot [(status, init, cells)].
    Logically equal states encode to identical bytes regardless of the
    operation sequence that built them — backing-buffer capacity,
    version stamps and physical sharing never reach the wire.  This is
    the pre-image hashed by proof waves ({!Ss_energy.Energy.state_proof})
    and the encoding measured by [Full_copy]/[Update_full] byte
    accounting. *)

val codec_bytes : 's Ss_core.Cellpack.codec -> 's Ss_core.Trans_state.t -> string
(** Codec proof pre-image: the same logical content as
    {!canonical_bytes} — status byte, then init and each cell as the
    codec's fixed-width little-endian words — but written through the
    algorithm's {!Ss_core.Cellpack} codec with no boxed snapshot and no
    [Marshal] walk.  Because the byte length determines the height, the
    first byte the status, and the per-cell word image is injective
    (unpack inverts pack), two states map to equal bytes iff their
    snapshots are equal: proof waves may hash either encoding and reach
    the same verdicts.  [run ~codec] uses this encoder (through a
    reused buffer) for every proof pre-image; this entry point is the
    allocation-honest version for tests. *)

val run :
  ?codec:'s Ss_core.Cellpack.codec ->
  ?layout:layout ->
  ?encoding:encoding ->
  ?budget:Ss_report.Budget.t ->
  ?max_events:int ->
  ?proof:Ss_energy.Energy.proof_cost ->
  ?heartbeat_every:int ->
  ?now:(unit -> float) ->
  ?chaos:'s chaos ->
  rng:Ss_prelude.Rng.t ->
  ?corrupt_mirrors:bool ->
  ?sinks:sink list ->
  ('s, 'i) Ss_core.Predicates.params ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t * stats
(** [run ~rng params config] executes the protocol from the given
    (possibly corrupted) true states.  With [corrupt_mirrors] (default
    [true]) the initial mirrors are independently scrambled, modelling
    faults that also hit the cached copies.  A proof wave fires every
    [heartbeat_every] events (default [max 400 (4 * m)]) — the
    timer-driven §6 heartbeat; without it, delta updates applied to a
    corrupted mirror would never be repaired and the system could
    churn forever — and additionally whenever the system looks locally
    quiescent.  Each wave enqueues [2m] proof messages, so a period at
    or below [2m] refills waves faster than they drain and quiescence
    becomes unreachable: the default scales with the network, and
    explicit values near [2m] are stress settings that converge slowly
    (or, below [2m], not at all).

    The unified [budget] composes with the historical [max_events] —
    the tightest provided limit wins; [budget.deliveries] caps events
    (each event delivers at most one message, so [stats.deliveries]
    never exceeds it), and [budget.deadline_s] is checked once per
    event — against [now] when given (a virtual clock such as
    {!Ss_chaos.Clock.now_fn} makes deadline budgets deterministic), the
    monotonic machine clock otherwise — and re-checked on the
    channels-drained exit path, so a run that drains past its time
    budget reports [Tripped Deadline] rather than [Completed].
    Defaults: [encoding = Delta], event cap [2_000_000],
    [proof = Energy.default_proof_cost] (64-bit hash + 64-bit nonce).
    Returns the final true states and the traffic/work accounting.

    [chaos] attaches deterministic fault injection: each pending-link
    pick consults the plan for a drop/duplicate/reorder verdict
    (charged as one event either way and counted in the
    [dropped_messages] / [duplicated_messages] / [reordered_messages]
    stats), and scheduled corruption events mutate a random victim's
    true state mid-run ([corruption_events]).  Any chaos action
    invalidates the current proof wave's evidence, so verified
    quiescence additionally requires one chaos-free wave window —
    [Completed] still certifies a terminal configuration even under
    faults.

    [codec] switches every proof pre-image from the [Marshal]
    reference encoding to the algorithm's {!codec_bytes} encoding
    (equality-equivalent, so proof verdicts are unchanged) and
    int-packs [D_ru] payload cells onto the wire rings.  [layout]
    (default [`Auto]) selects the mirror backing per {!type-layout}.
    Pre-images are additionally memoized by the state's §10 version
    stamp, so a proof wave only re-encodes states and mirrors that
    changed since the last wave.

    Each event costs O(1) amortized in the number of channels: pending
    links come from the maintained {!Chanset}, pending messages live
    int-packed in per-link {!Ringbuf} rings (boxed variants in a
    FIFO-aligned side queue), and the drained-channel guard scan is
    replaced by a dirty-candidate set — nodes whose state or mirrors
    changed since their guards last evaluated disabled — picked by
    rejection sampling, which preserves the uniform choice over
    enabled nodes.  Differentially tested against {!run_naive}. *)

val run_naive :
  ?encoding:encoding ->
  ?budget:Ss_report.Budget.t ->
  ?max_events:int ->
  ?proof:Ss_energy.Energy.proof_cost ->
  ?heartbeat_every:int ->
  ?now:(unit -> float) ->
  rng:Ss_prelude.Rng.t ->
  ?corrupt_mirrors:bool ->
  ?sinks:sink list ->
  ('s, 'i) Ss_core.Predicates.params ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t * stats
(** Reference event loop: identical protocol, but with the historical
    per-event costs and representations — every event rebuilds the
    pending-link list with a [Hashtbl.fold] over all [2m] channels,
    every send and delivery resolves its boxed [Queue.t] through a
    tuple-keyed hash lookup, every delivery re-derives the
    receiver-side port with an O(degree) [Graph.port_of] scan, every
    drained-channel event scans all [n] guards, mirrors stay boxed,
    and proof pre-images are [Marshal] dumps ({!canonical_bytes}).
    The random link choice consumes the rng
    differently from {!run}, so the two produce different (equally
    valid) interleavings; both must reach the same terminal states.
    Kept for differential testing and benchmarking.  Deliberately takes
    no [chaos]: the naive loop is the fault-free reference twin that
    chaos runs are differentially checked against. *)

val report :
  ?label:string ->
  ?seed:int ->
  ?wall_s:float ->
  ?timebase:Ss_report.Run_report.timebase ->
  stats ->
  Ss_report.Run_report.t
(** The run's summary as a structured {!Ss_report.Run_report.t} (kind
    ["msgnet"]): the full traffic accounting plus {!total_bits}. *)
