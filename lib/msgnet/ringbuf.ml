(* Chunked circular buffer of variable-length int records — the flat
   channel storage behind the indexed message-network loop.

   Each record is stored as [length; payload...] in a power-of-two
   circular int array that doubles on overflow, so a channel queue
   costs a handful of flat words per pending message instead of a
   boxed [Queue.t] cell plus a boxed message variant (and, for proofs,
   two boxed [Int64]s).  The payload words carry the caller's own
   encoding; this module only frames them FIFO. *)

type t = {
  mutable data : int array;  (* power-of-two capacity *)
  mutable head : int;  (* index of the first queued word *)
  mutable used : int;  (* queued words, record headers included *)
  mutable count : int;  (* queued records *)
}

(* Small initial capacity: a run allocates one ring per directed link
   (2m of them), most of which are near-empty most of the time. *)
let initial_capacity = 8

let create () =
  { data = Array.make initial_capacity 0; head = 0; used = 0; count = 0 }

let records t = t.count
let is_empty t = t.count = 0
let words t = t.used
let capacity_words t = Array.length t.data

let grow t needed =
  let cap = Array.length t.data in
  let cap' = ref (2 * cap) in
  while !cap' < t.used + needed do
    cap' := 2 * !cap'
  done;
  let data = Array.make !cap' 0 in
  (* Unroll the circular layout into the fresh array. *)
  let tail_len = min t.used (cap - t.head) in
  Array.blit t.data t.head data 0 tail_len;
  Array.blit t.data 0 data tail_len (t.used - tail_len);
  t.data <- data;
  t.head <- 0

let push t src len =
  if len < 0 || len > Array.length src then invalid_arg "Ringbuf.push";
  if t.used + len + 1 > Array.length t.data then grow t (len + 1);
  let mask = Array.length t.data - 1 in
  let w = (t.head + t.used) land mask in
  t.data.(w) <- len;
  for i = 0 to len - 1 do
    t.data.((w + 1 + i) land mask) <- src.(i)
  done;
  t.used <- t.used + len + 1;
  t.count <- t.count + 1

let peek t dst =
  if t.count = 0 then invalid_arg "Ringbuf.peek: empty";
  let mask = Array.length t.data - 1 in
  let len = t.data.(t.head) in
  for i = 0 to len - 1 do
    dst.(i) <- t.data.((t.head + 1 + i) land mask)
  done;
  len

let pop t dst =
  let len = peek t dst in
  t.head <- (t.head + len + 1) land (Array.length t.data - 1);
  t.used <- t.used - len - 1;
  t.count <- t.count - 1;
  len
