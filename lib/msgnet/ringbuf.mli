(** Chunked circular buffers of variable-length int records — the
    flat FIFO storage behind the indexed message-network channels
    (DESIGN.md §15).

    A record is a caller-encoded span of machine words; the buffer
    frames records as [length; payload...] in a power-of-two circular
    int array that doubles on overflow.  Pending messages therefore
    cost flat unboxed words instead of a [Queue.t] cell plus a boxed
    variant, which removes both the per-message allocation and the GC
    scanning of the 2m channel queues at 10^5–10^6-node scale. *)

type t

val create : unit -> t
(** A fresh empty buffer with a few words of capacity. *)

val records : t -> int
(** Number of queued records. *)

val is_empty : t -> bool

val words : t -> int
(** Queued words, record headers included — wire-memory accounting. *)

val capacity_words : t -> int
(** Current backing capacity in words (resident footprint). *)

val push : t -> int array -> int -> unit
(** [push t src len] enqueues the record [src.(0 .. len-1)] (copied).
    Amortized O(len); doubles the backing array when full.
    @raise Invalid_argument when [len] is negative or exceeds
    [Array.length src]. *)

val peek : t -> int array -> int
(** [peek t dst] copies the head record's payload into
    [dst.(0 .. len-1)] and returns its length [len], without
    dequeuing.  [dst] must be large enough.
    @raise Invalid_argument on an empty buffer. *)

val pop : t -> int array -> int
(** [pop t dst] is {!peek} followed by dequeuing the head record. *)
