let default_jobs () = Domain.recommended_domain_count ()

(* The knob and the lazily-created shared pool.  Guarded by a mutex so
   concurrent campaigns (themselves pool tasks or user domains) can
   race on first use without double-spawning; note pool tasks that
   reach [map] run sequentially anyway (Pool.in_worker). *)
let lock = Mutex.create ()
let setting = ref None (* None: default_jobs () until told otherwise *)
let shared : Pool.t option ref = ref None
let exit_hook = ref false

let jobs () =
  Mutex.lock lock;
  let j = match !setting with Some j -> j | None -> default_jobs () in
  Mutex.unlock lock;
  j

let shutdown_shared_locked () =
  match !shared with
  | Some pool ->
      shared := None;
      Pool.shutdown pool
  | None -> ()

let set_jobs j =
  if j < 1 then invalid_arg "Par.set_jobs: jobs must be >= 1";
  Mutex.lock lock;
  (match !shared with
  | Some pool when Pool.size pool <> j -> shutdown_shared_locked ()
  | _ -> ());
  setting := Some j;
  Mutex.unlock lock

let pool () =
  Mutex.lock lock;
  let p =
    match !shared with
    | Some pool -> pool
    | None ->
        let j = match !setting with Some j -> j | None -> default_jobs () in
        let pool = Pool.create ~jobs:j in
        shared := Some pool;
        if not !exit_hook then begin
          exit_hook := true;
          at_exit (fun () ->
              Mutex.lock lock;
              shutdown_shared_locked ();
              Mutex.unlock lock)
        end;
        pool
  in
  Mutex.unlock lock;
  p

let map f l = Pool.map_list (pool ()) f l
let map_array f xs = Pool.map (pool ()) f xs
