(** Process-wide parallelism knob and shared pool.

    The CLI / bench harness sets the job count once at startup
    ([-j]/[--jobs], default {!default_jobs}); the campaign layer fans
    out through {!map}/{!map_array} without threading a pool through
    every signature.  All determinism guarantees of {!Pool} apply: the
    job count never changes any output, only the wall clock. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** [set_jobs j] sets the shared pool size.  An existing shared pool
    of a different size is shut down and replaced on next use.
    @raise Invalid_argument if [j < 1]. *)

val jobs : unit -> int
(** Current setting (defaults to {!default_jobs} until [set_jobs]). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f l] is [List.map f l] computed on the shared pool (created
    lazily at the current job count; joined at exit). *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** [map_array f xs] is [Array.map f xs] on the shared pool. *)
