(* Fixed-size domain pool over stdlib Domain/Mutex/Condition.

   One shared FIFO of thunks; [jobs - 1] spawned worker domains plus
   the calling domain drain it.  Each [map] call tracks its own
   completion (per-call mutex/condition/counter), so several calls can
   be in flight on one pool — including calls issued by helped tasks
   running on the caller's domain.  Tasks run with the [worker] DLS
   flag set, which makes any nested [map] degrade to sequential
   execution in that task's domain: no pool re-entrancy, no deadlock,
   and (because results merge in index order) no observable difference
   either way. *)

type t = {
  size : int;
  mutex : Mutex.t;  (* guards [queue], [stop] *)
  work : Condition.t;  (* signaled on enqueue and on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_key

(* Tasks never raise: [map] wraps user code in a result capture. *)
let run_task task =
  let saved = Domain.DLS.get worker_key in
  Domain.DLS.set worker_key true;
  task ();
  Domain.DLS.set worker_key saved

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.work t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stop *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    run_task task;
    worker_loop t
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      size = jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set worker_key true;
            worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

(* Completion of one [map] call. *)
type 'b call = {
  results : 'b option array;
  call_mutex : Mutex.t;
  finished : Condition.t;
  mutable remaining : int;
}

let map t f xs =
  let n = Array.length xs in
  if t.size <= 1 || n <= 1 || in_worker () then Array.map f xs
  else begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    let call =
      {
        results = Array.make n None;
        call_mutex = Mutex.create ();
        finished = Condition.create ();
        remaining = n;
      }
    in
    let task i () =
      let r =
        try Ok (f xs.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      (* The write below is published to the caller by the counter
         update under [call_mutex]; the caller only reads [results]
         after observing [remaining = 0] under the same mutex. *)
      call.results.(i) <- Some r;
      Mutex.lock call.call_mutex;
      call.remaining <- call.remaining - 1;
      if call.remaining = 0 then Condition.signal call.finished;
      Mutex.unlock call.call_mutex
    in
    for i = 0 to n - 1 do
      Queue.push (task i) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The caller drains the shared queue alongside the workers... *)
    let rec help () =
      Mutex.lock t.mutex;
      let task =
        if Queue.is_empty t.queue then None else Some (Queue.pop t.queue)
      in
      Mutex.unlock t.mutex;
      match task with
      | Some task ->
          run_task task;
          help ()
      | None -> ()
    in
    help ();
    (* ...then blocks until the last in-flight task of THIS call lands. *)
    Mutex.lock call.call_mutex;
    while call.remaining > 0 do
      Condition.wait call.finished call.call_mutex
    done;
    Mutex.unlock call.call_mutex;
    (* Index-ordered merge; first failing index wins, and whole-call
       settlement above means no task of this call is still running. *)
    for i = 0 to n - 1 do
      match call.results.(i) with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) -> ()
      | None -> assert false
    done;
    Array.map
      (function Some (Ok v) -> v | _ -> assert false)
      call.results
  end

let map_list t f l = Array.to_list (map t f (Array.of_list l))

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
