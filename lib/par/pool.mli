(** Fixed-size domain pool for deterministic campaign fan-out.

    Built on stdlib [Domain]/[Mutex]/[Condition] only (no domainslib).
    The contract that the whole experiment layer rests on:

    {ul
    {- {b Index-ordered merge.}  [map pool f xs] returns exactly
       [Array.map f xs]: results land at their input's index and
       exceptions are re-raised in input order, so output (and
       therefore every rendered table) is byte-identical regardless of
       the job count — [-j 1] ≡ [-j N].}
    {- {b Exception capture.}  A raising task does not kill a worker
       domain; the first (lowest-index) exception is re-raised in the
       caller with its original backtrace, after all tasks of the call
       have settled.}
    {- {b No nested pools.}  Calling [map] from inside a pool task
       runs sequentially in that task's domain.  Combined with the
       invariant that every task constructs its own algorithm, config
       and RNG (DESIGN.md §11), this keeps arbitrary nesting of
       campaign layers both safe and deterministic.}}

    The caller's domain participates in draining the queue, so a pool
    of size [j] applies [f] on at most [j] domains ([j - 1] spawned
    workers plus the caller). *)

type t
(** A pool of worker domains.  Pools are reusable across any number of
    [map] calls and must be released with {!shutdown}. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains.
    [jobs <= 1] gives a pool whose [map] is plain sequential
    [Array.map].
    @raise Invalid_argument if [jobs < 1]. *)

val size : t -> int
(** [size t] is the [jobs] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element of [xs], fanning tasks
    out over the pool, and merges results in index order (see above).
    Tasks must not themselves block on pool work other than via this
    module (nested calls run sequentially). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list t f l] is [map] over a list, preserving order. *)

val shutdown : t -> unit
(** [shutdown t] joins all worker domains.  Idempotent.  [map] on a
    shut-down pool raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val in_worker : unit -> bool
(** [in_worker ()] is [true] when called from inside a pool task —
    the condition under which [map] degrades to sequential. *)
