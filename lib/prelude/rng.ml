type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s }

let split_at ~seed ~index =
  if index < 0 then invalid_arg "Rng.split_at: index must be >= 0";
  (* O(1) indexed derivation: jump the splitmix64 state [index + 1]
     gammas past the seed point and re-mix twice.  Advancing the base
     generator (create/bits64/split) never lands on these states, and
     distinct indices differ by whole gammas, so streams are mutually
     decorrelated and each (seed, index) pair names one reproducible
     stream — the per-task RNG contract of the parallel campaign
     layer. *)
  let base = mix64 (Int64.of_int seed) in
  let z = Int64.add base (Int64.mul golden_gamma (Int64.of_int (index + 1))) in
  { state = mix64 (mix64 z) }

let split_per g l =
  (* Splits happen in list order on the caller's domain, so pairing is
     deterministic no matter where the returned generators are later
     consumed. *)
  List.rev
    (List.fold_left (fun acc x -> (x, split g) :: acc) [] l)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 g) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub (Int64.sub r v) (Int64.sub bound64 1L) < 0L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let chance g p =
  if p >= 1.0 then true else if p <= 0.0 then false else float g 1.0 < p

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  (* Array-backed: one [int] draw (same stream as the historical
     [List.nth] version) followed by an O(1) index instead of a second
     O(length) list traversal. *)
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> pick g (Array.of_list l)

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let subset g ~p l = List.filter (fun _ -> chance g p) l

let nonempty_subset g ~p l =
  match l with
  | [] -> invalid_arg "Rng.nonempty_subset: empty list"
  | _ -> (
      match subset g ~p l with [] -> [ pick_list g l ] | s -> s)
