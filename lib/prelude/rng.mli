(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the repository flows through this module so that
    every experiment and every property-based test is reproducible
    bit-for-bit from an explicit integer seed.  The generator is the
    splitmix64 sequence of Steele, Lea and Flood, which has a 64-bit
    state, passes BigCrush, and is trivially splittable. *)

type t
(** A mutable generator.  Values of type [t] are cheap to create and
    copy; two generators created from the same seed produce the same
    stream. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically seeded
    with [seed]. *)

val copy : t -> t
(** [copy g] is an independent generator that continues the exact
    stream of [g] without affecting it. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (for all practical purposes) independent of the rest of [g]'s
    stream.  Useful to hand sub-generators to sub-experiments. *)

val split_at : seed:int -> index:int -> t
(** [split_at ~seed ~index] is a deterministic generator for the
    [index]-th task of a campaign rooted at [seed]: same pair, same
    stream, always — independent of job count, scheduling order or any
    other generator's draws.  Distinct indices (and distinct seeds)
    give decorrelated streams.  O(1).
    @raise Invalid_argument if [index < 0]. *)

val split_per : t -> 'a list -> ('a * t) list
(** [split_per g l] pairs each element of [l] with [split g], splitting
    in list order.  Used to pre-derive per-task generators before a
    parallel fan-out so the parent stream is consumed identically
    whether the tasks then run sequentially or on a pool. *)

val bits64 : t -> int64
(** [bits64 g] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is a uniform integer in [\[0, bound)].  [bound] must
    be positive.
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is a uniform integer in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** [bool g] is a uniform boolean. *)

val float : t -> float -> float
(** [float g x] is a uniform float in [\[0, x)]. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** [pick g a] is a uniform element of [a].
    @raise Invalid_argument if [a] is empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list g l] is a uniform element of [l].
    @raise Invalid_argument if [l] is empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place, uniformly (Fisher–Yates). *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniform permutation of [0..n-1]. *)

val subset : t -> p:float -> 'a list -> 'a list
(** [subset g ~p l] keeps each element of [l] independently with
    probability [p], preserving order.  The result may be empty. *)

val nonempty_subset : t -> p:float -> 'a list -> 'a list
(** [nonempty_subset g ~p l] is [subset g ~p l], except that when the
    sampled subset is empty one uniform element of [l] is returned
    instead.
    @raise Invalid_argument if [l] is empty. *)
