type cell = S of string | I of int
type t = { headers : string list; mutable rev_rows : cell list list }

let create headers = { headers; rev_rows = [] }
let add t cells = t.rev_rows <- cells :: t.rev_rows
let add_row t cells = add t (List.map (fun c -> S c) cells)
let add_int_row t label xs = add t (S label :: List.map (fun x -> I x) xs)
let headers t = t.headers
let rows t = List.rev t.rev_rows
let cell_text = function S s -> s | I i -> string_of_int i

let widths t =
  let all = t.headers :: List.rev_map (List.map cell_text) t.rev_rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) row
  in
  List.iter feed all;
  w

let pad s n = s ^ String.make (max 0 (n - String.length s)) ' '

let render ppf t =
  let w = widths t in
  let line row =
    let cells =
      List.mapi (fun i c -> pad c w.(i)) row
      @ List.init
          (Array.length w - List.length row)
          (fun j -> pad "" w.(List.length row + j))
    in
    String.concat "  " cells
  in
  Format.fprintf ppf "%s@." (line t.headers);
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  Format.fprintf ppf "%s@." rule;
  List.iter
    (fun r -> Format.fprintf ppf "%s@." (line (List.map cell_text r)))
    (rows t)

let print t =
  render Format.std_formatter t;
  Format.pp_print_newline Format.std_formatter ()
