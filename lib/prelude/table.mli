(** Plain-text table rendering for experiment reports.

    The benchmark harness prints one table per paper artefact; this
    module renders aligned, boxed ASCII tables on any formatter.

    Cells are {e typed} ({!cell}): a row keeps integers as integers
    rather than pre-rendered strings, so the same table value can be
    rendered as text and serialized to machine-readable JSON (see
    [Ss_report.Run_report.of_table]) with guaranteed-identical
    content — the text emitter and the JSON emitter read one record. *)

type cell =
  | S of string  (** Free-form text cell. *)
  | I of int  (** Integer cell; renders as [string_of_int]. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add : t -> cell list -> unit
(** [add t cells] appends a typed data row.  Rows shorter than the
    header are padded with empty cells; longer rows extend the table
    width. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row of text cells ([S]). *)

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label xs] appends [label] followed by [xs] as
    integer cells. *)

val headers : t -> string list
(** The column headers, in order. *)

val rows : t -> cell list list
(** The data rows in insertion order (typed — render with
    {!cell_text}). *)

val cell_text : cell -> string
(** The text rendering of one cell (exactly what {!render} prints). *)

val render : Format.formatter -> t -> unit
(** Pretty-print the table with aligned columns and a separator line
    under the header. *)

val print : t -> unit
(** [print t] renders [t] on [Format.std_formatter] followed by a
    newline flush. *)
