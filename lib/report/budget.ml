type t = {
  steps : int option;
  moves : int option;
  deliveries : int option;
  deadline_s : float option;
}

let unlimited = { steps = None; moves = None; deliveries = None; deadline_s = None }

let v ?steps ?moves ?deliveries ?deadline_s () =
  { steps; moves; deliveries; deadline_s }

type limit = Steps | Moves | Deliveries | Deadline
type outcome = Completed | Tripped of limit

let resolve ~default legacy budget =
  match (legacy, budget) with
  | None, None -> default
  | Some a, None -> a
  | None, Some b -> b
  | Some a, Some b -> min a b

let now_s =
  (* A deadline must survive NTP steps and machine load, so it is
     measured against CLOCK_MONOTONIC (the bechamel stub, ns since an
     arbitrary origin); [Sys.time] (processor time) undershoots wall
    time arbitrarily on blocked runs and [Unix.gettimeofday] jumps.
    Probe once: a zero reading means the stub has no monotonic source
    on this platform — degrade to wall time. *)
  if Monotonic_clock.now () > 0L then
    fun () -> Int64.to_float (Monotonic_clock.now ()) *. 1e-9
  else Unix.gettimeofday

let deadline_check ?(now = now_s) t =
  match t.deadline_s with
  | None -> fun () -> false
  | Some allowance ->
      let t0 = now () in
      fun () -> now () -. t0 >= allowance

let limit_to_string = function
  | Steps -> "steps"
  | Moves -> "moves"
  | Deliveries -> "deliveries"
  | Deadline -> "deadline"

let outcome_to_string = function
  | Completed -> "completed"
  | Tripped l -> limit_to_string l

let outcome_of_string = function
  | "completed" -> Ok Completed
  | "steps" -> Ok (Tripped Steps)
  | "moves" -> Ok (Tripped Moves)
  | "deliveries" -> Ok (Tripped Deliveries)
  | "deadline" -> Ok (Tripped Deadline)
  | s -> Error ("unknown outcome: " ^ s)
