(** Unified execution budgets across the three run loops.

    Every loop of the system — {!Ss_sim.Engine.run} (atomic-state
    steps/moves), {!Ss_sync.Sync_runner.run} (synchronous rounds) and
    {!Ss_msgnet.Msgnet.run} (message deliveries) — historically had
    its own ad-hoc cap arguments.  A [Budget.t] expresses all of them
    in one record, and {!outcome} is the single "which limit tripped"
    answer every loop reports.

    Semantics are {e conjunctive}: an execution stops at the first
    limit it reaches.  A field left [None] is unlimited.  Loops that
    also take their historical optional arguments combine them with
    the budget via {!resolve} — the {e tightest} provided limit wins,
    so a budget can only ever shrink an execution, never extend one
    past an explicit legacy cap. *)

type t = {
  steps : int option;
      (** Daemon steps ({!Ss_sim.Engine}) or synchronous rounds
          ({!Ss_sync.Sync_runner}) — the loop's coarse iteration count. *)
  moves : int option;
      (** Hard cap on rule executions; never overshot (the engine
          truncates the budget-crossing selection to a prefix). *)
  deliveries : int option;
      (** Cap on message-network events; since each event delivers at
          most one message, [stats.deliveries] never exceeds it. *)
  deadline_s : float option;
      (** Wall-clock allowance in seconds, measured against the
          monotonic clock ({!now_s}) — immune to NTP steps, unlike
          [Unix.gettimeofday], and to blocked-process undershoot,
          unlike [Sys.time]. *)
}

val unlimited : t
(** No limit on anything. *)

val v :
  ?steps:int -> ?moves:int -> ?deliveries:int -> ?deadline_s:float -> unit -> t
(** Budget with the given limits; omitted fields are unlimited. *)

type limit = Steps | Moves | Deliveries | Deadline

type outcome =
  | Completed  (** The loop reached its natural end (terminal
          configuration, fixpoint, or verified quiescence). *)
  | Tripped of limit  (** The named budget limit cut the run short. *)

val resolve : default:int -> int option -> int option -> int
(** [resolve ~default legacy budget] is the effective integer cap:
    the minimum of the provided limits, or [default] when both are
    [None]. *)

val now_s : unit -> float
(** Monotonic timestamp in seconds (the [CLOCK_MONOTONIC] stub from
    [bechamel.monotonic_clock], falling back to [Unix.gettimeofday]
    where unavailable).  Only differences are meaningful. *)

val deadline_check : ?now:(unit -> float) -> t -> unit -> bool
(** [deadline_check t] starts the clock now and returns a predicate
    that turns [true] once the deadline has passed.  Constant [false]
    (and free of clock reads) when no deadline is set.

    [now] injects the time source (default {!now_s}).  Deterministic
    simulations pass a virtual clock ([Ss_chaos.Clock.now_fn]) so
    deadline budgets depend only on simulated time — wall-clock jumps,
    GC pauses and machine load can never trip a deadline mid-scenario,
    and replays are exact. *)

val limit_to_string : limit -> string
val outcome_to_string : outcome -> string
(** ["completed"], ["steps"], ["moves"], ["deliveries"], ["deadline"] —
    the wire encoding used by {!Run_report}. *)

val outcome_of_string : string -> (outcome, string) result
