type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                              *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that parses back to the same float; integral
   values keep a ".0" so the reader sees a Float again.  JSON has no
   non-finite numbers, so those degrade to null. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent)                                           *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse_fail pos msg = raise (Parse_error (pos, msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_fail !pos (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_fail !pos ("expected " ^ word)
  in
  (* Encode a Unicode scalar value as UTF-8. *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then parse_fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_fail !pos "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then parse_fail !pos "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
                 advance ();
                 add_utf8 buf (hex4 ())
             | c -> parse_fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c when Char.code c < 0x20 -> parse_fail !pos "raw control character"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        saw := true;
        advance ()
      done;
      if not !saw then parse_fail !pos "expected digit"
    in
    (* RFC 8259: the integer part is either a lone 0 or starts with a
       nonzero digit — "01" is not a number. *)
    (match peek () with
    | Some '0' -> (
        advance ();
        match peek () with
        | Some '0' .. '9' -> parse_fail !pos "leading zero"
        | _ -> ())
    | _ -> digits ());
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> parse_fail !pos "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_fail !pos "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_fail !pos (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_fail !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" p msg)
  | exception Failure msg -> Error ("JSON parse error: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Ok n
  | v -> Error ("expected int, got " ^ to_string v)

let to_str = function
  | String s -> Ok s
  | v -> Error ("expected string, got " ^ to_string v)
