(** Hand-rolled JSON values — the zero-dependency backbone of the
    reporting pipeline.

    Every machine-readable artefact of the repo (experiment tables,
    bench results, run reports, traces) is emitted through this one
    type, so a single emitter/parser pair defines the wire format.
    The emitter is deterministic (object fields keep their insertion
    order) and the parser accepts exactly RFC-8259 JSON, which makes
    encode/decode round-trips testable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Field order is preserved by the emitter and the parser. *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Strings are
    escaped per RFC 8259; control characters use [\u00XX].  Floats
    render with the shortest decimal form that round-trips; integral
    floats keep a trailing [.] digit so they re-parse as [Float]. *)

val to_buffer : Buffer.t -> t -> unit
(** Same rendering, appended to a buffer. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (leading/trailing whitespace
    allowed).  Numbers without [.], [e] or [E] become [Int]; all
    others become [Float].  Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the first binding of [key]. *)

val to_int : t -> (int, string) result
(** [Int n] as [n]; anything else is an error. *)

val to_str : t -> (string, string) result
(** [String s] as [s]; anything else is an error. *)
