type engine_stats = {
  steps : int;
  moves : int;
  rounds : int;
  moves_per_rule : (string * int) list;
}

type sync_stats = { sync_rounds : int; nodes : int }

type msgnet_stats = {
  deliveries : int;
  rule_executions : int;
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
  stale_proof_messages : int;
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;
  dropped_messages : int;
  reordered_messages : int;
  duplicated_messages : int;
  corruption_events : int;
  peak_queued_bits : int;
  mirror_bytes : int;
  total_bits : int;
}

type body = Engine of engine_stats | Sync of sync_stats | Msgnet of msgnet_stats

type timebase = Wall | Virtual

let timebase_to_string = function Wall -> "wall" | Virtual -> "virtual"

let timebase_of_string = function
  | "wall" -> Ok Wall
  | "virtual" -> Ok Virtual
  | s -> Error ("unknown timebase: " ^ s)

type t = {
  label : string;
  seed : int option;
  wall_s : float;
  timebase : timebase;
  outcome : Budget.outcome;
  body : body;
}

let v ?seed ?(wall_s = 0.) ?(timebase = Wall) ?(outcome = Budget.Completed)
    label body =
  { label; seed; wall_s; timebase; outcome; body }

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let json_of_engine (e : engine_stats) =
  Json.Obj
    [
      ("steps", Json.Int e.steps);
      ("moves", Json.Int e.moves);
      ("rounds", Json.Int e.rounds);
      ( "moves_per_rule",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) e.moves_per_rule) );
    ]

let json_of_sync (s : sync_stats) =
  Json.Obj
    [ ("sync_rounds", Json.Int s.sync_rounds); ("nodes", Json.Int s.nodes) ]

let json_of_msgnet (m : msgnet_stats) =
  Json.Obj
    [
      ("deliveries", Json.Int m.deliveries);
      ("rule_executions", Json.Int m.rule_executions);
      ("update_messages", Json.Int m.update_messages);
      ("update_bits", Json.Int m.update_bits);
      ("proof_messages", Json.Int m.proof_messages);
      ("proof_bits", Json.Int m.proof_bits);
      ("stale_proof_messages", Json.Int m.stale_proof_messages);
      ("request_messages", Json.Int m.request_messages);
      ("full_copy_messages", Json.Int m.full_copy_messages);
      ("full_copy_bits", Json.Int m.full_copy_bits);
      ("proof_waves", Json.Int m.proof_waves);
      ("dropped_messages", Json.Int m.dropped_messages);
      ("reordered_messages", Json.Int m.reordered_messages);
      ("duplicated_messages", Json.Int m.duplicated_messages);
      ("corruption_events", Json.Int m.corruption_events);
      ("peak_queued_bits", Json.Int m.peak_queued_bits);
      ("mirror_bytes", Json.Int m.mirror_bytes);
      ("total_bits", Json.Int m.total_bits);
    ]

let to_json t =
  let kind, stats =
    match t.body with
    | Engine e -> ("engine", json_of_engine e)
    | Sync s -> ("sync", json_of_sync s)
    | Msgnet m -> ("msgnet", json_of_msgnet m)
  in
  Json.Obj
    [
      ("label", Json.String t.label);
      ("seed", match t.seed with Some s -> Json.Int s | None -> Json.Null);
      ("wall_s", Json.Float t.wall_s);
      ("timebase", Json.String (timebase_to_string t.timebase));
      ("outcome", Json.String (Budget.outcome_to_string t.outcome));
      ("kind", Json.String kind);
      ("stats", stats);
    ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name json =
  let* v = field name json in
  Json.to_int v

let str_field name json =
  let* v = field name json in
  Json.to_str v

let engine_of_json json =
  let* steps = int_field "steps" json in
  let* moves = int_field "moves" json in
  let* rounds = int_field "rounds" json in
  let* mpr = field "moves_per_rule" json in
  let* moves_per_rule =
    match mpr with
    | Json.Obj fields ->
        List.fold_left
          (fun acc (r, v) ->
            let* acc = acc in
            let* n = Json.to_int v in
            Ok ((r, n) :: acc))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "moves_per_rule must be an object"
  in
  Ok (Engine { steps; moves; rounds; moves_per_rule })

let sync_of_json json =
  let* sync_rounds = int_field "sync_rounds" json in
  let* nodes = int_field "nodes" json in
  Ok (Sync { sync_rounds; nodes })

let msgnet_of_json json =
  let* deliveries = int_field "deliveries" json in
  let* rule_executions = int_field "rule_executions" json in
  let* update_messages = int_field "update_messages" json in
  let* update_bits = int_field "update_bits" json in
  let* proof_messages = int_field "proof_messages" json in
  let* proof_bits = int_field "proof_bits" json in
  let* stale_proof_messages = int_field "stale_proof_messages" json in
  let* request_messages = int_field "request_messages" json in
  let* full_copy_messages = int_field "full_copy_messages" json in
  let* full_copy_bits = int_field "full_copy_bits" json in
  let* proof_waves = int_field "proof_waves" json in
  (* The chaos counters appeared after the first archived reports;
     absent fields read as zero so pre-chaos artifacts stay parseable
     (to_json always emits them, so round-trips are still exact). *)
  let opt_int_field name json =
    match Json.member name json with
    | None -> Ok 0
    | Some v -> Json.to_int v
  in
  let* dropped_messages = opt_int_field "dropped_messages" json in
  let* reordered_messages = opt_int_field "reordered_messages" json in
  let* duplicated_messages = opt_int_field "duplicated_messages" json in
  let* corruption_events = opt_int_field "corruption_events" json in
  (* Wire-memory accounting joined later still; same back-compat rule. *)
  let* peak_queued_bits = opt_int_field "peak_queued_bits" json in
  let* mirror_bytes = opt_int_field "mirror_bytes" json in
  let* total_bits = int_field "total_bits" json in
  Ok
    (Msgnet
       {
         deliveries;
         rule_executions;
         update_messages;
         update_bits;
         proof_messages;
         proof_bits;
         stale_proof_messages;
         request_messages;
         full_copy_messages;
         full_copy_bits;
         proof_waves;
         dropped_messages;
         reordered_messages;
         duplicated_messages;
         corruption_events;
         peak_queued_bits;
         mirror_bytes;
         total_bits;
       })

let of_json json =
  let* label = str_field "label" json in
  let* seed =
    let* v = field "seed" json in
    match v with
    | Json.Null -> Ok None
    | Json.Int s -> Ok (Some s)
    | _ -> Error "seed must be int or null"
  in
  let* wall_s =
    let* v = field "wall_s" json in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error "wall_s must be a number"
  in
  let* timebase =
    (* Absent in pre-chaos archives: those reports all measured wall
       time. *)
    match Json.member "timebase" json with
    | None -> Ok Wall
    | Some v ->
        let* s = Json.to_str v in
        timebase_of_string s
  in
  let* outcome =
    let* s = str_field "outcome" json in
    Budget.outcome_of_string s
  in
  let* kind = str_field "kind" json in
  let* stats = field "stats" json in
  let* body =
    match kind with
    | "engine" -> engine_of_json stats
    | "sync" -> sync_of_json stats
    | "msgnet" -> msgnet_of_json stats
    | k -> Error ("unknown report kind: " ^ k)
  in
  Ok { label; seed; wall_s; timebase; outcome; body }

(* ------------------------------------------------------------------ *)
(* Table serializer                                                     *)
(* ------------------------------------------------------------------ *)

let of_table ?label table =
  let module T = Ss_prelude.Table in
  let headers = T.headers table in
  let cell = function T.S s -> Json.String s | T.I i -> Json.Int i in
  let row cells =
    (* Shorter rows are padded with empty cells and longer rows extend
       the width, mirroring the text renderer. *)
    let ncols = max (List.length headers) (List.length cells) in
    let key i =
      match List.nth_opt headers i with
      | Some h -> h
      | None -> Printf.sprintf "col%d" i
    in
    Json.Obj
      (List.init ncols (fun i ->
           ( key i,
             match List.nth_opt cells i with
             | Some c -> cell c
             | None -> Json.String "" )))
  in
  Json.Obj
    ((match label with
     | Some l -> [ ("table", Json.String l) ]
     | None -> [])
    @ [
        ("headers", Json.List (List.map (fun h -> Json.String h) headers));
        ("rows", Json.List (List.map row (T.rows table)));
      ])
