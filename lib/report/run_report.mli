(** Structured run reports — one record per execution, one wire
    format for every loop.

    The three execution loops (atomic-state engine, synchronous
    runner, message network) produce differently-shaped statistics;
    a [Run_report.t] embeds any of them together with the metadata
    every experiment needs (label, RNG seed, wall time, budget
    {!Budget.outcome}).  {!to_json}/{!of_json} are exact inverses —
    pinned by round-trip tests — so reports can be archived, diffed
    and re-read across PRs.

    {!of_table} is the companion serializer for experiment tables:
    it reads the {e same} {!Ss_prelude.Table.t} the text renderer
    prints, so JSON rows and text rows cannot disagree. *)

type engine_stats = {
  steps : int;
  moves : int;
  rounds : int;
  moves_per_rule : (string * int) list;
}

type sync_stats = {
  sync_rounds : int;  (** Execution time [T] (rounds to fixpoint). *)
  nodes : int;
}

type msgnet_stats = {
  deliveries : int;
  rule_executions : int;
  update_messages : int;
  update_bits : int;
  proof_messages : int;
  proof_bits : int;
  stale_proof_messages : int;
  request_messages : int;
  full_copy_messages : int;
  full_copy_bits : int;
  proof_waves : int;
  dropped_messages : int;
      (** Messages discarded at delivery-pick time by the fault plan. *)
  reordered_messages : int;
      (** Channel heads rotated to the back instead of delivered. *)
  duplicated_messages : int;
      (** Messages delivered while a copy stayed queued. *)
  corruption_events : int;
      (** Mid-run transient state corruptions injected. *)
  peak_queued_bits : int;
      (** High-water mark of in-flight wire bits across all channels.
          Absent in pre-wire-memory archives; reads as zero. *)
  mirror_bytes : int;
      (** Resident bytes behind the mirrors at the end of the run
          (packed arena or boxed estimate, handles included).  Absent
          in older archives; reads as zero. *)
  total_bits : int;
}

type body =
  | Engine of engine_stats
  | Sync of sync_stats
  | Msgnet of msgnet_stats

type timebase =
  | Wall  (** [wall_s] was measured on the machine clock. *)
  | Virtual
      (** [wall_s] is simulated time from an injected virtual clock
          ({!Ss_chaos.Clock}) — deterministic, replayable, and not
          comparable to wall-clock figures. *)

val timebase_to_string : timebase -> string
(** ["wall"] / ["virtual"] — the wire encoding. *)

val timebase_of_string : string -> (timebase, string) result

type t = {
  label : string;  (** What ran (algorithm / workload / bench name). *)
  seed : int option;  (** RNG seed, when the run was seeded. *)
  wall_s : float;  (** Duration of the run in seconds — on the
          [timebase] clock, which says whether this is measured wall
          time or deterministic virtual time. *)
  timebase : timebase;
  outcome : Budget.outcome;
      (** [Completed], or the budget limit that tripped. *)
  body : body;
}

val v :
  ?seed:int ->
  ?wall_s:float ->
  ?timebase:timebase ->
  ?outcome:Budget.outcome ->
  string ->
  body ->
  t
(** [v label body] with defaults [wall_s = 0.], [timebase = Wall],
    [outcome = Completed]. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Exact inverses: [of_json (to_json r) = Ok r]. *)

val of_table : ?label:string -> Ss_prelude.Table.t -> Json.t
(** The unified table serializer: a JSON object
    [{"table": label?, "headers": [...], "rows": [{col: cell}, ...]}]
    whose rows are keyed by header and whose cells come from the same
    typed {!Ss_prelude.Table.cell}s the text renderer prints —
    integer cells become JSON ints, text cells JSON strings, so
    rendered content is byte-identical between the two emitters. *)
