module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module Util = Ss_prelude.Util
module Rng = Ss_prelude.Rng
module P = Ss_core.Predicates

type 's state = { init : 's; cells : 's array }

let height st = Array.length st.cells

let cell st i =
  if i = 0 then st.init
  else if i >= 1 && i <= height st then st.cells.(i - 1)
  else invalid_arg "Rollback.cell"

let equal eq a b = eq a.init b.init && Util.array_equal eq a.cells b.cells
let fix = "FIX"

let recompute sync (v : ('s state, 'i) Algorithm.view) =
  let self = v.Algorithm.self in
  let b = height self in
  let cells =
    Array.init b (fun idx ->
        let i = idx + 1 in
        sync.Sync_algo.step v.Algorithm.input
          (cell self (i - 1))
          (Array.map (fun nb -> cell nb (i - 1)) v.Algorithm.neighbors))
  in
  { self with cells }

let algorithm sync ~bound =
  if bound < 1 then invalid_arg "Rollback.algorithm: bound must be >= 1";
  let eq = equal sync.Sync_algo.equal in
  {
    Algorithm.algo_name =
      Printf.sprintf "rollback(%s,B=%d)" sync.Sync_algo.sync_name bound;
    equal = eq;
    rules =
      [
        {
          Algorithm.rule_name = fix;
          guard = (fun v -> not (eq v.Algorithm.self (recompute sync v)));
          action = (fun v -> recompute sync v);
        };
      ];
    pp_state =
      (fun ppf st ->
        Format.fprintf ppf "[%a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
             sync.Sync_algo.pp_state)
          (Array.to_list st.cells));
  }

let clean_config sync ~bound g ~inputs =
  Config.make g ~inputs ~states:(fun p ->
      let init = sync.Sync_algo.init (inputs p) in
      { init; cells = Array.make bound init })

let config_of_cells g ~inputs ~init ~cells ~bound =
  Config.make g ~inputs ~states:(fun p ->
      { init = init p; cells = Array.init bound (fun idx -> cells p (idx + 1)) })

let corrupt rng ?(p = 1.0) sync config =
  let states =
    Array.mapi
      (fun node st ->
        if Rng.chance rng p then
          {
            st with
            cells =
              Array.map
                (fun c ->
                  if Rng.bool rng then
                    sync.Sync_algo.random_state rng (Config.input config node)
                  else c)
                st.cells;
          }
        else st)
      config.Config.states
  in
  Config.with_states config states

let simulates_history sync history config =
  let eq = sync.Sync_algo.equal in
  let ok p =
    let st = Config.state config p in
    eq st.init (Sync_runner.state_at history ~round:0 ~node:p)
    &&
    let rec go i =
      i > height st
      || (eq (cell st i) (Sync_runner.state_at history ~round:i ~node:p)
         && go (i + 1))
    in
    go 1
  in
  let rec go p = p >= Config.n config || (ok p && go (p + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Registry entry                                                       *)
(* ------------------------------------------------------------------ *)

let bound_of (p : ('s, 'i) P.params) =
  match p.P.bound with
  | P.Finite b -> b
  | P.Infinite -> invalid_arg "Rollback: requires a finite bound"

module Entry = struct
  let name = "rollback"

  let doc =
    "§7 rollback compiler (Awerbuch-Varghese): fixed-length lists, one FIX \
     rule recomputing every cell; exponential moves in the worst case"

  type nonrec 's state = 's state

  let supports (p : ('s, 'i) P.params) =
    match p.P.bound with
    | P.Finite _ -> Ok ()
    | P.Infinite -> Error "the rollback compiler requires a finite bound B"

  let algorithm p = algorithm p.P.sync ~bound:(bound_of p)
  let reference_algorithm = algorithm

  let clean_config p g ~inputs =
    clean_config p.P.sync ~bound:(bound_of p) g ~inputs

  (* The fault model mirrors {!corrupt}: scramble each cell with
     probability 1/2 (lengths are fixed, [init] is read-only), always
     changing at least one cell so a hit node is actually hit. *)
  let corrupt_state rng ~max_height:_ (p : ('s, 'i) P.params) input st =
    let b = height st in
    let cells =
      Array.map
        (fun c ->
          if Rng.bool rng then p.P.sync.Sync_algo.random_state rng input
          else c)
        st.cells
    in
    if b > 0 then begin
      let i = Rng.int rng b in
      cells.(i) <- p.P.sync.Sync_algo.random_state rng input
    end;
    { st with cells }

  let outputs config =
    Array.map (fun st -> cell st (height st)) config.Config.states

  let state_bits (p : ('s, 'i) P.params) st =
    let bits = p.P.sync.Sync_algo.state_bits in
    bits st.init + Array.fold_left (fun acc c -> acc + bits c) 0 st.cells

  let space_bits p config =
    Array.fold_left
      (fun acc st -> max acc (state_bits p st))
      0 config.Config.states

  (* No delta encoding is available: a FIX move may rewrite any subset
     of the cells, so announcing it broadcasts the whole list — the
     §7 half of the paper's energy argument. *)
  let move_bits p ~rule:_ st = state_bits p st

  let legitimate_terminal p hist config =
    if not (Config.is_terminal (algorithm p) config) then
      Error "configuration is not terminal"
    else if not (simulates_history p.P.sync hist config) then
      Error "terminal lists do not match the synchronous history"
    else Ok ()
end

let transformer : Ss_core.Registry.entry = (module Entry)
