(** The Rollback Compiler of Awerbuch and Varghese (FOCS 1991), in its
    straightforward atomic-state version (paper §7).

    Like the paper's transformer, every node stores the synchronous
    execution of the input algorithm in a list — but the lists have a
    {e fixed} length [B] and there is no error-broadcast machinery: an
    activated node simply recomputes every cell from the current cells
    of its closed neighborhood ([L(i) := algô(p, i-1)]), correcting all
    its faulty cells in one move.  A node is enabled whenever some cell
    is faulty.

    This is fast in rounds ([O(B)]) but §7 proves its move complexity
    is {e exponential} in [n]: see {!Blowup} for the witness family. *)

type 's state = { init : 's; cells : 's array  (** Length exactly [B]. *) }

val height : 's state -> int
(** The (fixed) list length [B]. *)

val cell : 's state -> int -> 's
(** [cell st i] is [L(i)], [0 <= i <= B]; [cell st 0 = init]. *)

val equal : ('s -> 's -> bool) -> 's state -> 's state -> bool
(** Structural equality. *)

val fix : string
(** The label of the unique rule. *)

val algorithm :
  ('s, 'i) Ss_sync.Sync_algo.t -> bound:int -> ('s state, 'i) Ss_sim.Algorithm.t
(** [algorithm sync ~bound] is the rollback-compiled algorithm
    simulating [bound] rounds of [sync].
    @raise Invalid_argument if [bound < 1]. *)

val clean_config :
  ('s, 'i) Ss_sync.Sync_algo.t ->
  bound:int ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s state, 'i) Ss_sim.Config.t
(** The controlled initial configuration: every cell holds [init]
    (nodes will overwrite them as they correct). *)

val config_of_cells :
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  init:(int -> 's) ->
  cells:(int -> int -> 's) ->
  bound:int ->
  ('s state, 'i) Ss_sim.Config.t
(** Arbitrary (possibly corrupted) configuration: [cells p i] gives
    [L(i)] of node [p] for [1 <= i <= bound]. *)

val corrupt :
  Ss_prelude.Rng.t ->
  ?p:float ->
  ('s, 'i) Ss_sync.Sync_algo.t ->
  ('s state, 'i) Ss_sim.Config.t ->
  ('s state, 'i) Ss_sim.Config.t
(** Scramble cell contents of each node with probability [p]
    (default 1); [init] is preserved and lengths are untouched. *)

val simulates_history :
  ('s, 'i) Ss_sync.Sync_algo.t ->
  ('s, 'i) Ss_sync.Sync_runner.history ->
  ('s state, 'i) Ss_sim.Config.t ->
  bool
(** Every cell [i] of every node equals [st_p^i] (clamped beyond
    [T]). *)

module Entry : Ss_core.Registry.TRANSFORMER with type 's state = 's state
(** The compiler behind the {!Ss_core.Registry.TRANSFORMER} interface:
    finite bounds only, whole-list [move_bits] (no delta encoding
    exists for [FIX]), corruption scrambling cell contents. *)

val transformer : Ss_core.Registry.entry
(** {!Entry} as a registry entry; entered into the table by
    [Ss_expt.Catalog]. *)
