module Graph = Ss_graph.Graph

type ('s, 'i) t = { graph : Graph.t; inputs : 'i array; states : 's array }

let make g ~inputs ~states =
  {
    graph = g;
    inputs = Array.init (Graph.n g) inputs;
    states = Array.init (Graph.n g) states;
  }

let n c = Array.length c.states
let state c p = c.states.(p)
let input c p = c.inputs.(p)

let view c p =
  {
    Algorithm.input = c.inputs.(p);
    self = c.states.(p);
    neighbors =
      Array.init (Graph.degree c.graph p) (fun i ->
          c.states.(Graph.nbr c.graph p i));
  }

let with_states c states = { c with states }

let set_state c p s =
  let states = Array.copy c.states in
  states.(p) <- s;
  { c with states }

let map_states f c = { c with states = Array.map f c.states }

let equal eq c1 c2 = Ss_prelude.Util.array_equal eq c1.states c2.states

let enabled_nodes algo c =
  let acc = ref [] in
  for p = n c - 1 downto 0 do
    if Algorithm.is_enabled algo (view c p) then acc := p :: !acc
  done;
  !acc

let is_terminal algo c =
  let rec go p =
    p >= n c || ((not (Algorithm.is_enabled algo (view c p))) && go (p + 1))
  in
  go 0

let pp pp_state ppf c =
  for p = 0 to n c - 1 do
    Format.fprintf ppf "%3d: %a@." p pp_state c.states.(p)
  done
