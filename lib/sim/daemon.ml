module Rng = Ss_prelude.Rng

type t = {
  daemon_name : string;
  select : step:int -> enabled:int array -> int list;
}

let of_fun daemon_name select = { daemon_name; select }

let synchronous =
  of_fun "synchronous" (fun ~step:_ ~enabled -> Array.to_list enabled)

(* [Rng.pick] on the array consumes exactly the single draw the
   historical [Rng.pick_list] did, so seeds keep their streams. *)
let central_random rng =
  of_fun "central-random" (fun ~step:_ ~enabled -> [ Rng.pick rng enabled ])

let central_min =
  of_fun "central-min" (fun ~step:_ ~enabled ->
      if Array.length enabled = 0 then [] else [ enabled.(0) ])

let central_max =
  of_fun "central-max" (fun ~step:_ ~enabled ->
      match Array.length enabled with 0 -> [] | n -> [ enabled.(n - 1) ])

(* Same draw sequence as [Rng.nonempty_subset] on the list: one
   [chance] per enabled node in increasing order, then one uniform
   pick when the sample came up empty. *)
let distributed_random rng ~p =
  of_fun
    (Printf.sprintf "distributed-random(p=%.2f)" p)
    (fun ~step:_ ~enabled ->
      let acc = ref [] in
      for i = 0 to Array.length enabled - 1 do
        if Rng.chance rng p then acc := enabled.(i) :: !acc
      done;
      match !acc with [] -> [ Rng.pick rng enabled ] | l -> List.rev l)

let round_robin () =
  let cursor = ref (-1) in
  of_fun "round-robin" (fun ~step:_ ~enabled ->
      (* First enabled node strictly after the cursor: binary search in
         the sorted enabled array (the historical version filtered the
         whole list). *)
      let n = Array.length enabled in
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if enabled.(mid) > !cursor then hi := mid else lo := mid + 1
      done;
      let chosen = if !lo < n then enabled.(!lo) else enabled.(0) in
      cursor := chosen;
      [ chosen ])

let scripted ?(fallback = synchronous) moves =
  let remaining = ref moves in
  of_fun "scripted" (fun ~step ~enabled ->
      match !remaining with
      | [] -> fallback.select ~step ~enabled
      | sel :: rest ->
          remaining := rest;
          sel)
