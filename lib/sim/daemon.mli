(** Daemons (schedulers) of the atomic-state model (paper §2.2).

    Given the set of enabled nodes of the current configuration, a
    daemon selects a nonempty subset to activate simultaneously.  The
    {e synchronous} daemon selects all of them; the {e fully
    asynchronous} (distributed unfair) daemon is unconstrained — we
    realize it with a portfolio of adversaries: random nonempty
    subsets, sequential central daemons that may starve nodes, and
    fully scripted schedules (used to replay the paper's §7 adversary).

    Daemons may be stateful (round-robin cursors, script position,
    RNG); create a fresh daemon per run. *)

type t = {
  daemon_name : string;
  select : step:int -> enabled:int array -> int list;
      (** Must return a nonempty subset of [enabled] (which the engine
          guarantees to be nonempty and sorted).  The array is the
          engine's reusable cache: read it during the call, do not
          mutate or retain it. *)
}

val synchronous : t
(** Selects every enabled node — steps coincide with rounds. *)

val central_random : Ss_prelude.Rng.t -> t
(** Selects exactly one enabled node, uniformly. *)

val central_min : t
(** Selects the lowest-id enabled node — a deterministic unfair
    sequential daemon (it starves high-id nodes whenever possible). *)

val central_max : t
(** Selects the highest-id enabled node. *)

val distributed_random : Ss_prelude.Rng.t -> p:float -> t
(** Each enabled node is selected independently with probability [p];
    if the sample is empty, one uniform enabled node is selected. *)

val round_robin : unit -> t
(** Sequential daemon cycling through node ids: activates the first
    enabled node strictly after the previously activated one (wrapping
    around) — a weakly fair sequential scheduler. *)

val scripted : ?fallback:t -> int list list -> t
(** [scripted moves] replays the given activation sets in order, then
    delegates to [fallback] (default {!synchronous}).  The engine
    validates that every scripted node is enabled when activated and
    raises {!Engine.Invalid_selection} otherwise. *)

val of_fun : string -> (step:int -> enabled:int array -> int list) -> t
(** Build a custom daemon. *)
