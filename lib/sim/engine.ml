module Budget = Ss_report.Budget
module Run_report = Ss_report.Run_report

exception Invalid_selection of string
exception Divergence of string

type ('s, 'i) stats = {
  final : ('s, 'i) Config.t;
  steps : int;
  moves : int;
  rounds : int;
  terminated : bool;
  outcome : Budget.outcome;
  moves_per_node : int array;
  moves_per_rule : (string * int) list;
}

type ('s, 'i) observer =
  step:int -> rounds:int -> moved:(int * string) list -> ('s, 'i) Config.t -> unit

type ('s, 'i) chaos = {
  plan : Ss_chaos.Fault_plan.t;
  mutate : Ss_prelude.Rng.t -> int -> ('s, 'i) Config.t -> 's;
}

let no_observer ~step:_ ~rounds:_ ~moved:_ _ = ()

let tee = function
  | [] -> no_observer
  | [ o ] -> o
  | os ->
      fun ~step ~rounds ~moved config ->
        List.iter (fun o -> o ~step ~rounds ~moved config) os

(* One bus for the optional single observer, the sink list, and any
   internal sinks (self-check): everyone sees the same events in the
   same order. *)
let bus ?observer ?(sinks = []) internal =
  let user = match observer with Some o -> o :: sinks | None -> sinks in
  tee (user @ internal)

let validate_with config ~is_enabled selected =
  if selected = [] then raise (Invalid_selection "daemon selected no node");
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if p < 0 || p >= Config.n config then
        raise (Invalid_selection (Printf.sprintf "node %d out of range" p));
      if Hashtbl.mem seen p then
        raise (Invalid_selection (Printf.sprintf "node %d selected twice" p));
      Hashtbl.add seen p ();
      if not (is_enabled p) then
        raise
          (Invalid_selection (Printf.sprintf "node %d selected but not enabled" p)))
    selected

let validate_selection config enabled selected =
  let members = Hashtbl.create (max 8 (List.length enabled)) in
  List.iter (fun p -> Hashtbl.replace members p ()) enabled;
  validate_with config ~is_enabled:(Hashtbl.mem members) selected

(* Execute a validated selection.  [rule_of p] is the enabled rule the
   selection was validated against; all moves read the pre-step
   configuration: compute every new state before writing any.  Actions
   get fresh views (Config.view), never the scheduler's reusable
   buffers, so a returned state may safely retain view data. *)
let apply config ~rule_of selected =
  let moves =
    List.map
      (fun p ->
        match rule_of p with
        | Some rule ->
            let view = Config.view config p in
            (p, rule.Algorithm.rule_name, rule.Algorithm.action view)
        | None -> assert false (* validated by the caller *))
      selected
  in
  let states = Array.copy config.Config.states in
  List.iter (fun (p, _, s) -> states.(p) <- s) moves;
  (Config.with_states config states, List.map (fun (p, r, _) -> (p, r)) moves)

let step algo config selected =
  let enabled = Config.enabled_nodes algo config in
  validate_selection config enabled selected;
  apply config
    ~rule_of:(fun p -> Algorithm.enabled_rule algo (Config.view config p))
    selected

(* Hard move budget: activating a full selection could overshoot
   the move cap by up to n-1 moves (the bound used to be checked only
   between steps), so the final, budget-crossing step executes only a
   prefix of the daemon's selection, in the daemon's order. *)
let cap_selection ~budget selected =
  (* Sharing-preserving and stack-safe: [selected] itself when it fits
     (the overwhelmingly common case — checked without measuring the
     full length), else its first [budget] elements.  A synchronous
     selection at n = 10^6 must neither recurse per element nor pay
     O(n) when the budget is effectively unlimited. *)
  if List.compare_length_with selected budget <= 0 then selected
  else begin
    let rec take acc k l =
      match l with
      | x :: tl when k > 0 -> take (x :: acc) (k - 1) tl
      | _ -> List.rev acc
    in
    take [] budget selected
  end

(* The three integer/clock limits of one run, resolved from the unified
   budget plus the historical optional arguments (tightest wins). *)
let limits ?budget ?max_steps ?max_moves ?now () =
  let b = Option.value budget ~default:Budget.unlimited in
  ( Budget.resolve ~default:10_000_000 max_steps b.Budget.steps,
    Budget.resolve ~default:max_int max_moves b.Budget.moves,
    Budget.deadline_check ?now b )

(* Shared per-run accounting: per-node and per-rule move counters and
   the final stats record. *)
let make_counters n =
  let moves_per_node = Array.make n 0 in
  let rule_counts = Hashtbl.create 8 in
  let note_move (p, r) =
    moves_per_node.(p) <- moves_per_node.(p) + 1;
    Hashtbl.replace rule_counts r
      (1 + Option.value ~default:0 (Hashtbl.find_opt rule_counts r))
  in
  let finish algo tracker (final, steps, moves, outcome) =
    {
      final;
      steps;
      moves;
      rounds = Rounds.completed tracker;
      terminated = outcome = Budget.Completed;
      outcome;
      moves_per_node;
      moves_per_rule =
        List.map
          (fun r -> (r, Option.value ~default:0 (Hashtbl.find_opt rule_counts r)))
          (Algorithm.rule_names algo);
    }
  in
  (note_move, finish)

let run ?budget ?max_steps ?max_moves ?now ?chaos ?(self_check = false)
    ?(sharded = false) ?observer ?sinks algo daemon config =
  let max_steps, max_moves, deadline =
    limits ?budget ?max_steps ?max_moves ?now ()
  in
  let note_move, finish = make_counters (Config.n config) in
  let sched = Sched.create ~parallel:sharded algo config in
  (* Divergence checking is just another sink on the bus: it reads the
     configuration each event reaches and compares the incrementally
     maintained enabled set against a full naive scan. *)
  let check_sink ~step:_ ~rounds:_ ~moved:_ config =
    let incr = Sched.enabled sched in
    let naive = Config.enabled_nodes algo config in
    if incr <> naive then
      raise
        (Divergence
           (Printf.sprintf
              "incremental enabled set {%s} disagrees with full scan {%s}"
              (String.concat "," (List.map string_of_int incr))
              (String.concat "," (List.map string_of_int naive))))
  in
  let emit = bus ?observer ?sinks (if self_check then [ check_sink ] else []) in
  (* When nothing on the bus can retain configurations (no observer,
     no sinks, no self-check), step in place on a private copy of the
     states instead of copying the whole array per step — the O(n)
     per-step copy is what made 10^6-node runs quadratic.  The input
     configuration is never mutated either way. *)
  let observed =
    Option.is_some observer
    || (match sinks with Some (_ :: _) -> true | _ -> false)
    || self_check
  in
  let config =
    if observed then config
    else Config.with_states config (Array.copy config.Config.states)
  in
  let apply_step config selected =
    if observed then apply config ~rule_of:(Sched.enabled_rule sched) selected
    else begin
      (* All moves read the pre-step configuration: compute every new
         state before writing any.  [List.map] forces the whole list
         before the write loop. *)
      let moves =
        List.map
          (fun p ->
            match Sched.enabled_rule sched p with
            | Some rule ->
                let view = Config.view config p in
                (p, rule.Algorithm.rule_name, rule.Algorithm.action view)
            | None -> assert false (* validated above *))
          selected
      in
      let states = config.Config.states in
      List.iter (fun (p, _, s) -> states.(p) <- s) moves;
      (config, List.map (fun (p, r, _) -> (p, r)) moves)
    end
  in
  let rec loop config steps moves tracker =
    (* Scheduled transient corruption, injected before the termination
       check so a fault landing on a quiescent configuration re-starts
       stabilization.  The scheduler is re-synced exactly as for a
       moved node; the next step's bus event (and self-check) sees the
       corrupted configuration. *)
    let config =
      match chaos with
      | Some ch when Ss_chaos.Fault_plan.corruption_due ch.plan ~event:steps ->
          let crng = Ss_chaos.Fault_plan.rng ch.plan in
          let v = Ss_prelude.Rng.int crng (Config.n config) in
          let st = ch.mutate crng v config in
          let config =
            if observed then begin
              let states = Array.copy config.Config.states in
              states.(v) <- st;
              Config.with_states config states
            end
            else begin
              config.Config.states.(v) <- st;
              config
            end
          in
          Sched.update sched config ~moved:[ v ];
          config
      | _ -> config
    in
    if Sched.no_enabled sched then (config, steps, moves, Budget.Completed)
    else if moves >= max_moves then
      (config, steps, moves, Budget.Tripped Budget.Moves)
    else if steps >= max_steps then
      (config, steps, moves, Budget.Tripped Budget.Steps)
    else if deadline () then (config, steps, moves, Budget.Tripped Budget.Deadline)
    else begin
      let enabled = Sched.enabled_arr sched in
      let selected = daemon.Daemon.select ~step:steps ~enabled in
      validate_with config ~is_enabled:(Sched.is_enabled sched) selected;
      let selected = cap_selection ~budget:(max_moves - moves) selected in
      let config', moved = apply_step config selected in
      List.iter note_move moved;
      let moved_nodes = List.map fst moved in
      Sched.update sched config' ~moved:moved_nodes;
      Rounds.note_step_set tracker ~moved:moved_nodes
        ~enabled_after:(Sched.enabled_set sched);
      emit ~step:(steps + 1) ~rounds:(Rounds.completed tracker) ~moved config';
      loop config' (steps + 1) (moves + List.length moved) tracker
    end
  in
  let tracker = Rounds.create_set ~enabled:(Sched.enabled_set sched) in
  emit ~step:0 ~rounds:0 ~moved:[] config;
  finish algo tracker (loop config 0 0 tracker)

let run_naive ?budget ?max_steps ?max_moves ?now ?observer ?sinks algo daemon
    config =
  let max_steps, max_moves, deadline =
    limits ?budget ?max_steps ?max_moves ?now ()
  in
  let note_move, finish = make_counters (Config.n config) in
  let emit = bus ?observer ?sinks [] in
  let rec loop config steps moves tracker =
    let enabled = Config.enabled_nodes algo config in
    if enabled = [] then (config, steps, moves, Budget.Completed)
    else if moves >= max_moves then
      (config, steps, moves, Budget.Tripped Budget.Moves)
    else if steps >= max_steps then
      (config, steps, moves, Budget.Tripped Budget.Steps)
    else if deadline () then (config, steps, moves, Budget.Tripped Budget.Deadline)
    else begin
      let selected =
        daemon.Daemon.select ~step:steps ~enabled:(Array.of_list enabled)
      in
      validate_selection config enabled selected;
      let selected = cap_selection ~budget:(max_moves - moves) selected in
      let config', moved =
        apply config
          ~rule_of:(fun p -> Algorithm.enabled_rule algo (Config.view config p))
          selected
      in
      List.iter note_move moved;
      let enabled_after = Config.enabled_nodes algo config' in
      Rounds.note_step tracker ~moved:(List.map fst moved) ~enabled_after;
      emit ~step:(steps + 1) ~rounds:(Rounds.completed tracker) ~moved config';
      loop config' (steps + 1) (moves + List.length moved) tracker
    end
  in
  let tracker = Rounds.create ~enabled:(Config.enabled_nodes algo config) in
  emit ~step:0 ~rounds:0 ~moved:[] config;
  finish algo tracker (loop config 0 0 tracker)

let run_synchronous ?budget ?max_steps ?max_moves algo config =
  run ?budget ?max_steps ?max_moves algo Daemon.synchronous config

let report ?(label = "engine-run") ?seed ?wall_s ?timebase stats =
  Run_report.v ?seed ?wall_s ?timebase ~outcome:stats.outcome label
    (Run_report.Engine
       {
         Run_report.steps = stats.steps;
         moves = stats.moves;
         rounds = stats.rounds;
         moves_per_rule = stats.moves_per_rule;
       })
