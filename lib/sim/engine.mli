(** Execution engine for the atomic-state model.

    Starting from a configuration, the engine repeatedly asks the
    daemon for a nonempty set of enabled nodes, lets each selected
    node execute its highest-priority enabled rule {e atomically and
    simultaneously} (all guards and actions read the pre-step
    configuration), and accounts moves, steps and rounds.  An
    execution ends at a terminal configuration (no enabled node — the
    algorithm is silent there) or when a step/move budget runs out. *)

exception Invalid_selection of string
(** Raised when a daemon selects an empty set, a node that is not
    enabled, or a duplicated node (scripted adversaries are validated
    this way). *)

exception Divergence of string
(** Raised by {!run} with [~self_check:true] when the incremental
    enabled set disagrees with a full naive scan — the differential
    hook for checking the dirty-set scheduler trace-for-trace. *)

type ('s, 'i) stats = {
  final : ('s, 'i) Config.t;  (** Last configuration reached. *)
  steps : int;  (** Number of daemon steps executed. *)
  moves : int;  (** Total rule executions (the paper's moves). *)
  rounds : int;  (** Completed rounds (neutralization-based). *)
  terminated : bool;  (** Whether a terminal configuration was reached. *)
  moves_per_node : int array;  (** Moves of each node. *)
  moves_per_rule : (string * int) list;
      (** Moves per rule label, in the algorithm's priority order. *)
}

type ('s, 'i) observer =
  step:int -> rounds:int -> moved:(int * string) list -> ('s, 'i) Config.t -> unit
(** Called once on the initial configuration ([step = 0], [moved = []])
    and after every step with the (node, rule label) pairs that moved
    and the configuration reached. *)

val run :
  ?max_steps:int ->
  ?max_moves:int ->
  ?self_check:bool ->
  ?observer:('s, 'i) observer ->
  ('s, 'i) Algorithm.t ->
  Daemon.t ->
  ('s, 'i) Config.t ->
  ('s, 'i) stats
(** [run algo daemon config] executes until termination or budget
    exhaustion (defaults: [max_steps = 10_000_000], [max_moves]
    unlimited).  [stats.terminated] reports which happened.

    [max_moves] is a {e hard} bound: [stats.moves <= max_moves]
    always.  A step whose selection would cross the remaining budget
    executes only a prefix of the selection (in the daemon's order) —
    the historical behavior checked the budget only between steps and
    could overshoot by up to n-1 moves on a synchronous step.  The
    truncated step still counts as one step, and [terminated] is
    [false] when the budget cut the execution short.  [max_steps]
    keeps its pre-step semantics: the step that would exceed it is
    simply not taken.

    The engine is {e incremental}: it maintains the enabled set with
    a dirty-set scheduler ({!Sched}) that re-evaluates guards only
    for nodes whose closed neighborhood changed, instead of scanning
    all [n] nodes twice per step.  Observable behavior is identical
    to {!run_naive} (same steps, moves, rounds, configurations) for
    any algorithm whose guards are pure functions of the view — see
    DESIGN.md §7.  [self_check] (default [false]) re-derives the
    enabled set with a full scan after every step and raises
    {!Divergence} on any mismatch; use it when developing new
    algorithms or engine changes.
    @raise Invalid_selection on malformed daemon selections. *)

val run_naive :
  ?max_steps:int ->
  ?max_moves:int ->
  ?observer:('s, 'i) observer ->
  ('s, 'i) Algorithm.t ->
  Daemon.t ->
  ('s, 'i) Config.t ->
  ('s, 'i) stats
(** Reference engine: recomputes the full enabled set from scratch
    every step ([O(n·Δ)] guard evaluations per step).  Kept as the
    compatibility baseline for differential testing and benchmarking;
    produces exactly the same execution as {!run}, including the hard
    [max_moves] prefix-truncation semantics. *)

val step :
  ('s, 'i) Algorithm.t ->
  ('s, 'i) Config.t ->
  int list ->
  ('s, 'i) Config.t * (int * string) list
(** [step algo config selected] performs one atomic step activating
    exactly [selected]: returns the new configuration and the (node,
    rule) moves.  Validates the selection.
    @raise Invalid_selection on malformed selections. *)

val run_synchronous :
  ?max_steps:int ->
  ('s, 'i) Algorithm.t ->
  ('s, 'i) Config.t ->
  ('s, 'i) stats
(** Convenience: run under the synchronous daemon (steps = rounds
    except for the final, terminal configuration). *)
