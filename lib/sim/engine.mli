(** Execution engine for the atomic-state model.

    Starting from a configuration, the engine repeatedly asks the
    daemon for a nonempty set of enabled nodes, lets each selected
    node execute its highest-priority enabled rule {e atomically and
    simultaneously} (all guards and actions read the pre-step
    configuration), and accounts moves, steps and rounds.  An
    execution ends at a terminal configuration (no enabled node — the
    algorithm is silent there) or when a budget limit trips. *)

exception Invalid_selection of string
(** Raised when a daemon selects an empty set, a node that is not
    enabled, or a duplicated node (scripted adversaries are validated
    this way). *)

exception Divergence of string
(** Raised by {!run} with [~self_check:true] when the incremental
    enabled set disagrees with a full naive scan — the differential
    hook for checking the dirty-set scheduler trace-for-trace. *)

type ('s, 'i) stats = {
  final : ('s, 'i) Config.t;  (** Last configuration reached. *)
  steps : int;  (** Number of daemon steps executed. *)
  moves : int;  (** Total rule executions (the paper's moves). *)
  rounds : int;  (** Completed rounds (neutralization-based). *)
  terminated : bool;  (** Whether a terminal configuration was reached
          (equivalent to [outcome = Completed]). *)
  outcome : Ss_report.Budget.outcome;
      (** [Completed], or which budget limit cut the run short. *)
  moves_per_node : int array;  (** Moves of each node. *)
  moves_per_rule : (string * int) list;
      (** Moves per rule label, in the algorithm's priority order. *)
}

type ('s, 'i) observer =
  step:int -> rounds:int -> moved:(int * string) list -> ('s, 'i) Config.t -> unit
(** A sink on the engine's event stream: called once on the initial
    configuration ([step = 0], [moved = []]) and after every step with
    the (node, rule label) pairs that moved and the configuration
    reached.

    {b Sink purity contract} (DESIGN.md §9): a sink must not mutate
    the configuration, the algorithm, or the daemon it observes — it
    may only read them and accumulate into its own state.  All sinks
    on the bus see the same events in the same order, so composable
    consumers (trace recording, CSV export, progress display,
    divergence checking) cannot perturb the execution they measure. *)

val tee : ('s, 'i) observer list -> ('s, 'i) observer
(** Fan one event stream out to several sinks, in list order. *)

type ('s, 'i) chaos = {
  plan : Ss_chaos.Fault_plan.t;
      (** Only the plan's corruption schedule applies to the engine
          (there are no channels to drop from); [corrupt_at] indices
          are {e step} indices here.  The plan owns a private RNG
          stream, so attaching one never perturbs the daemon's or the
          algorithm's draws. *)
  mutate : Ss_prelude.Rng.t -> int -> ('s, 'i) Config.t -> 's;
      (** [mutate rng v config] is the corrupted replacement for node
          [v]'s state; draws only from the given (plan-owned) rng. *)
}
(** Mid-run transient-fault injection for {!run} — the dynamic
    counterpart of {!Fault.corrupt}, which only hits t = 0. *)

val run :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ?now:(unit -> float) ->
  ?chaos:('s, 'i) chaos ->
  ?self_check:bool ->
  ?sharded:bool ->
  ?observer:('s, 'i) observer ->
  ?sinks:('s, 'i) observer list ->
  ('s, 'i) Algorithm.t ->
  Daemon.t ->
  ('s, 'i) Config.t ->
  ('s, 'i) stats
(** [run algo daemon config] executes until termination or budget
    exhaustion.  [stats.outcome] reports which happened.

    [sharded] (default [false]) runs the dirty-set scheduler on
    word-aligned node shards evaluated on the {!Ss_par} pool when the
    dirty set is large — parallelism {e inside} a single run.  Every
    observable (steps, moves, rounds, configurations, stats) is
    byte-identical to the sequential engine for every job count; only
    the wall clock changes (DESIGN.md §12).

    When nothing observes intermediate configurations (no [observer],
    no [sinks], no [self_check]), the engine steps {e in place} on a
    private copy of the state array instead of copying it every step.
    The input configuration is never mutated; [stats.final] is a fresh
    configuration either way.  Observed runs keep the historical
    copy-per-step behavior, so sinks may legally retain every
    configuration they see ({!Trace}).

    Budgets: the unified [budget] record and the historical
    [max_steps]/[max_moves] arguments compose — the tightest provided
    limit wins ({!Ss_report.Budget.resolve}); when neither constrains
    a dimension, [steps] defaults to [10_000_000] and [moves] is
    unlimited.  [budget.deadline_s] is checked between steps — against
    [now] when given (e.g. {!Ss_chaos.Clock.now_fn} for deterministic
    deadlines), the monotonic machine clock otherwise.

    [chaos] injects scheduled mid-run corruption: before the step at
    each due index (and before the termination check, so a fault on a
    quiescent configuration re-starts stabilization) a uniformly drawn
    victim's state is replaced via [mutate], and the dirty-set
    scheduler is re-synced exactly as for a moved node.  The injection
    draws only from the plan's private RNG stream, so a run with no
    due corruption is byte-identical to one with no [chaos] at all.

    The move limit is a {e hard} bound: [stats.moves <= max_moves]
    always.  A step whose selection would cross the remaining budget
    executes only a prefix of the selection (in the daemon's order) —
    the historical behavior checked the budget only between steps and
    could overshoot by up to n-1 moves on a synchronous step.  The
    truncated step still counts as one step.  The step limit keeps its
    pre-step semantics: the step that would exceed it is simply not
    taken.

    Observability: [observer] and every element of [sinks] are placed
    on one bus ({!tee}) — [observer] first, then [sinks] in order —
    and all receive every event.

    The engine is {e incremental}: it maintains the enabled set with
    a dirty-set scheduler ({!Sched}) that re-evaluates guards only
    for nodes whose closed neighborhood changed, instead of scanning
    all [n] nodes twice per step.  Observable behavior is identical
    to {!run_naive} (same steps, moves, rounds, configurations) for
    any algorithm whose guards are pure functions of the view — see
    DESIGN.md §7.  [self_check] (default [false]) appends a
    divergence-checking sink to the bus that re-derives the enabled
    set with a full scan after every step and raises {!Divergence} on
    any mismatch; use it when developing new algorithms or engine
    changes.
    @raise Invalid_selection on malformed daemon selections. *)

val run_naive :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ?now:(unit -> float) ->
  ?observer:('s, 'i) observer ->
  ?sinks:('s, 'i) observer list ->
  ('s, 'i) Algorithm.t ->
  Daemon.t ->
  ('s, 'i) Config.t ->
  ('s, 'i) stats
(** Reference engine: recomputes the full enabled set from scratch
    every step ([O(n·Δ)] guard evaluations per step).  Kept as the
    compatibility baseline for differential testing and benchmarking;
    produces exactly the same execution as {!run}, including the hard
    move-cap prefix-truncation semantics and the unified budget
    handling.  Deliberately takes no [chaos]: the naive loop is the
    fault-free reference twin chaos runs are checked against. *)

val step :
  ('s, 'i) Algorithm.t ->
  ('s, 'i) Config.t ->
  int list ->
  ('s, 'i) Config.t * (int * string) list
(** [step algo config selected] performs one atomic step activating
    exactly [selected]: returns the new configuration and the (node,
    rule) moves.  Validates the selection.
    @raise Invalid_selection on malformed selections. *)

val run_synchronous :
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?max_moves:int ->
  ('s, 'i) Algorithm.t ->
  ('s, 'i) Config.t ->
  ('s, 'i) stats
(** Convenience: run under the synchronous daemon (steps = rounds
    except for the final, terminal configuration).  Takes the same
    hard [max_moves] cap (and unified budget) as {!run}. *)

val report :
  ?label:string ->
  ?seed:int ->
  ?wall_s:float ->
  ?timebase:Ss_report.Run_report.timebase ->
  ('s, 'i) stats ->
  Ss_report.Run_report.t
(** The engine's statistics as a structured {!Ss_report.Run_report.t}
    (kind ["engine"]), ready for JSON emission. *)
