module Rng = Ss_prelude.Rng

type 's mutator = Rng.t -> 's -> 's

let check_p p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.corrupt: p = %g not in [0, 1]" p)

let corrupt rng ?(p = 1.0) mutator config =
  check_p p;
  let states =
    Array.map
      (fun s -> if Rng.chance rng p then mutator rng s else s)
      config.Config.states
  in
  Config.with_states config states

let corrupt_nodes rng mutator nodes config =
  let states = Array.copy config.Config.states in
  let n = Array.length states in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Fault.corrupt_nodes: node %d out of range [0, %d)" v
             n))
    nodes;
  (* Dedupe (and order canonically): a repeated id would corrupt the
     same node twice, consuming extra RNG draws and shifting every
     later draw — a replay-determinism hazard for scenarios built from
     node lists. *)
  let nodes = List.sort_uniq compare nodes in
  List.iter (fun v -> states.(v) <- mutator rng states.(v)) nodes;
  Config.with_states config states
