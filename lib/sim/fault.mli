(** Transient-fault injection.

    Self-stabilization promises recovery from an {e arbitrary} initial
    configuration; we model "after the last transient fault" by
    mutating node states of a configuration.  How a state is corrupted
    is algorithm-specific, so the mutator is a parameter (the
    transformer layer provides one that scrambles statuses, truncates,
    extends and garbles simulation lists while preserving the
    read-only [init] part). *)

type 's mutator = Ss_prelude.Rng.t -> 's -> 's
(** A state corruption: given the current state, produce an arbitrary
    replacement.  It must not touch read-only data (node inputs are
    out of reach by construction). *)

val corrupt :
  Ss_prelude.Rng.t ->
  ?p:float ->
  's mutator ->
  ('s, 'i) Config.t ->
  ('s, 'i) Config.t
(** [corrupt rng ~p mutator config] applies [mutator] to each node's
    state independently with probability [p] (default [1.0], i.e. a
    fully arbitrary configuration).

    @raise Invalid_argument if [p] is outside [[0, 1]] (including NaN) —
    out-of-range probabilities would silently defer to [Rng.chance]'s
    clamping and make the scenario lie about its fault rate. *)

val corrupt_nodes :
  Ss_prelude.Rng.t -> 's mutator -> int list -> ('s, 'i) Config.t -> ('s, 'i) Config.t
(** Corrupt exactly the listed nodes.  The list is deduplicated and
    processed in ascending node order, so the RNG draw sequence depends
    only on the {e set} of nodes — a repeated or re-ordered list can
    never shift later draws and break scenario replay.

    @raise Invalid_argument on a node id outside [[0, n)]. *)
