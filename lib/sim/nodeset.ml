(* Sets of node identifiers, shared between the round tracker and the
   incremental scheduler so enabled sets flow between them without
   list conversions.  [elements] returns nodes in increasing order,
   matching the order of {!Config.enabled_nodes}. *)

include Set.Make (Int)
