(* Dense bitset of node identifiers with a maintained cardinality.

   The scheduler and the round tracker churn through membership
   updates on every step; the historical [Set.Make (Int)] allocated a
   balanced-tree path per add/remove.  This representation is a flat
   word array plus a count: add/remove/mem are O(1) and allocation
   free, iteration is in increasing order (matching
   {!Config.enabled_nodes}), and the sharded scheduler can hand each
   worker a disjoint word range (see [unsafe_add]/[unsafe_remove]). *)

type t = { mutable words : int array; mutable count : int }

let word_bits = Sys.int_size (* 63 on 64-bit: every bit of a word *)
let nwords capacity = (capacity + word_bits - 1) / word_bits

let create ?(capacity = 0) () =
  { words = Array.make (max 1 (nwords capacity)) 0; count = 0 }

let count t = t.count
let is_empty t = t.count = 0

let grow t p =
  let need = (p / word_bits) + 1 in
  let cur = Array.length t.words in
  if need > cur then begin
    let words = Array.make (max need (2 * cur)) 0 in
    Array.blit t.words 0 words 0 cur;
    t.words <- words
  end

let mem t p =
  let w = p / word_bits in
  w < Array.length t.words
  && t.words.(w) land (1 lsl (p mod word_bits)) <> 0

(* Raw single-word membership flips: they do NOT maintain [count] and
   do NOT grow the array.  A sharded scheduler update lets each worker
   flip bits only inside its own word range and repair the count with
   one [bump] per shard at the deterministic merge (DESIGN.md §12). *)
let unsafe_add t p =
  let w = p / word_bits and b = 1 lsl (p mod word_bits) in
  let old = t.words.(w) in
  if old land b = 0 then begin
    t.words.(w) <- old lor b;
    true
  end
  else false

let unsafe_remove t p =
  let w = p / word_bits and b = 1 lsl (p mod word_bits) in
  let old = t.words.(w) in
  if old land b <> 0 then begin
    t.words.(w) <- old land lnot b;
    true
  end
  else false

let bump t delta = t.count <- t.count + delta

let add t p =
  if p < 0 then invalid_arg "Nodeset.add: negative node";
  grow t p;
  if unsafe_add t p then t.count <- t.count + 1

let remove t p =
  if p >= 0 && p / word_bits < Array.length t.words then
    if unsafe_remove t p then t.count <- t.count - 1

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0

let copy t = { words = Array.copy t.words; count = t.count }

let assign t ~src =
  let n = Array.length src.words in
  if Array.length t.words < n then t.words <- Array.make n 0
  else Array.fill t.words n (Array.length t.words - n) 0;
  Array.blit src.words 0 t.words 0 n;
  t.count <- src.count

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

(* [t := t ∩ src], recomputing the count from the surviving words.
   Words beyond [src]'s capacity are cleared ([src] has no member
   there). *)
let inter t ~src =
  let tw = t.words and sw = src.words in
  let shared = min (Array.length tw) (Array.length sw) in
  let count = ref 0 in
  for w = 0 to shared - 1 do
    let v = tw.(w) land sw.(w) in
    tw.(w) <- v;
    count := !count + popcount v
  done;
  Array.fill tw shared (Array.length tw - shared) 0;
  t.count <- !count

let iter f t =
  let tw = t.words in
  for w = 0 to Array.length tw - 1 do
    let bits = ref tw.(w) in
    let base = w * word_bits in
    while !bits <> 0 do
      let lsb = !bits land - !bits in
      (* log2 of a single set bit: count its trailing zeros. *)
      let rec tz i b = if b land 1 = 1 then i else tz (i + 1) (b lsr 1) in
      f (base + tz 0 lsb);
      bits := !bits land (!bits - 1)
    done
  done

(* Fill [out.(0 ..)] with the members in increasing order; returns how
   many were written.  [out] must have at least [count t] cells — the
   scheduler's reusable sorted-array cache refills in place. *)
let fill t out =
  let k = ref 0 in
  iter
    (fun p ->
      out.(!k) <- p;
      incr k)
    t;
  !k

let elements t =
  let acc = ref [] in
  iter (fun p -> acc := p :: !acc) t;
  List.rev !acc

let of_list l =
  let t = create () in
  List.iter (fun p -> add t p) l;
  t

let equal a b =
  a.count = b.count
  &&
  let aw = a.words and bw = b.words in
  let la = Array.length aw and lb = Array.length bw in
  let rec go w =
    w >= max la lb
    || (if w < la then aw.(w) else 0) = (if w < lb then bw.(w) else 0)
       && go (w + 1)
  in
  go 0
