(** Dense mutable bitset of node identifiers with cardinality.

    Shared between the round tracker and the incremental scheduler so
    enabled sets flow between them without conversions.  Membership
    updates are O(1) and allocation-free (the historical
    [Set.Make (Int)] allocated a tree path per operation); iteration
    is in increasing node order, matching {!Config.enabled_nodes}.

    Values are {e mutable}: consumers that retain a set across steps
    ({!Rounds}) must {!copy} it rather than alias it. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty set.  [capacity] pre-sizes the word array for nodes
    [0 .. capacity-1] (it still grows on demand). *)

val mem : t -> int -> bool
(** O(1); [false] for nodes beyond the current capacity. *)

val add : t -> int -> unit
(** O(1) amortized (grows capacity on demand).
    @raise Invalid_argument on negative nodes. *)

val remove : t -> int -> unit
(** O(1); removing an absent node is a no-op. *)

val count : t -> int
(** Cardinality, O(1). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove every member, keeping capacity. *)

val copy : t -> t

val assign : t -> src:t -> unit
(** [assign t ~src] makes [t] equal to [src], reusing [t]'s words when
    large enough (allocation-free in steady state). *)

val inter : t -> src:t -> unit
(** [inter t ~src] intersects in place: [t := t ∩ src]. *)

val iter : (int -> unit) -> t -> unit
(** Members in increasing order. *)

val fill : t -> int array -> int
(** [fill t out] writes the members into [out.(0 ..)] in increasing
    order and returns their number.  [out] must have at least
    [count t] cells — the scheduler's reusable sorted-array cache
    refills in place with this. *)

val elements : t -> int list
(** Members in increasing order (allocates; prefer {!iter}/{!fill} on
    hot paths). *)

val of_list : int list -> t

val equal : t -> t -> bool

(** {2 Sharded updates}

    The sharded scheduler partitions nodes into word-aligned ranges,
    one per shard, so concurrent workers never write the same word.
    Inside its range a worker uses the raw flips below — which do
    {e not} maintain {!count} and do {e not} grow capacity — and the
    deterministic merge repairs the count with one {!bump} per shard
    (DESIGN.md §12). *)

val unsafe_add : t -> int -> bool
(** Set the bit; returns whether it changed.  No count upkeep, no
    bounds growth: the node must be below the creation capacity. *)

val unsafe_remove : t -> int -> bool
(** Clear the bit; returns whether it changed.  Same caveats. *)

val bump : t -> int -> unit
(** Adjust the cardinality by a signed delta after raw flips. *)

val word_bits : int
(** Number of bits per word ([Sys.int_size]) — the alignment quantum
    for shard boundaries. *)
