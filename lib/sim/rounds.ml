module Int_set = Nodeset

type t = { mutable pending : Int_set.t; mutable completed : int }

let create_set ~enabled = { pending = enabled; completed = 0 }
let create ~enabled = create_set ~enabled:(Int_set.of_list enabled)

let note_step_set t ~moved ~enabled_after =
  if not (Int_set.is_empty t.pending) then begin
    let moved_set = Int_set.of_list moved in
    let discharged p =
      Int_set.mem p moved_set || not (Int_set.mem p enabled_after)
    in
    t.pending <- Int_set.filter (fun p -> not (discharged p)) t.pending;
    if Int_set.is_empty t.pending then begin
      t.completed <- t.completed + 1;
      t.pending <- enabled_after
    end
  end

let note_step t ~moved ~enabled_after =
  note_step_set t ~moved ~enabled_after:(Int_set.of_list enabled_after)

let completed t = t.completed
let pending t = Int_set.elements t.pending
