type t = { pending : Nodeset.t; mutable completed : int }

(* [enabled] is typically the scheduler's own (mutable) set, so the
   tracker keeps a private copy and refreshes it by [assign] — both
   allocation-free in steady state. *)
let create_set ~enabled = { pending = Nodeset.copy enabled; completed = 0 }
let create ~enabled = create_set ~enabled:(Nodeset.of_list enabled)

let note_step_set t ~moved ~enabled_after =
  if not (Nodeset.is_empty t.pending) then begin
    (* A pending node is discharged by moving or by neutralization
       (no longer enabled): drop the movers, keep the still-enabled. *)
    List.iter (fun p -> Nodeset.remove t.pending p) moved;
    Nodeset.inter t.pending ~src:enabled_after;
    if Nodeset.is_empty t.pending then begin
      t.completed <- t.completed + 1;
      Nodeset.assign t.pending ~src:enabled_after
    end
  end

let note_step t ~moved ~enabled_after =
  note_step_set t ~moved ~enabled_after:(Nodeset.of_list enabled_after)

let completed t = t.completed
let pending t = Nodeset.elements t.pending
