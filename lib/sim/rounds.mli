(** Incremental round counting via neutralization (paper §2.2).

    The first round of an execution is the minimal prefix in which
    every node enabled in the initial configuration either executes a
    move or is {e neutralized} (enabled before a step, disabled after
    it, without moving); subsequent rounds are defined inductively on
    the remaining suffix.  This tracker maintains the set of
    round-opening enabled nodes not yet discharged and is valid under
    any daemon. *)

type t

val create : enabled:int list -> t
(** [create ~enabled] opens the first round with the nodes enabled in
    the initial configuration.  If [enabled] is empty, the execution
    is already terminal and the round count stays [0]. *)

val create_set : enabled:Nodeset.t -> t
(** As {!create}, taking the enabled set directly (the incremental
    engine feeds the tracker from {!Sched.enabled_set}).  The set is
    copied — later mutation of [enabled] does not affect the
    tracker. *)

val note_step : t -> moved:int list -> enabled_after:int list -> unit
(** [note_step t ~moved ~enabled_after] accounts for one step: nodes
    that moved, or that are no longer enabled afterwards, are
    discharged.  When every node of the current round is discharged
    the round completes and the next one opens with [enabled_after]. *)

val note_step_set : t -> moved:int list -> enabled_after:Nodeset.t -> unit
(** As {!note_step} with the post-step enabled set passed as a set,
    avoiding a per-step list-to-set conversion. *)

val completed : t -> int
(** Number of completed rounds so far. *)

val pending : t -> int list
(** Round-opening nodes not yet discharged (sorted), for debugging. *)
