module Graph = Ss_graph.Graph

type ('s, 'i) t = {
  algo : ('s, 'i) Algorithm.t;
  graph : Graph.t;
  inputs : 'i array;
  bufs : 's array array;
      (* Per-node reusable neighbor-state buffers: guard evaluation
         refills [bufs.(p)] in place instead of allocating a fresh
         array per view (cf. Config.view). *)
  rules : ('s, 'i) Algorithm.rule option array;
      (* Highest-priority enabled rule of each node, [None] when the
         node is disabled.  This is the scheduler's ground truth. *)
  mutable enabled_set : Nodeset.t;
  mutable elements_cache : int list option;
      (* Memoized [Nodeset.elements enabled_set]; invalidated whenever
         membership changes, so steady states cost nothing to query. *)
  stamp : int array;
  mutable epoch : int;
      (* Visit stamps: a node whose stamp equals the current epoch has
         already been re-evaluated this update (dirty sets of adjacent
         movers overlap). *)
  mutable evals : int;
}

let eval t states p =
  let nbrs = Graph.neighbors t.graph p in
  let buf = t.bufs.(p) in
  for i = 0 to Array.length nbrs - 1 do
    buf.(i) <- states.(nbrs.(i))
  done;
  t.evals <- t.evals + 1;
  Algorithm.enabled_rule t.algo
    { Algorithm.input = t.inputs.(p); self = states.(p); neighbors = buf }

let refresh t states p =
  let now = eval t states p in
  (match (t.rules.(p), now) with
  | None, Some _ ->
      t.enabled_set <- Nodeset.add p t.enabled_set;
      t.elements_cache <- None
  | Some _, None ->
      t.enabled_set <- Nodeset.remove p t.enabled_set;
      t.elements_cache <- None
  | None, None | Some _, Some _ -> ());
  t.rules.(p) <- now

let create algo (config : ('s, 'i) Config.t) =
  let graph = config.Config.graph in
  let n = Graph.n graph in
  let states = config.Config.states in
  let t =
    {
      algo;
      graph;
      inputs = config.Config.inputs;
      bufs =
        Array.init n (fun p -> Array.make (Graph.degree graph p) states.(p));
      rules = Array.make n None;
      enabled_set = Nodeset.empty;
      elements_cache = None;
      stamp = Array.make n (-1);
      epoch = 0;
      evals = 0;
    }
  in
  for p = 0 to n - 1 do
    refresh t states p
  done;
  t

let update t (config : ('s, 'i) Config.t) ~moved =
  if config.Config.graph != t.graph then
    invalid_arg "Sched.update: configuration belongs to another topology";
  let states = config.Config.states in
  t.epoch <- t.epoch + 1;
  let touch p =
    if t.stamp.(p) <> t.epoch then begin
      t.stamp.(p) <- t.epoch;
      refresh t states p
    end
  in
  List.iter
    (fun p ->
      touch p;
      Array.iter touch (Graph.neighbors t.graph p))
    moved

let enabled t =
  match t.elements_cache with
  | Some l -> l
  | None ->
      let l = Nodeset.elements t.enabled_set in
      t.elements_cache <- Some l;
      l

let enabled_set t = t.enabled_set
let no_enabled t = Nodeset.is_empty t.enabled_set
let is_enabled t p = Option.is_some t.rules.(p)
let enabled_rule t p = t.rules.(p)
let evals t = t.evals
