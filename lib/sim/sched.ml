module Graph = Ss_graph.Graph

(* Contiguous node range owned by one worker.  Shard boundaries are
   multiples of {!Nodeset.word_bits}, so two shards never write the
   same bitset word; all other mutable fields are shard-private.
   Counter deltas are harvested into the global totals in shard-index
   order after every update — the same deterministic merge discipline
   the campaign pool uses (DESIGN.md §11/§12). *)
type ('s, 'i) shard = {
  lo : int;
  hi : int;  (* owns nodes [lo, hi) *)
  work : int array;  (* this update's dirty owned nodes, scan order *)
  mutable wlen : int;
  scratch : 's array array;
      (* Shared guard-view buffers indexed by degree: one buffer per
         distinct degree per shard, refilled in place for every
         evaluation — views need exact-length neighbor arrays, and
         guards must not retain them (see the interface), so nodes of
         equal degree can share.  Replaces the historical n per-node
         buffers (~4M boxed words at n = 10^6 random-4) with O(#degrees)
         per shard, allocated on first touch. *)
  mutable s_evals : int;
  mutable s_delta : int;  (* enabled-count change, pending harvest *)
  mutable s_changed : bool;
}

type ('s, 'i) t = {
  algo : ('s, 'i) Algorithm.t;
  graph : Graph.t;
  inputs : 'i array;
  rules : ('s, 'i) Algorithm.rule option array;
      (* Highest-priority enabled rule of each node, [None] when the
         node is disabled.  This is the scheduler's ground truth. *)
  enabled : Nodeset.t;
  mutable elems : int array;
  mutable elems_valid : bool;
      (* Reusable sorted members cache: refilled in place from the
         bitset when invalid, so steady-state queries allocate
         nothing (the historical cache memoized an [int list]). *)
  stamp : int array;
  mutable epoch : int;
      (* Visit stamps: a node whose stamp equals the current epoch has
         already been bucketed this update (dirty sets of adjacent
         movers overlap). *)
  mutable evals : int;
  shards : ('s, 'i) shard array;
  parallel : bool;
}

let eval t sh states p =
  let deg = Graph.degree t.graph p in
  let buf =
    let b = sh.scratch.(deg) in
    if Array.length b = deg then b
    else begin
      let b = Array.make deg states.(p) in
      sh.scratch.(deg) <- b;
      b
    end
  in
  for i = 0 to deg - 1 do
    buf.(i) <- states.(Graph.nbr t.graph p i)
  done;
  sh.s_evals <- sh.s_evals + 1;
  Algorithm.enabled_rule t.algo
    { Algorithm.input = t.inputs.(p); self = states.(p); neighbors = buf }

let refresh t sh states p =
  let now = eval t sh states p in
  (match (t.rules.(p), now) with
  | None, Some _ ->
      if Nodeset.unsafe_add t.enabled p then begin
        sh.s_delta <- sh.s_delta + 1;
        sh.s_changed <- true
      end
  | Some _, None ->
      if Nodeset.unsafe_remove t.enabled p then begin
        sh.s_delta <- sh.s_delta - 1;
        sh.s_changed <- true
      end
  | None, None | Some _, Some _ -> ());
  t.rules.(p) <- now

(* Fold every shard's pending deltas into the global counters, in
   shard-index order, and reset them.  This is the only place shard
   results meet — identical totals whatever ran the shards. *)
let harvest t =
  Array.iter
    (fun sh ->
      t.evals <- t.evals + sh.s_evals;
      if sh.s_delta <> 0 then Nodeset.bump t.enabled sh.s_delta;
      if sh.s_changed then t.elems_valid <- false;
      sh.s_evals <- 0;
      sh.s_delta <- 0;
      sh.s_changed <- false;
      sh.wlen <- 0)
    t.shards

(* ~16k nodes per shard, rounded to the bitset word size so shard
   ranges own disjoint words.  Fixed (not derived from the job count)
   so shard boundaries — and therefore every intermediate — are
   machine- and [-j]-independent. *)
let shard_quantum = Nodeset.word_bits * 256

let make_shards ~parallel ~n ~max_degree =
  let ranges =
    if (not parallel) || n <= shard_quantum then [ (0, n) ]
    else begin
      let acc = ref [] in
      let lo = ref 0 in
      while !lo < n do
        let hi = min n (!lo + shard_quantum) in
        acc := (!lo, hi) :: !acc;
        lo := hi
      done;
      List.rev !acc
    end
  in
  Array.of_list
    (List.map
       (fun (lo, hi) ->
         {
           lo;
           hi;
           work = Array.make (max 1 (hi - lo)) 0;
           wlen = 0;
           scratch = Array.make (max_degree + 1) [||];
           s_evals = 0;
           s_delta = 0;
           s_changed = false;
         })
       ranges)

let create ?(parallel = false) algo (config : ('s, 'i) Config.t) =
  let graph = config.Config.graph in
  let n = Graph.n graph in
  let states = config.Config.states in
  let t =
    {
      algo;
      graph;
      inputs = config.Config.inputs;
      rules = Array.make n None;
      enabled = Nodeset.create ~capacity:(max 1 n) ();
      elems = [||];
      elems_valid = false;
      stamp = Array.make n (-1);
      epoch = 0;
      evals = 0;
      shards = make_shards ~parallel ~n ~max_degree:(Graph.max_degree graph);
      parallel;
    }
  in
  Array.iter
    (fun sh ->
      for p = sh.lo to sh.hi - 1 do
        refresh t sh states p
      done)
    t.shards;
  harvest t;
  t

let shard_of t p = t.shards.(p / shard_quantum)

let update t (config : ('s, 'i) Config.t) ~moved =
  if config.Config.graph != t.graph then
    invalid_arg "Sched.update: configuration belongs to another topology";
  let states = config.Config.states in
  t.epoch <- t.epoch + 1;
  (* Sequential dirty scan: bucket each dirty node into its owner
     shard, deduplicated by epoch stamp.  Cheap integer work — the
     expensive part (guard evaluation) happens per bucket below. *)
  let single = Array.length t.shards = 1 in
  let touch p =
    if t.stamp.(p) <> t.epoch then begin
      t.stamp.(p) <- t.epoch;
      let sh = if single then t.shards.(0) else shard_of t p in
      sh.work.(sh.wlen) <- p - sh.lo;
      sh.wlen <- sh.wlen + 1
    end
  in
  List.iter
    (fun p ->
      touch p;
      Graph.iter_neighbors t.graph p touch)
    moved;
  let process sh =
    for k = 0 to sh.wlen - 1 do
      refresh t sh states (sh.lo + sh.work.(k))
    done
  in
  let total_dirty =
    Array.fold_left (fun acc sh -> acc + sh.wlen) 0 t.shards
  in
  if
    t.parallel
    && Array.length t.shards > 1
    && total_dirty >= 1024
    && Ss_par.Par.jobs () > 1
  then ignore (Ss_par.Par.map_array process t.shards)
  else Array.iter process t.shards;
  harvest t

let enabled_arr t =
  if not t.elems_valid then begin
    let c = Nodeset.count t.enabled in
    if Array.length t.elems <> c then t.elems <- Array.make c 0;
    ignore (Nodeset.fill t.enabled t.elems);
    t.elems_valid <- true
  end;
  t.elems

let enabled t = Array.to_list (enabled_arr t)
let enabled_set t = t.enabled
let no_enabled t = Nodeset.is_empty t.enabled
let is_enabled t p = Option.is_some t.rules.(p)
let enabled_rule t p = t.rules.(p)
let evals t = t.evals
