(** Incremental enabled-set scheduler (the dirty-set engine core).

    A node's enabled status is a function of its {e closed
    neighborhood} only: its input, its own state and its neighbors'
    states — exactly the {!Algorithm.view} its guards read.  Hence a
    step that changes the states of a set [M] of nodes can change the
    enabled status only of [M] and of the graph neighbors of [M] (the
    {e dirty set}).  This module maintains the enabled set across
    steps by re-evaluating guards for dirty nodes alone, instead of
    the [O(n·Δ)] full scan {!Config.enabled_nodes} performs.

    The enabled set is a dense bitset ({!Nodeset}) plus a reusable
    sorted-array members cache, so steady-state membership updates and
    queries are allocation-free.  Guard evaluations share one
    neighbor-state buffer per distinct degree (per shard), refilled in
    place — guards must therefore be pure and must not retain the
    [neighbors] array of the view they are given beyond the call;
    every algorithm in the atomic-state model satisfies this (actions,
    which may retain data, are never handed buffered views; see
    {!Engine}).

    {b Sharding} ([~parallel:true]): the node space is partitioned
    into contiguous, bitset-word-aligned shards with fixed,
    job-count-independent boundaries.  Each update buckets the dirty
    nodes by owner shard in one sequential scan, then evaluates the
    buckets — concurrently on the {!Ss_par} pool when the dirty set is
    large — with every write (rule slot, bitset word, counters)
    shard-private, and folds the per-shard deltas back in shard-index
    order.  Results are byte-identical to the sequential scheduler for
    every job count (DESIGN.md §12).

    The "only the closed neighborhood of [moved] can change" property
    is also what makes {e guard-level} memoization sound downstream:
    {!Ss_core.Predicates.algo_err_cached} caches verified prefixes of
    transformer lists keyed by state identity, and relies on the fact
    that between two evaluations of a node's guard, every state it
    read either is physically the same value or belonged to a node in
    some step's [moved] set — whose re-evaluation this module
    triggers (DESIGN.md §10). *)

type ('s, 'i) t

val create :
  ?parallel:bool -> ('s, 'i) Algorithm.t -> ('s, 'i) Config.t -> ('s, 'i) t
(** [create algo config] evaluates every node once ([n] guard
    evaluations) and snapshots the topology.  All later configurations
    passed to {!update} must carry the same graph (physically).
    [parallel] (default [false]) enables the sharded update path; it
    never changes any observable result, only the wall clock. *)

val update : ('s, 'i) t -> ('s, 'i) Config.t -> moved:int list -> unit
(** [update t config ~moved] accounts for one atomic step that changed
    exactly the states of [moved], re-evaluating the closed
    neighborhood of [moved] against [config] (the {e post-step}
    configuration).  Overlapping neighborhoods are deduplicated.
    @raise Invalid_argument if [config]'s graph is not the one
    [create] saw. *)

val enabled_arr : ('s, 'i) t -> int array
(** Currently enabled nodes in increasing order (same order as
    {!Config.enabled_nodes}).  Returns the scheduler's reusable cache:
    valid until the next {!update}, must not be mutated or retained
    across steps.  Allocation-free while membership is unchanged. *)

val enabled : ('s, 'i) t -> int list
(** {!enabled_arr} as a fresh list (allocates; kept for differential
    checks and debugging). *)

val enabled_set : ('s, 'i) t -> Nodeset.t
(** The enabled set itself, for set-based consumers
    ({!Rounds.note_step_set}).  Owned by the scheduler: read-only, and
    mutated in place by {!update}. *)

val no_enabled : ('s, 'i) t -> bool
(** Whether the configuration is terminal ([O(1)]). *)

val is_enabled : ('s, 'i) t -> int -> bool
(** [is_enabled t p] in [O(1)]. *)

val enabled_rule : ('s, 'i) t -> int -> ('s, 'i) Algorithm.rule option
(** The cached highest-priority enabled rule of [p], if any — valid
    for the configuration last seen by {!create}/{!update}. *)

val evals : ('s, 'i) t -> int
(** Total guard-evaluation count since [create] (telemetry: the
    incremental engine's work measure, compared against [n] per step
    for the naive engine). *)
