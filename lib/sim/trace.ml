type event = {
  ev_step : int;
  ev_rounds : int;
  ev_moved : (int * string) list;
}

let make () =
  let acc = ref [] in
  let observer ~step ~rounds ~moved _config =
    if step > 0 then
      acc := { ev_step = step; ev_rounds = rounds; ev_moved = moved } :: !acc
  in
  (observer, fun () -> List.rev !acc)

let with_configs () =
  let acc = ref [] in
  let observer ~step ~rounds ~moved config =
    acc :=
      ({ ev_step = step; ev_rounds = rounds; ev_moved = moved }, config) :: !acc
  in
  (observer, fun () -> List.rev !acc)

let moves_of events =
  List.fold_left (fun n e -> n + List.length e.ev_moved) 0 events

(* RFC 4180: a field containing a comma, a double quote, or a line
   break is wrapped in double quotes, with embedded quotes doubled. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let csv_header = "step,rounds,node,rule\n"

let add_csv_event buf e =
  List.iter
    (fun (node, rule) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%s\n" e.ev_step e.ev_rounds node
           (csv_field rule)))
    e.ev_moved

let to_csv events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf csv_header;
  List.iter (add_csv_event buf) events;
  Buffer.contents buf

let csv_sink () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf csv_header;
  let observer ~step ~rounds ~moved _config =
    if step > 0 then
      add_csv_event buf { ev_step = step; ev_rounds = rounds; ev_moved = moved }
  in
  (observer, fun () -> Buffer.contents buf)

let to_json events =
  let module Json = Ss_report.Json in
  Json.List
    (List.concat_map
       (fun e ->
         List.map
           (fun (node, rule) ->
             Json.Obj
               [
                 ("step", Json.Int e.ev_step);
                 ("rounds", Json.Int e.ev_rounds);
                 ("node", Json.Int node);
                 ("rule", Json.String rule);
               ])
           e.ev_moved)
       events)

let progress ?(every = 1000) ppf =
  let moves = ref 0 in
  fun ~step ~rounds ~moved _config ->
    moves := !moves + List.length moved;
    if step > 0 && step mod every = 0 then
      Format.fprintf ppf "step %d  rounds %d  moves %d@." step rounds !moves

let to_schedule events =
  List.filter_map
    (fun e ->
      match e.ev_moved with [] -> None | moved -> Some (List.map fst moved))
    events

let pp_event ppf e =
  Format.fprintf ppf "step %d (%d rounds):" e.ev_step e.ev_rounds;
  List.iter (fun (node, rule) -> Format.fprintf ppf " %d:%s" node rule) e.ev_moved
