(** Execution traces: per-step records of who moved with which rule.

    A recorder is an {!Engine.observer} paired with an accumulator; it
    is the basis of the replay tests, of the "roots are never created"
    property checks, and of the §6 energy accounting.  All recorders
    here respect the sink purity contract (DESIGN.md §9) and compose
    on the engine's sink bus ({!Engine.tee} / [?sinks]). *)

type event = {
  ev_step : int;  (** Step index (1-based; step 0 is the initial config). *)
  ev_rounds : int;  (** Rounds completed when the step finished. *)
  ev_moved : (int * string) list;  (** (node, rule label) moves. *)
}

val make : unit -> ('s, 'i) Engine.observer * (unit -> event list)
(** [make ()] returns an observer and a function retrieving the events
    recorded so far, in execution order.  The initial [step = 0] call
    is not recorded. *)

val with_configs :
  unit ->
  ('s, 'i) Engine.observer * (unit -> (event * ('s, 'i) Config.t) list)
(** Like {!make} but each record also captures the configuration the
    step reached; the initial configuration is included as a
    pseudo-event with [ev_step = 0] and no moves. *)

val moves_of : event list -> int
(** Total number of moves across the events. *)

val to_csv : event list -> string
(** One line per move: [step,rounds,node,rule] with a header — for
    offline analysis of executions.  Rule labels are quoted per
    RFC 4180 (fields containing commas, quotes or line breaks are
    wrapped in double quotes with embedded quotes doubled). *)

val csv_sink : unit -> ('s, 'i) Engine.observer * (unit -> string)
(** Streaming CSV export: an observer that appends each move to an
    internal buffer as it happens (same format as {!to_csv}), plus a
    function retrieving the CSV written so far. *)

val to_json : event list -> Ss_report.Json.t
(** The same per-move rows as {!to_csv}, as a JSON array of
    [{step, rounds, node, rule}] objects built on the
    {!Ss_report.Json} type. *)

val progress : ?every:int -> Format.formatter -> ('s, 'i) Engine.observer
(** A progress sink: prints [step/rounds/moves-so-far] every [every]
    steps (default 1000). *)

val to_schedule : event list -> int list list
(** The activation sets of the trace, replayable through
    {!Daemon.scripted} (the engine is deterministic given a schedule,
    so replay reproduces the execution exactly). *)

val pp_event : Format.formatter -> event -> unit
(** ["step 12 (3 rounds): 4:RU 7:RP"]. *)
