(** Terminating synchronous algorithms — the transformer's input class
    (paper §3.1).

    An algorithm is given by an initial state (computed from the
    node's read-only input) and a step function: at every synchronous
    round each node simultaneously computes its next state from its
    own state and its neighbors' states.  The algorithm {e terminates}
    when a global fixpoint is reached; its execution time [T] is the
    number of rounds to get there, and its space complexity [S] is the
    number of bits of a state.

    Neighbor states are presented in port order.  Algorithms for the
    weak model of §2.2 must treat the array as a multiset; algorithms
    for stronger models (§3.3) may use ids carried in ['i] or index by
    port. *)

type ('s, 'i) t = {
  sync_name : string;
  equal : 's -> 's -> bool;
  init : 'i -> 's;
      (** The controlled initial state — the transformer's read-only
          [st.init]. *)
  step : 'i -> 's -> 's array -> 's;
      (** [step input self neighbors] is the next state.  Must be a
          pure function of its arguments and must not retain the
          [neighbors] array itself — callers on hot paths reuse one
          scratch buffer across calls. *)
  random_state : Ss_prelude.Rng.t -> 'i -> 's;
      (** An arbitrary (possibly corrupt) state, used to model
          transient faults hitting simulation list cells. *)
  state_bits : 's -> int;
      (** Size of the state's encoding in bits — the paper's [S]; used
          by the space metric (Table 1) and the §6 energy model. *)
  pp_state : Format.formatter -> 's -> unit;
}

val apply : ('s, 'i) t -> 'i -> 's -> 's array -> 's
(** [apply algo input self neighbors] runs one step. *)
