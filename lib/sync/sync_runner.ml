module Graph = Ss_graph.Graph

type ('s, 'i) history = {
  graph : Graph.t;
  inputs : 'i array;
  states_by_round : 's array array;
  t : int;
}

exception Did_not_terminate of string

(* The fixpoint iteration is dirty-set incremental: [step] reads only
   the closed neighborhood, so a node can change in a round only if a
   node of its closed neighborhood changed in the previous round.
   Recomputing exactly those nodes yields the same row sequence as
   recomputing all of them (skipped nodes provably keep their state),
   while convergence tails touch only the still-active region. *)
let run ?max_rounds algo g ~inputs =
  let n = Graph.n g in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 64
  in
  let inputs = Array.init n inputs in
  let row0 = Array.init n (fun p -> algo.Sync_algo.init inputs.(p)) in
  let stamp = Array.make n (-1) in
  let dirty_of changed ~epoch =
    let acc = ref [] in
    let touch p =
      if stamp.(p) <> epoch then begin
        stamp.(p) <- epoch;
        acc := p :: !acc
      end
    in
    List.iter
      (fun p ->
        touch p;
        Array.iter touch (Graph.neighbors g p))
      changed;
    !acc
  in
  let rec go rows current dirty round =
    if round > max_rounds then
      raise
        (Did_not_terminate
           (Printf.sprintf "%s did not reach a fixpoint within %d rounds"
              algo.Sync_algo.sync_name max_rounds));
    let next = Array.copy current in
    let changed = ref [] in
    List.iter
      (fun p ->
        let neighbors =
          Array.map (fun q -> current.(q)) (Graph.neighbors g p)
        in
        let s' = algo.Sync_algo.step inputs.(p) current.(p) neighbors in
        if not (algo.Sync_algo.equal current.(p) s') then begin
          next.(p) <- s';
          changed := p :: !changed
        end)
      dirty;
    match !changed with
    | [] -> (List.rev rows, round)
    | changed ->
        go (next :: rows) next (dirty_of changed ~epoch:round) (round + 1)
  in
  let rows, t = go [ row0 ] row0 (List.init n Fun.id) 0 in
  { graph = g; inputs; states_by_round = Array.of_list rows; t }

let state_at h ~round ~node =
  let r = min round h.t in
  h.states_by_round.(r).(node)

let final h = h.states_by_round.(h.t)
let execution_time h = h.t

let max_state_bits algo h =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc s -> max acc (algo.Sync_algo.state_bits s)) acc row)
    0 h.states_by_round
