module Graph = Ss_graph.Graph
module Budget = Ss_report.Budget
module Run_report = Ss_report.Run_report

type ('s, 'i) history = {
  graph : Graph.t;
  inputs : 'i array;
  states_by_round : 's array array;
  t : int;
}

type 's sink = round:int -> changed:int list -> 's array -> unit

exception Did_not_terminate of string

(* The fixpoint iteration is dirty-set incremental: [step] reads only
   the closed neighborhood, so a node can change in a round only if a
   node of its closed neighborhood changed in the previous round.
   Recomputing exactly those nodes yields the same row sequence as
   recomputing all of them (skipped nodes provably keep their state),
   while convergence tails touch only the still-active region. *)
let run ?budget ?max_rounds ?stop_after ?(sinks = []) algo g ~inputs =
  let n = Graph.n g in
  let stopped round =
    match stop_after with Some s -> round >= s | None -> false
  in
  let b = Option.value budget ~default:Budget.unlimited in
  let max_rounds =
    Budget.resolve ~default:((4 * n) + 64) max_rounds b.Budget.steps
  in
  let deadline = Budget.deadline_check b in
  let emit =
    match sinks with
    | [] -> fun ~round:_ ~changed:_ _ -> ()
    | sinks ->
        fun ~round ~changed row ->
          List.iter (fun s -> s ~round ~changed row) sinks
  in
  let give_up what round =
    raise
      (Did_not_terminate
         (Printf.sprintf "%s did not reach a fixpoint within %s (%d rounds)"
            algo.Sync_algo.sync_name what round))
  in
  let inputs = Array.init n inputs in
  let row0 = Array.init n (fun p -> algo.Sync_algo.init inputs.(p)) in
  let stamp = Array.make n (-1) in
  let dirty_of changed ~epoch =
    let acc = ref [] in
    let touch p =
      if stamp.(p) <> epoch then begin
        stamp.(p) <- epoch;
        acc := p :: !acc
      end
    in
    List.iter
      (fun p ->
        touch p;
        Array.iter touch (Graph.neighbors g p))
      changed;
    !acc
  in
  let rec go rows current dirty round =
    if stopped round then (List.rev rows, round)
    else begin
    if round > max_rounds then
      give_up (Printf.sprintf "the %d-round budget" max_rounds) round;
    if deadline () then give_up "the wall-clock deadline" round;
    let next = Array.copy current in
    let changed = ref [] in
    List.iter
      (fun p ->
        let neighbors =
          Array.map (fun q -> current.(q)) (Graph.neighbors g p)
        in
        let s' = algo.Sync_algo.step inputs.(p) current.(p) neighbors in
        if not (algo.Sync_algo.equal current.(p) s') then begin
          next.(p) <- s';
          changed := p :: !changed
        end)
      dirty;
    match !changed with
    | [] -> (List.rev rows, round)
    | changed ->
        emit ~round:(round + 1) ~changed next;
        go (next :: rows) next (dirty_of changed ~epoch:round) (round + 1)
    end
  in
  emit ~round:0 ~changed:(List.init n Fun.id) row0;
  let rows, t = go [ row0 ] row0 (List.init n Fun.id) 0 in
  { graph = g; inputs; states_by_round = Array.of_list rows; t }

let state_at h ~round ~node =
  let r = min round h.t in
  h.states_by_round.(r).(node)

let final h = h.states_by_round.(h.t)
let execution_time h = h.t

let max_state_bits algo h =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc s -> max acc (algo.Sync_algo.state_bits s)) acc row)
    0 h.states_by_round

let report ?(label = "sync-run") ?seed ?wall_s h =
  Run_report.v ?seed ?wall_s ~outcome:Budget.Completed label
    (Run_report.Sync { Run_report.sync_rounds = h.t; nodes = Graph.n h.graph })
