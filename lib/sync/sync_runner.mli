(** Reference executor for synchronous algorithms.

    Runs an algorithm from its controlled initial configuration under
    the synchronous daemon and records the whole history
    [st_p^0, st_p^1, …, st_p^T] — the ground truth the transformer's
    lists must converge to (paper §3: ultimately
    [p.L\[i\] = st_p^i]). *)

type ('s, 'i) history = {
  graph : Ss_graph.Graph.t;
  inputs : 'i array;
  states_by_round : 's array array;
      (** [states_by_round.(i).(p)] is [st_p^i]; row [0] is the initial
          configuration, row [t] the fixpoint. *)
  t : int;  (** Execution time [T]: first round index with no change. *)
}

type 's sink = round:int -> changed:int list -> 's array -> unit
(** A sink on the synchronous loop's event stream: called once on the
    initial row ([round = 0], every node "changed") and after every
    round that changed at least one node, with the nodes that changed
    and the row reached.  Same purity contract as
    {!Ss_sim.Engine.observer} (DESIGN.md §9). *)

exception Did_not_terminate of string
(** Raised when no fixpoint is reached within the budget (round cap or
    wall-clock deadline). *)

val run :
  ?budget:Ss_report.Budget.t ->
  ?max_rounds:int ->
  ?stop_after:int ->
  ?sinks:'s sink list ->
  ('s, 'i) Sync_algo.t ->
  Ss_graph.Graph.t ->
  inputs:(int -> 'i) ->
  ('s, 'i) history
(** [run algo g ~inputs] executes until the global fixpoint.  The
    unified [budget] and the historical [max_rounds] compose — the
    tightest provided limit wins ([budget.steps] counts synchronous
    rounds here); the default is [4 * n + 64] rounds, ample for all
    the algorithms here, whose [T] is at most [n].
    [budget.deadline_s] is checked once per round.

    [stop_after] truncates the recorded history: the run stops
    cleanly (no exception) once that many rounds were executed, even
    without a fixpoint, and [t] is the stop round.  Under a finite
    transformer bound [B] only rounds [0..B] are ever consulted
    (heights never exceed [B]), so [stop_after:B] bounds the ground
    truth to [O(B·n)] memory instead of [O(T·n)] — the million-node
    checker path.  Note [state_at]'s clamp and [final] then refer to
    the stop row, not the fixpoint.
    @raise Did_not_terminate when the budget is exhausted. *)

val state_at : ('s, 'i) history -> round:int -> node:int -> 's
(** [state_at h ~round ~node] is [st_node^round], with rounds beyond
    [T] clamped to the fixpoint (the paper's "the last rounds do
    nothing"). *)

val final : ('s, 'i) history -> 's array
(** The fixpoint row. *)

val execution_time : ('s, 'i) history -> int
(** [T]. *)

val max_state_bits : ('s, 'i) Sync_algo.t -> ('s, 'i) history -> int
(** Largest [state_bits] over all rounds and nodes — the measured [S]. *)

val report :
  ?label:string ->
  ?seed:int ->
  ?wall_s:float ->
  ('s, 'i) history ->
  Ss_report.Run_report.t
(** The history's summary as a structured {!Ss_report.Run_report.t}
    (kind ["sync"]): execution time [T] and network size. *)
