module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Sync_runner = Ss_sync.Sync_runner
module Transformer = Ss_core.Registry.Trans
module Checker = Ss_core.Checker
module Rng = Ss_prelude.Rng

type ('s, 'i) scenario = {
  params : ('s, 'i) Transformer.params;
  graph : Ss_graph.Graph.t;
  inputs : int -> 'i;
}

type 's report = {
  moves : int;
  steps : int;
  rounds : int;
  terminated : bool;
  recovery_moves : int;
  recovery_rounds : int;
  space_bits : int;
  moves_per_rule : (string * int) list;
  legitimate : bool;
  outputs : 's array;
}

let history ?rounds sc =
  Sync_runner.run ?stop_after:rounds sc.params.Transformer.sync sc.graph
    ~inputs:sc.inputs

let clean_start ?codec sc =
  match (codec, sc.params.Transformer.bound) with
  | Some codec, Ss_core.Predicates.Finite _ ->
      Transformer.packed_config sc.params ~codec sc.graph ~inputs:sc.inputs
  | _ -> Transformer.clean_config sc.params sc.graph ~inputs:sc.inputs

let corrupted_start rng ?p ?codec ~max_height sc =
  Transformer.corrupt rng ?p ~max_height sc.params (clean_start ?codec sc)

(* Above this population the per-step root scan of recovery tracking
   (O(n·deg) per step) dominates the run itself; big-n campaigns track
   totals only unless the caller insists. *)
let track_recovery_threshold = 65_536

let run ?track_recovery ?budget ?max_steps ?(sharded = false) sc ~daemon ~start
    =
  let track_recovery =
    match track_recovery with
    | Some b -> b
    | None -> Config.n start < track_recovery_threshold
  in
  (* Recovery phase end: the first configuration without a root.  Roots
     cannot be created (paper §4), so once none remains the recovery
     phase is over for good. *)
  let recovery_moves = ref (-1) in
  let recovery_rounds = ref (-1) in
  let moves_so_far = ref 0 in
  let observer ~step:_ ~rounds ~moved config =
    moves_so_far := !moves_so_far + List.length moved;
    if track_recovery && !recovery_moves < 0
       && not (Checker.has_root sc.params config)
    then begin
      recovery_moves := !moves_so_far;
      recovery_rounds := rounds
    end
  in
  let observer =
    if track_recovery then Some observer else None
  in
  let stats =
    Transformer.run ?budget ?max_steps ~sharded ?observer sc.params daemon
      start
  in
  (* Under a finite bound only rounds 0..B of the ground truth are
     ever consulted (heights never exceed B), so the history can be
     cut there — O(B·n) memory instead of O(T·n) at n = 10^6. *)
  let hist =
    match sc.params.Transformer.bound with
    | Ss_core.Predicates.Finite b -> history ~rounds:b sc
    | Ss_core.Predicates.Infinite -> history sc
  in
  let legitimate =
    stats.Engine.terminated
    && Checker.legitimate_terminal sc.params hist stats.Engine.final = Ok ()
  in
  {
    moves = stats.Engine.moves;
    steps = stats.Engine.steps;
    rounds = stats.Engine.rounds;
    terminated = stats.Engine.terminated;
    recovery_moves = !recovery_moves;
    recovery_rounds = !recovery_rounds;
    space_bits = Checker.space_bits sc.params stats.Engine.final;
    moves_per_rule = stats.Engine.moves_per_rule;
    legitimate;
    outputs = Transformer.outputs stats.Engine.final;
  }

let daemon_portfolio rng =
  [
    ("synchronous", Daemon.synchronous);
    ("async-dense", Daemon.distributed_random (Rng.split rng) ~p:0.75);
    ("async-medium", Daemon.distributed_random (Rng.split rng) ~p:0.5);
    ("async-sparse", Daemon.distributed_random (Rng.split rng) ~p:0.15);
    ("central-random", Daemon.central_random (Rng.split rng));
    ("central-min", Daemon.central_min);
    ("round-robin", Daemon.round_robin ());
  ]
