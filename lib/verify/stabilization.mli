(** Self-stabilization measurement harness.

    A {!scenario} bundles a transformed algorithm with its workload
    (topology and inputs).  {!run} executes it from a chosen start
    configuration under a chosen daemon and reports everything the
    Table 1 experiments need: moves, rounds, the end of the error
    recovery phase (the step after which no root remains — the paper
    proves roots cannot be created, so the first root-free
    configuration is definitive), the space footprint, and the
    legitimacy of the terminal configuration. *)

type ('s, 'i) scenario = {
  params : ('s, 'i) Ss_core.Predicates.params;
  graph : Ss_graph.Graph.t;
  inputs : int -> 'i;
}

type 's report = {
  moves : int;
  steps : int;
  rounds : int;
  terminated : bool;
  recovery_moves : int;
      (** Moves executed up to the first root-free configuration
          ([0] when the start already has no root; [-1] when recovery
          tracking is disabled). *)
  recovery_rounds : int;  (** Rounds likewise. *)
  space_bits : int;  (** Maximum per-node footprint over the execution's
          final configuration. *)
  moves_per_rule : (string * int) list;
  legitimate : bool;
      (** Terminal, root-free, equal heights, lists matching the
          synchronous history. *)
  outputs : 's array;  (** Final simulated outputs [L(h)]. *)
}

val history :
  ?rounds:int -> ('s, 'i) scenario -> ('s, 'i) Ss_sync.Sync_runner.history
(** The synchronous ground truth of the scenario.  [rounds] cuts the
    recorded history after that many rounds
    ({!Ss_sync.Sync_runner.run}'s [stop_after]) — sound whenever only
    rounds up to a finite transformer bound are consulted. *)

val clean_start :
  ?codec:'s Ss_core.Cellpack.codec ->
  ('s, 'i) scenario ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t
(** The controlled initial configuration.  With [codec] and a finite
    bound, the states live in one packed {!Ss_core.Cellpack} arena
    ({!Ss_core.Transformer.packed_config} — the million-node layout);
    otherwise boxed. *)

val corrupted_start :
  Ss_prelude.Rng.t ->
  ?p:float ->
  ?codec:'s Ss_core.Cellpack.codec ->
  max_height:int ->
  ('s, 'i) scenario ->
  ('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t
(** A faulted start: {!clean_start} hit by
    {!Ss_core.Transformer.corrupt}. *)

val run :
  ?track_recovery:bool ->
  ?budget:Ss_report.Budget.t ->
  ?max_steps:int ->
  ?sharded:bool ->
  ('s, 'i) scenario ->
  daemon:Ss_sim.Daemon.t ->
  start:('s Ss_core.Trans_state.t, 'i) Ss_sim.Config.t ->
  's report
(** Execute and measure.  [track_recovery] checks for remaining roots
    after every step; its default is [true] below 65536 nodes and
    [false] above (the per-step O(n·deg) root scan would dominate a
    big run).  [budget] and [sharded] pass through to
    {!Ss_core.Transformer.run}.  Under a finite bound [B] the
    legitimacy check uses a ground-truth history cut at [B] rounds —
    exactly what terminal lists (heights ≤ B) can reference. *)

val daemon_portfolio :
  Ss_prelude.Rng.t -> (string * Ss_sim.Daemon.t) list
(** The adversary portfolio used to approximate worst-case complexity:
    synchronous, three densities of random-subset daemons, uniform
    central, deterministic unfair central, and round-robin.  Fresh
    daemons are built from [rng] at each call. *)
