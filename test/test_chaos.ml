(* The chaos harness's own test suite:

   1. Fault_plan unit + replay tests: validated constructors, the
      three-draws-per-consult discipline, the fault horizon, and the
      finite corruption schedule.
   2. Clock / Budget seam: deadlines measured on an injected virtual
      clock, not the wall.
   3. Fault validation (transient-fault layer): out-of-range
      probabilities and node ids are Invalid_argument; duplicated node
      lists cannot shift the draw sequence.
   4. Replay determinism: one seed, any [-j], byte-identical
      Run_report JSON of the scenario grid (qcheck over seeds).  The
      two-process variant of this contract is the root @sim-chaos
      alias, which diffs two separate `fasst sim` invocations.
   5. The differential suite: leader / BFS / Cole-Vishkin through the
      `standard` scenario — quiescent, legitimate, outputs equal to
      the fault-free naive twin, with stale-proof and duplicate
      counters pinned per seed (any schedule or draw-discipline drift
      shows up as a counter diff before it shows up as a soundness
      bug).  The standard rates are mild (0.2% / 0.1% / 0.1%) and
      these instances are small, so most pins are genuinely zero with
      one or two hits per grid — the chaos scenario's heavier traffic
      is exercised by the fasst-level grid and the @sim-chaos
      alias. *)

module Rng = Ss_prelude.Rng
module Table = Ss_prelude.Table
module Par = Ss_par.Par
module Builders = Ss_graph.Builders
module Config = Ss_sim.Config
module Fault = Ss_sim.Fault
module P = Ss_core.Predicates
module St = Ss_core.Trans_state
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module Sync_runner = Ss_sync.Sync_runner
module M = Ss_msgnet.Msgnet
module Leader = Ss_algos.Leader_election
module Bfs = Ss_algos.Bfs_tree
module Cv = Ss_algos.Cole_vishkin
module Fault_plan = Ss_chaos.Fault_plan
module Clock = Ss_chaos.Clock
module Scenario = Ss_chaos.Scenario
module Budget = Ss_report.Budget
module Run_report = Ss_report.Run_report
module Json = Ss_report.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Fault_plan                                                           *)
(* ------------------------------------------------------------------ *)

let test_plan_validation () =
  check "negative rate rejected" true
    (raises_invalid (fun () -> Fault_plan.rates ~drop_ppm:(-1) ()));
  check "over-scale rate rejected" true
    (raises_invalid (fun () ->
         Fault_plan.rates ~dup_ppm:(Fault_plan.ppm_scale + 1) ()));
  check "negative corruption index rejected" true
    (raises_invalid (fun () -> Fault_plan.v ~corrupt_at:[ 3; -1 ] ~seed:1 ()));
  check "negative horizon rejected" true
    (raises_invalid (fun () -> Fault_plan.v ~horizon:(-1) ~seed:1 ()));
  check "null plan is null" true (Fault_plan.is_null (Fault_plan.null ()));
  check "rated plan is not null" true
    (not
       (Fault_plan.is_null
          (Fault_plan.v
             ~rates:(Fault_plan.rates ~drop_ppm:1 ())
             ~seed:1 ())))

let test_plan_null_consult () =
  let plan = Fault_plan.null () in
  for event = 0 to 999 do
    check "null plan always delivers" true
      (Fault_plan.consult plan ~event = Fault_plan.Deliver)
  done

let verdicts plan ~events =
  List.init events (fun event -> Fault_plan.consult plan ~event)

let test_plan_replay () =
  let mk () =
    Fault_plan.v
      ~rates:(Fault_plan.rates ~drop_ppm:200_000 ~dup_ppm:100_000 ())
      ~seed:77 ()
  in
  check "same seed, same verdict stream" true
    (verdicts (mk ()) ~events:5_000 = verdicts (mk ()) ~events:5_000);
  let other =
    Fault_plan.v
      ~rates:(Fault_plan.rates ~drop_ppm:200_000 ~dup_ppm:100_000 ())
      ~seed:78 ()
  in
  check "different seed, different stream" true
    (verdicts (mk ()) ~events:5_000 <> verdicts other ~events:5_000)

let test_plan_horizon () =
  let plan =
    Fault_plan.v
      ~rates:(Fault_plan.rates ~drop_ppm:Fault_plan.ppm_scale ())
      ~horizon:5 ~seed:3 ()
  in
  for event = 0 to 4 do
    check "inside horizon: certain drop rate drops" true
      (Fault_plan.consult plan ~event = Fault_plan.Drop)
  done;
  for event = 5 to 100 do
    check "past horizon: inert" true
      (Fault_plan.consult plan ~event = Fault_plan.Deliver)
  done

let test_plan_corruption_schedule () =
  (* The schedule is deduplicated and sorted; each due index fires
     exactly once, at the first event at or past it. *)
  let plan = Fault_plan.v ~corrupt_at:[ 5; 1; 5; 3 ] ~seed:9 () in
  check_int "three distinct corruptions" 3 (Fault_plan.pending_corruptions plan);
  check "not due at 0" false (Fault_plan.corruption_due plan ~event:0);
  check "due at 1" true (Fault_plan.corruption_due plan ~event:1);
  check "head consumed" false (Fault_plan.corruption_due plan ~event:2);
  check "skipped index still fires late" true
    (Fault_plan.corruption_due plan ~event:4);
  check "due at 5" true (Fault_plan.corruption_due plan ~event:5);
  check_int "schedule exhausted" 0 (Fault_plan.pending_corruptions plan);
  check "never fires again" false (Fault_plan.corruption_due plan ~event:1000)

(* ------------------------------------------------------------------ *)
(* Clock / Budget seam                                                  *)
(* ------------------------------------------------------------------ *)

let test_clock () =
  let clk = Clock.create ~t0:10.0 ~dt:0.5 () in
  check "t0" true (Clock.now clk = 10.0);
  Clock.tick clk;
  Clock.tick clk;
  check "two ticks" true (Clock.now clk = 11.0);
  Clock.advance clk 4.0;
  check "advance" true (Clock.now clk = 15.0);
  check "now_fn reads the same clock" true (Clock.now_fn clk () = 15.0)

let test_virtual_deadline () =
  (* A deadline budget measured on an injected clock trips exactly when
     virtual time passes, never because wall time did. *)
  let clk = Clock.create () in
  let expired =
    Budget.deadline_check ~now:(Clock.now_fn clk) (Budget.v ~deadline_s:1.0 ())
  in
  check "fresh virtual deadline not expired" false (expired ());
  Clock.advance clk 0.99;
  check "still inside the budget" false (expired ());
  Clock.advance clk 0.02;
  check "expired once virtual time passes" true (expired ())

(* ------------------------------------------------------------------ *)
(* Fault validation (satellite: transient-fault layer)                  *)
(* ------------------------------------------------------------------ *)

let leader_fixture n =
  let g = Builders.cycle n in
  let rng = Rng.create 11 in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params Leader.algo in
  let hist = Sync_runner.run Leader.algo g ~inputs in
  (params, inputs, hist, Transformer.clean_config params g ~inputs)

let test_fault_p_validation () =
  let _, _, _, config = leader_fixture 6 in
  let mutator _rng st = st in
  List.iter
    (fun p ->
      check
        (Printf.sprintf "p = %f rejected" p)
        true
        (raises_invalid (fun () ->
             Fault.corrupt (Rng.create 1) ~p mutator config));
      check
        (Printf.sprintf "Transformer.corrupt p = %f rejected" p)
        true
        (raises_invalid (fun () ->
             Transformer.corrupt (Rng.create 1) ~p ~max_height:4
               (Transformer.params Leader.algo)
               config)))
    [ -0.1; 1.5; Float.nan ];
  (* The boundaries are legal. *)
  ignore (Fault.corrupt (Rng.create 1) ~p:0.0 mutator config);
  ignore (Fault.corrupt (Rng.create 1) ~p:1.0 mutator config)

let test_corrupt_nodes_validation () =
  let _, _, _, config = leader_fixture 6 in
  let mutator rng st = ignore (Rng.int rng 2); st in
  check "negative id rejected" true
    (raises_invalid (fun () ->
         Fault.corrupt_nodes (Rng.create 1) mutator [ 0; -1 ] config));
  check "id = n rejected" true
    (raises_invalid (fun () ->
         Fault.corrupt_nodes (Rng.create 1) mutator [ 6 ] config));
  (* A repeated, re-ordered list is the same fault as the sorted set:
     same rng seed, same resulting configuration, because dedup happens
     before any draw. *)
  let hit = Hashtbl.create 8 in
  let counting rng st =
    ignore (Rng.int rng 2);
    Hashtbl.replace hit (Hashtbl.length hit) ();
    st
  in
  ignore
    (Fault.corrupt_nodes (Rng.create 5) counting [ 4; 2; 2; 4; 2 ] config);
  check_int "duplicated ids hit once each" 2 (Hashtbl.length hit)

(* ------------------------------------------------------------------ *)
(* Replay determinism: one seed, any -j, byte-identical grid JSON       *)
(* ------------------------------------------------------------------ *)

let grid_json ~jobs ~seed =
  Par.set_jobs jobs;
  let workloads =
    Ss_expt.Sim_expt.workloads_for ~algos:[ "leader" ] (Rng.create 23)
      [ ("ring:8", Builders.cycle 8) ]
  in
  let table, ok =
    Ss_expt.Sim_expt.rows ~scenarios:[ Scenario.standard ] ~seeds:[ seed ]
      workloads
  in
  Par.set_jobs 1;
  check "standard grid cell stabilizes" true ok;
  Json.to_string (Run_report.of_table ~label:"sim" table)

let test_grid_jobs_determinism () =
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:8 ~name:"grid JSON byte-identical for any -j"
       QCheck.(int_range 1 1_000)
       (fun seed -> grid_json ~jobs:1 ~seed = grid_json ~jobs:4 ~seed))

(* ------------------------------------------------------------------ *)
(* The differential suite: §5 instances through `standard`              *)
(* ------------------------------------------------------------------ *)

(* One msgnet run through a scenario, msgnet_leg-style: virtual clock,
   chaos plan, and the fault-free naive twin as ground truth. *)
let chaos_run (type s i) ~scenario ~seed ~(params : (s, i) Transformer.params)
    ~(inputs : int -> i) ~max_height start =
  let clk = Clock.create () in
  let chaos =
    {
      M.plan = Scenario.msgnet_plan scenario ~seed;
      mutate =
        (fun crng v st ->
          Transformer.corrupt_state crng ~max_height params (inputs v) st);
    }
  in
  let seed_rng = Rng.create ((seed * 7919) + 97) in
  let final, stats =
    M.run
      ~budget:(Budget.v ~deadline_s:100. ())
      ~now:(Clock.now_fn clk) ~chaos ~rng:(Rng.split seed_rng) params start
  in
  let naive_final, naive_stats =
    M.run_naive ~rng:(Rng.split seed_rng) params start
  in
  (final, stats, naive_final, naive_stats)

let assert_differential ~msg ~pins (type s i)
    ~(params : (s, i) Transformer.params) ~(inputs : int -> i)
    ~(hist : (s, i) Sync_runner.history) ~max_height start =
  List.iter
    (fun (seed, pin_drop, pin_dup, pin_reorder, pin_stale) ->
      let m = Printf.sprintf "%s/seed%d" msg seed in
      let final, stats, naive_final, naive_stats =
        chaos_run ~scenario:Scenario.standard ~seed ~params ~inputs
          ~max_height start
      in
      check (m ^ ": quiescent through faults") true stats.M.quiescent;
      check (m ^ ": legitimate") true
        (Checker.legitimate_terminal params hist final = Ok ());
      check (m ^ ": naive twin quiescent") true naive_stats.M.quiescent;
      check (m ^ ": outputs equal the fault-free twin") true
        (Transformer.outputs final = Transformer.outputs naive_final);
      (* Pinned schedule fingerprints: these move only when the
         delivery schedule, the draw discipline, or the wave protocol
         changes — all of which must be deliberate. *)
      check_int (m ^ ": drop counter pinned") pin_drop
        stats.M.dropped_messages;
      check_int (m ^ ": duplicate counter pinned") pin_dup
        stats.M.duplicated_messages;
      check_int (m ^ ": reorder counter pinned") pin_reorder
        stats.M.reordered_messages;
      check_int (m ^ ": stale-proof counter pinned") pin_stale
        stats.M.stale_proof_messages)
    pins

let test_differential_leader () =
  let params, inputs, hist, clean = leader_fixture 10 in
  let max_height = hist.Sync_runner.t + 4 in
  let start =
    Transformer.corrupt (Rng.create 101) ~max_height params clean
  in
  assert_differential ~msg:"leader/cycle10"
    ~pins:[ (1, 0, 0, 0, 0); (2, 1, 0, 0, 0); (3, 0, 0, 0, 0) ]
    ~params ~inputs ~hist ~max_height start

let test_differential_bfs () =
  let g = Builders.random_connected (Rng.create 19) ~n:10 ~extra_edges:4 in
  let inputs = Bfs.inputs g ~root:0 in
  let params = Transformer.params Bfs.algo in
  let hist = Sync_runner.run Bfs.algo g ~inputs in
  let max_height = hist.Sync_runner.t + 4 in
  let start =
    Transformer.corrupt (Rng.create 102) ~max_height params
      (Transformer.clean_config params g ~inputs)
  in
  assert_differential ~msg:"bfs/random10"
    ~pins:[ (1, 0, 0, 1, 0); (2, 1, 0, 0, 0); (3, 0, 0, 0, 0) ]
    ~params ~inputs ~hist ~max_height start

let test_differential_cv () =
  let n = 9 and width = 6 in
  let g = Builders.cycle n in
  let ids = Cv.random_ring_ids (Rng.create 43) ~n ~width in
  let inputs = Cv.inputs ~ids ~width g in
  let b = Cv.schedule_length width in
  let params = Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Cv.algo in
  let hist = Sync_runner.run Cv.algo g ~inputs in
  let start =
    Transformer.corrupt (Rng.create 103) ~max_height:b params
      (Transformer.clean_config params g ~inputs)
  in
  assert_differential ~msg:"cv/cycle9"
    ~pins:[ (1, 0, 0, 0, 0); (2, 1, 0, 0, 0); (3, 0, 0, 0, 0) ]
    ~params ~inputs ~hist ~max_height:b start

let () =
  Alcotest.run "chaos"
    [
      ( "fault-plan",
        [
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "null consult" `Quick test_plan_null_consult;
          Alcotest.test_case "replay" `Quick test_plan_replay;
          Alcotest.test_case "horizon" `Quick test_plan_horizon;
          Alcotest.test_case "corruption schedule" `Quick
            test_plan_corruption_schedule;
        ] );
      ( "clock",
        [
          Alcotest.test_case "virtual clock" `Quick test_clock;
          Alcotest.test_case "virtual deadline" `Quick test_virtual_deadline;
        ] );
      ( "fault-validation",
        [
          Alcotest.test_case "probability range" `Quick test_fault_p_validation;
          Alcotest.test_case "corrupt_nodes" `Quick
            test_corrupt_nodes_validation;
        ] );
      ( "replay-determinism",
        [
          Alcotest.test_case "grid JSON vs -j" `Quick
            test_grid_jobs_determinism;
        ] );
      ( "differential-standard",
        [
          Alcotest.test_case "leader election" `Quick test_differential_leader;
          Alcotest.test_case "BFS tree" `Quick test_differential_bfs;
          Alcotest.test_case "Cole-Vishkin" `Quick test_differential_cv;
        ] );
    ]
