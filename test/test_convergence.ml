(* Property-based tests of the transformer's self-stabilization
   theorems (paper §4): from an arbitrary configuration, under an
   arbitrary daemon,

   - the execution terminates (silence),
   - the terminal configuration is legitimate (equal heights, lists
     equal to the synchronous history, no roots),
   - the simulated problem's specification holds on the outputs,
   - roots are never created along the way,
   - the move count stays inside the paper's polynomial envelope,
   - recovery (first root-free configuration) is permanent.  *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Properties = Ss_graph.Properties
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Trace = Ss_sim.Trace
module Sync_runner = Ss_sync.Sync_runner
module Min_flood = Ss_algos.Min_flood
module Leader = Ss_algos.Leader_election
module Bfs = Ss_algos.Bfs_tree
module Cv = Ss_algos.Cole_vishkin
module St = Ss_core.Trans_state
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util

(* A reproducible random setting: graph, daemon, corruption — all from
   one seed. *)
let random_graph rng =
  match Rng.int rng 5 with
  | 0 -> Builders.path (2 + Rng.int rng 8)
  | 1 -> Builders.cycle (3 + Rng.int rng 8)
  | 2 -> Builders.star (2 + Rng.int rng 8)
  | 3 -> Builders.random_tree rng (2 + Rng.int rng 9)
  | _ ->
      let n = 3 + Rng.int rng 8 in
      Builders.random_connected rng ~n ~extra_edges:(Rng.int rng 6)

let random_daemon rng =
  match Rng.int rng 6 with
  | 0 -> Daemon.synchronous
  | 1 -> Daemon.distributed_random (Rng.split rng) ~p:0.7
  | 2 -> Daemon.distributed_random (Rng.split rng) ~p:0.25
  | 3 -> Daemon.central_random (Rng.split rng)
  | 4 -> Daemon.central_min
  | _ -> Daemon.round_robin ()

let run_setting ?observer ~params ~g ~inputs seed =
  let rng = Rng.create (seed * 7919) in
  let hist = Sync_runner.run params.Transformer.sync g ~inputs in
  let t = hist.Sync_runner.t in
  let start =
    Transformer.corrupt (Rng.split rng) ~max_height:(t + 4) params
      (Transformer.clean_config params g ~inputs)
  in
  let daemon = random_daemon rng in
  let stats =
    Transformer.run ?observer ~max_steps:3_000_000 params daemon start
  in
  (hist, stats)

(* ------------------------------------------------------------------ *)
(* Main convergence properties, one per §5 instance                     *)
(* ------------------------------------------------------------------ *)

let leader_converges seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()
  && Leader.spec_holds g ~inputs ~final:(Transformer.outputs stats.Engine.final)

let bfs_converges seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let root = Rng.int rng (Graph.n g) in
  let inputs = Bfs.inputs g ~root in
  let params = Transformer.params Bfs.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()
  && Bfs.spec_holds g ~root ~final:(Transformer.outputs stats.Engine.final)

let cv_converges seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 12 in
  let width = max 6 (Util.bit_width n) in
  let g = Builders.cycle n in
  let ids = Cv.random_ring_ids (Rng.split rng) ~n ~width in
  let inputs = Cv.inputs ~ids ~width g in
  let b = Cv.schedule_length width in
  let params = Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Cv.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()
  && Cv.spec_holds g ~final:(Transformer.outputs stats.Engine.final)

let greedy_min_flood_converges seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let b = 1 + Rng.int rng 12 in
  let inputs p = (p * 37) mod 23 in
  let params =
    Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Min_flood.algo
  in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()
  && Array.for_all (fun h -> h = b) (Checker.heights stats.Engine.final)

let shortest_path_converges seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let root = Rng.int rng (Graph.n g) in
  let weight =
    Ss_algos.Shortest_path.random_weights (Rng.split rng) g ~max_weight:7
  in
  let inputs = Ss_algos.Shortest_path.inputs g ~weight ~root in
  let params = Transformer.params Ss_algos.Shortest_path.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()
  && Ss_algos.Shortest_path.spec_holds g ~weight ~root
       ~final:(Transformer.outputs stats.Engine.final)

let leader_bfs_converges seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let ids = Leader.random_ids (Rng.split rng) g in
  let inputs = Ss_algos.Leader_bfs.inputs ~ids g in
  let params = Transformer.params Ss_algos.Leader_bfs.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()
  && Ss_algos.Leader_bfs.spec_holds g ~inputs
       ~final:(Transformer.outputs stats.Engine.final)

let converges_on_gk seed =
  (* The §7 family is a perfectly ordinary topology for the
     transformer: leader election on G_k stabilizes like anywhere
     else. *)
  let rng = Rng.create seed in
  let k = 1 + Rng.int rng 5 in
  let g = Ss_graph.Gk.make k in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()

let clock_t_zero_converges seed =
  (* Degenerate input algorithm with T = 0 (already silent): the
     transformer must still clean up corrupted lists. *)
  let rng = Rng.create seed in
  let g = random_graph rng in
  let params = Transformer.params Ss_algos.Toy.constant in
  let inputs p = p * 3 in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()

let single_node_converges seed =
  (* n = 1: no neighbors at all (the Stone-Age end of the model
     spectrum). *)
  let g = Builders.single () in
  let params = Transformer.params Min_flood.algo in
  let inputs _ = 5 in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  stats.Engine.terminated
  && Checker.legitimate_terminal params hist stats.Engine.final = Ok ()

(* ------------------------------------------------------------------ *)
(* Structural invariants along executions                               *)
(* ------------------------------------------------------------------ *)

(* Paper §4: "it is straightforward to prove that roots cannot be
   created": along any step, the root set can only shrink. *)
let roots_never_created seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let observer, records = Trace.with_configs () in
  let _hist, stats = run_setting ~observer ~params ~g ~inputs seed in
  let configs = List.map snd (records ()) in
  let root_sets = List.map (fun c -> Checker.roots params c) configs in
  let rec shrinking = function
    | a :: b :: rest ->
        List.for_all (fun r -> List.mem r a) b && shrinking (b :: rest)
    | _ -> true
  in
  stats.Engine.terminated && shrinking root_sets

(* Once no root remains, no root ever reappears (recovery is
   permanent) — a consequence of the previous property, checked
   independently. *)
let recovery_is_permanent seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let observer, records = Trace.with_configs () in
  let _hist, stats = run_setting ~observer ~params ~g ~inputs seed in
  let flags =
    List.map (fun (_, c) -> Checker.has_root params c) (records ())
  in
  (* The boolean sequence must be a (possibly empty) block of [true]
     followed by [false] forever. *)
  let rec monotone seen_false = function
    | [] -> true
    | true :: _ when seen_false -> false
    | b :: rest -> monotone (seen_false || not b) rest
  in
  stats.Engine.terminated && monotone false flags

(* Heights move by at most one per move, and statuses/cells only change
   through the four rules (sanity of the engine + rules wiring). *)
let single_rule_per_move seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let observer, events = Trace.make () in
  let _hist, stats = run_setting ~observer ~params ~g ~inputs seed in
  let valid_rules = [ Transformer.rr; Transformer.rp; Transformer.rc; Transformer.ru ] in
  stats.Engine.terminated
  && List.for_all
       (fun e ->
         List.for_all (fun (_, r) -> List.mem r valid_rules) e.Trace.ev_moved)
       (events ())

(* Move-count envelope: the paper proves O(min(n³+nT, n²B)) moves in
   lazy mode.  We check the n³+nT form with a generous constant. *)
let move_envelope seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  let n = Graph.n g in
  let t = hist.Sync_runner.t in
  stats.Engine.terminated
  && stats.Engine.moves <= 10 * ((n * n * n) + (n * t) + n + 10)

(* Round envelope in lazy mode: O(D + T) with a generous constant. *)
let round_envelope seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let hist, stats = run_setting ~params ~g ~inputs seed in
  let d = Properties.diameter g in
  let t = hist.Sync_runner.t in
  stats.Engine.terminated && stats.Engine.rounds <= 10 * (d + t + 2)

(* Recovery-phase round bound: the error recovery phase (up to the
   first root-free configuration) completes within O(min(D,B)) rounds
   — checked with a generous constant. *)
let recovery_round_envelope seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let hist = Sync_runner.run Leader.algo g ~inputs in
  let t = hist.Sync_runner.t in
  let start =
    Transformer.corrupt (Rng.create (seed * 31)) ~max_height:(t + 4) params
      (Transformer.clean_config params g ~inputs)
  in
  let sc = { Ss_verify.Stabilization.params; graph = g; inputs } in
  let daemon = random_daemon (Rng.create (seed * 17)) in
  let report = Ss_verify.Stabilization.run sc ~daemon ~start in
  let d = Properties.diameter g in
  report.Ss_verify.Stabilization.terminated
  && report.Ss_verify.Stabilization.recovery_rounds <= 12 * (d + 2)

(* Terminal configurations are silent: restarting from one does
   nothing. *)
let terminal_is_silent seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let _hist, stats = run_setting ~params ~g ~inputs seed in
  let again =
    Transformer.run params Daemon.synchronous stats.Engine.final
  in
  stats.Engine.terminated && again.Engine.steps = 0

(* The read-only init part survives the whole execution. *)
let init_is_read_only seed =
  let rng = Rng.create seed in
  let g = random_graph rng in
  let inputs = Leader.random_ids (Rng.split rng) g in
  let params = Transformer.params Leader.algo in
  let _hist, stats = run_setting ~params ~g ~inputs seed in
  let ok = ref true in
  Graph.iter_nodes g (fun p ->
      if St.init (Config.state stats.Engine.final p) <> inputs p then ok := false);
  stats.Engine.terminated && !ok

let qcheck_tests =
  let open QCheck in
  let prop name ?(count = 120) f =
    Test.make ~count ~name (int_range 1 1_000_000) f
  in
  [
    prop "leader election stabilizes to its spec" leader_converges;
    prop "BFS tree stabilizes to its spec" bfs_converges;
    prop "Cole-Vishkin stabilizes to a proper 3-coloring" ~count:80 cv_converges;
    prop "greedy mode fills lists to B" greedy_min_flood_converges;
    prop "shortest-path tree stabilizes to exact distances" ~count:80
      shortest_path_converges;
    prop "composed leader+BFS stabilizes to its spec" ~count:80
      leader_bfs_converges;
    prop "stabilizes on the G_k family" ~count:60 converges_on_gk;
    prop "T = 0 input algorithms are cleaned up" ~count:60
      clock_t_zero_converges;
    prop "single-node network" ~count:40 single_node_converges;
    prop "roots are never created" ~count:60 roots_never_created;
    prop "recovery is permanent" ~count:60 recovery_is_permanent;
    prop "only the four rules fire" ~count:60 single_rule_per_move;
    prop "moves stay in the O(n^3+nT) envelope" move_envelope;
    prop "rounds stay in the O(D+T) envelope" round_envelope;
    prop "recovery rounds stay in the O(min(D,B)) envelope" ~count:80
      recovery_round_envelope;
    prop "terminal configurations are silent" ~count:60 terminal_is_silent;
    prop "init is read-only" ~count:60 init_is_read_only;
  ]

let () =
  Alcotest.run "convergence"
    [ ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
