(* Tests for the §6 message/energy cost model. *)

module Builders = Ss_graph.Builders
module Graph = Ss_graph.Graph
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Energy = Ss_energy.Energy
module Min_flood = Ss_algos.Min_flood
module Leader = Ss_algos.Leader_election
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_height_bits () =
  check_int "finite bound" 4 (Energy.height_bits (P.Finite 10));
  check_int "tight power of two" 4 (Energy.height_bits (P.Finite 8));
  check_int "infinite bound word" 32 (Energy.height_bits P.Infinite)

let test_state_proof_discriminates () =
  let p1 = Energy.state_proof ~nonce:1L "state-a" in
  let p2 = Energy.state_proof ~nonce:1L "state-b" in
  let p3 = Energy.state_proof ~nonce:2L "state-a" in
  check "different states differ" true (p1 <> p2);
  check "different nonces differ" true (p1 <> p3);
  check "deterministic" true (p1 = Energy.state_proof ~nonce:1L "state-a")

(* A deterministic clean run on a ring: every node has degree 2, so the
   message count must be exactly 2 * moves. *)
let ring_setup () =
  let g = Builders.cycle 6 in
  let inputs p = [| 5; 9; 8; 7; 6; 9 |].(p) in
  let params = Transformer.params ~bound:(P.Finite 8) Min_flood.algo in
  (g, inputs, params)

let test_messages_are_degree_weighted_moves () =
  let g, inputs, params = ring_setup () in
  let stats, cost =
    Energy.measure params Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  check "terminated" true cost.Energy.terminated;
  check_int "moves agree with engine" stats.Engine.moves cost.Energy.moves;
  check_int "messages = 2 * moves on a ring" (2 * stats.Engine.moves)
    cost.Energy.messages

let test_delta_cheaper_than_full_state () =
  let g, inputs, params = ring_setup () in
  let _stats, cost =
    Energy.measure params Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  check "delta <= full" true
    (cost.Energy.bits_delta <= cost.Energy.bits_full_state);
  check "both positive" true
    (cost.Energy.bits_delta > 0 && cost.Energy.bits_full_state > 0)

let test_full_state_grows_with_height () =
  (* On a clean lazy run every move is an RU whose full-state cost
     grows with the list: total full-state bits must exceed
     messages * (cost of a one-cell state), while delta stays linear. *)
  let g, inputs, params = ring_setup () in
  let _stats, cost =
    Energy.measure params Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  (* Delta messages on RU carry 2 + S bits with S <= 5 here; full-state
     messages carry the whole list.  The ratio must exceed 1.5 on this
     workload (T = 3). *)
  check "meaningful compression" true
    (float_of_int cost.Energy.bits_full_state
     /. float_of_int cost.Energy.bits_delta
    > 1.5)

let test_heartbeats_accounting () =
  let g, inputs, params = ring_setup () in
  let sum_deg = 2 * Graph.n g in
  let _stats, cost =
    Energy.measure ~heartbeat_period:1
      ~proof:{ Energy.proof_bits = 64; nonce_bits = 64 }
      params Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  check_int "one heartbeat wave per round" (cost.Energy.rounds * sum_deg)
    cost.Energy.heartbeat_messages;
  check_int "heartbeat bits" (cost.Energy.heartbeat_messages * 128)
    cost.Energy.heartbeat_bits;
  check_int "matches the shared default proof cost"
    (Energy.proof_message_bits Energy.default_proof_cost)
    128

let test_heartbeat_period_scales () =
  let g, inputs, params = ring_setup () in
  let run period =
    let _stats, cost =
      Energy.measure ~heartbeat_period:period params Daemon.synchronous
        (Transformer.clean_config params g ~inputs)
    in
    cost.Energy.heartbeat_messages
  in
  check "longer period, fewer proofs" true (run 1 >= run 2 && run 2 >= run 4)

let test_corrupted_run_costs_more_than_clean () =
  let g = Builders.cycle 12 in
  let rng = Rng.create 8 in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params ~bound:(P.Finite 10) Leader.algo in
  let clean = Transformer.clean_config params g ~inputs in
  let _s1, clean_cost = Energy.measure params Daemon.synchronous clean in
  let corrupted = Transformer.corrupt rng ~max_height:10 params clean in
  let _s2, bad_cost = Energy.measure params Daemon.synchronous corrupted in
  check "recovery costs messages" true
    (bad_cost.Energy.messages >= clean_cost.Energy.messages)

let test_rule_payloads () =
  (* RR and RC messages are 2 bits; RP adds the height; RU adds a
     state.  Exercise a run that contains all four rules and check the
     totals decompose consistently. *)
  let g = Builders.cycle 8 in
  let rng = Rng.create 21 in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params ~bound:(P.Finite 12) Leader.algo in
  let corrupted =
    Transformer.corrupt rng ~max_height:12 params
      (Transformer.clean_config params g ~inputs)
  in
  let stats, cost = Energy.measure params Daemon.synchronous corrupted in
  (* Lower bound: every message carries at least the 2 label bits.
     Upper bound: 2 + max(S_bound, height_bits) per message with
     S_bound = 17 bits (ids < 16n = 128 here). *)
  check "delta lower bound" true
    (cost.Energy.bits_delta >= 2 * cost.Energy.messages);
  check "delta upper bound" true
    (cost.Energy.bits_delta <= cost.Energy.messages * (2 + 32));
  check "terminated" true stats.Engine.terminated

let () =
  Alcotest.run "energy"
    [
      ( "model",
        [
          Alcotest.test_case "height bits" `Quick test_height_bits;
          Alcotest.test_case "state proof" `Quick test_state_proof_discriminates;
          Alcotest.test_case "messages = degree-weighted moves" `Quick
            test_messages_are_degree_weighted_moves;
          Alcotest.test_case "delta cheaper" `Quick
            test_delta_cheaper_than_full_state;
          Alcotest.test_case "compression ratio" `Quick
            test_full_state_grows_with_height;
          Alcotest.test_case "heartbeat accounting" `Quick
            test_heartbeats_accounting;
          Alcotest.test_case "heartbeat period" `Quick test_heartbeat_period_scales;
          Alcotest.test_case "recovery costs more" `Quick
            test_corrupted_run_costs_more_than_clean;
          Alcotest.test_case "rule payloads" `Quick test_rule_payloads;
        ] );
    ]
