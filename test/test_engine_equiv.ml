(* Differential tests: the incremental dirty-set engine (Engine.run)
   must produce exactly the same executions as the naive full-rescan
   engine (Engine.run_naive) — same steps, moves, rounds, per-node and
   per-rule counters, and final configuration — across every daemon,
   several topologies, several algorithms and several corruption
   seeds.  Stateful daemons (rngs, cursors) are rebuilt from the same
   seed for each engine so both runs face an identical adversary. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Sched = Ss_sim.Sched
module Rng = Ss_prelude.Rng
module Transformer = Ss_core.Transformer
module Rollback = Ss_rollback.Rollback
module Blowup = Ss_rollback.Blowup
module Leader = Ss_algos.Leader_election
module Min_flood = Ss_algos.Min_flood

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every daemon of lib/sim/daemon.ml, as factories so each engine run
   gets a fresh (identically seeded) instance. *)
let daemon_factories seed =
  [
    ("synchronous", fun () -> Daemon.synchronous);
    ("central-random", fun () -> Daemon.central_random (Rng.create seed));
    ("central-min", fun () -> Daemon.central_min);
    ("central-max", fun () -> Daemon.central_max);
    ( "distributed-random",
      fun () -> Daemon.distributed_random (Rng.create seed) ~p:0.5 );
    ("round-robin", fun () -> Daemon.round_robin ());
    ("scripted", fun () -> Daemon.scripted ~fallback:Daemon.synchronous []);
  ]

let assert_equiv ~msg eq_state (a : _ Engine.stats) (b : _ Engine.stats) =
  check_int (msg ^ ": steps") a.Engine.steps b.Engine.steps;
  check_int (msg ^ ": moves") a.Engine.moves b.Engine.moves;
  check_int (msg ^ ": rounds") a.Engine.rounds b.Engine.rounds;
  check (msg ^ ": terminated") a.Engine.terminated b.Engine.terminated;
  Alcotest.(check (array int))
    (msg ^ ": moves per node")
    a.Engine.moves_per_node b.Engine.moves_per_node;
  Alcotest.(check (list (pair string int)))
    (msg ^ ": moves per rule")
    a.Engine.moves_per_rule b.Engine.moves_per_rule;
  check (msg ^ ": final config") true
    (Config.equal eq_state a.Engine.final b.Engine.final)

let max_algo : (int, unit) Algorithm.t =
  {
    Algorithm.algo_name = "max";
    equal = Int.equal;
    rules =
      [
        {
          Algorithm.rule_name = "UP";
          guard =
            (fun v ->
              Array.exists (fun s -> s > v.Algorithm.self) v.Algorithm.neighbors);
          action =
            (fun v -> Array.fold_left max v.Algorithm.self v.Algorithm.neighbors);
        };
      ];
    pp_state = Format.pp_print_int;
  }

let seeds = [ 1; 2; 3 ]

let graphs rng =
  [
    ("cycle9", Builders.cycle 9);
    ("grid3x4", Builders.grid ~rows:3 ~cols:4);
    ("star7", Builders.star 7);
    ("random12", Builders.random_connected rng ~n:12 ~extra_edges:6);
  ]

let test_max_algo () =
  List.iter
    (fun seed ->
      let rng = Rng.create (100 + seed) in
      List.iter
        (fun (gname, g) ->
          let states = Array.init (Graph.n g) (fun _ -> Rng.int rng 50) in
          let config =
            Config.make g ~inputs:(fun _ -> ()) ~states:(fun p -> states.(p))
          in
          List.iter
            (fun (dname, mk) ->
              let incr = Engine.run max_algo (mk ()) config in
              let naive = Engine.run_naive max_algo (mk ()) config in
              assert_equiv
                ~msg:(Printf.sprintf "max/%s/%s/seed%d" gname dname seed)
                Int.equal incr naive)
            (daemon_factories seed))
        (graphs rng))
    seeds

let transformer_start seed =
  let rng = Rng.create seed in
  let g = Builders.cycle 8 in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params Leader.algo in
  let start =
    Transformer.corrupt rng ~max_height:8 params
      (Transformer.clean_config params g ~inputs)
  in
  (params, start)

let test_transformer () =
  List.iter
    (fun seed ->
      let params, start = transformer_start seed in
      let eq = Ss_core.Trans_state.equal Leader.algo.Ss_sync.Sync_algo.equal in
      List.iter
        (fun (dname, mk) ->
          let incr = Transformer.run ~max_steps:200_000 params (mk ()) start in
          let naive =
            Transformer.run_naive ~max_steps:200_000 params (mk ()) start
          in
          assert_equiv
            ~msg:(Printf.sprintf "trans/%s/seed%d" dname seed)
            eq incr naive)
        (daemon_factories seed))
    seeds

(* The rollback Γ_k adversary drives a scripted central daemon through
   an exponential-move schedule: a good stress of the dirty set under
   single-node steps on a non-trivial state type. *)
let test_rollback_gamma () =
  let k = 2 in
  let algo = Rollback.algorithm Min_flood.algo ~bound:(Blowup.bound_for k) in
  let config = Blowup.initial_config ~k in
  let mk () =
    Daemon.scripted ~fallback:Daemon.synchronous
      (List.map (fun p -> [ p ]) (Blowup.gamma k))
  in
  let incr = Engine.run algo (mk ()) config in
  let naive = Engine.run_naive algo (mk ()) config in
  assert_equiv ~msg:"rollback/gamma2"
    (Rollback.equal Min_flood.algo.Ss_sync.Sync_algo.equal)
    incr naive

(* The built-in differential hook: a full run with per-step
   cross-validation of the incremental enabled set — and of the cached
   algoErr predicates against the uncached reference — never
   diverges. *)
let test_self_check () =
  List.iter
    (fun seed ->
      let params, start = transformer_start seed in
      let stats =
        Transformer.run ~self_check:true params Daemon.synchronous start
      in
      check "terminated" true stats.Engine.terminated)
    seeds

(* Same hook across transformer instances of all three §5 simulated
   algorithms, from corrupted starts, under two daemons: any cached
   predicate returning a different verdict than the full-prefix
   reference raises Engine.Divergence. *)
let test_self_check_section5_algorithms () =
  let checked_run name params start =
    List.iter
      (fun (dname, mk) ->
        let stats =
          Transformer.run ~self_check:true ~max_steps:200_000 params (mk ())
            start
        in
        check (Printf.sprintf "%s/%s terminated" name dname) true
          stats.Engine.terminated)
      [
        ("sync", fun () -> Daemon.synchronous);
        ("distributed", fun () -> Daemon.distributed_random (Rng.create 7) ~p:0.5);
      ]
  in
  List.iter
    (fun seed ->
      let rng = Rng.create (40 + seed) in
      (* Leader election on a cycle. *)
      let g = Builders.cycle 8 in
      let inputs = Leader.random_ids rng g in
      let params = Transformer.params Leader.algo in
      checked_run
        (Printf.sprintf "leader/seed%d" seed)
        params
        (Transformer.corrupt rng ~max_height:8 params
           (Transformer.clean_config params g ~inputs));
      (* BFS tree on a random connected graph. *)
      let g = Builders.random_connected rng ~n:10 ~extra_edges:4 in
      let inputs = Ss_algos.Bfs_tree.inputs g ~root:0 in
      let params = Transformer.params Ss_algos.Bfs_tree.algo in
      checked_run
        (Printf.sprintf "bfs/seed%d" seed)
        params
        (Transformer.corrupt rng ~max_height:8 params
           (Transformer.clean_config params g ~inputs));
      (* Greedy Cole-Vishkin coloring on a ring. *)
      let n = 9 and width = 6 in
      let g = Builders.cycle n in
      let ids = Ss_algos.Cole_vishkin.random_ring_ids rng ~n ~width in
      let inputs = Ss_algos.Cole_vishkin.inputs ~ids ~width g in
      let b = Ss_algos.Cole_vishkin.schedule_length width in
      let params =
        Transformer.params ~mode:Ss_core.Predicates.Greedy
          ~bound:(Ss_core.Predicates.Finite b)
          Ss_algos.Cole_vishkin.algo
      in
      checked_run
        (Printf.sprintf "cv/seed%d" seed)
        params
        (Transformer.corrupt rng ~max_height:b params
           (Transformer.clean_config params g ~inputs)))
    seeds

(* Unit check of the dirty-set invariant: after a single-node change,
   the scheduler re-evaluates only the closed neighborhood, and its
   enabled set still matches a naive scan. *)
let test_sched_locality () =
  let g = Builders.cycle 64 in
  let rng = Rng.create 11 in
  let config =
    Config.make g ~inputs:(fun _ -> ()) ~states:(fun _ -> Rng.int rng 50)
  in
  let sched = Sched.create max_algo config in
  check_int "create evaluates every node once" 64 (Sched.evals sched);
  let config = ref config in
  for _ = 1 to 50 do
    let p = Rng.int rng 64 in
    let before = Sched.evals sched in
    config := Config.set_state !config p (Rng.int rng 50);
    Sched.update sched !config ~moved:[ p ];
    check_int "only the closed neighborhood is re-evaluated" 3
      (Sched.evals sched - before);
    Alcotest.(check (list int))
      "incremental enabled set matches full scan"
      (Config.enabled_nodes max_algo !config)
      (Sched.enabled sched)
  done

let () =
  Alcotest.run "engine_equiv"
    [
      ( "differential",
        [
          Alcotest.test_case "max algo, all daemons/graphs/seeds" `Quick
            test_max_algo;
          Alcotest.test_case "transformer, all daemons/seeds" `Quick
            test_transformer;
          Alcotest.test_case "rollback gamma schedule" `Quick
            test_rollback_gamma;
        ] );
      ( "self-check",
        [
          Alcotest.test_case "per-step cross-validation hook" `Quick
            test_self_check;
          Alcotest.test_case "cached predicates on all section-5 algorithms"
            `Quick test_self_check_section5_algorithms;
          Alcotest.test_case "sched dirty-set locality" `Quick
            test_sched_locality;
        ] );
    ]
