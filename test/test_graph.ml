(* Tests for Ss_graph: core structure, builders, properties, the G_k
   family of §7, and the DOT export. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Properties = Ss_graph.Properties
module Gk = Ss_graph.Gk
module Dot = Ss_graph.Dot
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Core graph structure                                                 *)
(* ------------------------------------------------------------------ *)

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  check_int "n" 3 (Graph.n g);
  check_int "m" 2 (Graph.m g);
  check_int "degree 1" 2 (Graph.degree g 1);
  check "edge 0-1" true (Graph.mem_edge g 0 1);
  check "edge 1-0" true (Graph.mem_edge g 1 0);
  check "no edge 0-2" false (Graph.mem_edge g 0 2)

let test_of_edges_rejects () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph: self-loop at node 1") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (1, 1) ]));
  check "parallel edge rejected" true
    (try
       ignore (Graph.of_edges ~n:2 [ (0, 1); (1, 0) ]);
       false
     with Invalid_argument _ -> true);
  check "out of range rejected" true
    (try
       ignore (Graph.of_edges ~n:2 [ (0, 2) ]);
       false
     with Invalid_argument _ -> true)

let test_of_adjacency_symmetry () =
  check "asymmetric rejected" true
    (try
       ignore (Graph.of_adjacency [| [| 1 |]; [||] |]);
       false
     with Invalid_argument _ -> true)

let test_port_of () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2) ] in
  check_int "port of 1 at 0" 0 (Graph.port_of g 0 1);
  check_int "port of 2 at 0" 1 (Graph.port_of g 0 2);
  check "not a neighbor" true
    (try
       ignore (Graph.port_of g 1 2);
       false
     with Not_found -> true);
  (* Port i of p indexes neighbors g p. *)
  let nbrs = Graph.neighbors g 0 in
  check_int "round trip" 1 nbrs.(Graph.port_of g 0 1)

let test_edges_listing () =
  let g = Graph.of_edges ~n:4 [ (2, 1); (0, 3); (1, 0) ] in
  Alcotest.(check (list (pair int int)))
    "sorted u<v" [ (0, 1); (0, 3); (1, 2) ] (Graph.edges g)

let test_fold_and_max_degree () =
  let g = Builders.star 5 in
  check_int "max degree" 4 (Graph.max_degree g);
  check_int "node count via fold" 5
    (Graph.fold_nodes g ~init:0 ~f:(fun acc _ -> acc + 1))

(* ------------------------------------------------------------------ *)
(* Builders                                                             *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* CSR layout                                                           *)
(* ------------------------------------------------------------------ *)

let test_csr_accessors () =
  let graphs =
    [
      ("torus", Builders.torus ~rows:3 ~cols:4);
      ("cycle", Builders.cycle 6);
      ("random", Builders.random_connected (Rng.create 5) ~n:9 ~extra_edges:4);
    ]
  in
  List.iter
    (fun (name, g) ->
      Graph.iter_nodes g (fun p ->
          let nbrs = Graph.neighbors g p in
          check_int (name ^ ": degree") (Array.length nbrs) (Graph.degree g p);
          Array.iteri
            (fun i q -> check_int (name ^ ": nbr") q (Graph.nbr g p i))
            nbrs;
          let collected = ref [] in
          Graph.iter_neighbors g p (fun q -> collected := q :: !collected);
          check (name ^ ": iter_neighbors") true
            (List.rev !collected = Array.to_list nbrs);
          check (name ^ ": fold_neighbors") true
            (Graph.fold_neighbors g p ~init:[] ~f:(fun acc q -> q :: acc)
            = !collected));
      check (name ^ ": memory_words") true
        (Graph.memory_words g >= Graph.n g + 1 + (2 * Graph.m g)))
    graphs

let test_of_csr_validation () =
  let mk offsets targets =
    ignore (Graph.of_csr ~offsets ~targets ())
  in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph: node 0 has out-of-range neighbor 5") (fun () ->
      mk [| 0; 1; 2 |] [| 5; 0 |]);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph: self-loop at node 1") (fun () ->
      mk [| 0; 1; 2 |] [| 1; 1 |]);
  Alcotest.check_raises "parallel edge"
    (Invalid_argument "Graph: parallel edge {0,1}") (fun () ->
      mk [| 0; 2; 4 |] [| 1; 1; 0; 0 |]);
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Graph: edge {0,1} is not symmetric") (fun () ->
      mk [| 0; 1; 1 |] [| 1 |]);
  check "non-monotone offsets rejected" true
    (try
       mk [| 0; 2; 1 |] [| 1; 0 |];
       false
     with Invalid_argument _ -> true);
  (* validate:false adopts anything well-formed without the O(m log m)
     symmetry pass. *)
  let g = Graph.of_csr ~validate:false ~offsets:[| 0; 1; 2 |] ~targets:[| 1; 0 |] () in
  check_int "validate:false n" 2 (Graph.n g)

let test_of_edge_stream () =
  let reference = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let edges = [| (0, 1); (1, 2); (2, 3); (3, 4) |] in
  let streamed = Graph.of_edge_stream ~n:5 ~count:4 (fun i -> edges.(i)) in
  Graph.iter_nodes reference (fun p ->
      check "stream matches edge list" true
        (Graph.neighbors streamed p = Graph.neighbors reference p))

(* The streamed torus must reproduce the historical builder — every
   edge consed onto a list in row-major generation order (right edge
   then down edge per node) and handed to [of_edges], i.e. processed
   in {e reverse} generation order — port for port. *)
let test_torus_stream_matches_legacy () =
  List.iter
    (fun (rows, cols) ->
      let legacy =
        let id r c = (r * cols) + c in
        let edges = ref [] in
        for r = 0 to rows - 1 do
          for c = 0 to cols - 1 do
            edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
            edges := (id r c, id ((r + 1) mod rows) c) :: !edges
          done
        done;
        Graph.of_edges ~n:(rows * cols) !edges
      in
      let streamed = Builders.torus ~rows ~cols in
      check_int "m" (Graph.m legacy) (Graph.m streamed);
      Graph.iter_nodes legacy (fun p ->
          check
            (Printf.sprintf "torus %dx%d node %d ports" rows cols p)
            true
            (Graph.neighbors streamed p = Graph.neighbors legacy p)))
    [ (3, 3); (3, 4); (5, 7) ]

let test_random4 () =
  List.iter
    (fun (seed, n) ->
      let g = Builders.random4 (Rng.create seed) n in
      check_int "n" n (Graph.n g);
      check_int "m" (2 * n) (Graph.m g);
      Graph.iter_nodes g (fun p ->
          check_int "4-regular" 4 (Graph.degree g p);
          let nbrs = Graph.neighbors g p in
          Array.iteri
            (fun i q ->
              check "no self-loop" true (q <> p);
              check "in range" true (q >= 0 && q < n);
              check "symmetric" true
                (Array.exists (fun r -> r = p) (Graph.neighbors g q));
              for j = i + 1 to 3 do
                check "simple" true (q <> nbrs.(j))
              done)
            nbrs);
      let dist = Properties.bfs_distances g 0 in
      check "connected" true (Array.for_all (fun d -> d >= 0) dist);
      (* Same seed, same graph. *)
      let g' = Builders.random4 (Rng.create seed) n in
      Graph.iter_nodes g (fun p ->
          check "deterministic" true
            (Graph.neighbors g p = Graph.neighbors g' p)))
    [ (1, 8); (2, 17); (3, 40); (4, 64) ]

let test_random4_rejects () =
  check "n < 8 rejected" true
    (try
       ignore (Builders.random4 (Rng.create 1) 7);
       false
     with Invalid_argument _ -> true)

let test_path () =
  let g = Builders.path 5 in
  check_int "m" 4 (Graph.m g);
  check_int "diameter" 4 (Properties.diameter g);
  check "tree" true (Properties.is_tree g);
  check_int "single node path" 1 (Graph.n (Builders.path 1))

let test_cycle () =
  let g = Builders.cycle 6 in
  check_int "m" 6 (Graph.m g);
  check_int "diameter" 3 (Properties.diameter g);
  (* Orientation convention: port 0 is clockwise, port 1 counterclockwise. *)
  Graph.iter_nodes g (fun i ->
      let nbrs = Graph.neighbors g i in
      check_int "port 0 is clockwise" ((i + 1) mod 6) nbrs.(0);
      check_int "port 1 is counterclockwise" ((i + 5) mod 6) nbrs.(1))

let test_cycle_odd () =
  check_int "odd cycle diameter" 3 (Properties.diameter (Builders.cycle 7));
  Alcotest.check_raises "n<3 rejected" (Invalid_argument "Builders.cycle")
    (fun () -> ignore (Builders.cycle 2))

let test_complete () =
  let g = Builders.complete 5 in
  check_int "m" 10 (Graph.m g);
  check_int "diameter" 1 (Properties.diameter g)

let test_star () =
  let g = Builders.star 6 in
  check_int "m" 5 (Graph.m g);
  check_int "diameter" 2 (Properties.diameter g);
  check_int "center degree" 5 (Graph.degree g 0)

let test_grid () =
  let g = Builders.grid ~rows:3 ~cols:4 in
  check_int "n" 12 (Graph.n g);
  check_int "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  check_int "diameter" 5 (Properties.diameter g)

let test_torus () =
  let g = Builders.torus ~rows:3 ~cols:4 in
  check_int "n" 12 (Graph.n g);
  check_int "m" 24 (Graph.m g);
  Graph.iter_nodes g (fun p -> check_int "4-regular" 4 (Graph.degree g p))

let test_hypercube () =
  let g = Builders.hypercube 4 in
  check_int "n" 16 (Graph.n g);
  check_int "m" 32 (Graph.m g);
  check_int "diameter" 4 (Properties.diameter g);
  Graph.iter_nodes g (fun p -> check_int "regular" 4 (Graph.degree g p));
  check_int "trivial cube" 1 (Graph.n (Builders.hypercube 0))

let test_binary_tree () =
  let g = Builders.binary_tree 15 in
  check "is tree" true (Properties.is_tree g);
  check_int "diameter" 6 (Properties.diameter g)

let test_lollipop () =
  let g = Builders.lollipop ~clique:4 ~tail:3 in
  check_int "n" 7 (Graph.n g);
  check_int "m" (6 + 3) (Graph.m g);
  check "connected" true (Properties.is_connected g);
  check_int "diameter" 4 (Properties.diameter g)

let test_wheel () =
  let g = Builders.wheel 7 in
  check_int "n" 7 (Graph.n g);
  check_int "m" 12 (Graph.m g);
  check_int "hub degree" 6 (Graph.degree g 0);
  check_int "rim degree" 3 (Graph.degree g 3);
  check_int "diameter" 2 (Properties.diameter g)

let test_complete_bipartite () =
  let g = Builders.complete_bipartite 2 3 in
  check_int "n" 5 (Graph.n g);
  check_int "m" 6 (Graph.m g);
  check "no intra-left edge" false (Graph.mem_edge g 0 1);
  check "no intra-right edge" false (Graph.mem_edge g 2 3);
  check "cross edges" true (Graph.mem_edge g 0 2 && Graph.mem_edge g 1 4);
  check_int "diameter" 2 (Properties.diameter g)

let test_caterpillar () =
  let g = Builders.caterpillar ~spine:4 ~legs:3 in
  check_int "n" 16 (Graph.n g);
  check "is tree" true (Properties.is_tree g);
  (* Leaf on first spine node to leaf on last spine node. *)
  check_int "diameter" 5 (Properties.diameter g);
  let bare = Builders.caterpillar ~spine:5 ~legs:0 in
  check_int "no legs = path" 4 (Properties.diameter bare)

let test_random_tree () =
  let rng = Rng.create 3 in
  for n = 1 to 20 do
    check "is tree" true (Properties.is_tree (Builders.random_tree rng n))
  done

let test_random_connected () =
  let rng = Rng.create 4 in
  let g = Builders.random_connected rng ~n:12 ~extra_edges:5 in
  check "connected" true (Properties.is_connected g);
  check_int "edge count" (11 + 5) (Graph.m g);
  (* Saturation: requesting more edges than possible caps gracefully. *)
  let k = Builders.random_connected rng ~n:4 ~extra_edges:1000 in
  check_int "saturates at clique" 6 (Graph.m k)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let test_bfs_distances () =
  let g = Builders.path 5 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |]
    (Properties.bfs_distances g 0);
  Alcotest.(check (array int)) "from middle" [| 2; 1; 0; 1; 2 |]
    (Properties.bfs_distances g 2)

let test_distance_disconnected () =
  let g = Graph.of_edges ~n:3 [ (0, 1) ] in
  check "disconnected" false (Properties.is_connected g);
  check_int "unreachable" max_int (Properties.distance g 0 2);
  Alcotest.check_raises "eccentricity raises"
    (Invalid_argument "Properties.eccentricity: disconnected") (fun () ->
      ignore (Properties.eccentricity g 0))

let test_radius () =
  let g = Builders.path 5 in
  check_int "radius" 2 (Properties.radius g);
  check_int "diameter" 4 (Properties.diameter g)

let test_all_pairs () =
  let g = Builders.cycle 5 in
  let d = Properties.all_pairs_distances g in
  check_int "d(0,2)" 2 d.(0).(2);
  check_int "d(0,3)" 2 d.(0).(3);
  check "symmetric" true
    (List.for_all
       (fun (u, v) -> d.(u).(v) = d.(v).(u))
       [ (0, 1); (1, 3); (2, 4) ])

(* ------------------------------------------------------------------ *)
(* G_k (§7, Figure 1)                                                   *)
(* ------------------------------------------------------------------ *)

let test_gk_structure () =
  let k = 3 in
  let g = Gk.make k in
  check_int "n = 5k" 15 (Graph.n g);
  (* Each block contributes 4 internal edges; blocks >= 2 add 2 cross
     edges. *)
  check_int "m" ((4 * k) + (2 * (k - 1))) (Graph.m g);
  check "connected" true (Properties.is_connected g);
  let nd role i = Gk.node ~k role i in
  check "b3-c2 cross edge" true (Graph.mem_edge g (nd Gk.B 3) (nd Gk.C 2));
  check "e3-c2 cross edge" true (Graph.mem_edge g (nd Gk.E 3) (nd Gk.C 2));
  check "b3-a3 edge" true (Graph.mem_edge g (nd Gk.B 3) (nd Gk.A 3));
  check "no b3-e3 edge" false (Graph.mem_edge g (nd Gk.B 3) (nd Gk.E 3))

let test_gk_roles () =
  let k = 4 in
  for i = 1 to k do
    List.iter
      (fun role ->
        let v = Gk.node ~k role i in
        check_int "block round trip" i (Gk.block_of v);
        check "role round trip" true (Gk.role_of v = role))
      [ Gk.B; Gk.A; Gk.C; Gk.D; Gk.E ]
  done

let test_gk_bottom_path () =
  let k = 3 in
  let g = Gk.make k in
  let bp = Gk.bottom_path ~k 3 in
  check_int "length 3i" 9 (List.length bp);
  (* Consecutive nodes of the bottom path are adjacent. *)
  let rec adjacent = function
    | a :: b :: rest -> Graph.mem_edge g a b && adjacent (b :: rest)
    | _ -> true
  in
  check "is a path" true (adjacent bp);
  check_int "starts at c_i" (Gk.node ~k Gk.C 3) (List.hd bp);
  check_int "ends at e_1" (Gk.node ~k Gk.E 1) (List.nth bp 8)

let test_gk_fig1_indices () =
  (* Figure 1 gives the initial configuration of G_3 explicitly. *)
  let k = 3 in
  let expect =
    [
      (Gk.A, 3, 1); (Gk.B, 3, 3); (Gk.C, 3, 1); (Gk.D, 3, 2); (Gk.E, 3, 3);
      (Gk.A, 2, 4); (Gk.B, 2, 6); (Gk.C, 2, 4); (Gk.D, 2, 5); (Gk.E, 2, 6);
      (Gk.A, 1, 7); (Gk.B, 1, 9); (Gk.C, 1, 7); (Gk.D, 1, 8); (Gk.E, 1, 9);
    ]
  in
  List.iter
    (fun (role, i, idx) ->
      check_int
        (Printf.sprintf "%s%d" (Gk.role_name role) i)
        idx
        (Gk.fig1_index ~k (Gk.node ~k role i)))
    expect;
  check_int "max index" 9 (Gk.max_fig1_index ~k)

let test_gk_rejects () =
  Alcotest.check_raises "k=0" (Invalid_argument "Gk.make") (fun () ->
      ignore (Gk.make 0));
  Alcotest.check_raises "block out of range"
    (Invalid_argument "Gk.node: block out of range") (fun () ->
      ignore (Gk.node ~k:2 Gk.A 3))

(* ------------------------------------------------------------------ *)
(* Dot                                                                  *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_dot_graph () =
  let g = Builders.path 3 in
  let s = Dot.of_graph ~name:"p" g in
  check "has graph header" true (contains s "graph p {");
  check "has edge" true (contains s "n0 -- n1");
  check "has labels" true (contains s "label=\"2\"")

let test_dot_tree () =
  let g = Builders.cycle 4 in
  let parent = function 0 -> None | v -> Some (v - 1) in
  let s = Dot.of_tree g ~parent in
  check "tree edge solid" true (contains s "n0 -- n1 [style=solid]");
  check "non-tree edge dashed" true (contains s "n0 -- n3 [style=dashed]")

(* ------------------------------------------------------------------ *)
(* Properties (qcheck)                                                  *)
(* ------------------------------------------------------------------ *)

let random_graph_of_seed seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 10 in
  Builders.random_connected rng ~n ~extra_edges:(Rng.int rng 6)

let floyd_warshall g =
  let n = Graph.n g in
  let inf = max_int / 4 in
  let d = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  List.iter
    (fun (u, v) ->
      d.(u).(v) <- 1;
      d.(v).(u) <- 1)
    (Graph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then
          d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:100 ~name:"BFS distances agree with Floyd-Warshall"
      small_int
      (fun seed ->
        let g = random_graph_of_seed seed in
        let fw = floyd_warshall g in
        let ok = ref true in
        Graph.iter_nodes g (fun src ->
            let bfs = Properties.bfs_distances g src in
            Graph.iter_nodes g (fun dst ->
                if bfs.(dst) <> fw.(src).(dst) then ok := false));
        !ok);
    Test.make ~count:100 ~name:"diameter is max pairwise distance" small_int
      (fun seed ->
        let g = random_graph_of_seed seed in
        let fw = floyd_warshall g in
        let best = ref 0 in
        Graph.iter_nodes g (fun u ->
            Graph.iter_nodes g (fun v -> best := max !best fw.(u).(v)));
        Properties.diameter g = !best);
    Test.make ~count:100 ~name:"ports are mutually consistent" small_int
      (fun seed ->
        let g = random_graph_of_seed seed in
        List.for_all
          (fun (u, v) ->
            (Graph.neighbors g u).(Graph.port_of g u v) = v
            && (Graph.neighbors g v).(Graph.port_of g v u) = u)
          (Graph.edges g));
    Test.make ~count:50 ~name:"Gk fig1 indices differ by <=1 across edges"
      (int_range 1 6)
      (fun k ->
        let g = Gk.make k in
        List.for_all
          (fun (u, v) ->
            abs (Gk.fig1_index ~k u - Gk.fig1_index ~k v) <= 1
            (* a-nodes sit one below their neighbors; all others differ
               by at most 1 as distances do. *)
            || abs (Gk.fig1_index ~k u - Gk.fig1_index ~k v) = 2)
          (Graph.edges g));
  ]

let () =
  Alcotest.run "graph"
    [
      ( "core",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges_basic;
          Alcotest.test_case "of_edges rejects" `Quick test_of_edges_rejects;
          Alcotest.test_case "symmetry check" `Quick test_of_adjacency_symmetry;
          Alcotest.test_case "port_of" `Quick test_port_of;
          Alcotest.test_case "edges listing" `Quick test_edges_listing;
          Alcotest.test_case "fold / max degree" `Quick test_fold_and_max_degree;
        ] );
      ( "csr",
        [
          Alcotest.test_case "accessors" `Quick test_csr_accessors;
          Alcotest.test_case "of_csr validation" `Quick test_of_csr_validation;
          Alcotest.test_case "edge stream" `Quick test_of_edge_stream;
          Alcotest.test_case "torus stream ≡ legacy" `Quick
            test_torus_stream_matches_legacy;
        ] );
      ( "builders",
        [
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "odd cycle" `Quick test_cycle_odd;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "lollipop" `Quick test_lollipop;
          Alcotest.test_case "wheel" `Quick test_wheel;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "random connected" `Quick test_random_connected;
          Alcotest.test_case "random4" `Quick test_random4;
          Alcotest.test_case "random4 rejects" `Quick test_random4_rejects;
        ] );
      ( "properties",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "disconnected" `Quick test_distance_disconnected;
          Alcotest.test_case "radius" `Quick test_radius;
          Alcotest.test_case "all pairs" `Quick test_all_pairs;
        ] );
      ( "gk",
        [
          Alcotest.test_case "structure" `Quick test_gk_structure;
          Alcotest.test_case "roles" `Quick test_gk_roles;
          Alcotest.test_case "bottom path" `Quick test_gk_bottom_path;
          Alcotest.test_case "figure 1 indices" `Quick test_gk_fig1_indices;
          Alcotest.test_case "rejects" `Quick test_gk_rejects;
        ] );
      ( "dot",
        [
          Alcotest.test_case "graph export" `Quick test_dot_graph;
          Alcotest.test_case "tree export" `Quick test_dot_tree;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
