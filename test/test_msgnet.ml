(* Tests for the message-passing realization of the transformer (§6):
   convergence to verified quiescence with corrupted states AND
   corrupted mirrors, traffic accounting, and the full-state vs delta
   encoding comparison. *)

module Builders = Ss_graph.Builders
module Graph = Ss_graph.Graph
module Sync_runner = Ss_sync.Sync_runner
module Core = Ss_core
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module M = Ss_msgnet.Msgnet
module Leader = Ss_algos.Leader_election
module Min_flood = Ss_algos.Min_flood
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setting seed =
  let rng = Rng.create seed in
  let g =
    Builders.random_connected rng ~n:(4 + Rng.int rng 8) ~extra_edges:3
  in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params Leader.algo in
  let hist = Sync_runner.run Leader.algo g ~inputs in
  let start =
    Transformer.corrupt rng
      ~max_height:(hist.Sync_runner.t + 4)
      params
      (Transformer.clean_config params g ~inputs)
  in
  (rng, g, inputs, params, hist, start)

let test_wire_canonicalization () =
  (* Two logically equal states built by different operation sequences
     must encode to the same bytes (and hence the same proof hash and
     the same measured bits): the backing buffer's spare capacity,
     version stamps and sharing never reach the wire. *)
  let module St = Core.Trans_state in
  let module Energy = Ss_energy.Energy in
  let direct = St.make ~init:5 ~status:St.C ~cells:[| 4; 3; 2 |] in
  let grown =
    (* Build by extension (with a detour that exercises truncation and
       a status round-trip), leaving spare capacity behind. *)
    let s = St.clean 5 in
    let s = St.extend s 4 in
    let s = St.extend s 9 in
    let s = St.truncate s 1 in
    let s = St.extend s 3 in
    let s = St.extend s 2 in
    St.with_status (St.with_status s St.E) St.C
  in
  check "logically equal" true (St.equal Int.equal direct grown);
  check "stamps differ (different constructions)" true
    (St.stamp direct <> St.stamp grown);
  Alcotest.(check string)
    "identical wire encodings"
    (M.canonical_bytes direct) (M.canonical_bytes grown);
  check "identical proof hashes" true
    (Energy.state_proof ~nonce:7L (M.canonical_bytes direct)
    = Energy.state_proof ~nonce:7L (M.canonical_bytes grown));
  check_int "identical measured bits"
    (Energy.full_state_bits Min_flood.algo direct)
    (Energy.full_state_bits Min_flood.algo grown);
  (* And a branch that shares the buffer with [direct] but differs
     logically must encode differently. *)
  check "different states, different bytes" true
    (M.canonical_bytes (St.truncate direct 2) <> M.canonical_bytes direct)

let test_clean_start_full_encoding () =
  let g = Builders.cycle 6 in
  let inputs p = p + 3 in
  let params = Transformer.params Min_flood.algo in
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  let rng = Rng.create 1 in
  let final, stats =
    M.run ~encoding:M.Full_state ~rng ~corrupt_mirrors:false params
      (Transformer.clean_config params g ~inputs)
  in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true
    (Checker.legitimate_terminal params hist final = Ok ());
  (* Accurate mirrors + full-state updates: proofs never mismatch. *)
  check_int "no repair requests" 0 stats.M.request_messages;
  check_int "no full copies" 0 stats.M.full_copy_messages;
  (* On a ring every node has degree 2: each execution broadcasts 2
     updates. *)
  check_int "updates = 2 * executions" (2 * stats.M.rule_executions)
    stats.M.update_messages

let test_corrupted_mirrors_are_repaired () =
  let _, g, inputs, params, hist, start = setting 5 in
  ignore g;
  ignore inputs;
  let rng = Rng.create 50 in
  let final, stats = M.run ~encoding:M.Delta ~rng params start in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true
    (Checker.legitimate_terminal params hist final = Ok ());
  check "at least one proof wave ran" true (stats.M.proof_waves >= 1)

let test_convergence_matrix () =
  for seed = 1 to 12 do
    let _, g, inputs, params, hist, start = setting seed in
    List.iter
      (fun encoding ->
        let rng = Rng.create (seed + 100) in
        let final, stats = M.run ~encoding ~rng params start in
        check (Printf.sprintf "seed %d quiescent" seed) true stats.M.quiescent;
        check
          (Printf.sprintf "seed %d legitimate" seed)
          true
          (Checker.legitimate_terminal params hist final = Ok ());
        check
          (Printf.sprintf "seed %d spec" seed)
          true
          (Leader.spec_holds g ~inputs ~final:(Transformer.outputs final)))
      [ M.Full_state; M.Delta ]
  done

let test_delta_encoding_is_cheaper_per_update () =
  (* Same seed, both encodings: delta must spend fewer bits per update
     message on average. *)
  let _, _, _, params, _, start = setting 9 in
  let run encoding =
    let rng = Rng.create 77 in
    let _, stats = M.run ~encoding ~rng params start in
    stats
  in
  let full = run M.Full_state and delta = run M.Delta in
  let per_update s =
    float_of_int s.M.update_bits /. float_of_int (max 1 s.M.update_messages)
  in
  check "delta cheaper per update" true (per_update delta < per_update full)

let test_stats_consistency () =
  let _, _, _, params, _, start = setting 3 in
  let rng = Rng.create 42 in
  let _, stats = M.run ~rng params start in
  check "deliveries cover updates + proofs" true
    (stats.M.deliveries
    >= stats.M.update_messages + stats.M.request_messages
       + stats.M.full_copy_messages);
  check "total bits positive" true (M.total_bits stats > 0);
  check "full copies answer requests" true
    (stats.M.full_copy_messages <= stats.M.request_messages);
  check "proof bits = 128 * proof messages" true
    (stats.M.proof_bits = 128 * stats.M.proof_messages)

let test_heartbeat_period_controls_proof_traffic () =
  let _, _, _, params, _, start = setting 4 in
  let run every =
    let rng = Rng.create 11 in
    let _, stats = M.run ~heartbeat_every:every ~rng params start in
    stats
  in
  let fast = run 50 and slow = run 5000 in
  check "faster heartbeat, at least as many proofs" true
    (fast.M.proof_messages >= slow.M.proof_messages);
  check "both quiescent" true (fast.M.quiescent && slow.M.quiescent)

let test_event_budget_reported () =
  let _, _, _, params, _, start = setting 6 in
  let rng = Rng.create 13 in
  let _, stats = M.run ~max_events:3 ~rng params start in
  check "budget exhaustion reported" false stats.M.quiescent

let test_stale_proofs_dropped_without_spurious_traffic () =
  (* Regression for the stale-proof bug.  Start from the engine's
     terminal configuration with accurate mirrors and force perpetual
     wave overlap: a heartbeat period shorter than the 2m proof
     messages each wave enqueues means every wave is superseded before
     it fully drains.  The superseded proofs must be counted and
     dropped — never compared against a mirror the next wave is
     already re-verifying — so no Request or Full_copy traffic can
     appear even though the network never goes quiet. *)
  let g = Builders.cycle 6 in
  let inputs p = p + 3 in
  let params = Transformer.params Min_flood.algo in
  let stats =
    Transformer.run params Ss_sim.Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  check "engine reached terminal" true stats.Ss_sim.Engine.terminated;
  let terminal = stats.Ss_sim.Engine.final in
  let m = Graph.m g in
  let rng = Rng.create 71 in
  let _, s =
    M.run ~heartbeat_every:m ~max_events:4_000 ~rng ~corrupt_mirrors:false
      params terminal
  in
  check "waves overlap: stale proofs observed" true
    (s.M.stale_proof_messages > 0);
  check_int "stale proofs raise no requests" 0 s.M.request_messages;
  check_int "stale proofs trigger no full copies" 0 s.M.full_copy_messages;
  (* Waves refill faster than they drain, so the run exhausts its
     event budget instead of declaring quiescence — by design. *)
  check "budget exhausted under perpetual overlap" false s.M.quiescent

let test_stale_proofs_during_recovery () =
  (* Wave overlap during an actual recovery: a heartbeat period just
     above one wave's worth of proofs makes superseded proofs common
     while repair traffic is still in flight, yet every run must still
     reach verified quiescence and a legitimate terminal state. *)
  let total_stale = ref 0 in
  List.iter
    (fun seed ->
      let _, g, _, params, hist, start = setting seed in
      let rng = Rng.create (900 + seed) in
      let final, s =
        M.run ~heartbeat_every:((2 * Graph.m g) + 2) ~rng params start
      in
      check (Printf.sprintf "seed %d quiescent" seed) true s.M.quiescent;
      check
        (Printf.sprintf "seed %d legitimate" seed)
        true
        (Checker.legitimate_terminal params hist final = Ok ());
      total_stale := !total_stale + s.M.stale_proof_messages)
    [ 1; 2; 3; 4; 5; 6 ];
  check "overlapping waves produced stale proofs" true (!total_stale > 0)

let test_bfs_over_message_passing () =
  (* The protocol is algorithm-generic: BFS trees converge too. *)
  let rng = Rng.create 19 in
  let g = Builders.random_connected rng ~n:10 ~extra_edges:4 in
  let root = 0 in
  let inputs = Ss_algos.Bfs_tree.inputs g ~root in
  let params = Transformer.params Ss_algos.Bfs_tree.algo in
  let hist = Sync_runner.run Ss_algos.Bfs_tree.algo g ~inputs in
  let start =
    Transformer.corrupt rng
      ~max_height:(hist.Sync_runner.t + 4)
      params
      (Transformer.clean_config params g ~inputs)
  in
  let final, stats = M.run ~rng params start in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true (Checker.legitimate_terminal params hist final = Ok ());
  check "BFS spec" true
    (Ss_algos.Bfs_tree.spec_holds g ~root
       ~final:(Transformer.outputs final))

let test_greedy_cv_over_message_passing () =
  let rng = Rng.create 23 in
  let n = 9 and width = 6 in
  let g = Builders.cycle n in
  let ids = Ss_algos.Cole_vishkin.random_ring_ids rng ~n ~width in
  let inputs = Ss_algos.Cole_vishkin.inputs ~ids ~width g in
  let b = Ss_algos.Cole_vishkin.schedule_length width in
  let params =
    Transformer.params ~mode:Ss_core.Predicates.Greedy
      ~bound:(Ss_core.Predicates.Finite b)
      Ss_algos.Cole_vishkin.algo
  in
  let hist = Sync_runner.run Ss_algos.Cole_vishkin.algo g ~inputs in
  let start =
    Transformer.corrupt rng ~max_height:b params
      (Transformer.clean_config params g ~inputs)
  in
  let final, stats = M.run ~encoding:M.Delta ~rng params start in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true (Checker.legitimate_terminal params hist final = Ok ());
  check "proper 3-coloring" true
    (Ss_algos.Cole_vishkin.spec_holds g ~final:(Transformer.outputs final))

(* ------------------------------------------------------------------ *)
(* Ringbuf: the flat channel storage (DESIGN.md §15)                    *)
(* ------------------------------------------------------------------ *)

module Ringbuf = Ss_msgnet.Ringbuf

let test_ringbuf_fifo_growth () =
  let r = Ringbuf.create () in
  let record i = Array.init (1 + (i mod 5)) (fun j -> (i * 31) + j) in
  for i = 0 to 199 do
    let src = record i in
    Ringbuf.push r src (Array.length src)
  done;
  check_int "records queued" 200 (Ringbuf.records r);
  let dst = Array.make 8 0 in
  for i = 0 to 199 do
    let expect = record i in
    let len = Ringbuf.pop r dst in
    check_int (Printf.sprintf "record %d length" i) (Array.length expect) len;
    check (Printf.sprintf "record %d payload" i) true
      (Array.sub dst 0 len = expect)
  done;
  check "drained" true (Ringbuf.is_empty r)

let test_ringbuf_wraparound () =
  (* Interleaved push/pop walks the head around the circular array many
     times at near-constant occupancy, crossing the wrap point without
     triggering growth. *)
  let r = Ringbuf.create () in
  let dst = Array.make 4 0 in
  let next_push = ref 0 and next_pop = ref 0 in
  let push () =
    let i = !next_push in
    incr next_push;
    Ringbuf.push r [| i; i + 1 |] 2
  in
  let pop () =
    let i = !next_pop in
    incr next_pop;
    let len = Ringbuf.pop r dst in
    check_int "wrap length" 2 len;
    check "wrap payload" true (dst.(0) = i && dst.(1) = i + 1)
  in
  push ();
  for _ = 1 to 500 do
    push ();
    pop ()
  done;
  pop ();
  check "empty after interleave" true (Ringbuf.is_empty r);
  check_int "no words left" 0 (Ringbuf.words r)

let test_ringbuf_peek_and_validation () =
  let r = Ringbuf.create () in
  Ringbuf.push r [| 7; 8 |] 2;
  let dst = Array.make 2 0 in
  check_int "peek length" 2 (Ringbuf.peek r dst);
  check_int "peek leaves the record" 1 (Ringbuf.records r);
  check_int "pop length" 2 (Ringbuf.pop r dst);
  check "peek saw the pop's payload" true (dst.(0) = 7 && dst.(1) = 8);
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check "negative length rejected" true
    (raises (fun () -> Ringbuf.push r [| 1 |] (-1)));
  check "length past the source rejected" true
    (raises (fun () -> Ringbuf.push r [| 1 |] 2));
  check "peek on empty rejected" true (raises (fun () -> Ringbuf.peek r dst))

(* ------------------------------------------------------------------ *)
(* Degenerate topologies: n = 0, n = 1, edgeless                        *)
(* ------------------------------------------------------------------ *)

let test_empty_graph () =
  (* Zero nodes, zero channels: both loops must declare quiescence on
     the first probe wave instead of dividing by a zero channel count
     or indexing an empty arena. *)
  let g = Graph.of_adjacency [||] in
  let params = Transformer.params Min_flood.algo in
  let inputs _ = 0 in
  let config = Transformer.clean_config params g ~inputs in
  let _, stats = M.run ~rng:(Rng.create 1) params config in
  check "n = 0 quiescent" true stats.M.quiescent;
  check_int "n = 0 delivers nothing" 0 stats.M.deliveries;
  check_int "n = 0 peak wire load" 0 stats.M.peak_queued_bits;
  let _, nstats = M.run_naive ~rng:(Rng.create 1) params config in
  check "naive n = 0 quiescent" true nstats.M.quiescent

let test_singleton_and_edgeless () =
  let params = Transformer.params Min_flood.algo in
  List.iter
    (fun (name, g) ->
      let inputs p = (p * 13 mod 7) + 1 in
      let hist = Sync_runner.run Min_flood.algo g ~inputs in
      let rng = Rng.create 7 in
      let start =
        Transformer.corrupt rng
          ~max_height:(hist.Sync_runner.t + 4)
          params
          (Transformer.clean_config params g ~inputs)
      in
      let final, stats = M.run ~rng params start in
      check (name ^ " quiescent") true stats.M.quiescent;
      check (name ^ " legitimate") true
        (Checker.legitimate_terminal params hist final = Ok ());
      (* No links: no update, proof, or repair message can ever exist. *)
      check_int (name ^ " sends nothing") 0
        (stats.M.update_messages + stats.M.proof_messages
        + stats.M.request_messages + stats.M.full_copy_messages);
      (* The heartbeat timer must be harmless with zero channels even
         at its tightest legal period. *)
      let _, hb = M.run ~heartbeat_every:1 ~rng:(Rng.create 8) params start in
      check (name ^ " tight heartbeat still quiescent") true hb.M.quiescent;
      let nfinal, nstats = M.run_naive ~rng:(Rng.create 9) params start in
      check (name ^ " naive twin quiescent") true nstats.M.quiescent;
      check (name ^ " naive twin agrees") true
        (Transformer.outputs nfinal = Transformer.outputs final))
    [
      ("singleton", Graph.of_adjacency [| [||] |]);
      ("edgeless-4", Graph.of_adjacency (Array.init 4 (fun _ -> [||])));
    ]

(* ------------------------------------------------------------------ *)
(* Codec proof pre-images (DESIGN.md §15)                               *)
(* ------------------------------------------------------------------ *)

module St = Core.Trans_state
module Cellpack = Ss_core.Cellpack
module Cv = Ss_algos.Cole_vishkin

let cv_cell k = { Cv.color = k land 0xFF; round = (k lsr 8) land 0xF }

let cv_equal a b = a.Cv.color = b.Cv.color && a.Cv.round = b.Cv.round

(* Interpret an op list as a build history.  Decisions depend only on
   the logical height, so the same list drives a boxed and an
   arena-backed replica through identical logical histories. *)
let apply_ops ~cap st ops =
  List.fold_left
    (fun st op ->
      let op = abs op in
      match op mod 4 with
      | 0 ->
          if St.height st >= cap then St.truncate st (St.height st / 2)
          else St.extend st (cv_cell (op / 4))
      | 1 -> St.truncate st (op / 4 mod (St.height st + 1))
      | 2 -> St.with_status st (if op land 4 = 0 then St.C else St.E)
      | _ -> St.wipe st)
    st ops

let codec_qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:300
      ~name:"codec bytes agree with the Marshal reference on equality"
      (pair (small_list small_int) (small_list small_int))
      (fun (ops_a, ops_b) ->
        let cap = 12 in
        let init = cv_cell 3 in
        let build ops =
          apply_ops ~cap (St.make ~init ~status:St.C ~cells:[||]) ops
        in
        let a = build ops_a and b = build ops_b in
        let ca = M.codec_bytes Cv.codec a and cb = M.codec_bytes Cv.codec b in
        let agree_with_marshal =
          ca = cb = (M.canonical_bytes a = M.canonical_bytes b)
        in
        let agree_with_equality = ca = cb = St.equal cv_equal a b in
        (* An arena-backed replica of the same history encodes to the
           same bytes as its boxed twin (aliasing/extension/truncation
           idiosyncrasies of either backend never reach the wire). *)
        let arena = Cellpack.arena ~codec:Cv.codec ~n:1 ~cap:(cap + 4) in
        let packed =
          apply_ops ~cap
            (St.rebuild
               (St.packed_clean arena ~node:0 ~init)
               ~status:St.C ~cells:[||])
            ops_a
        in
        agree_with_marshal && agree_with_equality
        && M.codec_bytes Cv.codec packed = ca);
  ]

let test_codec_run_differential_cv () =
  (* Cole-Vishkin has a codec and a finite bound, so [`Auto] packs the
     mirrors.  Same rng, same schedule: serialization is off the draw
     path and the codec encoding is equality-equivalent to Marshal, so
     the codec run's stats must be *identical* to the Marshal run's —
     except [mirror_bytes], which measures the different backing. *)
  List.iter
    (fun seed ->
      let rng0 = Rng.create (23 + seed) in
      let n = 9 and width = 6 in
      let g = Builders.cycle n in
      let ids = Cv.random_ring_ids rng0 ~n ~width in
      let inputs = Cv.inputs ~ids ~width g in
      let b = Cv.schedule_length width in
      let params =
        Transformer.params ~mode:Ss_core.Predicates.Greedy
          ~bound:(Ss_core.Predicates.Finite b)
          Cv.algo
      in
      let hist = Sync_runner.run Cv.algo g ~inputs in
      let start =
        Transformer.corrupt rng0 ~max_height:b params
          (Transformer.clean_config params g ~inputs)
      in
      let run codec layout =
        M.run ?codec ?layout ~rng:(Rng.create ((seed * 7) + 1)) params start
      in
      let final_m, sm = run None None in
      let final_c, sc = run (Some Cv.codec) None in
      let final_b, sb = run (Some Cv.codec) (Some `Boxed) in
      let m = Printf.sprintf "cv seed %d" seed in
      check (m ^ ": codec run quiescent") true sc.M.quiescent;
      check (m ^ ": codec stats identical modulo mirror bytes") true
        ({ sc with M.mirror_bytes = 0 } = { sm with M.mirror_bytes = 0 });
      check (m ^ ": boxed-layout codec stats identical") true
        ({ sb with M.mirror_bytes = 0 } = { sm with M.mirror_bytes = 0 });
      check (m ^ ": same outputs across encodings") true
        (Transformer.outputs final_c = Transformer.outputs final_m
        && Transformer.outputs final_b = Transformer.outputs final_m);
      check (m ^ ": legitimate") true
        (Checker.legitimate_terminal params hist final_c = Ok ());
      (* The naive twin draws differently (different interleaving) but
         must land on the same terminal states. *)
      let final_n, sn =
        M.run_naive ~rng:(Rng.create ((seed * 7) + 1)) params start
      in
      check (m ^ ": naive twin agrees") true
        (sn.M.quiescent
        && Transformer.outputs final_n = Transformer.outputs final_c))
    [ 1; 2; 3 ]

let test_codec_run_differential_infinite_bound () =
  (* Leader election and BFS export codecs but run under an infinite
     bound: [`Auto] keeps mirrors boxed while the codec still replaces
     every proof pre-image.  Here even [mirror_bytes] must match. *)
  List.iter
    (fun seed ->
      (* leader *)
      let _, _, _, params, hist, start = setting seed in
      let run codec =
        M.run ?codec ~rng:(Rng.create ((seed * 31) + 5)) params start
      in
      let final_m, sm = run None in
      let final_c, sc = run (Some Leader.codec) in
      let m = Printf.sprintf "leader seed %d" seed in
      check (m ^ ": stats fully identical") true (sc = sm);
      check (m ^ ": outputs equal") true
        (Transformer.outputs final_c = Transformer.outputs final_m);
      check (m ^ ": legitimate") true
        (Checker.legitimate_terminal params hist final_c = Ok ());
      (* bfs *)
      let rng = Rng.create (19 + seed) in
      let g = Builders.random_connected rng ~n:10 ~extra_edges:4 in
      let inputs = Ss_algos.Bfs_tree.inputs g ~root:0 in
      let bparams = Transformer.params Ss_algos.Bfs_tree.algo in
      let bhist = Sync_runner.run Ss_algos.Bfs_tree.algo g ~inputs in
      let bstart =
        Transformer.corrupt rng
          ~max_height:(bhist.Sync_runner.t + 4)
          bparams
          (Transformer.clean_config bparams g ~inputs)
      in
      let brun codec =
        M.run ?codec ~rng:(Rng.create ((seed * 31) + 6)) bparams bstart
      in
      let bfinal_m, bsm = brun None in
      let bfinal_c, bsc = brun (Some Ss_algos.Bfs_tree.codec) in
      let m = Printf.sprintf "bfs seed %d" seed in
      check (m ^ ": stats fully identical") true (bsc = bsm);
      check (m ^ ": outputs equal") true
        (Transformer.outputs bfinal_c = Transformer.outputs bfinal_m))
    [ 1; 2; 3 ]

let test_packed_layout_validation () =
  let _, _, _, params, _, start = setting 2 in
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  (* leader runs under an infinite bound and here without a codec *)
  check "packed layout without a codec rejected" true
    (raises (fun () ->
         M.run ~layout:`Packed ~rng:(Rng.create 1) params start));
  check "packed layout with an infinite bound rejected" true
    (raises (fun () ->
         M.run ~layout:`Packed ~codec:Leader.codec ~rng:(Rng.create 1) params
           start))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:40
      ~name:"message-passing realization reaches a legitimate terminal state"
      (int_range 1 100_000)
      (fun seed ->
        let _, g, inputs, params, hist, start = setting seed in
        let rng = Rng.create (seed * 13) in
        let encoding = if seed mod 2 = 0 then M.Full_state else M.Delta in
        let final, stats = M.run ~encoding ~rng params start in
        stats.M.quiescent
        && Checker.legitimate_terminal params hist final = Ok ()
        && Leader.spec_holds g ~inputs ~final:(Transformer.outputs final));
  ]

let () =
  Alcotest.run "msgnet"
    [
      ( "protocol",
        [
          Alcotest.test_case "wire canonicalization" `Quick
            test_wire_canonicalization;
          Alcotest.test_case "clean start, full encoding" `Quick
            test_clean_start_full_encoding;
          Alcotest.test_case "corrupted mirrors repaired" `Quick
            test_corrupted_mirrors_are_repaired;
          Alcotest.test_case "convergence matrix" `Quick test_convergence_matrix;
          Alcotest.test_case "delta cheaper per update" `Quick
            test_delta_encoding_is_cheaper_per_update;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
          Alcotest.test_case "heartbeat period" `Quick
            test_heartbeat_period_controls_proof_traffic;
          Alcotest.test_case "event budget" `Quick test_event_budget_reported;
          Alcotest.test_case "stale proofs dropped" `Quick
            test_stale_proofs_dropped_without_spurious_traffic;
          Alcotest.test_case "stale proofs during recovery" `Quick
            test_stale_proofs_during_recovery;
          Alcotest.test_case "BFS over message passing" `Quick
            test_bfs_over_message_passing;
          Alcotest.test_case "greedy CV over message passing" `Quick
            test_greedy_cv_over_message_passing;
        ] );
      ( "ringbuf",
        [
          Alcotest.test_case "FIFO across growth" `Quick
            test_ringbuf_fifo_growth;
          Alcotest.test_case "wraparound" `Quick test_ringbuf_wraparound;
          Alcotest.test_case "peek and validation" `Quick
            test_ringbuf_peek_and_validation;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "singleton and edgeless" `Quick
            test_singleton_and_edgeless;
        ] );
      ( "codec",
        List.map QCheck_alcotest.to_alcotest codec_qcheck_tests
        @ [
            Alcotest.test_case "run differential: cv (packed)" `Quick
              test_codec_run_differential_cv;
            Alcotest.test_case "run differential: infinite bound" `Quick
              test_codec_run_differential_infinite_bound;
            Alcotest.test_case "packed layout validation" `Quick
              test_packed_layout_validation;
          ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
