(* Tests for the message-passing realization of the transformer (§6):
   convergence to verified quiescence with corrupted states AND
   corrupted mirrors, traffic accounting, and the full-state vs delta
   encoding comparison. *)

module Builders = Ss_graph.Builders
module Graph = Ss_graph.Graph
module Sync_runner = Ss_sync.Sync_runner
module Core = Ss_core
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module M = Ss_msgnet.Msgnet
module Leader = Ss_algos.Leader_election
module Min_flood = Ss_algos.Min_flood
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let setting seed =
  let rng = Rng.create seed in
  let g =
    Builders.random_connected rng ~n:(4 + Rng.int rng 8) ~extra_edges:3
  in
  let inputs = Leader.random_ids rng g in
  let params = Transformer.params Leader.algo in
  let hist = Sync_runner.run Leader.algo g ~inputs in
  let start =
    Transformer.corrupt rng
      ~max_height:(hist.Sync_runner.t + 4)
      params
      (Transformer.clean_config params g ~inputs)
  in
  (rng, g, inputs, params, hist, start)

let test_wire_canonicalization () =
  (* Two logically equal states built by different operation sequences
     must encode to the same bytes (and hence the same proof hash and
     the same measured bits): the backing buffer's spare capacity,
     version stamps and sharing never reach the wire. *)
  let module St = Core.Trans_state in
  let module Energy = Ss_energy.Energy in
  let direct = St.make ~init:5 ~status:St.C ~cells:[| 4; 3; 2 |] in
  let grown =
    (* Build by extension (with a detour that exercises truncation and
       a status round-trip), leaving spare capacity behind. *)
    let s = St.clean 5 in
    let s = St.extend s 4 in
    let s = St.extend s 9 in
    let s = St.truncate s 1 in
    let s = St.extend s 3 in
    let s = St.extend s 2 in
    St.with_status (St.with_status s St.E) St.C
  in
  check "logically equal" true (St.equal Int.equal direct grown);
  check "stamps differ (different constructions)" true
    (St.stamp direct <> St.stamp grown);
  Alcotest.(check string)
    "identical wire encodings"
    (M.canonical_bytes direct) (M.canonical_bytes grown);
  check "identical proof hashes" true
    (Energy.state_proof ~nonce:7L (M.canonical_bytes direct)
    = Energy.state_proof ~nonce:7L (M.canonical_bytes grown));
  check_int "identical measured bits"
    (Energy.full_state_bits Min_flood.algo direct)
    (Energy.full_state_bits Min_flood.algo grown);
  (* And a branch that shares the buffer with [direct] but differs
     logically must encode differently. *)
  check "different states, different bytes" true
    (M.canonical_bytes (St.truncate direct 2) <> M.canonical_bytes direct)

let test_clean_start_full_encoding () =
  let g = Builders.cycle 6 in
  let inputs p = p + 3 in
  let params = Transformer.params Min_flood.algo in
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  let rng = Rng.create 1 in
  let final, stats =
    M.run ~encoding:M.Full_state ~rng ~corrupt_mirrors:false params
      (Transformer.clean_config params g ~inputs)
  in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true
    (Checker.legitimate_terminal params hist final = Ok ());
  (* Accurate mirrors + full-state updates: proofs never mismatch. *)
  check_int "no repair requests" 0 stats.M.request_messages;
  check_int "no full copies" 0 stats.M.full_copy_messages;
  (* On a ring every node has degree 2: each execution broadcasts 2
     updates. *)
  check_int "updates = 2 * executions" (2 * stats.M.rule_executions)
    stats.M.update_messages

let test_corrupted_mirrors_are_repaired () =
  let _, g, inputs, params, hist, start = setting 5 in
  ignore g;
  ignore inputs;
  let rng = Rng.create 50 in
  let final, stats = M.run ~encoding:M.Delta ~rng params start in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true
    (Checker.legitimate_terminal params hist final = Ok ());
  check "at least one proof wave ran" true (stats.M.proof_waves >= 1)

let test_convergence_matrix () =
  for seed = 1 to 12 do
    let _, g, inputs, params, hist, start = setting seed in
    List.iter
      (fun encoding ->
        let rng = Rng.create (seed + 100) in
        let final, stats = M.run ~encoding ~rng params start in
        check (Printf.sprintf "seed %d quiescent" seed) true stats.M.quiescent;
        check
          (Printf.sprintf "seed %d legitimate" seed)
          true
          (Checker.legitimate_terminal params hist final = Ok ());
        check
          (Printf.sprintf "seed %d spec" seed)
          true
          (Leader.spec_holds g ~inputs ~final:(Transformer.outputs final)))
      [ M.Full_state; M.Delta ]
  done

let test_delta_encoding_is_cheaper_per_update () =
  (* Same seed, both encodings: delta must spend fewer bits per update
     message on average. *)
  let _, _, _, params, _, start = setting 9 in
  let run encoding =
    let rng = Rng.create 77 in
    let _, stats = M.run ~encoding ~rng params start in
    stats
  in
  let full = run M.Full_state and delta = run M.Delta in
  let per_update s =
    float_of_int s.M.update_bits /. float_of_int (max 1 s.M.update_messages)
  in
  check "delta cheaper per update" true (per_update delta < per_update full)

let test_stats_consistency () =
  let _, _, _, params, _, start = setting 3 in
  let rng = Rng.create 42 in
  let _, stats = M.run ~rng params start in
  check "deliveries cover updates + proofs" true
    (stats.M.deliveries
    >= stats.M.update_messages + stats.M.request_messages
       + stats.M.full_copy_messages);
  check "total bits positive" true (M.total_bits stats > 0);
  check "full copies answer requests" true
    (stats.M.full_copy_messages <= stats.M.request_messages);
  check "proof bits = 128 * proof messages" true
    (stats.M.proof_bits = 128 * stats.M.proof_messages)

let test_heartbeat_period_controls_proof_traffic () =
  let _, _, _, params, _, start = setting 4 in
  let run every =
    let rng = Rng.create 11 in
    let _, stats = M.run ~heartbeat_every:every ~rng params start in
    stats
  in
  let fast = run 50 and slow = run 5000 in
  check "faster heartbeat, at least as many proofs" true
    (fast.M.proof_messages >= slow.M.proof_messages);
  check "both quiescent" true (fast.M.quiescent && slow.M.quiescent)

let test_event_budget_reported () =
  let _, _, _, params, _, start = setting 6 in
  let rng = Rng.create 13 in
  let _, stats = M.run ~max_events:3 ~rng params start in
  check "budget exhaustion reported" false stats.M.quiescent

let test_stale_proofs_dropped_without_spurious_traffic () =
  (* Regression for the stale-proof bug.  Start from the engine's
     terminal configuration with accurate mirrors and force perpetual
     wave overlap: a heartbeat period shorter than the 2m proof
     messages each wave enqueues means every wave is superseded before
     it fully drains.  The superseded proofs must be counted and
     dropped — never compared against a mirror the next wave is
     already re-verifying — so no Request or Full_copy traffic can
     appear even though the network never goes quiet. *)
  let g = Builders.cycle 6 in
  let inputs p = p + 3 in
  let params = Transformer.params Min_flood.algo in
  let stats =
    Transformer.run params Ss_sim.Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  check "engine reached terminal" true stats.Ss_sim.Engine.terminated;
  let terminal = stats.Ss_sim.Engine.final in
  let m = Graph.m g in
  let rng = Rng.create 71 in
  let _, s =
    M.run ~heartbeat_every:m ~max_events:4_000 ~rng ~corrupt_mirrors:false
      params terminal
  in
  check "waves overlap: stale proofs observed" true
    (s.M.stale_proof_messages > 0);
  check_int "stale proofs raise no requests" 0 s.M.request_messages;
  check_int "stale proofs trigger no full copies" 0 s.M.full_copy_messages;
  (* Waves refill faster than they drain, so the run exhausts its
     event budget instead of declaring quiescence — by design. *)
  check "budget exhausted under perpetual overlap" false s.M.quiescent

let test_stale_proofs_during_recovery () =
  (* Wave overlap during an actual recovery: a heartbeat period just
     above one wave's worth of proofs makes superseded proofs common
     while repair traffic is still in flight, yet every run must still
     reach verified quiescence and a legitimate terminal state. *)
  let total_stale = ref 0 in
  List.iter
    (fun seed ->
      let _, g, _, params, hist, start = setting seed in
      let rng = Rng.create (900 + seed) in
      let final, s =
        M.run ~heartbeat_every:((2 * Graph.m g) + 2) ~rng params start
      in
      check (Printf.sprintf "seed %d quiescent" seed) true s.M.quiescent;
      check
        (Printf.sprintf "seed %d legitimate" seed)
        true
        (Checker.legitimate_terminal params hist final = Ok ());
      total_stale := !total_stale + s.M.stale_proof_messages)
    [ 1; 2; 3; 4; 5; 6 ];
  check "overlapping waves produced stale proofs" true (!total_stale > 0)

let test_bfs_over_message_passing () =
  (* The protocol is algorithm-generic: BFS trees converge too. *)
  let rng = Rng.create 19 in
  let g = Builders.random_connected rng ~n:10 ~extra_edges:4 in
  let root = 0 in
  let inputs = Ss_algos.Bfs_tree.inputs g ~root in
  let params = Transformer.params Ss_algos.Bfs_tree.algo in
  let hist = Sync_runner.run Ss_algos.Bfs_tree.algo g ~inputs in
  let start =
    Transformer.corrupt rng
      ~max_height:(hist.Sync_runner.t + 4)
      params
      (Transformer.clean_config params g ~inputs)
  in
  let final, stats = M.run ~rng params start in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true (Checker.legitimate_terminal params hist final = Ok ());
  check "BFS spec" true
    (Ss_algos.Bfs_tree.spec_holds g ~root
       ~final:(Transformer.outputs final))

let test_greedy_cv_over_message_passing () =
  let rng = Rng.create 23 in
  let n = 9 and width = 6 in
  let g = Builders.cycle n in
  let ids = Ss_algos.Cole_vishkin.random_ring_ids rng ~n ~width in
  let inputs = Ss_algos.Cole_vishkin.inputs ~ids ~width g in
  let b = Ss_algos.Cole_vishkin.schedule_length width in
  let params =
    Transformer.params ~mode:Ss_core.Predicates.Greedy
      ~bound:(Ss_core.Predicates.Finite b)
      Ss_algos.Cole_vishkin.algo
  in
  let hist = Sync_runner.run Ss_algos.Cole_vishkin.algo g ~inputs in
  let start =
    Transformer.corrupt rng ~max_height:b params
      (Transformer.clean_config params g ~inputs)
  in
  let final, stats = M.run ~encoding:M.Delta ~rng params start in
  check "quiescent" true stats.M.quiescent;
  check "legitimate" true (Checker.legitimate_terminal params hist final = Ok ());
  check "proper 3-coloring" true
    (Ss_algos.Cole_vishkin.spec_holds g ~final:(Transformer.outputs final))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:40
      ~name:"message-passing realization reaches a legitimate terminal state"
      (int_range 1 100_000)
      (fun seed ->
        let _, g, inputs, params, hist, start = setting seed in
        let rng = Rng.create (seed * 13) in
        let encoding = if seed mod 2 = 0 then M.Full_state else M.Delta in
        let final, stats = M.run ~encoding ~rng params start in
        stats.M.quiescent
        && Checker.legitimate_terminal params hist final = Ok ()
        && Leader.spec_holds g ~inputs ~final:(Transformer.outputs final));
  ]

let () =
  Alcotest.run "msgnet"
    [
      ( "protocol",
        [
          Alcotest.test_case "wire canonicalization" `Quick
            test_wire_canonicalization;
          Alcotest.test_case "clean start, full encoding" `Quick
            test_clean_start_full_encoding;
          Alcotest.test_case "corrupted mirrors repaired" `Quick
            test_corrupted_mirrors_are_repaired;
          Alcotest.test_case "convergence matrix" `Quick test_convergence_matrix;
          Alcotest.test_case "delta cheaper per update" `Quick
            test_delta_encoding_is_cheaper_per_update;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
          Alcotest.test_case "heartbeat period" `Quick
            test_heartbeat_period_controls_proof_traffic;
          Alcotest.test_case "event budget" `Quick test_event_budget_reported;
          Alcotest.test_case "stale proofs dropped" `Quick
            test_stale_proofs_dropped_without_spurious_traffic;
          Alcotest.test_case "stale proofs during recovery" `Quick
            test_stale_proofs_during_recovery;
          Alcotest.test_case "BFS over message passing" `Quick
            test_bfs_over_message_passing;
          Alcotest.test_case "greedy CV over message passing" `Quick
            test_greedy_cv_over_message_passing;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
