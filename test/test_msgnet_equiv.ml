(* Differential tests for the message-network layer:

   1. Msgnet.run's final TRUE states (mirrors are scaffolding) must
      equal the atomic-state Engine.run silent configuration for the
      §5 instances — leader election, BFS tree, Cole-Vishkin — across
      both encodings and several seeds.  When faults corrupt only the
      states (mirrors start accurate), the transformer's terminal
      configuration is schedule-independent, so the asynchronous
      message-passing realization and the atomic-state engine land on
      exactly the same states.  When mirrors are ALSO independently
      corrupted, a tall bogus mirror can trigger extra lazy catch-up
      moves, so the common terminal height may legitimately exceed the
      engine's — for that regime we assert quiescence and legitimacy
      (same simulated history, uniform height) rather than bit-equal
      states.

   2. The indexed channel scheduler (Msgnet.run) and the O(m)
      full-scan reference path (Msgnet.run_naive) must both reach that
      same configuration: they draw different interleavings from the
      rng, but the terminal states are unique.

   3. Chanset, the O(1) non-empty-channel set behind the indexed
      scheduler, is exercised against a reference set model. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Sync_algo = Ss_sync.Sync_algo
module Sync_runner = Ss_sync.Sync_runner
module St = Ss_core.Trans_state
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module M = Ss_msgnet.Msgnet
module Chanset = Ss_msgnet.Chanset
module Leader = Ss_algos.Leader_election
module Bfs = Ss_algos.Bfs_tree
module Cv = Ss_algos.Cole_vishkin
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seeds = [ 1; 2; 3 ]

(* The §5 instances are heterogeneous in their state/input types, so
   each test builds its instance and hands everything to this generic
   checker. *)
let assert_matches_engine ~msg params ~eq ~hist start =
  let engine_final =
    let stats = Transformer.run params Daemon.synchronous start in
    check (msg ^ ": engine terminated") true stats.Engine.terminated;
    stats.Engine.final
  in
  check
    (msg ^ ": engine final legitimate")
    true
    (Checker.legitimate_terminal params hist engine_final = Ok ());
  List.iter
    (fun (enc_name, encoding) ->
      List.iter
        (fun seed ->
          List.iter
            (fun (path_name, run) ->
              let m =
                Printf.sprintf "%s/%s/%s/seed%d" msg enc_name path_name seed
              in
              let rng = Rng.create (1000 * seed + Hashtbl.hash enc_name) in
              let final, stats =
                run ~encoding ~rng ~corrupt_mirrors:false params start
              in
              check (m ^ ": quiescent") true stats.M.quiescent;
              check (m ^ ": legitimate") true
                (Checker.legitimate_terminal params hist final = Ok ());
              check (m ^ ": states match engine silent config") true
                (Config.equal (St.equal eq) final engine_final);
              (* Corrupted-mirror regime: terminal height is
                 schedule-dependent, so assert recovery, not equality. *)
              let rng = Rng.create (7000 * seed + Hashtbl.hash enc_name) in
              let final, stats =
                run ~encoding ~rng ~corrupt_mirrors:true params start
              in
              check (m ^ ": quiescent (corrupt mirrors)") true
                stats.M.quiescent;
              check (m ^ ": legitimate (corrupt mirrors)") true
                (Checker.legitimate_terminal params hist final = Ok ()))
            [
              ( "indexed",
                fun ~encoding ~rng ~corrupt_mirrors p s ->
                  M.run ~encoding ~rng ~corrupt_mirrors p s );
              ( "naive",
                fun ~encoding ~rng ~corrupt_mirrors p s ->
                  M.run_naive ~encoding ~rng ~corrupt_mirrors p s );
            ])
        seeds)
    [ ("full", M.Full_state); ("delta", M.Delta) ]

let test_leader () =
  List.iter
    (fun (gname, g) ->
      let rng = Rng.create 31 in
      let inputs = Leader.random_ids rng g in
      let params = Transformer.params Leader.algo in
      let hist = Sync_runner.run Leader.algo g ~inputs in
      let start =
        Transformer.corrupt rng
          ~max_height:(hist.Sync_runner.t + 4)
          params
          (Transformer.clean_config params g ~inputs)
      in
      assert_matches_engine
        ~msg:("leader/" ^ gname)
        params ~eq:Leader.algo.Sync_algo.equal ~hist start)
    [
      ("cycle8", Builders.cycle 8);
      ( "random10",
        Builders.random_connected (Rng.create 5) ~n:10 ~extra_edges:4 );
    ]

let test_bfs () =
  let rng = Rng.create 37 in
  let g = Builders.random_connected rng ~n:10 ~extra_edges:4 in
  let inputs = Bfs.inputs g ~root:0 in
  let params = Transformer.params Bfs.algo in
  let hist = Sync_runner.run Bfs.algo g ~inputs in
  let start =
    Transformer.corrupt rng
      ~max_height:(hist.Sync_runner.t + 4)
      params
      (Transformer.clean_config params g ~inputs)
  in
  assert_matches_engine ~msg:"bfs/random10" params
    ~eq:Bfs.algo.Sync_algo.equal ~hist start

let test_cole_vishkin () =
  let rng = Rng.create 41 in
  let n = 9 and width = 6 in
  let g = Builders.cycle n in
  let ids = Cv.random_ring_ids rng ~n ~width in
  let inputs = Cv.inputs ~ids ~width g in
  let b = Cv.schedule_length width in
  let params =
    Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Cv.algo
  in
  let hist = Sync_runner.run Cv.algo g ~inputs in
  let start =
    Transformer.corrupt rng ~max_height:b params
      (Transformer.clean_config params g ~inputs)
  in
  assert_matches_engine ~msg:"cv/cycle9" params ~eq:Cv.algo.Sync_algo.equal
    ~hist start

(* ------------------------------------------------------------------ *)
(* Chanset vs a reference set model                                     *)
(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

let test_chanset_model () =
  let capacity = 64 in
  let t = Chanset.create capacity in
  let reference = ref IntSet.empty in
  let rng = Rng.create 97 in
  for _ = 1 to 5_000 do
    let id = Rng.int rng capacity in
    (match Rng.int rng 3 with
    | 0 ->
        Chanset.add t id;
        reference := IntSet.add id !reference
    | 1 ->
        Chanset.remove t id;
        reference := IntSet.remove id !reference
    | _ ->
        if not (Chanset.is_empty t) then begin
          let picked = Chanset.pick t rng in
          check "pick is a member" true (IntSet.mem picked !reference)
        end);
    check_int "cardinal" (IntSet.cardinal !reference) (Chanset.cardinal t);
    check "mem agrees" true (Chanset.mem t id = IntSet.mem id !reference)
  done;
  Alcotest.(check (list int))
    "elements agree with the model"
    (IntSet.elements !reference) (Chanset.elements t)

let test_chanset_pick_covers_members () =
  (* Over many draws, every member of a small active set is picked:
     the swap-with-last removal must not shadow any element. *)
  let t = Chanset.create 10 in
  List.iter (Chanset.add t) [ 0; 3; 4; 7; 9 ];
  Chanset.remove t 3;
  Chanset.remove t 9;
  Chanset.add t 5;
  let rng = Rng.create 13 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 500 do
    Hashtbl.replace seen (Chanset.pick t rng) ()
  done;
  Alcotest.(check (list int))
    "all members picked" [ 0; 4; 5; 7 ]
    (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []))

let () =
  Alcotest.run "msgnet-equiv"
    [
      ( "engine-vs-msgnet",
        [
          Alcotest.test_case "leader election" `Quick test_leader;
          Alcotest.test_case "BFS tree" `Quick test_bfs;
          Alcotest.test_case "Cole-Vishkin" `Quick test_cole_vishkin;
        ] );
      ( "chanset",
        [
          Alcotest.test_case "reference model" `Quick test_chanset_model;
          Alcotest.test_case "pick covers members" `Quick
            test_chanset_pick_covers_members;
        ] );
    ]
