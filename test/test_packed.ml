(* Packed state arenas (DESIGN.md §12): the Cellpack-backed
   Trans_state must be observationally identical to the boxed
   copy-on-write backend — property-tested over random operation
   interleavings, including several nodes sharing one arena and the
   lineage-id ([rep_id]) soundness the Predicates watermark cache
   rests on — and a full packed engine run must reproduce the boxed
   naive reference execution move for move. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Rng = Ss_prelude.Rng
module St = Ss_core.Trans_state
module Cellpack = Ss_core.Cellpack
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Stabilization = Ss_verify.Stabilization
module Leader = Ss_algos.Leader_election
module Min_flood = Ss_algos.Min_flood
module Bfs = Ss_algos.Bfs_tree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Codecs                                                               *)
(* ------------------------------------------------------------------ *)

let test_codecs () =
  let buf = Array.make 8 0 in
  Cellpack.int_codec.Cellpack.pack buf 3 (-42);
  check_int "int codec roundtrip" (-42) (Cellpack.int_codec.Cellpack.unpack buf 3);
  let states = [ Bfs.Null; Bfs.Root; Bfs.Parent 0; Bfs.Parent 7 ] in
  List.iter
    (fun s ->
      Bfs.codec.Cellpack.pack buf 0 s;
      check "bfs codec roundtrip" true
        (Bfs.codec.Cellpack.unpack buf 0 = s))
    states;
  let pc = Cellpack.pair Cellpack.int_codec Cellpack.int_codec in
  check_int "pair codec width" 2 pc.Cellpack.words;
  pc.Cellpack.pack buf 1 (5, -6);
  check "pair codec roundtrip" true (pc.Cellpack.unpack buf 1 = (5, -6))

let test_arena_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "n >= 1" true
    (raises (fun () -> ignore (Cellpack.arena ~codec:Cellpack.int_codec ~n:0 ~cap:4)));
  check "cap >= 0" true
    (raises (fun () -> ignore (Cellpack.arena ~codec:Cellpack.int_codec ~n:1 ~cap:(-1))));
  let a = Cellpack.arena ~codec:Cellpack.int_codec ~n:10 ~cap:4 in
  check_int "n accessor" 10 (Cellpack.n a);
  check_int "cap accessor" 4 (Cellpack.cap a);
  check "bytes counts the payload" true (Cellpack.bytes a >= 8 * (10 * 4 + 20))

(* ------------------------------------------------------------------ *)
(* Random op interleavings: packed twin ≡ boxed twin                    *)
(* ------------------------------------------------------------------ *)

(* One step of the shared single-timeline discipline, driven by raw
   random ints so qcheck can shrink.  Returns the two new states. *)
let apply_op rng cap (boxed, packed) =
  let h = St.height boxed in
  match Rng.int rng 6 with
  | 0 when h < cap ->
      let v = Rng.int rng 100 in
      (St.extend boxed v, St.extend packed v)
  | 1 -> let i = Rng.int rng (h + 1) in (St.truncate boxed i, St.truncate packed i)
  | 2 ->
      let s = if Rng.bool rng then St.C else St.E in
      (St.with_status boxed s, St.with_status packed s)
  | 3 -> (St.wipe boxed, St.wipe packed)
  | 4 ->
      let len = Rng.int rng (cap + 1) in
      let cells = Array.init len (fun _ -> Rng.int rng 100) in
      let status = if Rng.bool rng then St.C else St.E in
      (St.rebuild boxed ~status ~cells, St.rebuild packed ~status ~cells)
  | _ ->
      (* Truncate-then-extend: the sub-committed overwrite path. *)
      if h = 0 then (boxed, packed)
      else
        let i = Rng.int rng h in
        let v = Rng.int rng 100 in
        (St.extend (St.truncate boxed i) v, St.extend (St.truncate packed i) v)

let same_state msg boxed packed =
  check_int (msg ^ ": height") (St.height boxed) (St.height packed);
  check (msg ^ ": status") true (St.status boxed = St.status packed);
  check_int (msg ^ ": init") (St.init boxed) (St.init packed);
  for i = 0 to St.height boxed do
    check_int (Printf.sprintf "%s: cell %d" msg i) (St.cell boxed i)
      (St.cell packed i)
  done;
  check (msg ^ ": snapshot") true (St.snapshot boxed = St.snapshot packed);
  check (msg ^ ": cross-backend equal") true (St.equal Int.equal boxed packed);
  check (msg ^ ": fold_cells") true
    (St.fold_cells (fun acc c -> c :: acc) [] boxed
    = St.fold_cells (fun acc c -> c :: acc) [] packed)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:200 ~name:"packed ≡ boxed under random op interleavings"
      (pair small_int (int_range 1 8))
      (fun (seed, cap) ->
        let rng = Rng.create seed in
        let nodes = 3 in
        let arena = Cellpack.arena ~codec:Cellpack.int_codec ~n:nodes ~cap in
        (* Three independent timelines sharing one arena, each with a
           boxed twin: checks slot isolation on top of equivalence. *)
        let twins =
          Array.init nodes (fun node ->
              let init = Rng.int rng 100 in
              ref (St.clean init, St.packed_clean arena ~node ~init))
        in
        for step = 1 to 40 do
          let node = Rng.int rng nodes in
          let pair = apply_op rng cap !(twins.(node)) in
          twins.(node) := pair;
          Array.iteri
            (fun i tw ->
              let b, p = !tw in
              same_state
                (Printf.sprintf "seed %d step %d node %d" seed step i)
                b p)
            twins
        done;
        true);
    Test.make ~count:200
      ~name:"equal rep_id ⇒ physically unchanged committed prefix"
      (pair small_int (int_range 1 8))
      (fun (seed, cap) ->
        (* The soundness invariant of the Predicates watermark cache:
           between any two packed handles on the same slot carrying
           the same lineage id, the cells both can read agree. *)
        let rng = Rng.create seed in
        let arena = Cellpack.arena ~codec:Cellpack.int_codec ~n:1 ~cap in
        let state = ref (St.clean 7, St.packed_clean arena ~node:0 ~init:7) in
        let snap packed = (St.rep_id packed, St.cells packed) in
        let cache = ref (snap (snd !state)) in
        for _ = 1 to 60 do
          state := apply_op rng cap !state;
          let packed = snd !state in
          let rep, cells = snap packed in
          let cached_rep, cached_cells = !cache in
          if rep = cached_rep then begin
            let common =
              min (Array.length cells) (Array.length cached_cells)
            in
            for i = 0 to common - 1 do
              if cells.(i) <> cached_cells.(i) then
                Test.fail_reportf
                  "rep %d kept but cell %d changed %d -> %d" rep i
                  cached_cells.(i) cells.(i)
            done
          end;
          cache := (rep, cells)
        done;
        true);
  ]

let test_capacity_exceeded () =
  let arena = Cellpack.arena ~codec:Cellpack.int_codec ~n:1 ~cap:2 in
  let st = St.packed_clean arena ~node:0 ~init:0 in
  let st = St.extend (St.extend st 1) 2 in
  check_int "filled to cap" 2 (St.height st);
  check "extend past cap raises" true
    (try
       ignore (St.extend st 3);
       false
     with Invalid_argument _ -> true);
  check "rebuild past cap raises" true
    (try
       ignore (St.rebuild st ~status:St.C ~cells:[| 1; 2; 3 |]);
       false
     with Invalid_argument _ -> true)

let test_rep_minting () =
  let arena = Cellpack.arena ~codec:Cellpack.int_codec ~n:2 ~cap:4 in
  let st = St.packed_clean arena ~node:0 ~init:0 in
  let st1 = St.extend st 1 in
  let st2 = St.extend st1 2 in
  check "frontier extends keep the lineage" true
    (St.rep_id st = St.rep_id st1 && St.rep_id st1 = St.rep_id st2);
  let cut = St.truncate st2 1 in
  check "truncate keeps the lineage" true (St.rep_id cut = St.rep_id st2);
  let rewritten = St.extend cut 9 in
  check "sub-committed overwrite mints a fresh lineage" true
    (St.rep_id rewritten <> St.rep_id st2);
  check "wipe mints a fresh lineage" true
    (St.rep_id (St.wipe rewritten) <> St.rep_id rewritten);
  let other = St.packed_clean arena ~node:1 ~init:5 in
  check "slots have distinct lineages" true
    (St.rep_id other <> St.rep_id rewritten);
  check "boxed and packed ids never collide" true
    (St.rep_id (St.clean 0) <> St.rep_id other)

(* ------------------------------------------------------------------ *)
(* Differential: packed Transformer.run ≡ boxed Transformer.run_naive  *)
(* ------------------------------------------------------------------ *)

let daemon_factories seed =
  [
    ("sync", fun () -> Daemon.synchronous);
    ("async", fun () -> Daemon.distributed_random (Rng.create seed) ~p:0.5);
  ]

let assert_stats msg (a : _ Engine.stats) (b : _ Engine.stats) =
  check_int (msg ^ ": steps") a.Engine.steps b.Engine.steps;
  check_int (msg ^ ": moves") a.Engine.moves b.Engine.moves;
  check_int (msg ^ ": rounds") a.Engine.rounds b.Engine.rounds;
  check (msg ^ ": terminated") a.Engine.terminated b.Engine.terminated;
  Alcotest.(check (array int))
    (msg ^ ": moves per node")
    a.Engine.moves_per_node b.Engine.moves_per_node;
  Alcotest.(check (list (pair string int)))
    (msg ^ ": moves per rule")
    a.Engine.moves_per_rule b.Engine.moves_per_rule

(* Build the same corrupted scenario twice — packed and boxed — from
   identically seeded rngs, run the packed one on the incremental
   engine and the boxed one on the naive reference engine, and demand
   the exact same execution. *)
let differential (type s i) ~msg ~seed ~bound
    ~(codec : s Cellpack.codec) (sync : (s, i) Ss_sync.Sync_algo.t)
    (graph : Graph.t) (inputs : int -> i) =
  let params = Transformer.params ~bound:(P.Finite bound) sync in
  let sc = { Stabilization.params; graph; inputs } in
  let start ?codec () =
    Stabilization.corrupted_start (Rng.create seed) ?codec ~max_height:bound sc
  in
  let packed_start = start ~codec () in
  let boxed_start = start () in
  check (msg ^ ": packed start is packed") true
    (Array.for_all
       (fun st -> St.backing_arena st <> None)
       packed_start.Config.states);
  check (msg ^ ": boxed start is boxed") true
    (Array.for_all
       (fun st -> St.backing_arena st = None)
       boxed_start.Config.states);
  let eq = St.equal sync.Ss_sync.Sync_algo.equal in
  check (msg ^ ": same corrupted start") true
    (Config.equal eq packed_start boxed_start);
  List.iter
    (fun (dname, factory) ->
      let msg = Printf.sprintf "%s/%s/seed=%d" msg dname seed in
      let packed = Transformer.run params (factory ()) (start ~codec ()) in
      let naive = Transformer.run_naive params (factory ()) (start ()) in
      assert_stats msg packed naive;
      check (msg ^ ": same final configuration") true
        (Config.equal eq packed.Engine.final naive.Engine.final);
      (* And the sharded engine (uncached predicates, shard merge)
         reproduces the same execution again. *)
      let sharded =
        Transformer.run ~sharded:true params (factory ()) (start ~codec ())
      in
      assert_stats (msg ^ "/sharded") sharded naive;
      check (msg ^ ": sharded same final") true
        (Config.equal eq sharded.Engine.final naive.Engine.final))
    (daemon_factories seed)

let seeds = [ 1; 2; 3 ]

let test_differential_leader () =
  List.iter
    (fun seed ->
      let graph = Builders.torus ~rows:4 ~cols:5 in
      let inputs = Leader.random_ids (Rng.create (seed + 100)) graph in
      differential ~msg:"leader" ~seed ~bound:6 ~codec:Leader.codec
        Leader.algo graph inputs)
    seeds

let test_differential_minflood () =
  List.iter
    (fun seed ->
      let graph = Builders.cycle 12 in
      differential ~msg:"minflood" ~seed ~bound:7 ~codec:Min_flood.codec
        Min_flood.algo graph
        (fun p -> (p * 31) mod 17))
    seeds

let test_differential_bfs () =
  List.iter
    (fun seed ->
      let graph = Builders.random4 (Rng.create (seed + 7)) 16 in
      let inputs = Bfs.inputs graph ~root:0 in
      differential ~msg:"bfs" ~seed ~bound:5 ~codec:Bfs.codec Bfs.algo graph
        inputs)
    seeds

(* The packed self-check path: cached vs uncached predicates and
   incremental vs full-scan enabled sets, cross-validated every step
   on a packed configuration. *)
let test_packed_self_check () =
  let graph = Builders.torus ~rows:4 ~cols:4 in
  let inputs = Leader.random_ids (Rng.create 42) graph in
  let params = Transformer.params ~bound:(P.Finite 6) Leader.algo in
  let sc = { Stabilization.params; graph; inputs } in
  let start =
    Stabilization.corrupted_start (Rng.create 42) ~codec:Leader.codec
      ~max_height:6 sc
  in
  let stats =
    Transformer.run ~self_check:true params Daemon.synchronous start
  in
  check "terminated" true stats.Engine.terminated

(* Above ~16k nodes the sharded scheduler actually splits into
   multiple shards, and with jobs > 1 the guard sweeps run on the
   Ss_par pool — this is the only test small enough for CI that still
   crosses both thresholds, exercising the index-ordered shard merge
   for real.  Byte-identical stats are the determinism contract. *)
let test_sharded_merge_at_scale () =
  let saved = Ss_par.Par.jobs () in
  Fun.protect
    ~finally:(fun () -> Ss_par.Par.set_jobs saved)
    (fun () ->
      Ss_par.Par.set_jobs 4;
      let graph = Builders.torus ~rows:150 ~cols:150 in
      let inputs = Leader.random_ids (Rng.create 11) graph in
      let params = Transformer.params ~bound:(P.Finite 4) Leader.algo in
      let sc = { Stabilization.params; graph; inputs } in
      let start () =
        Stabilization.corrupted_start (Rng.create 11) ~codec:Leader.codec
          ~max_height:4 sc
      in
      let sharded =
        Transformer.run ~sharded:true params Daemon.synchronous (start ())
      in
      let sequential =
        Transformer.run params Daemon.synchronous (start ())
      in
      assert_stats "22500-node sharded ≡ sequential" sharded sequential;
      check "same final" true
        (Config.equal
           (St.equal Int.equal)
           sharded.Engine.final sequential.Engine.final))

let () =
  Alcotest.run "packed"
    [
      ( "cellpack",
        [
          Alcotest.test_case "codec roundtrips" `Quick test_codecs;
          Alcotest.test_case "arena validation" `Quick test_arena_validation;
        ] );
      ( "trans_state",
        [
          Alcotest.test_case "capacity exceeded" `Quick test_capacity_exceeded;
          Alcotest.test_case "lineage minting" `Quick test_rep_minting;
        ] );
      ( "differential",
        [
          Alcotest.test_case "leader torus" `Quick test_differential_leader;
          Alcotest.test_case "minflood ring" `Quick test_differential_minflood;
          Alcotest.test_case "bfs random4" `Quick test_differential_bfs;
          Alcotest.test_case "packed self-check" `Quick test_packed_self_check;
          Alcotest.test_case "sharded merge at scale" `Quick
            test_sharded_merge_at_scale;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
