(* Tests for Ss_par: the domain pool behind the parallel campaign
   layer — index-ordered merge, exception capture, pool reuse, nested
   degradation — and the end-to-end determinism contract ([-j 1] ≡
   [-j N] on a real campaign, including under cross-domain
   contention).  DESIGN.md §11. *)

module Pool = Ss_par.Pool
module Par = Ss_par.Par
module Rng = Ss_prelude.Rng
module Json = Ss_report.Json
module Run_report = Ss_report.Run_report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

exception Boom of int

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 (fun i -> i) in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "index-ordered merge" (Array.map f xs) (Pool.map pool f xs);
      Alcotest.(check (list string))
        "map_list preserves order"
        [ "0"; "1"; "2" ]
        (Pool.map_list pool string_of_int [ 0; 1; 2 ]))

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (* Several tasks raise; the lowest input index wins
         deterministically, regardless of which domain ran it. *)
      Alcotest.check_raises "lowest-index error re-raised" (Boom 2)
        (fun () ->
          ignore
            (Pool.map pool
               (fun i -> if i >= 2 then raise (Boom i) else i)
               (Array.init 16 Fun.id)));
      (* The raising call did not kill a worker: the pool still works. *)
      check_int "pool survives an exception" 16
        (Array.fold_left ( + ) 0
           (Pool.map pool (fun _ -> 1) (Array.make 16 ()))))

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check_int "size" 3 (Pool.size pool);
      for round = 1 to 20 do
        Alcotest.(check (list int))
          "reused pool, fresh call"
          (List.map (fun i -> i * round) [ 1; 2; 3; 4; 5 ])
          (Pool.map_list pool (fun i -> i * round) [ 1; 2; 3; 4; 5 ])
      done);
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool (fun x -> x) [| 1; 2 |]));
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_nested_map_degrades () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Pool.map pool
          (fun i ->
            check "task sees in_worker" true (Pool.in_worker ());
            (* A nested map runs sequentially in this task's domain —
               no re-entrancy, identical result. *)
            Array.fold_left ( + ) 0
              (Pool.map pool (fun j -> (i * 10) + j) (Array.init 5 Fun.id)))
          (Array.init 8 Fun.id)
      in
      Alcotest.(check (array int))
        "nested ≡ sequential"
        (Array.init 8 (fun i -> (5 * i * 10) + 10))
        out);
  check "caller is not a worker" false (Pool.in_worker ())

(* The merge contract as a property: for any job count and input, map
   is extensionally Array.map — order-independent of scheduling. *)
let qcheck_merge =
  QCheck.Test.make ~count:30 ~name:"pool map ≡ Array.map for any jobs"
    QCheck.(pair (int_range 1 4) (small_list small_int))
    (fun (jobs, l) ->
      let xs = Array.of_list l in
      let f x = (x * 37) land 255 in
      Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs = Array.map f xs))

(* ------------------------------------------------------------------ *)
(* Par: the shared process-wide pool                                    *)
(* ------------------------------------------------------------------ *)

let test_par_knob () =
  check "default jobs >= 1" true (Par.default_jobs () >= 1);
  Par.set_jobs 3;
  check_int "set_jobs visible" 3 (Par.jobs ());
  Alcotest.(check (list int))
    "Par.map ≡ List.map" (List.map succ [ 1; 2; 3 ])
    (Par.map succ [ 1; 2; 3 ]);
  Par.set_jobs 1

(* ------------------------------------------------------------------ *)
(* End-to-end determinism of a real campaign                            *)
(* ------------------------------------------------------------------ *)

(* A small Table 1 campaign rendered exactly as `fasst table1 --json`
   renders it; corruption, daemon portfolios and the predicate caches
   all sit on this path. *)
let render_campaign () =
  Json.to_string
    (Run_report.of_table ~label:"t1-lazy"
       (Ss_expt.Table1.lazy_rows ~seeds:[ 1 ] (Rng.create 5)))

let test_j1_equals_j4 () =
  Par.set_jobs 1;
  let sequential = render_campaign () in
  Par.set_jobs 4;
  let parallel = render_campaign () in
  Par.set_jobs 1;
  Alcotest.(check string) "-j 1 ≡ -j 4 byte-identical" sequential parallel

(* Domain-safety stress: several campaigns run concurrently from
   independent domains, all fanning out on the shared pool at -j 4.
   Every task constructs its own algorithm/config/rng (the §11
   invariant), and the only cross-domain mutable state — the
   Trans_state stamp/buffer counters — is atomic, so contention must
   not change a byte of any campaign's output. *)
let test_concurrent_campaigns () =
  Par.set_jobs 4;
  let expected = render_campaign () in
  let outs =
    List.map Domain.join
      (List.init 3 (fun _ -> Domain.spawn render_campaign))
  in
  Par.set_jobs 1;
  List.iteri
    (fun i out ->
      Alcotest.(check string)
        (Printf.sprintf "campaign %d identical under contention" i)
        expected out)
    outs

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "pool reuse and shutdown" `Quick test_pool_reuse;
          Alcotest.test_case "nested map degrades" `Quick
            test_nested_map_degrades;
          QCheck_alcotest.to_alcotest qcheck_merge;
        ] );
      ("par", [ Alcotest.test_case "shared pool knob" `Quick test_par_knob ]);
      ( "determinism",
        [
          Alcotest.test_case "-j1 ≡ -j4 campaign" `Quick test_j1_equals_j4;
          Alcotest.test_case "concurrent campaigns" `Quick
            test_concurrent_campaigns;
        ] );
    ]
