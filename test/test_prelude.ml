(* Tests for Ss_prelude: the deterministic RNG, numeric helpers and the
   table renderer. *)

module Rng = Ss_prelude.Rng
module Util = Ss_prelude.Util
module Table = Ss_prelude.Table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let da = List.init 32 (fun _ -> Rng.int a 1_000_000) in
  let db = List.init 32 (fun _ -> Rng.int b 1_000_000) in
  check "different seeds differ" true (da <> db)

let test_copy_independent () =
  let a = Rng.create 5 in
  let _ = Rng.int a 10 in
  let b = Rng.copy a in
  let xa = Rng.int a 1000 and xb = Rng.int b 1000 in
  check_int "copy continues the stream" xa xb;
  (* Advancing the copy does not affect the original. *)
  let _ = Rng.int b 1000 in
  let a2 = Rng.copy a in
  check_int "original unaffected" (Rng.int a 1000) (Rng.int a2 1000)

let test_split_differs () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let da = List.init 16 (fun _ -> Rng.int a 1_000_000) in
  let db = List.init 16 (fun _ -> Rng.int b 1_000_000) in
  check "split stream is distinct" true (da <> db)

let test_split_at_reproducible () =
  (* (seed, index) is a pure function naming one stream. *)
  let a = Rng.split_at ~seed:42 ~index:3
  and b = Rng.split_at ~seed:42 ~index:3 in
  for _ = 1 to 64 do
    check_int "same (seed,index), same stream" (Rng.int a 1_000_000)
      (Rng.int b 1_000_000)
  done;
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.split_at: index must be >= 0") (fun () ->
      ignore (Rng.split_at ~seed:1 ~index:(-1)))

let test_split_at_decorrelated () =
  let draws seed index =
    let g = Rng.split_at ~seed ~index in
    List.init 32 (fun _ -> Rng.int g 1_000_000)
  in
  (* Pairwise-distinct streams across adjacent indices... *)
  let streams = List.init 8 (fun i -> (i, draws 7 i)) in
  List.iter
    (fun (i, si) ->
      List.iter
        (fun (j, sj) -> if i < j then check "indices decorrelated" true (si <> sj))
        streams)
    streams;
  (* ...and across seeds; and no collision with the seed's own base
     stream (split_at states sit off the create/bits64 trajectory). *)
  check "seeds decorrelated" true (draws 7 0 <> draws 8 0);
  let base = Rng.create 7 in
  check "disjoint from base stream" true
    (List.init 32 (fun _ -> Rng.int base 1_000_000) <> draws 7 0)

(* Pinned draws: the exact historical splitmix64 streams.  Any change
   to create/bits64/int — including adding [split_at] — must leave the
   single-stream draws bit-for-bit identical, or every recorded table
   in the repo silently shifts. *)
let test_pinned_streams () =
  let g = Rng.create 123 in
  List.iter
    (fun expected -> check_int "create 123 stream" expected (Rng.int g 1_000_000))
    [ 595596; 298333; 913706; 397464 ];
  let g = Rng.create 2024 in
  List.iter
    (fun expected -> check_int "create 2024 stream" expected (Rng.int g 97))
    [ 12; 89; 71; 64 ]

let test_split_per () =
  (* split_per pairs each element with a split drawn in list order —
     the same streams a left-to-right sequence of [Rng.split] yields. *)
  let a = Rng.create 11 and b = Rng.create 11 in
  let pairs = Rng.split_per a [ "x"; "y"; "z" ] in
  let expected =
    List.rev
      (List.fold_left
         (fun acc s -> (s, Rng.split b) :: acc)
         [] [ "x"; "y"; "z" ])
  in
  Alcotest.(check (list string))
    "keys in order" [ "x"; "y"; "z" ]
    (List.map fst pairs);
  List.iter2
    (fun (_, g1) (_, g2) ->
      check_int "stream matches sequential split" (Rng.int g1 1_000_000)
        (Rng.int g2 1_000_000))
    pairs expected

let test_int_bounds () =
  let g = Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Rng.int g 7 in
    check "0 <= v < 7" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int g 0))

let test_int_in () =
  let g = Rng.create 18 in
  for _ = 1 to 500 do
    let v = Rng.int_in g (-3) 3 in
    check "in range" true (v >= -3 && v <= 3)
  done;
  check_int "degenerate range" 5 (Rng.int_in g 5 5);
  Alcotest.check_raises "hi < lo rejected" (Invalid_argument "Rng.int_in: hi < lo")
    (fun () -> ignore (Rng.int_in g 3 2))

let test_int_covers_range () =
  let g = Rng.create 19 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int g 5) <- true
  done;
  check "all residues hit" true (Array.for_all Fun.id seen)

let test_bool_mixes () =
  let g = Rng.create 20 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool g then incr trues
  done;
  check "roughly balanced" true (!trues > 350 && !trues < 650)

let test_float_range () =
  let g = Rng.create 21 in
  for _ = 1 to 500 do
    let x = Rng.float g 2.5 in
    check "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_chance_extremes () =
  let g = Rng.create 22 in
  check "p=1 always true" true (Rng.chance g 1.0);
  check "p=0 always false" false (Rng.chance g 0.0)

let test_pick () =
  let g = Rng.create 23 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check "pick from array" true (Array.mem (Rng.pick g a) a)
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick g [||]));
  Alcotest.check_raises "empty list"
    (Invalid_argument "Rng.pick_list: empty list") (fun () ->
      ignore (Rng.pick_list g []))

let test_shuffle_permutes () =
  let g = Rng.create 24 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_permutation () =
  let g = Rng.create 25 in
  let p = Rng.permutation g 10 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 10 Fun.id) sorted

let test_subset () =
  let g = Rng.create 26 in
  let l = [ 1; 2; 3; 4; 5 ] in
  check "p=1 keeps all" true (Rng.subset g ~p:1.0 l = l);
  check "p=0 drops all" true (Rng.subset g ~p:0.0 l = []);
  let s = Rng.subset g ~p:0.5 l in
  check "subset preserves order" true
    (List.for_all (fun x -> List.mem x l) s && List.sort compare s = s)

let test_nonempty_subset () =
  let g = Rng.create 27 in
  for _ = 1 to 200 do
    let s = Rng.nonempty_subset g ~p:0.01 [ 1; 2; 3 ] in
    check "never empty" true (s <> [])
  done;
  Alcotest.check_raises "empty input"
    (Invalid_argument "Rng.nonempty_subset: empty list") (fun () ->
      ignore (Rng.nonempty_subset g ~p:0.5 []))

(* ------------------------------------------------------------------ *)
(* Util                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ceil_log2 () =
  List.iter
    (fun (n, expect) -> check_int (Printf.sprintf "ceil_log2 %d" n) expect (Util.ceil_log2 n))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (1024, 10); (1025, 11) ];
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Util.ceil_log2")
    (fun () -> ignore (Util.ceil_log2 0))

let test_bit_width () =
  List.iter
    (fun (n, expect) -> check_int (Printf.sprintf "bit_width %d" n) expect (Util.bit_width n))
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (255, 8); (256, 9) ]

let test_log_star () =
  List.iter
    (fun (n, expect) -> check_int (Printf.sprintf "log* %d" n) expect (Util.log_star n))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (16, 3); (17, 4); (65536, 4); (65537, 5) ]

let test_list_helpers () =
  check_int "sum" 10 (Util.sum [ 1; 2; 3; 4 ]);
  check_int "sum empty" 0 (Util.sum []);
  check_int "max_of" 9 (Util.max_of [ 3; 9; 1 ]);
  check_int "min_of" 1 (Util.min_of [ 3; 9; 1 ]);
  Alcotest.check_raises "max_of empty" (Invalid_argument "Util.max_of: empty list")
    (fun () -> ignore (Util.max_of []));
  check "range" true (Util.range 4 = [ 0; 1; 2; 3 ]);
  check "range 0" true (Util.range 0 = [])

let test_array_equal () =
  check "equal" true (Util.array_equal Int.equal [| 1; 2 |] [| 1; 2 |]);
  check "length mismatch" false (Util.array_equal Int.equal [| 1 |] [| 1; 2 |]);
  check "content mismatch" false (Util.array_equal Int.equal [| 1; 3 |] [| 1; 2 |]);
  check "empty" true (Util.array_equal Int.equal [||] [||])

let test_fnv1a64 () =
  check "deterministic" true (Util.fnv1a64 "abc" = Util.fnv1a64 "abc");
  check "discriminates" true (Util.fnv1a64 "abc" <> Util.fnv1a64 "abd");
  check "empty vs nonempty" true (Util.fnv1a64 "" <> Util.fnv1a64 "x")

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let render t =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Table.render ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_int_row t "beta" [ 42 ];
  let s = render t in
  check "has header" true
    (String.length s > 0
    && String.sub s 0 4 = "name");
  check "has alpha row" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l >= 5 && String.sub l 0 5 = "alpha"));
  check "rows in insertion order" true
    (let lines = String.split_on_char '\n' s in
     match lines with
     | _header :: _rule :: r1 :: r2 :: _ ->
         String.sub r1 0 5 = "alpha" && String.sub r2 0 4 = "beta"
     | _ -> false)

let test_table_ragged () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = render t in
  check "short rows padded" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"Rng.int is uniform in range"
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let g = Rng.create seed in
        let v = Rng.int g bound in
        v >= 0 && v < bound);
    Test.make ~count:100 ~name:"permutation is bijective"
      (pair small_int (int_range 0 50))
      (fun (seed, n) ->
        let g = Rng.create seed in
        let p = Rng.permutation g n in
        let seen = Array.make n false in
        Array.iter (fun i -> seen.(i) <- true) p;
        Array.for_all Fun.id seen);
    Test.make ~count:300 ~name:"ceil_log2 is tight"
      (int_range 1 (1 lsl 20))
      (fun n ->
        let k = Util.ceil_log2 n in
        (1 lsl k) >= n && (k = 0 || 1 lsl (k - 1) < n));
    Test.make ~count:300 ~name:"bit_width is tight"
      (int_range 0 (1 lsl 20))
      (fun n ->
        let w = Util.bit_width n in
        n < (1 lsl w) && (w = 1 || n >= 1 lsl (w - 1)));
  ]

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_differs;
          Alcotest.test_case "split_at reproducible" `Quick
            test_split_at_reproducible;
          Alcotest.test_case "split_at decorrelated" `Quick
            test_split_at_decorrelated;
          Alcotest.test_case "pinned streams" `Quick test_pinned_streams;
          Alcotest.test_case "split_per" `Quick test_split_per;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "subset" `Quick test_subset;
          Alcotest.test_case "nonempty subset" `Quick test_nonempty_subset;
        ] );
      ( "util",
        [
          Alcotest.test_case "ceil_log2" `Quick test_ceil_log2;
          Alcotest.test_case "bit_width" `Quick test_bit_width;
          Alcotest.test_case "log_star" `Quick test_log_star;
          Alcotest.test_case "list helpers" `Quick test_list_helpers;
          Alcotest.test_case "array_equal" `Quick test_array_equal;
          Alcotest.test_case "fnv1a64" `Quick test_fnv1a64;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
