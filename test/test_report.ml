(* Tests for the unified reporting pipeline (Ss_report): the JSON
   value type, the Budget record and its never-overshoot guarantee
   across all three run loops, Run_report round-trips, and the
   text-table / JSON-table content identity. *)

module Json = Ss_report.Json
module Budget = Ss_report.Budget
module Run_report = Ss_report.Run_report
module Table = Ss_prelude.Table
module Rng = Ss_prelude.Rng
module G = Ss_graph
module Sim = Ss_sim
module Engine = Ss_sim.Engine
module Core = Ss_core
module M = Ss_msgnet.Msgnet
module Leader = Ss_algos.Leader_election

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("yes", Json.Bool true);
      ("no", Json.Bool false);
      ("n", Json.Int (-42));
      ("x", Json.Float 1.5);
      ("s", Json.String "hello");
      ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
      ("o", Json.Obj [ ("k", Json.String "v") ]);
    ]

let test_json_emit () =
  check_str "compact deterministic rendering"
    "{\"null\":null,\"yes\":true,\"no\":false,\"n\":-42,\"x\":1.5,\"s\":\"hello\",\"l\":[1,2,3],\"o\":{\"k\":\"v\"}}"
    (Json.to_string sample)

let test_json_escapes () =
  check_str "quotes, backslashes, controls"
    "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
    (Json.to_string (Json.String "a\"b\\c\nd\te\001f"));
  (* Non-ASCII bytes (UTF-8) pass through verbatim. *)
  check_str "utf-8 verbatim" "\"caf\xc3\xa9\""
    (Json.to_string (Json.String "caf\xc3\xa9"))

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_json_roundtrip () =
  List.iter
    (fun v -> check "emit/parse round-trip" true (roundtrip v))
    [
      Json.Null;
      Json.Bool true;
      Json.Int 0;
      Json.Int max_int;
      Json.Int min_int;
      Json.Float 1.5;
      Json.Float 0.1;
      Json.Float (-3.25e-7);
      Json.Float 2.0;
      Json.String "";
      Json.String "a\"b\\c\nd\te\001f";
      Json.String "caf\xc3\xa9";
      Json.List [];
      Json.Obj [];
      sample;
      Json.List [ sample; Json.List [ sample ] ];
    ]

let test_json_parse () =
  let ok s v =
    match Json.of_string s with
    | Ok v' -> check ("parse " ^ s) true (v' = v)
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  ok "  [1, 2.5, \"x\"]  "
    (Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
  ok "\"\\u0041\\u00e9\"" (Json.String "A\xc3\xa9");
  ok "\"\\u2713\"" (Json.String "\xe2\x9c\x93");
  ok "1e3" (Json.Float 1000.);
  ok "-0.5" (Json.Float (-0.5));
  let err s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "expected a parse error on %s" s
    | Error e -> check "error mentions offset" true (String.length e > 0)
  in
  List.iter err
    [ "tru"; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "[] []"; "01"; "" ]

let test_json_nonfinite () =
  check_str "nan renders as null" "null" (Json.to_string (Json.Float nan));
  check_str "inf renders as null" "null"
    (Json.to_string (Json.Float infinity));
  (* Integral floats keep a fractional digit so they re-parse Float. *)
  check_str "2.0 stays a float" "2.0" (Json.to_string (Json.Float 2.0))

(* ------------------------------------------------------------------ *)
(* Budget                                                               *)
(* ------------------------------------------------------------------ *)

let test_budget_resolve () =
  check_int "both None -> default" 7 (Budget.resolve ~default:7 None None);
  check_int "legacy only" 3 (Budget.resolve ~default:7 (Some 3) None);
  check_int "budget only" 4 (Budget.resolve ~default:7 None (Some 4));
  check_int "tightest wins (legacy)" 2
    (Budget.resolve ~default:7 (Some 2) (Some 9));
  check_int "tightest wins (budget)" 2
    (Budget.resolve ~default:7 (Some 9) (Some 2))

let test_budget_outcome_strings () =
  List.iter
    (fun o ->
      match Budget.outcome_of_string (Budget.outcome_to_string o) with
      | Ok o' -> check "outcome string round-trip" true (o = o')
      | Error e -> Alcotest.fail e)
    [
      Budget.Completed;
      Budget.Tripped Budget.Steps;
      Budget.Tripped Budget.Moves;
      Budget.Tripped Budget.Deliveries;
      Budget.Tripped Budget.Deadline;
    ];
  check "unknown outcome rejected" true
    (Result.is_error (Budget.outcome_of_string "zap"))

let test_deadline_check () =
  let never = Budget.deadline_check Budget.unlimited in
  check "no deadline never fires" false (never ());
  let instant = Budget.deadline_check (Budget.v ~deadline_s:(-1.) ()) in
  check "expired deadline fires" true (instant ())

let test_deadline_monotonic () =
  (* now_s reads the monotonic clock: it never runs backwards, no
     matter what NTP does to wall time meanwhile. *)
  let prev = ref (Budget.now_s ()) in
  for _ = 1 to 1_000 do
    let t = Budget.now_s () in
    check "now_s never decreases" true (t >= !prev);
    prev := t
  done;
  (* A real allowance measured against that clock: unexpired on
     creation, expired once the clock has visibly advanced past it. *)
  let trip = Budget.deadline_check (Budget.v ~deadline_s:0.01 ()) in
  check "fresh 10ms deadline unexpired" false (trip ());
  let t0 = Budget.now_s () in
  while Budget.now_s () -. t0 < 0.012 do
    ignore (Sys.opaque_identity 0)
  done;
  check "deadline fires after allowance elapses" true (trip ())

(* ------------------------------------------------------------------ *)
(* Run_report round-trips                                               *)
(* ------------------------------------------------------------------ *)

let reports =
  [
    Run_report.v ~seed:42 ~wall_s:0.25 "engine-run"
      (Run_report.Engine
         {
           Run_report.steps = 10;
           moves = 20;
           rounds = 3;
           moves_per_rule = [ ("RR", 1); ("RP", 0); ("RC", 4); ("RU", 15) ];
         });
    Run_report.v ~outcome:(Budget.Tripped Budget.Moves) "capped"
      (Run_report.Engine
         { Run_report.steps = 1; moves = 5; rounds = 0; moves_per_rule = [] });
    Run_report.v "sync-run" (Run_report.Sync { Run_report.sync_rounds = 4; nodes = 16 });
    Run_report.v ~seed:1 ~wall_s:1.5
      ~outcome:(Budget.Tripped Budget.Deliveries) "msgnet-run"
      (Run_report.Msgnet
         {
           Run_report.deliveries = 100;
           rule_executions = 12;
           update_messages = 30;
           update_bits = 400;
           proof_messages = 16;
           proof_bits = 2048;
           stale_proof_messages = 2;
           request_messages = 1;
           full_copy_messages = 1;
           full_copy_bits = 64;
           proof_waves = 2;
           dropped_messages = 0;
           reordered_messages = 0;
           duplicated_messages = 0;
           corruption_events = 0;
           peak_queued_bits = 512;
           mirror_bytes = 4096;
           total_bits = 2600;
         });
    (* A chaos-mode report: non-zero fault counters and virtual time. *)
    Run_report.v ~seed:7 ~wall_s:0.031 ~timebase:Run_report.Virtual
      "msgnet-chaos"
      (Run_report.Msgnet
         {
           Run_report.deliveries = 3100;
           rule_executions = 140;
           update_messages = 620;
           update_bits = 9800;
           proof_messages = 256;
           proof_bits = 32768;
           stale_proof_messages = 31;
           request_messages = 9;
           full_copy_messages = 9;
           full_copy_bits = 1152;
           proof_waves = 8;
           dropped_messages = 64;
           reordered_messages = 33;
           duplicated_messages = 29;
           corruption_events = 3;
           peak_queued_bits = 70944;
           mirror_bytes = 52000;
           total_bits = 44000;
         });
  ]

let test_run_report_roundtrip () =
  List.iter
    (fun r ->
      match Run_report.of_json (Run_report.to_json r) with
      | Ok r' -> check "to_json/of_json inverse" true (r = r')
      | Error e -> Alcotest.fail e)
    reports;
  (* And through the wire: emit, parse, decode. *)
  List.iter
    (fun r ->
      match Json.of_string (Json.to_string (Run_report.to_json r)) with
      | Ok j -> check "through text" true (Run_report.of_json j = Ok r)
      | Error e -> Alcotest.fail e)
    reports

(* ------------------------------------------------------------------ *)
(* Text table vs JSON table: same content                               *)
(* ------------------------------------------------------------------ *)

(* Parse the text rendering back into rows of cell strings.  The
   renderer pads cells to the column width and joins with two spaces,
   so for space-free cell text, splitting on runs of >= 2 spaces
   recovers the cells. *)
let parse_text_table rendered =
  let lines =
    String.split_on_char '\n' rendered
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | _header :: _rule :: rows ->
      List.map
        (fun line ->
          let rec split acc cur i =
            if i >= String.length line then List.rev (cur :: acc)
            else if
              line.[i] = ' '
              && i + 1 < String.length line
              && line.[i + 1] = ' '
            then begin
              let rec skip j =
                if j < String.length line && line.[j] = ' ' then skip (j + 1)
                else j
              in
              split (cur :: acc) "" (skip i)
            end
            else split acc (cur ^ String.make 1 line.[i]) (i + 1)
          in
          split [] "" 0 |> List.filter (fun c -> c <> "")
          |> List.map String.trim)
        rows
  | _ -> []

let json_table_rows j =
  match j with
  | Json.Obj fields -> (
      match List.assoc_opt "rows" fields with
      | Some (Json.List rows) ->
          List.map
            (fun row ->
              match row with
              | Json.Obj cells ->
                  List.map
                    (fun (_k, v) ->
                      match v with
                      | Json.Int n -> string_of_int n
                      | Json.String s -> s
                      | other -> Json.to_string other)
                    cells
              | _ -> Alcotest.fail "row is not an object")
            rows
      | _ -> Alcotest.fail "missing rows")
  | _ -> Alcotest.fail "table JSON is not an object"

let table_contents_agree table =
  let text = Format.asprintf "%a" Table.render table in
  let from_text = parse_text_table text in
  let from_json = json_table_rows (Run_report.of_table table) in
  from_text = from_json

let test_table_equivalence_real () =
  (* The actual experiment tables the CLI and bench emit: parse the
     text rendering and the JSON rows and require identical content. *)
  check "Table1.space_rows" true
    (table_contents_agree (Ss_expt.Table1.space_rows ~seeds:[ 1 ] (Rng.create 7)));
  check "Msgnet_expt.rows" true
    (table_contents_agree (Ss_expt.Msgnet_expt.rows ~seeds:[ 1 ] (Rng.create 7)));
  check "Transformers_expt.rows" true
    (table_contents_agree
       (fst
          (Ss_expt.Transformers_expt.rows
             ~algos:[ "leader"; "cv" ]
             ~graphs:
               [
                 ("ring:8", Ss_graph.Builders.cycle 8);
                 ("path:6", Ss_graph.Builders.path 6);
               ]
             ~seeds:[ 1 ] (Rng.create 7))))

let qcheck_table_equivalence =
  let open QCheck in
  let cell_gen =
    Gen.oneof
      [
        Gen.map (fun n -> Table.I n) Gen.small_signed_int;
        Gen.map
          (fun s -> Table.S (if s = "" then "x" else s))
          (Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'b'; 'z'; '0'; '-'; '_' ])
             (Gen.int_range 1 8));
      ]
  in
  let table_gen =
    Gen.(
      int_range 1 5 >>= fun ncols ->
      int_range 0 6 >>= fun nrows ->
      let header = List.init ncols (fun i -> Printf.sprintf "c%d" i) in
      list_repeat nrows (list_repeat ncols cell_gen) >>= fun rows ->
      return (header, rows))
  in
  Test.make ~count:200 ~name:"text table and JSON table render the same content"
    (make table_gen) (fun (header, rows) ->
      let t = Table.create header in
      List.iter (Table.add t) rows;
      table_contents_agree t)

(* ------------------------------------------------------------------ *)
(* Budgets never overshoot, on all three loops                          *)
(* ------------------------------------------------------------------ *)

let leader_workload seed =
  let g = G.Builders.cycle 12 in
  let rng = Rng.create seed in
  let inputs = Leader.random_ids rng g in
  let params = Core.Transformer.params Leader.algo in
  let start =
    Core.Transformer.corrupt rng ~max_height:8 params
      (Core.Transformer.clean_config params g ~inputs)
  in
  (params, Core.Transformer.algorithm params, start)

let qcheck_budget_no_overshoot =
  let open QCheck in
  let opt_cap = Gen.oneof [ Gen.return None; Gen.map Option.some (Gen.int_range 0 60) ] in
  let gen = Gen.quad opt_cap opt_cap opt_cap (Gen.int_range 1 1000) in
  Test.make ~count:60
    ~name:"Budget caps are hard bounds on run, run_naive and Msgnet.run"
    (make gen) (fun (steps, moves, deliveries, seed) ->
      let budget = { Budget.unlimited with steps; moves; deliveries } in
      let params, algo, start = leader_workload seed in
      let within cap v = match cap with None -> true | Some c -> v <= c in
      let engine_ok (stats : _ Engine.stats) =
        within steps stats.Engine.steps
        && within moves stats.Engine.moves
        && (stats.Engine.terminated = (stats.Engine.outcome = Budget.Completed))
      in
      let daemon = Sim.Daemon.central_random (Rng.create (seed + 1)) in
      let s1 = Engine.run ~budget algo daemon start in
      let daemon2 = Sim.Daemon.central_random (Rng.create (seed + 1)) in
      let s2 = Engine.run_naive ~budget algo daemon2 start in
      let _, ms = M.run ~budget ~rng:(Rng.create (seed + 2)) params start in
      engine_ok s1 && engine_ok s2
      && within deliveries ms.M.deliveries
      && (ms.M.quiescent = (ms.M.outcome = Budget.Completed)))

let test_engine_outcome_labels () =
  let _, algo, start = leader_workload 3 in
  let daemon = Sim.Daemon.synchronous in
  let full = Engine.run algo daemon start in
  check "unbounded run completes" true (full.Engine.outcome = Budget.Completed);
  check "completes with moves" true (full.Engine.moves > 0);
  let capped =
    Engine.run ~budget:(Budget.v ~moves:(full.Engine.moves - 1) ()) algo daemon
      start
  in
  check "move cap reported" true
    (capped.Engine.outcome = Budget.Tripped Budget.Moves);
  check_int "hard move cap" (full.Engine.moves - 1) capped.Engine.moves;
  let stepped = Engine.run ~budget:(Budget.v ~steps:1 ()) algo daemon start in
  check "step cap reported" true
    (stepped.Engine.outcome = Budget.Tripped Budget.Steps);
  check_int "one step taken" 1 stepped.Engine.steps

let test_run_synchronous_max_moves () =
  (* Satellite pin: run_synchronous has max_moves parity with run. *)
  let _, algo, start = leader_workload 11 in
  let full = Engine.run_synchronous algo start in
  check "synchronous run completes" true (full.Engine.terminated);
  check "needs several moves" true (full.Engine.moves > 4);
  let capped = Engine.run_synchronous ~max_moves:3 algo start in
  check "max_moves caps hard" true (capped.Engine.moves <= 3);
  check "trip is reported" true
    (capped.Engine.outcome = Budget.Tripped Budget.Moves);
  let budgeted = Engine.run_synchronous ~budget:(Budget.v ~moves:3 ()) algo start in
  check "budget.moves equivalent" true
    (budgeted.Engine.moves = capped.Engine.moves)

let test_sync_runner_budget () =
  let g = G.Builders.path 24 in
  let inputs = Leader.random_ids (Rng.create 5) g in
  let h = Ss_sync.Sync_runner.run Leader.algo g ~inputs in
  check "fixpoint takes rounds" true (h.Ss_sync.Sync_runner.t > 1);
  Alcotest.check_raises "round budget raises"
    (Ss_sync.Sync_runner.Did_not_terminate
       (Printf.sprintf
          "%s did not reach a fixpoint within the 1-round budget (2 rounds)"
          Leader.algo.Ss_sync.Sync_algo.sync_name))
    (fun () ->
      ignore
        (Ss_sync.Sync_runner.run ~budget:(Budget.v ~steps:1 ()) Leader.algo g
           ~inputs))

(* ------------------------------------------------------------------ *)
(* Loop reports and sinks                                               *)
(* ------------------------------------------------------------------ *)

let test_loop_reports () =
  let params, algo, start = leader_workload 9 in
  let stats = Engine.run algo Sim.Daemon.synchronous start in
  let er = Engine.report ~label:"t" ~seed:9 stats in
  check "engine report round-trips" true
    (Run_report.of_json (Run_report.to_json er) = Ok er);
  let g = G.Builders.cycle 8 in
  let inputs = Leader.random_ids (Rng.create 2) g in
  let h = Ss_sync.Sync_runner.run Leader.algo g ~inputs in
  let sr = Ss_sync.Sync_runner.report h in
  check "sync report round-trips" true
    (Run_report.of_json (Run_report.to_json sr) = Ok sr);
  let _, ms = M.run ~rng:(Rng.create 3) params start in
  let mr = M.report ~seed:3 ms in
  check "msgnet report round-trips" true
    (Run_report.of_json (Run_report.to_json mr) = Ok mr)

let test_msgnet_sinks () =
  (* The event hooks must agree with the counters: one Sent per
     message, one Delivered per delivery, one Wave per proof wave, and
     Sent bits must sum to the total-bits accounting. *)
  let params, _, start = leader_workload 13 in
  let sent = ref 0 and delivered = ref 0 and waves = ref 0 and bits = ref 0 in
  let sink = function
    | M.Sent { bits = b; _ } ->
        incr sent;
        bits := !bits + b
    | M.Delivered _ -> incr delivered
    | M.Wave _ -> incr waves
    | M.Dropped _ | M.Duplicated _ | M.Reordered _ | M.Corrupted _ -> ()
  in
  let _, stats = M.run ~rng:(Rng.create 13) ~sinks:[ sink ] params start in
  check "quiescent" true stats.M.quiescent;
  check_int "one Delivered per delivery" stats.M.deliveries !delivered;
  check_int "one Wave per proof wave" stats.M.proof_waves !waves;
  check_int "one Sent per message"
    (stats.M.update_messages + stats.M.proof_messages
   + stats.M.request_messages + stats.M.full_copy_messages)
    !sent;
  check_int "Sent bits match the bit accounting" (M.total_bits stats) !bits;
  (* Sinks are observers: they must not change the execution. *)
  let _, unobserved = M.run ~rng:(Rng.create 13) params start in
  check "sinks do not perturb the run" true
    (M.total_bits unobserved = M.total_bits stats
    && unobserved.M.deliveries = stats.M.deliveries)

let test_engine_sink_bus () =
  let _, algo, start = leader_workload 17 in
  let obs_events = ref 0 and sink_a = ref 0 and sink_b = ref 0 in
  let count r ~step:_ ~rounds:_ ~moved:_ _config = incr r in
  let stats =
    Engine.run ~observer:(count obs_events)
      ~sinks:[ count sink_a; count sink_b ]
      algo Sim.Daemon.synchronous start
  in
  check "run completed" true stats.Engine.terminated;
  (* Every sink on the bus sees every event (initial + one per step). *)
  check_int "observer events" (stats.Engine.steps + 1) !obs_events;
  check_int "first sink events" !obs_events !sink_a;
  check_int "second sink events" !obs_events !sink_b

(* ------------------------------------------------------------------ *)
(* Trace: CSV quoting and JSON                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_csv_quoting () =
  let events =
    [
      {
        Sim.Trace.ev_step = 1;
        ev_rounds = 0;
        ev_moved = [ (4, "RU"); (5, "a,b") ];
      };
      { Sim.Trace.ev_step = 2; ev_rounds = 1; ev_moved = [ (6, "q\"r") ] };
      { Sim.Trace.ev_step = 3; ev_rounds = 1; ev_moved = [ (7, "x\ny") ] };
    ]
  in
  check_str "RFC 4180 quoting"
    "step,rounds,node,rule\n\
     1,0,4,RU\n\
     1,0,5,\"a,b\"\n\
     2,1,6,\"q\"\"r\"\n\
     3,1,7,\"x\ny\"\n"
    (Sim.Trace.to_csv events);
  match Sim.Trace.to_json events with
  | Json.List rows ->
      check_int "one JSON row per move" 4 (List.length rows);
      check "json rows round-trip" true (roundtrip (Sim.Trace.to_json events))
  | _ -> Alcotest.fail "trace JSON is not a list"

let test_trace_csv_sink () =
  (* The streaming sink and the batch serializer agree. *)
  let _, algo, start = leader_workload 21 in
  let observer, events = Sim.Trace.make () in
  let csv_obs, csv = Sim.Trace.csv_sink () in
  let _ =
    Engine.run ~sinks:[ observer; csv_obs ] algo Sim.Daemon.synchronous start
  in
  check_str "csv_sink streams to_csv" (Sim.Trace.to_csv (events ())) (csv ())

(* ------------------------------------------------------------------ *)

let qcheck_tests = [ qcheck_table_equivalence; qcheck_budget_no_overshoot ]

let () =
  Alcotest.run "report"
    [
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
        ] );
      ( "budget",
        [
          Alcotest.test_case "resolve" `Quick test_budget_resolve;
          Alcotest.test_case "outcome strings" `Quick
            test_budget_outcome_strings;
          Alcotest.test_case "deadline check" `Quick test_deadline_check;
          Alcotest.test_case "deadline monotonic" `Quick
            test_deadline_monotonic;
        ] );
      ( "run_report",
        [
          Alcotest.test_case "roundtrip" `Quick test_run_report_roundtrip;
          Alcotest.test_case "loop reports" `Quick test_loop_reports;
        ] );
      ( "tables",
        [
          Alcotest.test_case "real experiment tables" `Slow
            test_table_equivalence_real;
        ] );
      ( "budget-loops",
        [
          Alcotest.test_case "engine outcomes" `Quick
            test_engine_outcome_labels;
          Alcotest.test_case "run_synchronous max_moves" `Quick
            test_run_synchronous_max_moves;
          Alcotest.test_case "sync runner budget" `Quick
            test_sync_runner_budget;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "engine sink bus" `Quick test_engine_sink_bus;
          Alcotest.test_case "msgnet sinks" `Quick test_msgnet_sinks;
        ] );
      ( "trace",
        [
          Alcotest.test_case "csv quoting + json" `Quick
            test_trace_csv_quoting;
          Alcotest.test_case "csv sink" `Quick test_trace_csv_sink;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
