(* Tests for Ss_sim: the atomic-state engine, daemons, neutralization
   round counting, traces and fault injection. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Rounds = Ss_sim.Rounds
module Trace = Ss_sim.Trace
module Fault = Ss_sim.Fault
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A toy atomic-state algorithm: raise own value to the neighborhood
   maximum.  Silent; stabilizes in ecc(argmax) rounds synchronously. *)
let max_algo : (int, unit) Algorithm.t =
  {
    Algorithm.algo_name = "max";
    equal = Int.equal;
    rules =
      [
        {
          Algorithm.rule_name = "UP";
          guard =
            (fun v ->
              Array.exists (fun s -> s > v.Algorithm.self) v.Algorithm.neighbors);
          action =
            (fun v -> Array.fold_left max v.Algorithm.self v.Algorithm.neighbors);
        };
      ];
    pp_state = Format.pp_print_int;
  }

(* Mutual-exclusion toy used to exercise neutralization: a node at 0
   with a 0-valued neighbor may switch to 1; activating one endpoint of
   an isolated 0-0 edge neutralizes the other. *)
let neutral_algo : (int, unit) Algorithm.t =
  {
    Algorithm.algo_name = "neutral";
    equal = Int.equal;
    rules =
      [
        {
          Algorithm.rule_name = "GRAB";
          guard =
            (fun v ->
              v.Algorithm.self = 0
              && Array.exists (fun s -> s = 0) v.Algorithm.neighbors);
          action = (fun _ -> 1);
        };
      ];
    pp_state = Format.pp_print_int;
  }

let path_config values =
  let g = Builders.path (Array.length values) in
  Config.make g ~inputs:(fun _ -> ()) ~states:(fun p -> values.(p))

(* ------------------------------------------------------------------ *)
(* Config                                                               *)
(* ------------------------------------------------------------------ *)

let test_view () =
  let c = path_config [| 10; 20; 30 |] in
  let v = Config.view c 1 in
  check_int "self" 20 v.Algorithm.self;
  Alcotest.(check (array int)) "neighbors in port order" [| 10; 30 |]
    v.Algorithm.neighbors

let test_set_state_functional () =
  let c = path_config [| 1; 2; 3 |] in
  let c' = Config.set_state c 0 99 in
  check_int "updated" 99 (Config.state c' 0);
  check_int "original untouched" 1 (Config.state c 0)

let test_enabled_nodes () =
  let c = path_config [| 0; 5; 0 |] in
  Alcotest.(check (list int)) "ends enabled" [ 0; 2 ]
    (Config.enabled_nodes max_algo c);
  check "not terminal" false (Config.is_terminal max_algo c);
  let t = path_config [| 5; 5; 5 |] in
  check "terminal" true (Config.is_terminal max_algo t)

let test_map_states () =
  let c = path_config [| 1; 2; 3 |] in
  let c' = Config.map_states (fun s -> s * 10) c in
  Alcotest.(check (array int)) "mapped" [| 10; 20; 30 |] c'.Config.states

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let test_synchronous_run () =
  let c = path_config [| 0; 0; 0; 0; 9 |] in
  let stats = Engine.run_synchronous max_algo c in
  check "terminated" true stats.Engine.terminated;
  check_int "steps = ecc" 4 stats.Engine.steps;
  check_int "rounds = steps" 4 stats.Engine.rounds;
  (* Node 3 moves once, node 0 moves once, etc.: value propagates one
     hop per round, and each node moves exactly once. *)
  check_int "moves" 4 stats.Engine.moves;
  Alcotest.(check (array int)) "final" [| 9; 9; 9; 9; 9 |]
    stats.Engine.final.Config.states

let test_moves_accounting () =
  let c = path_config [| 0; 0; 9 |] in
  let stats = Engine.run_synchronous max_algo c in
  Alcotest.(check (array int)) "moves per node" [| 1; 1; 0 |]
    stats.Engine.moves_per_node;
  Alcotest.(check (list (pair string int))) "moves per rule" [ ("UP", 2) ]
    stats.Engine.moves_per_rule

let test_step_validation () =
  let c = path_config [| 0; 0; 9 |] in
  check "empty selection rejected" true
    (try
       ignore (Engine.step max_algo c []);
       false
     with Engine.Invalid_selection _ -> true);
  check "disabled node rejected" true
    (try
       (* Node 2 holds the max; it is not enabled. *)
       ignore (Engine.step max_algo c [ 2 ]);
       false
     with Engine.Invalid_selection _ -> true);
  check "duplicate rejected" true
    (try
       ignore (Engine.step max_algo c [ 1; 1 ]);
       false
     with Engine.Invalid_selection _ -> true);
  check "out of range rejected" true
    (try
       ignore (Engine.step max_algo c [ 7 ]);
       false
     with Engine.Invalid_selection _ -> true)

let test_step_atomicity () =
  (* Both enabled nodes read the pre-step configuration. *)
  let c = path_config [| 0; 3; 0 |] in
  let c', moved = Engine.step max_algo c [ 0; 2 ] in
  check_int "two moves" 2 (List.length moved);
  Alcotest.(check (array int)) "simultaneous reads" [| 3; 3; 3 |]
    c'.Config.states

let test_budget () =
  let c = path_config [| 0; 0; 0; 0; 9 |] in
  let stats = Engine.run ~max_steps:2 max_algo Daemon.synchronous c in
  check "not terminated" false stats.Engine.terminated;
  check_int "stopped at budget" 2 stats.Engine.steps

let test_max_moves_budget () =
  let c = path_config [| 0; 0; 0; 0; 9 |] in
  let stats = Engine.run ~max_moves:1 max_algo Daemon.synchronous c in
  check "not terminated" false stats.Engine.terminated;
  check_int "exactly the move budget" 1 stats.Engine.moves

let test_max_moves_is_a_hard_bound () =
  (* Three nodes are enabled simultaneously; a synchronous step used to
     overshoot max_moves by n-1.  The bound is now hard: the final step
     activates only a budget-sized prefix of the selection, identically
     in both engines. *)
  let c = path_config [| 0; 9; 0; 9; 0 |] in
  List.iter
    (fun budget ->
      let incr = Engine.run ~max_moves:budget max_algo Daemon.synchronous c in
      let naive =
        Engine.run_naive ~max_moves:budget max_algo Daemon.synchronous c
      in
      check_int
        (Printf.sprintf "budget %d: moves capped" budget)
        budget incr.Engine.moves;
      check (Printf.sprintf "budget %d: not terminated" budget) false
        incr.Engine.terminated;
      check_int
        (Printf.sprintf "budget %d: naive agrees on moves" budget)
        incr.Engine.moves naive.Engine.moves;
      Alcotest.(check (array int))
        (Printf.sprintf "budget %d: naive agrees on states" budget)
        incr.Engine.final.Config.states naive.Engine.final.Config.states)
    [ 1; 2 ];
  (* Prefix semantics: with budget 2 the two smallest enabled nodes
     (daemon order = ascending) moved, the third did not. *)
  let stats = Engine.run ~max_moves:2 max_algo Daemon.synchronous c in
  Alcotest.(check (array int))
    "prefix of the synchronous selection moved" [| 9; 9; 9; 9; 0 |]
    stats.Engine.final.Config.states

let test_observer_sequence () =
  let c = path_config [| 0; 9 |] in
  let calls = ref [] in
  let observer ~step ~rounds:_ ~moved _cfg =
    calls := (step, List.length moved) :: !calls
  in
  let _ = Engine.run ~observer max_algo Daemon.synchronous c in
  Alcotest.(check (list (pair int int)))
    "initial call then one step" [ (0, 0); (1, 1) ] (List.rev !calls)

(* ------------------------------------------------------------------ *)
(* Daemons                                                              *)
(* ------------------------------------------------------------------ *)

let test_central_min_max () =
  Alcotest.(check (list int)) "min" [ 2 ]
    (Daemon.central_min.Daemon.select ~step:0 ~enabled:[| 2; 5; 9 |]);
  Alcotest.(check (list int)) "max" [ 9 ]
    (Daemon.central_max.Daemon.select ~step:0 ~enabled:[| 2; 5; 9 |])

let test_distributed_random_nonempty () =
  let rng = Rng.create 5 in
  let d = Daemon.distributed_random rng ~p:0.05 in
  for _ = 1 to 100 do
    let s = d.Daemon.select ~step:0 ~enabled:[| 1; 2; 3 |] in
    check "nonempty" true (s <> []);
    check "subset" true (List.for_all (fun x -> List.mem x [ 1; 2; 3 ]) s)
  done

let test_round_robin_cycles () =
  let d = Daemon.round_robin () in
  let sel enabled = List.hd (d.Daemon.select ~step:0 ~enabled) in
  check_int "first" 1 (sel [| 1; 3; 5 |]);
  check_int "next" 3 (sel [| 1; 3; 5 |]);
  check_int "next" 5 (sel [| 1; 3; 5 |]);
  check_int "wraps" 1 (sel [| 1; 3; 5 |])

let test_round_robin_instances_independent () =
  let d1 = Daemon.round_robin () and d2 = Daemon.round_robin () in
  let s1 = d1.Daemon.select ~step:0 ~enabled:[| 1; 2 |] in
  let s1' = d1.Daemon.select ~step:0 ~enabled:[| 1; 2 |] in
  let s2 = d2.Daemon.select ~step:0 ~enabled:[| 1; 2 |] in
  check "fresh cursor per instance" true (s1 = s2 && s1 <> s1')

let test_scripted_daemon () =
  let c = path_config [| 0; 0; 0; 9 |] in
  (* Activate 2, then 1, then fall back to synchronous. *)
  let d = Daemon.scripted [ [ 2 ]; [ 1 ] ] in
  let stats = Engine.run max_algo d c in
  check "terminated" true stats.Engine.terminated;
  Alcotest.(check (array int)) "final" [| 9; 9; 9; 9 |]
    stats.Engine.final.Config.states

let test_scripted_invalid () =
  let c = path_config [| 0; 0; 9 |] in
  let d = Daemon.scripted [ [ 2 ] ] in
  (* Node 2 already holds the max: not enabled. *)
  check "invalid scripted activation" true
    (try
       ignore (Engine.run max_algo d c);
       false
     with Engine.Invalid_selection _ -> true)

(* ------------------------------------------------------------------ *)
(* Rounds (neutralization)                                              *)
(* ------------------------------------------------------------------ *)

let test_round_tracker_basic () =
  let t = Rounds.create ~enabled:[ 0; 1 ] in
  check_int "no round yet" 0 (Rounds.completed t);
  Rounds.note_step t ~moved:[ 0 ] ~enabled_after:[ 1 ];
  check_int "still round 1" 0 (Rounds.completed t);
  Rounds.note_step t ~moved:[ 1 ] ~enabled_after:[ 0 ];
  check_int "round 1 done" 1 (Rounds.completed t);
  Alcotest.(check (list int)) "round 2 pending" [ 0 ] (Rounds.pending t)

let test_round_tracker_neutralization () =
  let t = Rounds.create ~enabled:[ 0; 1 ] in
  (* Node 1 is neutralized (no move, no longer enabled): the round
     completes in one step. *)
  Rounds.note_step t ~moved:[ 0 ] ~enabled_after:[];
  check_int "round completed by neutralization" 1 (Rounds.completed t)

let test_round_tracker_empty_start () =
  let t = Rounds.create ~enabled:[] in
  Rounds.note_step t ~moved:[] ~enabled_after:[];
  check_int "terminal start counts no round" 0 (Rounds.completed t)

let test_neutralization_in_engine () =
  (* Two adjacent 0-nodes: both enabled; a central daemon activates
     node 0, neutralizing node 1.  One step, one round, termination. *)
  let g = Builders.path 2 in
  let c = Config.make g ~inputs:(fun _ -> ()) ~states:(fun _ -> 0) in
  let stats = Engine.run neutral_algo Daemon.central_min c in
  check "terminated" true stats.Engine.terminated;
  check_int "single step" 1 stats.Engine.steps;
  check_int "single move" 1 stats.Engine.moves;
  check_int "single round" 1 stats.Engine.rounds;
  Alcotest.(check (array int)) "final" [| 1; 0 |] stats.Engine.final.Config.states

let test_sync_rounds_equal_steps () =
  let c = path_config [| 0; 0; 0; 0; 0; 9 |] in
  let stats = Engine.run_synchronous max_algo c in
  check_int "rounds = steps under synchrony" stats.Engine.steps
    stats.Engine.rounds

(* ------------------------------------------------------------------ *)
(* Trace                                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_events () =
  let c = path_config [| 0; 0; 9 |] in
  let observer, events = Trace.make () in
  let stats = Engine.run ~observer max_algo Daemon.synchronous c in
  let evs = events () in
  check_int "one event per step" stats.Engine.steps (List.length evs);
  check_int "moves counted" stats.Engine.moves (Trace.moves_of evs);
  check "rules labelled" true
    (List.for_all
       (fun e -> List.for_all (fun (_, r) -> r = "UP") e.Trace.ev_moved)
       evs)

let test_trace_with_configs () =
  let c = path_config [| 0; 9 |] in
  let observer, records = Trace.with_configs () in
  let stats = Engine.run ~observer max_algo Daemon.synchronous c in
  let recs = records () in
  check_int "initial + steps" (stats.Engine.steps + 1) (List.length recs);
  let ev0, c0 = List.hd recs in
  check_int "pseudo event step 0" 0 ev0.Trace.ev_step;
  Alcotest.(check (array int)) "initial config captured" [| 0; 9 |]
    c0.Config.states

let test_trace_csv () =
  let c = path_config [| 0; 0; 9 |] in
  let observer, events = Trace.make () in
  let _ = Engine.run ~observer max_algo Daemon.synchronous c in
  let csv = Trace.to_csv (events ()) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check string) "header" "step,rounds,node,rule" (List.hd lines);
  check_int "one line per move + header" 3 (List.length lines);
  Alcotest.(check string) "first move" "1,1,1,UP" (List.nth lines 1)

let test_trace_replay () =
  (* A recorded schedule replayed through a scripted daemon reproduces
     the execution exactly: the engine is deterministic. *)
  let rng = Rng.create 15 in
  let g = Builders.random_connected rng ~n:8 ~extra_edges:4 in
  let states = Array.init 8 (fun _ -> Rng.int rng 50) in
  let c = Config.make g ~inputs:(fun _ -> ()) ~states:(fun p -> states.(p)) in
  let observer, events = Trace.make () in
  let original =
    Engine.run ~observer max_algo (Daemon.distributed_random rng ~p:0.5) c
  in
  let schedule = Trace.to_schedule (events ()) in
  let replay = Engine.run max_algo (Daemon.scripted schedule) c in
  check_int "same moves" original.Engine.moves replay.Engine.moves;
  check_int "same rounds" original.Engine.rounds replay.Engine.rounds;
  Alcotest.(check (array int)) "same final configuration"
    original.Engine.final.Config.states replay.Engine.final.Config.states

let test_engine_determinism () =
  (* Same seed, same daemon kind: identical stats. *)
  let run () =
    let rng = Rng.create 77 in
    let g = Builders.cycle 10 in
    let c =
      Config.make g ~inputs:(fun _ -> ())
        ~states:(fun p -> if p = 3 then 9 else 0)
    in
    Engine.run max_algo (Daemon.distributed_random rng ~p:0.4) c
  in
  let a = run () and b = run () in
  check_int "same steps" a.Engine.steps b.Engine.steps;
  check_int "same moves" a.Engine.moves b.Engine.moves;
  Alcotest.(check (array int)) "same final" a.Engine.final.Config.states
    b.Engine.final.Config.states

let test_pp_event () =
  let e = { Trace.ev_step = 12; ev_rounds = 3; ev_moved = [ (4, "UP") ] } in
  Alcotest.(check string) "rendering" "step 12 (3 rounds): 4:UP"
    (Format.asprintf "%a" Trace.pp_event e)

(* ------------------------------------------------------------------ *)
(* Fault                                                                *)
(* ------------------------------------------------------------------ *)

let test_fault_corrupt_all () =
  let rng = Rng.create 7 in
  let c = path_config [| 1; 1; 1 |] in
  let c' = Fault.corrupt rng (fun _ s -> s + 1) c in
  Alcotest.(check (array int)) "all mutated" [| 2; 2; 2 |] c'.Config.states;
  Alcotest.(check (array int)) "original intact" [| 1; 1; 1 |] c.Config.states

let test_fault_corrupt_none () =
  let rng = Rng.create 7 in
  let c = path_config [| 1; 1; 1 |] in
  let c' = Fault.corrupt rng ~p:0.0 (fun _ s -> s + 1) c in
  Alcotest.(check (array int)) "none mutated" [| 1; 1; 1 |] c'.Config.states

let test_fault_corrupt_nodes () =
  let rng = Rng.create 7 in
  let c = path_config [| 1; 1; 1 |] in
  let c' = Fault.corrupt_nodes rng (fun _ s -> s * 10) [ 0; 2 ] c in
  Alcotest.(check (array int)) "exact nodes" [| 10; 1; 10 |] c'.Config.states

(* ------------------------------------------------------------------ *)
(* Algorithm helpers                                                    *)
(* ------------------------------------------------------------------ *)

let test_priority_order () =
  (* Two rules, both enabled: the first one must fire. *)
  let algo : (int, unit) Algorithm.t =
    {
      Algorithm.algo_name = "prio";
      equal = Int.equal;
      rules =
        [
          {
            Algorithm.rule_name = "HIGH";
            guard = (fun v -> v.Algorithm.self = 0);
            action = (fun _ -> 1);
          };
          {
            Algorithm.rule_name = "LOW";
            guard = (fun v -> v.Algorithm.self = 0);
            action = (fun _ -> 2);
          };
        ];
      pp_state = Format.pp_print_int;
    }
  in
  let g = Builders.path 1 in
  let c = Config.make g ~inputs:(fun _ -> ()) ~states:(fun _ -> 0) in
  let c', moved = Engine.step algo c [ 0 ] in
  check_int "high priority applied" 1 (Config.state c' 0);
  Alcotest.(check (list (pair int string))) "rule label" [ (0, "HIGH") ] moved

let test_map_input () =
  let algo = Algorithm.map_input (fun (x : int) -> ignore x) max_algo in
  let g = Builders.path 2 in
  let c = Config.make g ~inputs:(fun p -> p) ~states:(fun p -> p) in
  let stats = Engine.run_synchronous algo c in
  Alcotest.(check (array int)) "adapted algorithm runs" [| 1; 1 |]
    stats.Engine.final.Config.states

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:100 ~name:"engine reaches the same fixpoint under any daemon"
      (pair small_int (int_range 2 8))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let states = Array.init n (fun _ -> Rng.int rng 100) in
        let c = Config.make g ~inputs:(fun _ -> ()) ~states:(fun p -> states.(p)) in
        let expect = Array.fold_left max 0 states in
        List.for_all
          (fun daemon ->
            let stats = Engine.run max_algo daemon c in
            stats.Engine.terminated
            && Array.for_all (fun s -> s = expect) stats.Engine.final.Config.states)
          [
            Daemon.synchronous;
            Daemon.central_min;
            Daemon.central_max;
            Daemon.central_random (Rng.split rng);
            Daemon.distributed_random (Rng.split rng) ~p:0.4;
            Daemon.round_robin ();
          ]);
    Test.make ~count:100 ~name:"rounds never exceed steps"
      (pair small_int (int_range 2 8))
      (fun (seed, n) ->
        let rng = Rng.create seed in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let c =
          Config.make g ~inputs:(fun _ -> ())
            ~states:(fun p -> if p = 0 then 9 else 0)
        in
        let stats =
          Engine.run max_algo (Daemon.distributed_random rng ~p:0.5) c
        in
        stats.Engine.rounds <= stats.Engine.steps);
  ]

let () =
  Alcotest.run "sim"
    [
      ( "config",
        [
          Alcotest.test_case "view" `Quick test_view;
          Alcotest.test_case "functional update" `Quick test_set_state_functional;
          Alcotest.test_case "enabled nodes" `Quick test_enabled_nodes;
          Alcotest.test_case "map states" `Quick test_map_states;
        ] );
      ( "engine",
        [
          Alcotest.test_case "synchronous run" `Quick test_synchronous_run;
          Alcotest.test_case "moves accounting" `Quick test_moves_accounting;
          Alcotest.test_case "step validation" `Quick test_step_validation;
          Alcotest.test_case "step atomicity" `Quick test_step_atomicity;
          Alcotest.test_case "step budget" `Quick test_budget;
          Alcotest.test_case "move budget" `Quick test_max_moves_budget;
          Alcotest.test_case "move budget is hard" `Quick
            test_max_moves_is_a_hard_bound;
          Alcotest.test_case "observer sequence" `Quick test_observer_sequence;
        ] );
      ( "daemons",
        [
          Alcotest.test_case "central min/max" `Quick test_central_min_max;
          Alcotest.test_case "distributed random" `Quick
            test_distributed_random_nonempty;
          Alcotest.test_case "round robin" `Quick test_round_robin_cycles;
          Alcotest.test_case "round robin independence" `Quick
            test_round_robin_instances_independent;
          Alcotest.test_case "scripted" `Quick test_scripted_daemon;
          Alcotest.test_case "scripted invalid" `Quick test_scripted_invalid;
        ] );
      ( "rounds",
        [
          Alcotest.test_case "tracker basic" `Quick test_round_tracker_basic;
          Alcotest.test_case "tracker neutralization" `Quick
            test_round_tracker_neutralization;
          Alcotest.test_case "tracker empty start" `Quick
            test_round_tracker_empty_start;
          Alcotest.test_case "engine neutralization" `Quick
            test_neutralization_in_engine;
          Alcotest.test_case "sync rounds = steps" `Quick
            test_sync_rounds_equal_steps;
        ] );
      ( "trace",
        [
          Alcotest.test_case "events" `Quick test_trace_events;
          Alcotest.test_case "with configs" `Quick test_trace_with_configs;
          Alcotest.test_case "csv export" `Quick test_trace_csv;
          Alcotest.test_case "schedule replay" `Quick test_trace_replay;
          Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
          Alcotest.test_case "pp event" `Quick test_pp_event;
        ] );
      ( "fault",
        [
          Alcotest.test_case "corrupt all" `Quick test_fault_corrupt_all;
          Alcotest.test_case "corrupt none" `Quick test_fault_corrupt_none;
          Alcotest.test_case "corrupt nodes" `Quick test_fault_corrupt_nodes;
        ] );
      ( "algorithm",
        [
          Alcotest.test_case "priority order" `Quick test_priority_order;
          Alcotest.test_case "map input" `Quick test_map_input;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
