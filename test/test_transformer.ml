(* Unit tests for the transformer core (paper §3): each predicate on
   hand-crafted local views, rule actions, rule priorities, parameter
   validation, fault injection, and the global Checker. *)

module Graph = Ss_graph.Graph
module Builders = Ss_graph.Builders
module Algorithm = Ss_sim.Algorithm
module Config = Ss_sim.Config
module Daemon = Ss_sim.Daemon
module Engine = Ss_sim.Engine
module Sync_runner = Ss_sync.Sync_runner
module Min_flood = Ss_algos.Min_flood
module St = Ss_core.Trans_state
module P = Ss_core.Predicates
module Transformer = Ss_core.Transformer
module Checker = Ss_core.Checker
module Rng = Ss_prelude.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lazy_params = Transformer.params Min_flood.algo
let greedy_params b =
  Transformer.params ~mode:P.Greedy ~bound:(P.Finite b) Min_flood.algo

(* A view of a min-flood transformer node: [input] is the node's own
   initial value. *)
let view ?(input = 5) self neighbors =
  { Algorithm.input; self; neighbors = Array.of_list neighbors }

let st ?(status = St.C) init cells =
  St.make ~init ~status ~cells:(Array.of_list cells)

(* ------------------------------------------------------------------ *)
(* Trans_state                                                          *)
(* ------------------------------------------------------------------ *)

let test_state_accessors () =
  let s = st 5 [ 4; 3 ] in
  check_int "height" 2 (St.height s);
  check_int "cell 0 = init" 5 (St.cell s 0);
  check_int "cell 1" 4 (St.cell s 1);
  check_int "cell 2" 3 (St.cell s 2);
  check_int "top" 3 (St.top s);
  check "cell out of range" true
    (try
       ignore (St.cell s 3);
       false
     with Invalid_argument _ -> true)

let test_state_truncate_extend () =
  let s = st 5 [ 4; 3; 2 ] in
  let t = St.truncate s 1 in
  check_int "truncated height" 1 (St.height t);
  check_int "kept prefix" 4 (St.cell t 1);
  let e = St.extend t 9 in
  check_int "extended height" 2 (St.height e);
  check_int "appended" 9 (St.top e);
  check "truncate out of range" true
    (try
       ignore (St.truncate s 4);
       false
     with Invalid_argument _ -> true)

let test_state_equal () =
  let eq = St.equal Int.equal in
  check "equal" true (eq (st 5 [ 4 ]) (st 5 [ 4 ]));
  check "status differs" false (eq (st 5 [ 4 ]) (st ~status:St.E 5 [ 4 ]));
  check "cells differ" false (eq (st 5 [ 4 ]) (st 5 [ 3 ]));
  check "height differs" false (eq (st 5 [ 4 ]) (st 5 [ 4; 4 ]));
  check "init differs" false (eq (st 5 [ 4 ]) (st 6 [ 4 ]))

let test_clean () =
  let s = St.clean 7 in
  check_int "height 0" 0 (St.height s);
  check "status C" true (not (St.in_error s));
  check_int "top = init" 7 (St.top s)

let test_boxed_divergence () =
  (* Branches extended from a shared prefix with physically distinct
     cells must not clobber each other (copy-on-write), while
     re-appending the physically identical cell re-adopts the
     committed slot in place. *)
  let eq = St.equal (List.equal Int.equal) in
  let mk cells = St.make ~init:[ 0 ] ~status:St.C ~cells in
  let base = mk [| [ 1 ]; [ 2 ] |] in
  let t = St.truncate base 1 in
  let a = St.extend t [ 9 ] in
  (* A fresh box structurally equal to base's cell 2 — built at runtime
     because the compiler shares equal constant literals. *)
  let b = St.extend t (List.init 1 (fun _ -> 2)) in
  check "base unchanged" true (eq base (mk [| [ 1 ]; [ 2 ] |]));
  check "diverged branch" true (eq a (mk [| [ 1 ]; [ 9 ] |]));
  check "equal-content branch" true (eq b base);
  let c = St.extend t (St.cell base 2) in
  check "aliased re-extension re-adopts" true (eq c base);
  check "same backing buffer" true (St.rep_id c = St.rep_id base);
  check "copy-on-write minted a buffer" true (St.rep_id b <> St.rep_id base)

let test_stamps () =
  let s = st 5 [ 4 ] in
  check "same construction, same stamp" true (St.stamp s = St.stamp s);
  check "equal values, distinct constructions" true
    (St.stamp (st 5 [ 4 ]) <> St.stamp s);
  check "extend restamps" true (St.stamp (St.extend s 1) <> St.stamp s);
  check "truncate restamps" true (St.stamp (St.truncate s 0) <> St.stamp s);
  check "no-op with_status keeps the stamp" true
    (St.stamp (St.with_status s St.C) = St.stamp s)

(* ------------------------------------------------------------------ *)
(* Predicates: algoErr                                                  *)
(* ------------------------------------------------------------------ *)

let test_algo_hat () =
  (* algô(p, i) = min over the closed neighborhood's cells i. *)
  let v = view ~input:5 (st 5 [ 4 ]) [ st 9 [ 2 ]; st 7 [ 8 ] ] in
  check_int "at 0" 5 (P.algo_hat lazy_params v 0);
  check_int "at 1" 2 (P.algo_hat lazy_params v 1)

let test_algo_err_detects_wrong_cell () =
  (* Cell 2 should be min(5, 9) = 5 but holds 7. *)
  let v = view ~input:5 (st 5 [ 5; 7 ]) [ st 9 [ 9 ] ] in
  check "detected" true (P.algo_err lazy_params v)

let test_algo_err_ok_cells () =
  let v = view ~input:5 (st 5 [ 5; 5 ]) [ st 9 [ 9; 9 ] ] in
  check "no error" false (P.algo_err lazy_params v)

let test_algo_err_ignores_unverifiable_cells () =
  (* The neighbor's list is too short to check cell 2: only cell 1 is
     checkable and it is fine. *)
  let v = view ~input:5 (st 5 [ 5; 777 ]) [ st 9 [] ] in
  check "missing dependency masks the bad cell" false
    (P.algo_err lazy_params v)

let test_algo_err_checks_first_cell () =
  (* Cell 1 = algô(p, 0) is always checkable (L(0) = init exists). *)
  let v = view ~input:5 (st 5 [ 4 ]) [ st 9 [] ] in
  check "wrong first cell detected" true (P.algo_err lazy_params v)

let test_algo_err_no_neighbors () =
  (* Isolated node: every cell is checkable against its own init. *)
  let v = view ~input:5 (st 5 [ 5; 6 ]) [] in
  check "detected without neighbors" true (P.algo_err lazy_params v)

(* ------------------------------------------------------------------ *)
(* Predicates: depErr / root                                            *)
(* ------------------------------------------------------------------ *)

let test_dep_err_error_without_parent () =
  (* In error with no error neighbor of smaller height: a root. *)
  let v = view (st ~status:St.E 5 [ 5; 5 ]) [ st 9 [ 9 ] ] in
  check "detected" true (P.dep_err lazy_params v);
  (* An error neighbor strictly below excuses it. *)
  let v' =
    view (st ~status:St.E 5 [ 5; 5 ]) [ st ~status:St.E 9 [ 9 ] ]
  in
  check "error parent excuses" false (P.dep_err lazy_params v')

let test_dep_err_error_equal_height_neighbor () =
  (* The error neighbor must be strictly lower. *)
  let v =
    view (st ~status:St.E 5 [ 5 ]) [ st ~status:St.E 9 [ 9 ] ]
  in
  check "equal height does not excuse" true (P.dep_err lazy_params v)

let test_dep_err_cliff () =
  (* Correct node with a neighbor towering >= h + 2 above it. *)
  let v = view (st 5 []) [ st 9 [ 9; 9 ] ] in
  check "cliff detected" true (P.dep_err lazy_params v);
  let v' = view (st 5 []) [ st 9 [ 9 ] ] in
  check "height + 1 is fine" false (P.dep_err lazy_params v')

let test_root_is_disjunction () =
  let v = view ~input:5 (st 5 [ 4 ]) [ st 9 [] ] in
  check "algoErr implies root" true (P.is_root lazy_params v);
  let v' = view (st 5 []) [ st 9 [ 9; 9 ] ] in
  check "depErr implies root" true (P.is_root lazy_params v');
  let ok = view ~input:5 (st 5 [ 5 ]) [ st 9 [ 9 ] ] in
  check "clean view is not a root" false (P.is_root lazy_params ok)

(* ------------------------------------------------------------------ *)
(* Predicates: errProp / canClearE / updatable                          *)
(* ------------------------------------------------------------------ *)

let test_err_prop_minimal_index () =
  (* Error neighbors at heights 2 and 3; own height 6: the smallest
     valid truncation point is 3. *)
  let self = st 5 [ 5; 5; 5; 5; 5; 5 ] in
  let v =
    view self
      [
        st ~status:St.E 9 [ 9; 9 ];
        st ~status:St.E 8 [ 8; 8; 8 ];
        st 7 [ 7; 7; 7; 7; 7; 7 ];
      ]
  in
  check "index is min error height + 1" true
    (P.err_prop_index lazy_params v = Some 3)

let test_err_prop_requires_room () =
  (* q.h < i < p.h requires q.h <= p.h - 2. *)
  let v = view (st 5 [ 5; 5 ]) [ st ~status:St.E 9 [ 9 ] ] in
  check "no room" true (P.err_prop_index lazy_params v = None);
  let v' = view (st 5 [ 5; 5; 5 ]) [ st ~status:St.E 9 [ 9 ] ] in
  check "room at h-1" true (P.err_prop_index lazy_params v' = Some 2)

let test_err_prop_ignores_correct_neighbors () =
  let v = view (st 5 [ 5; 5; 5 ]) [ st 9 [] ] in
  check "correct neighbors do not propagate" true
    (P.err_prop_index lazy_params v = None)

let test_can_clear_e () =
  let v =
    view (st ~status:St.E 5 [ 5; 5 ]) [ st 9 [ 9 ]; st 7 [ 7; 7; 7 ] ]
  in
  check "clearable" true (P.can_clear_e lazy_params v);
  (* A higher neighbor still in error blocks the feedback. *)
  let v' =
    view (st ~status:St.E 5 [ 5; 5 ]) [ st ~status:St.E 7 [ 7; 7; 7 ] ]
  in
  check "higher error neighbor blocks" false (P.can_clear_e lazy_params v');
  (* A neighbor two levels apart blocks it too. *)
  let v'' = view (st ~status:St.E 5 [ 5; 5 ]) [ st 9 [] ] in
  check "cliff blocks" false (P.can_clear_e lazy_params v'');
  (* Only error nodes can clear. *)
  let v''' = view (st 5 [ 5 ]) [ st 9 [ 9 ] ] in
  check "status C cannot clear" false (P.can_clear_e lazy_params v''')

let test_updatable_lazy_stops_at_fixpoint () =
  (* min-flood already stable at height 1, no neighbor ahead: lazily
     silent. *)
  let v = view ~input:5 (st 5 [ 5 ]) [ st 9 [ 9 ] ] in
  check "lazy does not extend" false (P.updatable lazy_params v);
  check "greedy extends" true (P.updatable (greedy_params 10) v)

let test_updatable_lazy_continues_when_needed () =
  (* Simulation not finished: the next cell would differ. *)
  let v = view ~input:9 (st 9 [ 9 ]) [ st 5 [ 5 ] ] in
  check "value still changing" true (P.updatable lazy_params v);
  (* Or a neighbor is already ahead. *)
  let v' = view ~input:5 (st 5 [ 5 ]) [ st 9 [ 9; 9 ] ] in
  check "neighbor ahead" true (P.updatable lazy_params v')

let test_updatable_requires_aligned_neighbors () =
  (* A neighbor strictly below blocks RU. *)
  let v = view ~input:9 (st 9 [ 9 ]) [ st 5 [] ] in
  check "lower neighbor blocks" false (P.updatable lazy_params v);
  (* An error status blocks RU. *)
  let v' = view ~input:9 (st ~status:St.E 9 [ 9 ]) [ st 5 [ 5 ] ] in
  check "error status blocks" false (P.updatable lazy_params v')

let test_updatable_respects_bound () =
  let v = view ~input:9 (st 9 [ 9 ]) [ st 5 [ 5 ] ] in
  check "B=1 full" false (P.updatable (greedy_params 1) v);
  check "B=2 has room" true (P.updatable (greedy_params 2) v)

let test_below_bound () =
  check "finite" true (P.below_bound (P.Finite 3) 2);
  check "finite limit" false (P.below_bound (P.Finite 3) 3);
  check "infinite" true (P.below_bound P.Infinite max_int)

(* ------------------------------------------------------------------ *)
(* Rules and priorities                                                 *)
(* ------------------------------------------------------------------ *)

let algo = Transformer.algorithm lazy_params

let rule_of v =
  match Algorithm.enabled_rule algo v with
  | Some r -> r.Algorithm.rule_name
  | None -> "none"

let test_rr_has_highest_priority () =
  (* Root with an error-propagation opportunity: RR wins. *)
  let self = st 5 [ 5; 5; 5; 5 ] in
  let v =
    view self [ st ~status:St.E 9 [ 9 ]; st 7 [ 7; 7; 7; 7; 7; 7 ] ]
  in
  check "is root (cliff above)" true (P.is_root lazy_params v);
  check "errProp also enabled" true (P.err_prop_index lazy_params v <> None);
  Alcotest.(check string) "RR fires" Transformer.rr (rule_of v)

let test_rr_action_resets () =
  let v = view ~input:5 (st 5 [ 4 ]) [ st 9 [] ] in
  Alcotest.(check string) "RR enabled" Transformer.rr (rule_of v);
  let r = Option.get (Algorithm.enabled_rule algo v) in
  let s' = r.Algorithm.action v in
  check_int "height reset" 0 (St.height s');
  check "in error" true (St.in_error s');
  check_int "init preserved" 5 (St.init s')

let test_rr_not_reenabled_at_zero () =
  (* A root in error with an empty list must not fire RR again (guard
     p.h > 0 ∨ p.s = C). *)
  let v = view ~input:5 (st ~status:St.E 5 []) [ st 9 [] ] in
  check "still a root" true (P.is_root lazy_params v);
  check "RR not enabled" true (rule_of v <> Transformer.rr)

let test_rp_action_truncates () =
  let self = st 5 [ 5; 5; 5; 5 ] in
  let v = view self [ st ~status:St.E 9 [ 9 ] ] in
  Alcotest.(check string) "RP enabled" Transformer.rp (rule_of v);
  let r = Option.get (Algorithm.enabled_rule algo v) in
  let s' = r.Algorithm.action v in
  check_int "truncated to min index" 2 (St.height s');
  check "in error" true (St.in_error s')

let test_rc_action_clears () =
  (* In error with an error parent below (so not a root) and a correct
     higher neighbor: the feedback rule RC applies. *)
  let v =
    view ~input:5
      (st ~status:St.E 5 [ 5 ])
      [ st ~status:St.E 9 []; st 7 [ 5; 5 ] ]
  in
  check "not a root" false (P.is_root lazy_params v);
  Alcotest.(check string) "RC enabled" Transformer.rc (rule_of v);
  let r = Option.get (Algorithm.enabled_rule algo v) in
  let s' = r.Algorithm.action v in
  check "cleared" true (not (St.in_error s'));
  check_int "height unchanged" 1 (St.height s')

let test_orphaned_error_node_is_root () =
  (* An error node whose parent has already left the DAG satisfies
     depErr and resets via RR rather than clearing via RC. *)
  let v = view ~input:5 (st ~status:St.E 5 [ 5 ]) [ st 9 [ 9 ] ] in
  check "is root" true (P.is_root lazy_params v);
  Alcotest.(check string) "RR fires" Transformer.rr (rule_of v)

let test_ru_action_extends () =
  (* A consistent node whose next simulated value differs: only RU. *)
  let v = view ~input:7 (st 7 []) [ st 5 []; st 9 [] ] in
  check "not a root" false (P.is_root lazy_params v);
  Alcotest.(check string) "RU enabled" Transformer.ru (rule_of v);
  let r = Option.get (Algorithm.enabled_rule algo v) in
  let s' = r.Algorithm.action v in
  check_int "extended" 1 (St.height s');
  check_int "computed cell" 5 (St.top s')

let test_quiescent_view_disabled () =
  let v = view ~input:5 (st 5 [ 5 ]) [ st 9 [ 9 ] ] in
  check "no rule enabled" true (rule_of v = "none")

(* ------------------------------------------------------------------ *)
(* Params and corruption                                                *)
(* ------------------------------------------------------------------ *)

let test_params_validation () =
  check "greedy + infinite rejected" true
    (try
       ignore (Transformer.params ~mode:P.Greedy Min_flood.algo);
       false
     with Invalid_argument _ -> true);
  check "non-positive bound rejected" true
    (try
       ignore (Transformer.params ~bound:(P.Finite 0) Min_flood.algo);
       false
     with Invalid_argument _ -> true);
  check "lazy infinite accepted" true
    (ignore (Transformer.params Min_flood.algo);
     true)

let test_corrupt_preserves_init_and_caps () =
  let g = Builders.cycle 8 in
  let params = greedy_params 5 in
  let clean = Transformer.clean_config params g ~inputs:(fun p -> p) in
  let rng = Rng.create 99 in
  for _ = 1 to 50 do
    let c = Transformer.corrupt (Rng.split rng) ~max_height:20 params clean in
    Graph.iter_nodes g (fun p ->
        let s = Config.state c p in
        check_int "init preserved" p (St.init s);
        check "height capped at B" true (St.height s <= 5))
  done

let test_corrupt_p_zero () =
  let g = Builders.path 4 in
  let params = lazy_params in
  let clean = Transformer.clean_config params g ~inputs:(fun p -> p) in
  let rng = Rng.create 1 in
  let c = Transformer.corrupt rng ~p:0.0 ~max_height:5 params clean in
  check "untouched" true (Config.equal (St.equal Int.equal) clean c)

let test_clean_config_shape () =
  let g = Builders.path 3 in
  let c = Transformer.clean_config lazy_params g ~inputs:(fun p -> 10 * p) in
  Graph.iter_nodes g (fun p ->
      let s = Config.state c p in
      check_int "init from sync init" (10 * p) (St.init s);
      check_int "empty list" 0 (St.height s);
      check "status C" true (not (St.in_error s)))

(* ------------------------------------------------------------------ *)
(* End-to-end behaviour on small systems                                *)
(* ------------------------------------------------------------------ *)

let test_clean_run_simulates_synchronous_execution () =
  let g = Builders.path 5 in
  let inputs p = [| 7; 3; 9; 8; 5 |].(p) in
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  let stats =
    Transformer.run lazy_params Daemon.synchronous
      (Transformer.clean_config lazy_params g ~inputs)
  in
  check "terminated" true stats.Engine.terminated;
  check "legitimate" true
    (Checker.legitimate_terminal lazy_params hist stats.Engine.final = Ok ());
  (* From a clean start only RU ever fires. *)
  List.iter
    (fun (r, c) ->
      if r <> Transformer.ru then check_int (r ^ " never fires") 0 c)
    stats.Engine.moves_per_rule;
  (* Final height is exactly T. *)
  Alcotest.(check (array int)) "heights = T"
    (Array.make 5 hist.Sync_runner.t)
    (Checker.heights stats.Engine.final)

let test_greedy_fills_to_bound () =
  let b = 9 in
  let params = greedy_params b in
  let g = Builders.cycle 4 in
  let inputs p = p + 1 in
  let stats =
    Transformer.run params Daemon.synchronous
      (Transformer.clean_config params g ~inputs)
  in
  check "terminated" true stats.Engine.terminated;
  Alcotest.(check (array int)) "heights = B" (Array.make 4 b)
    (Checker.heights stats.Engine.final);
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  check "legitimate" true
    (Checker.legitimate_terminal params hist stats.Engine.final = Ok ())

let test_lazy_final_height_with_tall_corruption () =
  (* §4.1: when some initial height exceeds T, the final common height
     is at least T and at most the maximum initial height. *)
  let g = Builders.path 4 in
  let inputs p = p in
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  let t = hist.Sync_runner.t in
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let start =
      Transformer.corrupt (Rng.split rng) ~max_height:(t + 5) lazy_params
        (Transformer.clean_config lazy_params g ~inputs)
    in
    let h0 = Checker.heights start in
    let max_h0 = Array.fold_left max 0 h0 in
    let stats =
      Transformer.run lazy_params
        (Daemon.distributed_random (Rng.split rng) ~p:0.5)
        start
    in
    check "terminated" true stats.Engine.terminated;
    let hf = (Checker.heights stats.Engine.final).(0) in
    check "T <= final height" true (t <= hf);
    check "final height <= max(T, initial max)" true (hf <= max t max_h0);
    check "simulation correct" true
      (Checker.simulates_history lazy_params hist stats.Engine.final)
  done

let test_outputs () =
  let g = Builders.path 3 in
  let inputs p = p + 4 in
  let stats =
    Transformer.run lazy_params Daemon.synchronous
      (Transformer.clean_config lazy_params g ~inputs)
  in
  Alcotest.(check (array int)) "outputs are the simulated results"
    [| 4; 4; 4 |]
    (Transformer.outputs stats.Engine.final)

(* ------------------------------------------------------------------ *)
(* Checker                                                              *)
(* ------------------------------------------------------------------ *)

let two_node_config self other =
  let g = Builders.path 2 in
  Config.make g
    ~inputs:(fun p -> [| 5; 9 |].(p))
    ~states:(fun p -> if p = 0 then self else other)

let test_checker_roots () =
  (* Node 0 has a wrong first cell: it is a root. *)
  let c = two_node_config (st 5 [ 4 ]) (st 9 [ 5 ]) in
  Alcotest.(check (list int)) "roots" [ 0 ] (Checker.roots lazy_params c);
  check "has root" true (Checker.has_root lazy_params c);
  let ok = two_node_config (st 5 [ 5 ]) (st 9 [ 5 ]) in
  check "clean config rootless" false (Checker.has_root lazy_params ok)

let test_checker_counters () =
  let c = two_node_config (st ~status:St.E 5 []) (st 9 [ 5; 5; 5 ]) in
  check_int "error count" 1 (Checker.error_count c);
  check_int "max cliff" 3 (Checker.max_cliff c);
  Alcotest.(check (array int)) "heights" [| 0; 3 |] (Checker.heights c)

let test_checker_space_bits () =
  let c = two_node_config (st 5 [ 4; 3 ]) (st 9 []) in
  (* Node 0: 1 status bit + bits(5)=4 + bits(4)=4 + bits(3)=3 = 12.
     (min-flood state_bits x = 1 + bit_width |x|.) *)
  check_int "space bits" 12 (Checker.space_bits lazy_params c)

let test_legitimate_terminal_diagnostics () =
  let g = Builders.path 2 in
  let inputs p = [| 5; 9 |].(p) in
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  let mk s0 s1 =
    Config.make g ~inputs ~states:(fun p -> if p = 0 then s0 else s1)
  in
  (* Proper terminal configuration: both at height T = 1, correct
     contents. *)
  let good = mk (st 5 [ 5 ]) (st 9 [ 5 ]) in
  check "good accepted" true
    (Checker.legitimate_terminal lazy_params hist good = Ok ());
  (* Not terminal: node 1 can still fix its cell (it is a root). *)
  let active = mk (st 5 [ 5 ]) (st 9 [ 9 ]) in
  check "non-terminal rejected" true
    (Checker.legitimate_terminal lazy_params hist active <> Ok ())

let test_simulates_history_negative () =
  let g = Builders.path 2 in
  let inputs p = [| 5; 9 |].(p) in
  let hist = Sync_runner.run Min_flood.algo g ~inputs in
  let mk s0 s1 =
    Config.make g ~inputs ~states:(fun p -> if p = 0 then s0 else s1)
  in
  check "correct contents pass" true
    (Checker.simulates_history lazy_params hist (mk (st 5 [ 5 ]) (st 9 [ 5 ])));
  check "wrong cell fails" false
    (Checker.simulates_history lazy_params hist (mk (st 5 [ 6 ]) (st 9 [ 5 ])));
  check "error status fails" false
    (Checker.simulates_history lazy_params hist
       (mk (st ~status:St.E 5 [ 5 ]) (st 9 [ 5 ])));
  check "beyond T clamps to fixpoint" true
    (Checker.simulates_history lazy_params hist
       (mk (st 5 [ 5; 5 ]) (st 9 [ 5; 5 ])))

(* ------------------------------------------------------------------ *)
(* Random-view properties of the predicates                             *)
(* ------------------------------------------------------------------ *)

let random_trans_state rng =
  let h = Rng.int rng 5 in
  St.make
    ~init:(Rng.int rng 30)
    ~status:(if Rng.bool rng then St.C else St.E)
    ~cells:(Array.init h (fun _ -> Rng.int rng 30))

let random_view rng =
  let deg = Rng.int rng 5 in
  {
    Algorithm.input = Rng.int rng 30;
    self = random_trans_state rng;
    neighbors = Array.init deg (fun _ -> random_trans_state rng);
  }

(* Model-based equivalence: Trans_state against a pure (status, init,
   cells-array) model, under random interleavings of the whole API —
   including branching (value semantics: operations on one branch must
   never disturb another) and aliased re-extensions from a shared
   prefix. *)
let qcheck_state_model =
  QCheck.Test.make ~count:100
    ~name:"Trans_state matches the pure-array model under random ops"
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed + 1) in
      let max_pool = 24 in
      let pool = ref [] and size = ref 0 in
      let add m s =
        if !size < max_pool then begin
          pool := (m, s) :: !pool;
          incr size
        end
        else begin
          let victim = Rng.int rng max_pool in
          pool := List.mapi (fun i p -> if i = victim then (m, s) else p) !pool
        end
      in
      let model_of s = (St.status s, St.init s, St.cells s) in
      let seed_state () =
        let s =
          St.make ~init:(Rng.int rng 20)
            ~status:(if Rng.bool rng then St.C else St.E)
            ~cells:(Array.init (Rng.int rng 4) (fun _ -> Rng.int rng 20))
        in
        add (model_of s) s
      in
      seed_state ();
      seed_state ();
      let pick () = List.nth !pool (Rng.int rng !size) in
      let ok = ref true in
      let matches ((status, init, cells), s) =
        St.status s = status
        && St.init s = init
        && St.height s = Array.length cells
        && St.cell s 0 = init
        && Array.for_all Fun.id
             (Array.mapi (fun i c -> St.cell s (i + 1) = c) cells)
        && St.snapshot s = (status, init, cells)
        && St.cells s = cells
        && St.fold_cells (fun acc c -> c :: acc) [] s
           = List.rev (Array.to_list cells)
      in
      for _ = 1 to 120 do
        (match Rng.int rng 6 with
        | 0 -> seed_state ()
        | 1 ->
            let (st_, i, cells), s = pick () in
            let x = Rng.int rng 20 in
            add (st_, i, Array.append cells [| x |]) (St.extend s x)
        | 2 ->
            let (st_, i, cells), s = pick () in
            let k = Rng.int rng (Array.length cells + 1) in
            add (st_, i, Array.sub cells 0 k) (St.truncate s k)
        | 3 ->
            let (_, i, cells), s = pick () in
            let status = if Rng.bool rng then St.C else St.E in
            add (status, i, cells) (St.with_status s status)
        | 4 ->
            let (_, i, _), s = pick () in
            add (St.E, i, [||]) (St.wipe s)
        | _ ->
            (* Branch below the frontier, then re-extend — half the
               time with the committed value (the alias path), half
               with a fresh one (copy-on-write). *)
            let (st_, i, cells), s = pick () in
            let h = Array.length cells in
            if h = 0 then seed_state ()
            else begin
              let k = Rng.int rng h in
              let t = St.truncate s k in
              let x = if Rng.bool rng then cells.(k) else Rng.int rng 20 in
              add
                (st_, i, Array.append (Array.sub cells 0 k) [| x |])
                (St.extend t x)
            end);
        List.iter (fun p -> if not (matches p) then ok := false) !pool;
        let m1, s1 = pick () and m2, s2 = pick () in
        if St.equal Int.equal s1 s2 <> (m1 = m2) then ok := false
      done;
      !ok)

let qcheck_tests =
  let open QCheck in
  [
    qcheck_state_model;
    Test.make ~count:500 ~name:"RC and RU guards are mutually exclusive"
      small_int
      (fun seed ->
        let rng = Rng.create (seed + 1) in
        let v = random_view rng in
        not (P.can_clear_e lazy_params v && P.updatable lazy_params v));
    Test.make ~count:500
      ~name:"an error node always has RR, RP or RC available unless frozen"
      small_int
      (fun seed ->
        (* Not a theorem about single views — just guard totality: the
           predicates never raise on arbitrary states. *)
        let rng = Rng.create (seed + 1) in
        let v = random_view rng in
        let _ = P.is_root lazy_params v in
        let _ = P.err_prop_index lazy_params v in
        let _ = P.can_clear_e lazy_params v in
        let _ = P.updatable lazy_params v in
        let _ = P.algo_err lazy_params v in
        let _ = P.dep_err lazy_params v in
        true);
    Test.make ~count:500 ~name:"greedy updatable implies lazy-or-greedy shape"
      small_int
      (fun seed ->
        (* Lazy updatable implies greedy updatable (same bound): the
           lazy condition only restricts. *)
        let rng = Rng.create (seed + 1) in
        let v = random_view rng in
        let g10 = greedy_params 10 in
        let lazy10 =
          Transformer.params ~bound:(P.Finite 10) Min_flood.algo
        in
        (not (P.updatable lazy10 v)) || P.updatable g10 v);
    Test.make ~count:200
      ~name:"terminal lazy configuration is terminal for greedy with B = h"
      small_int
      (fun seed ->
        let rng = Rng.create (seed + 1) in
        let n = 2 + Rng.int rng 6 in
        let g = Builders.random_connected rng ~n ~extra_edges:2 in
        let inputs p = (p * 11) mod 7 in
        let stats =
          Transformer.run lazy_params Daemon.synchronous
            (Transformer.clean_config lazy_params g ~inputs)
        in
        let h = (Checker.heights stats.Engine.final).(0) in
        h = 0
        ||
        let gp = greedy_params h in
        Ss_sim.Config.is_terminal (Transformer.algorithm gp)
          (Ss_sim.Config.with_states
             (Transformer.clean_config gp g ~inputs)
             stats.Engine.final.Ss_sim.Config.states));
  ]

let () =
  Alcotest.run "transformer"
    [
      ( "trans-state",
        [
          Alcotest.test_case "accessors" `Quick test_state_accessors;
          Alcotest.test_case "truncate/extend" `Quick test_state_truncate_extend;
          Alcotest.test_case "equality" `Quick test_state_equal;
          Alcotest.test_case "clean" `Quick test_clean;
          Alcotest.test_case "boxed divergence" `Quick test_boxed_divergence;
          Alcotest.test_case "stamps" `Quick test_stamps;
        ] );
      ( "algo-err",
        [
          Alcotest.test_case "algo_hat" `Quick test_algo_hat;
          Alcotest.test_case "wrong cell" `Quick test_algo_err_detects_wrong_cell;
          Alcotest.test_case "correct cells" `Quick test_algo_err_ok_cells;
          Alcotest.test_case "unverifiable cells" `Quick
            test_algo_err_ignores_unverifiable_cells;
          Alcotest.test_case "first cell" `Quick test_algo_err_checks_first_cell;
          Alcotest.test_case "no neighbors" `Quick test_algo_err_no_neighbors;
        ] );
      ( "dep-err",
        [
          Alcotest.test_case "error without parent" `Quick
            test_dep_err_error_without_parent;
          Alcotest.test_case "equal-height neighbor" `Quick
            test_dep_err_error_equal_height_neighbor;
          Alcotest.test_case "cliff" `Quick test_dep_err_cliff;
          Alcotest.test_case "root disjunction" `Quick test_root_is_disjunction;
        ] );
      ( "err-prop / clear / update",
        [
          Alcotest.test_case "minimal index" `Quick test_err_prop_minimal_index;
          Alcotest.test_case "needs room" `Quick test_err_prop_requires_room;
          Alcotest.test_case "ignores correct neighbors" `Quick
            test_err_prop_ignores_correct_neighbors;
          Alcotest.test_case "canClearE" `Quick test_can_clear_e;
          Alcotest.test_case "lazy stops at fixpoint" `Quick
            test_updatable_lazy_stops_at_fixpoint;
          Alcotest.test_case "lazy continues when needed" `Quick
            test_updatable_lazy_continues_when_needed;
          Alcotest.test_case "alignment required" `Quick
            test_updatable_requires_aligned_neighbors;
          Alcotest.test_case "bound respected" `Quick test_updatable_respects_bound;
          Alcotest.test_case "below_bound" `Quick test_below_bound;
        ] );
      ( "rules",
        [
          Alcotest.test_case "RR priority" `Quick test_rr_has_highest_priority;
          Alcotest.test_case "RR action" `Quick test_rr_action_resets;
          Alcotest.test_case "RR not re-enabled at 0" `Quick
            test_rr_not_reenabled_at_zero;
          Alcotest.test_case "RP action" `Quick test_rp_action_truncates;
          Alcotest.test_case "RC action" `Quick test_rc_action_clears;
          Alcotest.test_case "orphaned error node is root" `Quick
            test_orphaned_error_node_is_root;
          Alcotest.test_case "RU action" `Quick test_ru_action_extends;
          Alcotest.test_case "quiescence" `Quick test_quiescent_view_disabled;
        ] );
      ( "params / faults",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "corrupt caps" `Quick
            test_corrupt_preserves_init_and_caps;
          Alcotest.test_case "corrupt p=0" `Quick test_corrupt_p_zero;
          Alcotest.test_case "clean config" `Quick test_clean_config_shape;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "clean run = synchronous execution" `Quick
            test_clean_run_simulates_synchronous_execution;
          Alcotest.test_case "greedy fills to B" `Quick test_greedy_fills_to_bound;
          Alcotest.test_case "lazy with tall corruption" `Quick
            test_lazy_final_height_with_tall_corruption;
          Alcotest.test_case "outputs" `Quick test_outputs;
        ] );
      ( "checker",
        [
          Alcotest.test_case "roots" `Quick test_checker_roots;
          Alcotest.test_case "counters" `Quick test_checker_counters;
          Alcotest.test_case "space bits" `Quick test_checker_space_bits;
          Alcotest.test_case "terminal diagnostics" `Quick
            test_legitimate_terminal_diagnostics;
          Alcotest.test_case "simulates history" `Quick
            test_simulates_history_negative;
        ] );
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
